/**
 * @file
 * Regenerates Tab. 1 (the GPU chips tested) and Tab. 4 (compilers and
 * drivers used) from the chip registry.
 */

#include "bench_util.h"

using namespace gpulitmus;

int
main()
{
    benchutil::printHeader("Tab. 1 / Tab. 4 - chips, compilers and"
                           " drivers",
                           "the simulated chip registry");

    Table tab1;
    tab1.header({"vendor", "architecture", "chip", "short name",
                 "year"});
    for (const auto &c : sim::allChips()) {
        tab1.row({c.vendor, c.arch, c.chipName, c.shortName,
                  std::to_string(c.year)});
    }
    tab1.print(std::cout);

    std::cout << "\nTab. 4 (result chips only):\n";
    Table tab4;
    tab4.header({"", "SDK", "driver", "options", "SMs"});
    for (const auto &c : sim::resultChips()) {
        tab4.row({c.shortName, c.sdk, c.driver, c.options,
                  std::to_string(c.numSMs)});
    }
    tab4.print(std::cout);
    return 0;
}
