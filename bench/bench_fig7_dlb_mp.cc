/**
 * @file
 * Regenerates Fig. 7: the dlb-mp test distilled (via the Tab. 5
 * mapping) from the push/steal pair of the Cederman-Tsigas
 * work-stealing deque. Without fences a steal can read a stale task,
 * so the deque loses work; adding the (+) fences forbids it.
 */

#include "bench_util.h"
#include "litmus/library.h"

using namespace gpulitmus;

int
main()
{
    benchutil::printHeader(
        "Fig. 7 - PTX mp from load-balancing (dlb-mp)",
        "init: global t=0, d=0; T0: push (write task, bump tail) ||"
        " T1: steal (read tail, read task); final: r0=1 /\\ r1=0;"
        " threads: inter-CTA");

    auto chips = benchutil::allResultChips();
    Table table;
    table.header(benchutil::chipHeader("variant", chips));
    benchutil::obsRows(table, "dlb-mp", litmus::paperlib::dlbMp(false),
                       chips, {"0", "4", "36", "65", "0", "0", "0"},
                       benchutil::config());
    benchutil::obsRows(table, "dlb-mp+fences",
                       litmus::paperlib::dlbMp(true), chips,
                       {"0", "0", "0", "0", "0", "0", "0"},
                       benchutil::config());
    table.print(std::cout);
    return 0;
}
