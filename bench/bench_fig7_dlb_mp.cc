/**
 * @file
 * Regenerates Fig. 7: the dlb-mp test distilled (via the Tab. 5
 * mapping) from the push/steal pair of the Cederman-Tsigas
 * work-stealing deque. Without fences a steal can read a stale task,
 * so the deque loses work; adding the (+) fences forbids it.
 *
 * Driven through the Scenario API: the rows are the
 * `scenario:work_stealing_deque` registry scenario (forbidden
 * condition: the thief saw the pushed tail but read an empty slot),
 * so "observed" is lost tasks per 100k.
 */

#include "bench_util.h"

using namespace gpulitmus;

int
main()
{
    benchutil::printHeader(
        "Fig. 7 - PTX mp from load-balancing (dlb-mp)",
        "init: global t=0, d=0; T0: push (write task, bump tail) ||"
        " T1: steal (read tail, read task); forbidden: r0=1 /\\ r1=0;"
        " threads: inter-CTA (scenario:work_stealing_deque)");

    auto chips = benchutil::allResultChips();
    Table table;
    table.header(benchutil::chipHeader("variant", chips));
    benchutil::scenarioRows(table, "dlb-mp",
                            "scenario:work_stealing_deque", chips,
                            {"0", "4", "36", "65", "0", "0", "0"},
                            benchutil::config());
    benchutil::scenarioRows(table, "dlb-mp+fences",
                            "scenario:work_stealing_deque,fenced=1",
                            chips,
                            {"0", "0", "0", "0", "0", "0", "0"},
                            benchutil::config());
    table.print(std::cout);
    return 0;
}
