/**
 * @file
 * google-benchmark microbenchmarks of the engines themselves: the
 * simulator's iteration rate, the candidate-execution enumerator, the
 * .cat evaluator, the generator and the relation algebra. These are
 * the knobs that determine how far the Sec. 5.4 validation scales.
 */

#include <benchmark/benchmark.h>

#include "axiom/enumerate.h"
#include "cat/models.h"
#include "common/rng.h"
#include "gen/generator.h"
#include "litmus/library.h"
#include "model/checker.h"
#include "sim/machine.h"

using namespace gpulitmus;

namespace {

void
BM_SimulatorIteration(benchmark::State &state)
{
    litmus::Test test = litmus::paperlib::mp();
    sim::Machine machine(sim::chip("Titan"), test, {});
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(machine.run(rng));
}
BENCHMARK(BM_SimulatorIteration);

void
BM_SimulatorIterationSpinLock(benchmark::State &state)
{
    litmus::Test test = litmus::paperlib::casSl(false);
    sim::Machine machine(sim::chip("TesC"), test, {});
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(machine.run(rng));
}
BENCHMARK(BM_SimulatorIterationSpinLock);

void
BM_EnumerateExecutions(benchmark::State &state)
{
    litmus::Test test = litmus::paperlib::mp();
    for (auto _ : state)
        benchmark::DoNotOptimize(axiom::enumerateExecutions(test));
}
BENCHMARK(BM_EnumerateExecutions);

void
BM_ModelCheckMp(benchmark::State &state)
{
    litmus::Test test = litmus::paperlib::mp();
    model::Checker checker(cat::models::ptx());
    for (auto _ : state)
        benchmark::DoNotOptimize(checker.check(test));
}
BENCHMARK(BM_ModelCheckMp);

void
BM_CatEvaluate(benchmark::State &state)
{
    auto execs =
        axiom::enumerateExecutions(litmus::paperlib::casSl(false));
    const cat::Model &model = cat::models::ptx();
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(execs[i++ % execs.size()]));
    }
}
BENCHMARK(BM_CatEvaluate);

void
BM_GenerateTests(benchmark::State &state)
{
    gen::GeneratorOptions opts;
    opts.maxEdges = 3;
    opts.maxTests = 200;
    auto pool = gen::defaultPool();
    for (auto _ : state)
        benchmark::DoNotOptimize(gen::generate(pool, opts));
}
BENCHMARK(BM_GenerateTests);

void
BM_RelationClosure(benchmark::State &state)
{
    Rng rng(3);
    axiom::Relation r(32);
    for (int i = 0; i < 32; ++i)
        for (int j = 0; j < 32; ++j)
            if (rng.chance(0.1))
                r.set(i, j);
    for (auto _ : state)
        benchmark::DoNotOptimize(r.plus());
}
BENCHMARK(BM_RelationClosure);

} // namespace

BENCHMARK_MAIN();
