/**
 * @file
 * google-benchmark microbenchmarks of the engines themselves: the
 * simulator's iteration rate, the candidate-execution enumerator, the
 * .cat evaluator, the generator and the relation algebra. These are
 * the knobs that determine how far the Sec. 5.4 validation scales.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "axiom/enumerate.h"
#include "cat/models.h"
#include "common/rng.h"
#include "gen/generator.h"
#include "harness/campaign.h"
#include "litmus/library.h"
#include "model/checker.h"
#include "sim/machine.h"

using namespace gpulitmus;

namespace {

void
BM_SimulatorIteration(benchmark::State &state)
{
    litmus::Test test = litmus::paperlib::mp();
    sim::Machine machine(sim::chip("Titan"), test, {});
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(machine.run(rng));
}
BENCHMARK(BM_SimulatorIteration);

void
BM_SimulatorIterationSpinLock(benchmark::State &state)
{
    litmus::Test test = litmus::paperlib::casSl(false);
    sim::Machine machine(sim::chip("TesC"), test, {});
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(machine.run(rng));
}
BENCHMARK(BM_SimulatorIterationSpinLock);

void
BM_EnumerateExecutions(benchmark::State &state)
{
    litmus::Test test = litmus::paperlib::mp();
    for (auto _ : state)
        benchmark::DoNotOptimize(axiom::enumerateExecutions(test));
}
BENCHMARK(BM_EnumerateExecutions);

void
BM_ModelCheckMp(benchmark::State &state)
{
    litmus::Test test = litmus::paperlib::mp();
    model::Checker checker(cat::models::ptx());
    for (auto _ : state)
        benchmark::DoNotOptimize(checker.check(test));
}
BENCHMARK(BM_ModelCheckMp);

void
BM_CatEvaluate(benchmark::State &state)
{
    auto execs =
        axiom::enumerateExecutions(litmus::paperlib::casSl(false));
    const cat::Model &model = cat::models::ptx();
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(execs[i++ % execs.size()]));
    }
}
BENCHMARK(BM_CatEvaluate);

void
BM_GenerateTests(benchmark::State &state)
{
    gen::GeneratorOptions opts;
    opts.maxEdges = 3;
    opts.maxTests = 200;
    auto pool = gen::defaultPool();
    for (auto _ : state)
        benchmark::DoNotOptimize(gen::generate(pool, opts));
}
BENCHMARK(BM_GenerateTests);

void
BM_RelationClosure(benchmark::State &state)
{
    Rng rng(3);
    axiom::Relation r(32);
    for (int i = 0; i < 32; ++i)
        for (int j = 0; j < 32; ++j)
            if (rng.chance(0.1))
                r.set(i, j);
    for (auto _ : state)
        benchmark::DoNotOptimize(r.plus());
}
BENCHMARK(BM_RelationClosure);

/** The Tab. 6-shaped sweep (4 tests x 16 columns, 1k iterations)
 * through the campaign engine at varying worker counts — the scaling
 * curve of the batch API itself. */
void
BM_CampaignTab6Grid(benchmark::State &state)
{
    harness::Campaign campaign;
    campaign.iterations(1000)
        .overChips(std::vector<std::string>{"Titan"})
        .overColumns(1, 16)
        .overTests({litmus::paperlib::coRR(), litmus::paperlib::lb(),
                    litmus::paperlib::mp(), litmus::paperlib::sb()});
    for (auto _ : state) {
        harness::EngineOptions opts;
        opts.threads = static_cast<int>(state.range(0));
        opts.cache = false; // measure simulation, not memoisation
        harness::Engine engine(opts);
        benchmark::DoNotOptimize(campaign.run(engine));
    }
}
BENCHMARK(BM_CampaignTab6Grid)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/**
 * Emits BENCH_campaign.json: the Tab. 6 grid on the GTX Titan through
 * a JsonSink, with per-cell wall-clock and observation counts, so the
 * perf trajectory of the campaign engine is tracked run over run.
 */
bool
emitCampaignJson()
{
    harness::Campaign campaign;
    campaign.iterations(2000)
        .overChips(std::vector<std::string>{"Titan", "HD7970"})
        .overColumns(1, 16)
        .overTests({litmus::paperlib::coRR(), litmus::paperlib::lb(),
                    litmus::paperlib::mp(), litmus::paperlib::sb()});
    harness::JsonSink json;
    harness::Engine engine;
    campaign.run(engine, {&json});
    if (!json.writeFile("BENCH_campaign.json")) {
        // Propagate failure so CI artifact upload cannot silently
        // skip the file.
        std::cerr << "error: could not write BENCH_campaign.json\n";
        return false;
    }
    std::cerr << "wrote BENCH_campaign.json (" << json.size()
              << " cells, " << engine.threads() << " workers)\n";
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    // List-only invocations should stay instant and side-effect-free.
    bool list_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--benchmark_list_tests", 0) ==
            0)
            list_only = true;
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!list_only && !emitCampaignJson())
        return 1;
    return 0;
}
