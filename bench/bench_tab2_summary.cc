/**
 * @file
 * Regenerates Tab. 2: the summary of the ten correctness issues the
 * study revealed, each re-demonstrated by running its litmus test (or
 * compile check) on the affected simulated chips.
 */

#include "bench_util.h"
#include "litmus/library.h"
#include "opt/amd.h"
#include "opt/optcheck.h"
#include "opt/ptxas.h"

using namespace gpulitmus;

namespace {

/**
 * Batches every harness query of the table into one campaign: jobs
 * are declared up front, run in parallel on the shared engine (which
 * also dedupes cells this table re-queries), then read back by index.
 */
class ObsBatch
{
  public:
    size_t
    add(const char *chip, const litmus::Test &test)
    {
        harness::Job job = harness::Job::fromConfig(
            sim::chip(chip), test, benchutil::config());
        jobs_.push_back(std::move(job));
        return jobs_.size() - 1;
    }

    void
    run()
    {
        results_ = benchutil::engine().run(jobs_);
    }

    uint64_t
    obs(size_t idx) const
    {
        return results_[idx].observedPer100k;
    }

  private:
    std::vector<harness::Job> jobs_;
    std::vector<harness::JobResult> results_;
};

} // namespace

int
main()
{
    benchutil::printHeader("Tab. 2 - summary of the issues revealed"
                           " by the study",
                           "each issue re-demonstrated on the"
                           " simulated chips");

    Table table;
    table.header({"affected", "litmus test", "evidence (sim)",
                  "comment"});
    namespace pl = litmus::paperlib;

    ObsBatch batch;
    size_t corr = batch.add("TesC", pl::coRR());
    size_t mp_l1 = batch.add("TesC", pl::mpL1(ptx::Scope::Sys));
    size_t corr_l2_l1 =
        batch.add("TesC", pl::coRRL2L1(ptx::Scope::Sys));
    size_t mp_volatile = batch.add("GTX5", pl::mpVolatile());
    size_t dlb_mp = batch.add("Titan", pl::dlbMp(false));
    size_t dlb_lb = batch.add("Titan", pl::dlbLb(false));
    size_t cas_sl = batch.add("Titan", pl::casSl(false));
    size_t exch_sl = batch.add("HD7970", pl::casSl(false));
    size_t sl_future = batch.add("TesC", pl::slFuture(false));
    batch.run();
    auto obs = [&](size_t idx) { return batch.obs(idx); };

    table.row({"Nvidia Fermi/Kepler", "coRR",
               "TesC " + std::to_string(obs(corr)) +
                   "/100k",
               "sparks debate for CPUs (Sec. 3.1.1)"});

    table.row(
        {"Fermi architecture", "mp-L1",
         "TesC membar.sys " +
             std::to_string(obs(mp_l1)) +
             "/100k",
         "fences do not restore orderings (Sec. 3.1.2)"});

    table.row(
        {"Fermi architecture", "coRR-L2-L1",
         "TesC membar.sys " +
             std::to_string(obs(corr_l2_l1)) +
             "/100k",
         "fences do not restore orderings (Sec. 3.1.2)"});

    table.row({"PTX ISA", "mp-volatile",
               "GTX5 " + std::to_string(obs(mp_volatile)) +
                   "/100k",
               "volatile documentation disagrees with testing"});

    table.row({"GPU Computing Gems", "dlb-mp",
               "Titan " + std::to_string(obs(dlb_mp)) +
                   "/100k",
               "fenceless deque allows items to be skipped"});

    table.row({"GPU Computing Gems", "dlb-lb",
               "Titan " + std::to_string(obs(dlb_lb)) +
                   "/100k",
               "fenceless deque allows items to be skipped"});

    table.row({"CUDA by Example", "cas-sl",
               "Titan " + std::to_string(obs(cas_sl)) +
                   "/100k",
               "fenceless lock allows stale values to be read"});

    table.row({"Stuart-Owens lock", "exch-sl",
               "HD7970 " +
                   std::to_string(obs(exch_sl)) +
                   "/100k",
               "fenceless lock allows stale values to be read"});

    table.row({"He-Yu lock", "sl-future",
               "TesC " + std::to_string(obs(sl_future)) +
                   "/100k",
               "lock allows future values to be read"});

    // Compiler issues.
    {
        opt::PtxasOptions opts;
        opts.optLevel = 3;
        opts.sdkVersion = "5.5";
        opts.targetMaxwell = true;
        auto sass = opt::assemble(pl::coRR(), opts);
        auto check = opt::optcheck(sass);
        table.row({"CUDA 5.5", "coRR",
                   check.ok ? "optcheck OK (unexpected)"
                            : "optcheck flags reordering",
                   "compiler reorders volatile loads (Sec. 4.4)"});
    }
    {
        auto compiled = opt::amdCompile(pl::mp(ptx::Scope::Gl),
                                        sim::chip("HD7970"));
        table.row({"AMD GCN 1.0", "mp",
                   compiled.quirks.empty()
                       ? "no quirk (unexpected)"
                       : "compiler removes fence between loads",
                   "Sec. 3.1.2; reported to AMD"});
    }
    {
        auto compiled = opt::amdCompile(pl::dlbLb(false),
                                        sim::chip("HD6570"));
        table.row({"AMD TeraScale 2", "dlb-lb",
                   compiled.miscompiled
                       ? "compiler reorders load and CAS"
                       : "no quirk (unexpected)",
                   "Sec. 3.2.1; reported to AMD"});
    }

    table.print(std::cout);
    return 0;
}
