/**
 * @file
 * Regenerates Tab. 2: the summary of the ten correctness issues the
 * study revealed, each re-demonstrated by running its litmus test (or
 * compile check) on the affected simulated chips.
 */

#include "bench_util.h"
#include "litmus/library.h"
#include "opt/amd.h"
#include "opt/optcheck.h"
#include "opt/ptxas.h"

using namespace gpulitmus;

namespace {

uint64_t
obs(const char *chip, const litmus::Test &test)
{
    return harness::observePer100k(sim::chip(chip), test,
                                   benchutil::config());
}

} // namespace

int
main()
{
    benchutil::printHeader("Tab. 2 - summary of the issues revealed"
                           " by the study",
                           "each issue re-demonstrated on the"
                           " simulated chips");

    Table table;
    table.header({"affected", "litmus test", "evidence (sim)",
                  "comment"});
    namespace pl = litmus::paperlib;

    table.row({"Nvidia Fermi/Kepler", "coRR",
               "TesC " + std::to_string(obs("TesC", pl::coRR())) +
                   "/100k",
               "sparks debate for CPUs (Sec. 3.1.1)"});

    table.row(
        {"Fermi architecture", "mp-L1",
         "TesC membar.sys " +
             std::to_string(obs("TesC", pl::mpL1(ptx::Scope::Sys))) +
             "/100k",
         "fences do not restore orderings (Sec. 3.1.2)"});

    table.row(
        {"Fermi architecture", "coRR-L2-L1",
         "TesC membar.sys " +
             std::to_string(obs(
                 "TesC", pl::coRRL2L1(ptx::Scope::Sys))) +
             "/100k",
         "fences do not restore orderings (Sec. 3.1.2)"});

    table.row({"PTX ISA", "mp-volatile",
               "GTX5 " + std::to_string(obs("GTX5", pl::mpVolatile())) +
                   "/100k",
               "volatile documentation disagrees with testing"});

    table.row({"GPU Computing Gems", "dlb-mp",
               "Titan " + std::to_string(obs("Titan", pl::dlbMp(false))) +
                   "/100k",
               "fenceless deque allows items to be skipped"});

    table.row({"GPU Computing Gems", "dlb-lb",
               "Titan " + std::to_string(obs("Titan", pl::dlbLb(false))) +
                   "/100k",
               "fenceless deque allows items to be skipped"});

    table.row({"CUDA by Example", "cas-sl",
               "Titan " + std::to_string(obs("Titan", pl::casSl(false))) +
                   "/100k",
               "fenceless lock allows stale values to be read"});

    table.row({"Stuart-Owens lock", "exch-sl",
               "HD7970 " +
                   std::to_string(obs("HD7970", pl::casSl(false))) +
                   "/100k",
               "fenceless lock allows stale values to be read"});

    table.row({"He-Yu lock", "sl-future",
               "TesC " + std::to_string(obs("TesC", pl::slFuture(false))) +
                   "/100k",
               "lock allows future values to be read"});

    // Compiler issues.
    {
        opt::PtxasOptions opts;
        opts.optLevel = 3;
        opts.sdkVersion = "5.5";
        opts.targetMaxwell = true;
        auto sass = opt::assemble(pl::coRR(), opts);
        auto check = opt::optcheck(sass);
        table.row({"CUDA 5.5", "coRR",
                   check.ok ? "optcheck OK (unexpected)"
                            : "optcheck flags reordering",
                   "compiler reorders volatile loads (Sec. 4.4)"});
    }
    {
        auto compiled = opt::amdCompile(pl::mp(ptx::Scope::Gl),
                                        sim::chip("HD7970"));
        table.row({"AMD GCN 1.0", "mp",
                   compiled.quirks.empty()
                       ? "no quirk (unexpected)"
                       : "compiler removes fence between loads",
                   "Sec. 3.1.2; reported to AMD"});
    }
    {
        auto compiled = opt::amdCompile(pl::dlbLb(false),
                                        sim::chip("HD6570"));
        table.row({"AMD TeraScale 2", "dlb-lb",
                   compiled.miscompiled
                       ? "compiler reorders load and CAS"
                       : "no quirk (unexpected)",
                   "Sec. 3.2.1; reported to AMD"});
    }

    table.print(std::cout);
    return 0;
}
