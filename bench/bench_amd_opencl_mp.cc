/**
 * @file
 * Regenerates the AMD OpenCL mp experiment of Sec. 3.1.2: the classic
 * mp test, threads in distinct work-groups, global memory, with and
 * without OpenCL global fences between the accesses.
 *
 * Without fences both AMD chips are weak (GCN 1.0: 2956, TeraScale 2:
 * 9327 per 100k). With fences TeraScale 2 is silent, but GCN 1.0
 * stays weak: the compiler removes the fence between the loads.
 */

#include "bench_util.h"
#include "litmus/library.h"
#include "opt/amd.h"

using namespace gpulitmus;

int
main()
{
    benchutil::printHeader(
        "Sec. 3.1.2 - OpenCL mp on AMD",
        "mem_fence(CLK_GLOBAL_MEM_FENCE) maps to a global fence;"
        " threads in distinct work-groups");

    auto cfg = benchutil::config();
    std::vector<sim::ChipProfile> chips = {sim::chip("HD6570"),
                                           sim::chip("HD7970")};

    Table table;
    table.header({"variant", "HD6570", "HD7970"});

    for (bool fences : {false, true}) {
        litmus::Test test = fences
                                ? litmus::paperlib::mp(ptx::Scope::Gl)
                                : litmus::paperlib::mp();
        std::vector<std::string> row{fences ? "mp+fences (sim)"
                                            : "mp (sim)"};
        for (const auto &chip : chips) {
            auto compiled = opt::amdCompile(test, chip);
            row.push_back(std::to_string(harness::observePer100k(
                chip, compiled.compiled, cfg)));
        }
        table.row(row);
        if (!fences)
            table.row({"mp (paper)", "9327", "2956"});
        else
            table.row({"mp+fences (paper)", "0", "observed (fence"
                                             " removed)"});
    }
    table.print(std::cout);

    auto compiled = opt::amdCompile(litmus::paperlib::mp(ptx::Scope::Gl),
                                    sim::chip("HD7970"));
    std::cout << "\nHD7970 compile notes:\n";
    for (const auto &q : compiled.quirks)
        std::cout << "  " << q << "\n";
    std::cout << "(It is unclear from the OpenCL specification"
                 " whether this transformation is legitimate; the"
                 " paper reported it to AMD.)\n";
    return 0;
}
