/**
 * @file
 * Checkpointed exploration vs PR-3 replay-from-root, head to head.
 *
 * For each explorer workload this bench runs the same exploration
 * twice inside one binary:
 *
 * - "before": the PR-3 configuration — string state keys
 *   (ExploreOptions::debugStateKeys) and every replay re-executed
 *   from instruction zero (checkpoints off);
 * - "after": the PR-4 hot path — 128-bit digest keys and snapshot
 *   resume from the deepest checkpoint on the DFS spine.
 *
 * The two modes must be *observationally identical*: same reachable
 * sets, same pruned replay counts, same pruning statistics — only
 * wall clock and per-replay work may differ. This bench enforces
 * that invariance (exit 1 on any drift), pins the historical anchor
 * (inter-CTA mp on the Titan at column 16 is exactly 4,400 pruned
 * replays, as PR 3 recorded), and emits BENCH_snapshot.json with
 * before/after replays-per-second per workload.
 *
 * GPULITMUS_SNAPSHOT_REPS controls the best-of repetition count
 * (default 3). Exits nonzero if BENCH_snapshot.json cannot be
 * written, so CI artifact upload cannot silently miss it.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/strutil.h"
#include "common/table.h"
#include "litmus/library.h"
#include "mc/explorer.h"

#include "bench_util.h"

using namespace gpulitmus;

namespace {

double
explore(const litmus::Test &test, const sim::ChipProfile &chip,
        int column, bool modern, mc::ExploreResult *out)
{
    mc::ExploreOptions opts;
    opts.machine.inc = sim::Incantations::fromColumn(column);
    opts.checkpoints = modern;
    opts.debugStateKeys = !modern; // PR-3 string keys when legacy
    mc::Explorer explorer(chip, test, opts);
    auto start = std::chrono::steady_clock::now();
    *out = explorer.explore();
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(end - start)
        .count();
}

} // namespace

int
main()
{
    const int reps =
        static_cast<int>(benchutil::envOr("GPULITMUS_SNAPSHOT_REPS", 3));
    const sim::ChipProfile &chip = sim::chip("Titan");
    const int column = 16;

    struct Workload
    {
        const char *name;
        litmus::Test test;
        /** PR-3 pruned-replay anchor; 0 = unpinned. */
        uint64_t expectReplays;
    };
    const Workload workloads[] = {
        {"mp", litmus::paperlib::mp(), 4400},
        {"sb", litmus::paperlib::sb(), 0},
        {"corr", litmus::paperlib::coRRL2L1(ptx::Scope::Gl), 0},
        {"lb", litmus::paperlib::lb(), 0},
    };

    std::cout << "checkpointed exploration vs PR-3 replay-from-root"
              << " (Titan, column " << column << ", best of " << reps
              << ")\n\n";

    Table table;
    table.header({"test", "replays", "before ms", "after ms",
                  "before r/s", "after r/s", "speedup"});
    std::vector<std::string> entries;
    bool ok = true;

    for (const auto &w : workloads) {
        mc::ExploreResult before, after;
        double before_ms = 1e300, after_ms = 1e300;
        for (int r = 0; r < reps; ++r) {
            before_ms = std::min(
                before_ms, explore(w.test, chip, column, false,
                                   &before));
            after_ms = std::min(
                after_ms,
                explore(w.test, chip, column, true, &after));
        }

        // Invariance: checkpointing and digest keys are pure
        // wall-clock machinery. Any drift in the traversal or the
        // reachable set is a bug, not a regression to report.
        if (before.finals != after.finals ||
            before.satisfying != after.satisfying ||
            before.complete != after.complete ||
            before.stats.replays != after.stats.replays ||
            before.stats.stateCuts != after.stats.stateCuts ||
            before.stats.sleepSkips != after.stats.sleepSkips ||
            before.stats.peakDepth != after.stats.peakDepth) {
            std::cerr << "INVARIANCE VIOLATION: " << w.name
                      << " explores differently with checkpointing"
                         " on vs off\n";
            ok = false;
        }
        if (w.expectReplays != 0 &&
            after.stats.replays != w.expectReplays) {
            std::cerr << "PRUNED-REPLAY DRIFT: " << w.name
                      << " expected " << w.expectReplays
                      << " replays, got " << after.stats.replays
                      << "\n";
            ok = false;
        }

        double rps_before =
            before_ms > 0.0
                ? static_cast<double>(before.stats.replays) * 1000.0 /
                      before_ms
                : 0.0;
        double rps_after =
            after_ms > 0.0
                ? static_cast<double>(after.stats.replays) * 1000.0 /
                      after_ms
                : 0.0;
        double speedup =
            after_ms > 0.0 ? before_ms / after_ms : 0.0;

        char bms[32], ams[32], brps[32], arps[32], sp[32];
        std::snprintf(bms, sizeof bms, "%.2f", before_ms);
        std::snprintf(ams, sizeof ams, "%.2f", after_ms);
        std::snprintf(brps, sizeof brps, "%.0f", rps_before);
        std::snprintf(arps, sizeof arps, "%.0f", rps_after);
        std::snprintf(sp, sizeof sp, "%.2fx", speedup);
        table.row({w.name, std::to_string(after.stats.replays), bms,
                   ams, brps, arps, sp});

        std::string e = "{";
        e += "\"test\":\"" + jsonEscape(w.name) + "\",";
        e += "\"chip\":\"Titan\",";
        e += "\"column\":" + std::to_string(column) + ",";
        e += "\"replays\":" +
             std::to_string(after.stats.replays) + ",";
        e += "\"states\":" +
             std::to_string(after.stats.distinctStates) + ",";
        e += "\"reachable_states\":" +
             std::to_string(after.finals.size()) + ",";
        e += "\"complete\":" +
             std::string(after.complete ? "true" : "false") + ",";
        e += "\"before_ms\":" + std::string(bms) + ",";
        e += "\"after_ms\":" + std::string(ams) + ",";
        e += "\"replays_per_sec_before\":" + std::string(brps) + ",";
        e += "\"replays_per_sec_after\":" + std::string(arps) + ",";
        e += "\"resumes\":" + std::to_string(after.stats.resumes) +
             ",";
        e += "\"replayed_choices_before\":" +
             std::to_string(before.stats.replayedChoices) + ",";
        e += "\"replayed_choices_after\":" +
             std::to_string(after.stats.replayedChoices) + ",";
        e += "\"speedup\":" + std::to_string(speedup);
        e += "}";
        entries.push_back(std::move(e));
    }
    table.print(std::cout);

    if (!ok)
        return 1;

    if (!writeJsonArrayFile("BENCH_snapshot.json", entries)) {
        std::cerr << "error: could not write BENCH_snapshot.json\n";
        return 1;
    }
    std::cout << "\nwrote BENCH_snapshot.json (" << entries.size()
              << " workloads)\n";
    return 0;
}
