/**
 * @file
 * Regenerates the Sec. 6 baseline comparison: the operational model
 * of Sorensen et al. forbids the inter-CTA lb+membar.ctas test, but
 * hardware observes it (586/100k on GTX Titan, 19/100k on GTX 660) —
 * so that model is unsound. The paper's axiomatic PTX model allows
 * the test (the membar.cta edges do not join the inter-CTA rfe edges
 * at any single scope), so it stays sound.
 */

#include "bench_util.h"
#include "cat/models.h"
#include "litmus/library.h"
#include "model/baseline.h"
#include "model/checker.h"

using namespace gpulitmus;

int
main()
{
    benchutil::printHeader(
        "Sec. 6 - unsoundness of the operational baseline model",
        "inter-CTA lb with membar.cta between all accesses"
        " (lb+membar.ctas)");

    litmus::Test test = litmus::paperlib::lbMembarCtas();

    model::Checker ptx_checker(cat::models::ptx());
    model::Checker op_checker(model::operationalBaseline());
    auto ptx_verdict = ptx_checker.check(test);
    auto op_verdict = op_checker.check(test);

    Table table;
    table.header({"", "GTX6", "Titan", "ptx model",
                  "operational baseline"});
    std::vector<std::string> measured{"lb+membar.ctas (sim)"};
    for (const char *name : {"GTX6", "Titan"}) {
        measured.push_back(std::to_string(harness::observePer100k(
            sim::chip(name), test, benchutil::config())));
    }
    measured.push_back(ptx_verdict.conditionSatisfiable
                           ? "allowed"
                           : "forbidden");
    measured.push_back(op_verdict.conditionSatisfiable ? "allowed"
                                                       : "forbidden");
    table.row(measured);
    table.row({"lb+membar.ctas (paper)", "19", "586", "allowed",
               "forbidden"});
    table.print(std::cout);

    std::cout << "\nThe operational baseline forbids a behaviour the"
                 " (simulated) hardware exhibits: it is unsound."
                 " The PTX model of Sec. 5 allows it: sound.\n";
    return 0;
}
