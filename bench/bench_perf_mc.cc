/**
 * @file
 * Exhaustive exploration vs sampling, head to head: for each corpus
 * idiom on the GTX Titan, one exact mc exploration against the
 * paper's 100k-iteration sampling sweep — wall-clock, work done, and
 * what each method can actually conclude. Emits BENCH_mc.json.
 *
 * The point the numbers make: an exploration that *proves* the
 * reachable set (thousands of replays, tens of ms) costs a fraction
 * of one 100k sweep that can only sample it — the "one exact
 * exploration instead of 100k iterations per cell" trade the mc
 * backend exists for. GPULITMUS_ITERS scales the sampling side
 * (default 100000, the paper's count); GPULITMUS_MC_BUDGET the
 * replay budget (default 1<<20).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "common/strutil.h"
#include "common/table.h"
#include "harness/campaign.h"
#include "litmus/library.h"
#include "mc/explorer.h"

#include "bench_util.h"

using namespace gpulitmus;

namespace {

} // namespace

int
main()
{
    uint64_t iters = harness::defaultIterations();
    uint64_t budget = benchutil::envOr("GPULITMUS_MC_BUDGET", 1u << 20);
    const sim::ChipProfile &chip = sim::chip("Titan");

    struct Case
    {
        const char *name;
        litmus::Test test;
    };
    const Case cases[] = {
        {"coRR", litmus::paperlib::coRR()},
        {"mp", litmus::paperlib::mp()},
        {"sb", litmus::paperlib::sb()},
        {"lb", litmus::paperlib::lb()},
        {"mp+membar.gls", litmus::paperlib::mpMembarGls()},
        {"lb+membar.ctas", litmus::paperlib::lbMembarCtas()},
        {"cas-sl", litmus::paperlib::casSl(false)},
        {"mp-cta",
         litmus::paperlib::mp(std::nullopt, /*inter_cta=*/false)},
    };

    std::cout << "exhaustive exploration vs " << iters
              << "-iteration sampling, Titan column 16\n\n";

    Table table;
    table.header({"test", "mc ms", "replays", "states", "exact",
                  "sim ms", "iters", "speedup"});
    std::vector<std::string> entries;
    for (const auto &c : cases) {
        mc::ExploreOptions opts;
        opts.machine.inc = sim::Incantations::all();
        opts.maxReplays = budget;
        mc::Explorer explorer(chip, c.test, opts);
        auto mc_start = std::chrono::steady_clock::now();
        mc::ExploreResult exact = explorer.explore();
        auto mc_end = std::chrono::steady_clock::now();
        double mc_ms = std::chrono::duration<double, std::milli>(
                           mc_end - mc_start)
                           .count();

        harness::RunConfig cfg;
        cfg.iterations = iters;
        auto sim_start = std::chrono::steady_clock::now();
        litmus::Histogram hist = harness::run(chip, c.test, cfg);
        auto sim_end = std::chrono::steady_clock::now();
        double sim_ms = std::chrono::duration<double, std::milli>(
                            sim_end - sim_start)
                            .count();

        double speedup = mc_ms > 0.0 ? sim_ms / mc_ms : 0.0;
        char mc_buf[32], sim_buf[32], speed_buf[32];
        std::snprintf(mc_buf, sizeof mc_buf, "%.2f", mc_ms);
        std::snprintf(sim_buf, sizeof sim_buf, "%.2f", sim_ms);
        std::snprintf(speed_buf, sizeof speed_buf, "%.1fx", speedup);
        table.row({c.name, mc_buf,
                   std::to_string(exact.stats.replays),
                   std::to_string(exact.stats.distinctStates),
                   exact.complete ? "yes" : "BOUNDED", sim_buf,
                   std::to_string(iters), speed_buf});

        std::string e = "{";
        e += "\"test\":\"" + jsonEscape(c.name) + "\",";
        e += "\"chip\":\"Titan\",";
        e += "\"mc_ms\":" + std::string(mc_buf) + ",";
        e += "\"mc_replays\":" +
             std::to_string(exact.stats.replays) + ",";
        e += "\"mc_states\":" +
             std::to_string(exact.stats.distinctStates) + ",";
        e += "\"mc_state_cuts\":" +
             std::to_string(exact.stats.stateCuts) + ",";
        e += "\"mc_sleep_skips\":" +
             std::to_string(exact.stats.sleepSkips) + ",";
        e += "\"mc_complete\":" +
             std::string(exact.complete ? "true" : "false") + ",";
        e += "\"reachable_states\":" +
             std::to_string(exact.finals.size()) + ",";
        e += "\"observed_states\":" +
             std::to_string(hist.counts().size()) + ",";
        e += "\"sim_ms\":" + std::string(sim_buf) + ",";
        e += "\"sim_iterations\":" + std::to_string(iters) + ",";
        e += "\"speedup\":" + std::to_string(speedup);
        e += "}";
        entries.push_back(std::move(e));

        // The sampler must stay inside the proven reachable set.
        if (exact.complete) {
            for (const auto &[key, count] : hist.counts()) {
                if (count > 0 && !exact.reachable(key)) {
                    std::cerr << "INCONSISTENT: " << c.name
                              << " sampled '" << key
                              << "' outside the exact set\n";
                    return 1;
                }
            }
        }
    }
    table.print(std::cout);

    // Shard scaling: the same mp@Titan exploration at shards 1/2/4,
    // reported as replays/sec. Results are bit-identical at every
    // width (the differential battery pins that); the throughput is
    // the point. The >=1.5x gate at shards=4 is hard on multi-core
    // runners; a 1-CPU runner cannot scale wall clock, so it asserts
    // the bit-identity half of the claim instead and skips the
    // throughput half.
    std::cout << "\nshard scaling: mp@Titan, replays/sec\n\n";
    const unsigned hw = std::thread::hardware_concurrency();
    litmus::Test mp = litmus::paperlib::mp();
    Table scaling;
    scaling.header({"shards", "replays", "ms", "replays/sec"});
    double rate1 = 0.0, rate4 = 0.0;
    std::string baseline;
    for (int shards : {1, 2, 4}) {
        mc::ExploreOptions opts;
        opts.machine.inc = sim::Incantations::all();
        opts.maxReplays = budget;
        opts.shards = shards;
        // Repeat until the timing is out of the noise floor.
        uint64_t replays = 0;
        int reps = 0;
        double ms = 0.0;
        std::string rendered;
        auto start = std::chrono::steady_clock::now();
        do {
            mc::ExploreResult r =
                mc::Explorer(chip, mp, opts).explore();
            replays += r.stats.replays;
            rendered = r.str();
            ++reps;
            ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
        } while (ms < 200.0 || reps < 3);
        double rate = replays / (ms / 1000.0);
        if (shards == 1) {
            rate1 = rate;
            baseline = rendered;
        } else if (rendered != baseline) {
            std::cerr << "INCONSISTENT: mp@Titan shards=" << shards
                      << " diverged from the sequential result\n";
            return 1;
        }
        if (shards == 4)
            rate4 = rate;
        char ms_buf[32], rate_buf[32];
        std::snprintf(ms_buf, sizeof ms_buf, "%.2f", ms);
        std::snprintf(rate_buf, sizeof rate_buf, "%.0f", rate);
        scaling.row({std::to_string(shards),
                     std::to_string(replays), ms_buf, rate_buf});
        std::string e = "{";
        e += "\"test\":\"mp\",";
        e += "\"chip\":\"Titan\",";
        e += "\"kind\":\"shard_scaling\",";
        e += "\"shards\":" + std::to_string(shards) + ",";
        e += "\"replays\":" + std::to_string(replays) + ",";
        e += "\"ms\":" + std::string(ms_buf) + ",";
        e += "\"replays_per_sec\":" + std::string(rate_buf);
        e += "}";
        entries.push_back(std::move(e));
    }
    scaling.print(std::cout);
    if (hw >= 4) {
        if (rate4 < 1.5 * rate1) {
            std::cerr << "FAIL: shards=4 throughput " << rate4
                      << " < 1.5x shards=1 " << rate1 << "\n";
            return 1;
        }
        std::cout << "\nshard-scaling gate: shards=4 is "
                  << (rate1 > 0 ? rate4 / rate1 : 0)
                  << "x shards=1 (>= 1.5x required)\n";
    } else {
        std::cout << "\nshard-scaling gate skipped (" << hw
                  << " CPUs); asserted shards 2/4 bit-identity"
                     " instead\n";
    }

    if (!writeJsonArrayFile("BENCH_mc.json", entries)) {
        // Exit nonzero so CI artifact upload cannot silently skip
        // the file.
        std::cerr << "error: could not write BENCH_mc.json\n";
        return 1;
    }
    std::cout << "\nwrote BENCH_mc.json (" << entries.size()
              << " tests)\n";
    return 0;
}
