/**
 * @file
 * The serve subsystem's headline claim, measured: a cold evaluation
 * sweep through a fresh ResultStore, then the same sweep through a
 * *reopened* store (a daemon restart), which must answer nearly every
 * cell from disk, bit-identically. Emits BENCH_serve.json.
 *
 * This is a hard gate, not a report: the warm run must serve at least
 * 95% of cells from the store (in practice 100% — every digest is
 * deterministic) and every warm cell must match its cold counterpart
 * byte for byte once the provenance/timing fields are stripped. Any
 * miss or divergence exits nonzero, because a store that silently
 * recomputes or — worse — answers differently defeats the daemon's
 * whole contract (docs/SERVE.md).
 *
 * Corpus: every paper-library test on every chip in the registry
 * (sim backend) plus one PTX-model verdict per test. GPULITMUS_ITERS
 * scales the sampling side; GPULITMUS_JOBS the worker count.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>

#include "common/strutil.h"
#include "eval/backend.h"
#include "harness/campaign.h"
#include "litmus/library.h"
#include "serve/store.h"

#include "bench_util.h"

using namespace gpulitmus;

namespace {

/** evalCellJson minus the fields that legitimately differ between a
 * computed cell and the same cell served from cache or disk. */
std::string
stripProvenance(std::string json)
{
    for (const char *marker :
         {",\"from_store\":true", ",\"from_store\":false",
          ",\"cached\":true", ",\"cached\":false"}) {
        auto at = json.find(marker);
        if (at != std::string::npos)
            json.erase(at, std::strlen(marker));
    }
    auto at = json.find(",\"millis\":");
    if (at != std::string::npos) {
        auto end = at + std::strlen(",\"millis\":");
        while (end < json.size() &&
               (std::isdigit(static_cast<unsigned char>(json[end])) ||
                json[end] == '.' || json[end] == '-'))
            ++end;
        json.erase(at, end - at);
    }
    return json;
}

double
millisSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main()
{
    namespace fs = std::filesystem;
    uint64_t iters = harness::defaultIterations();

    // The corpus: sim cells across the full chip registry, plus a
    // PTX-model verdict per test.
    std::vector<harness::Job> jobs;
    harness::RunConfig cfg;
    cfg.iterations = iters;
    for (const auto &nt : litmus::paperlib::allTests()) {
        for (const auto &chip : sim::allChips()) {
            harness::Job job =
                harness::Job::fromConfig(chip, nt.test, cfg);
            job.label = nt.id;
            jobs.push_back(job);
        }
        harness::Job model =
            harness::Job::fromConfig(sim::chip("Titan"), nt.test, cfg);
        model.backend = "ptx";
        model.label = nt.id;
        jobs.push_back(model);
    }

    fs::path dir = fs::temp_directory_path() /
                   ("gls_bench_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    serve::StoreOptions sopts;
    sopts.syncOnFlush = false;

    std::cout << "serve store: " << jobs.size() << " cells, " << iters
              << " iterations/cell, store " << dir.string() << "\n";

    // Cold: a fresh store, everything computed, results persisted.
    std::vector<eval::EvalResult> cold_results;
    double cold_ms = 0;
    {
        auto store = serve::ResultStore::open(dir.string(), sopts);
        if (!store) {
            std::cerr << "error: cannot open store in "
                      << dir.string() << "\n";
            return 1;
        }
        eval::EngineOptions eopts;
        eopts.store = store.get();
        eval::Engine engine(eopts);
        auto t0 = std::chrono::steady_clock::now();
        cold_results = engine.run(jobs);
        cold_ms = millisSince(t0);
        std::string error;
        if (!store->flush(&error)) {
            std::cerr << "error: store flush failed: " << error
                      << "\n";
            return 1;
        }
    }

    // Warm: reopen the store from disk — a daemon restart — and run
    // the identical sweep through a fresh engine (empty L1 cache).
    std::vector<eval::EvalResult> warm_results;
    double warm_ms = 0;
    uint64_t store_hits = 0;
    {
        auto store = serve::ResultStore::open(dir.string(), sopts);
        if (!store) {
            std::cerr << "error: cannot reopen store\n";
            return 1;
        }
        eval::EngineOptions eopts;
        eopts.store = store.get();
        eval::Engine engine(eopts);
        auto t0 = std::chrono::steady_clock::now();
        warm_results = engine.run(jobs);
        warm_ms = millisSince(t0);
        for (const auto &r : warm_results)
            store_hits += r.fromStore ? 1 : 0;
    }
    fs::remove_all(dir);

    bool identical = warm_results.size() == cold_results.size();
    for (size_t i = 0; identical && i < warm_results.size(); ++i) {
        if (stripProvenance(eval::evalCellJson(warm_results[i])) !=
            stripProvenance(eval::evalCellJson(cold_results[i])))
            identical = false;
    }
    double hit_pct =
        jobs.empty() ? 0.0
                     : 100.0 * static_cast<double>(store_hits) /
                           static_cast<double>(jobs.size());
    double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0.0;

    char line[256];
    std::snprintf(line, sizeof line,
                  "cold %.1f ms, warm %.1f ms (%.1fx), %llu/%zu "
                  "cells from store (%.1f%%), identical: %s\n",
                  cold_ms, warm_ms, speedup,
                  static_cast<unsigned long long>(store_hits),
                  jobs.size(), hit_pct, identical ? "yes" : "NO");
    std::cout << line;

    std::vector<std::string> entries;
    char entry[512];
    std::snprintf(entry, sizeof entry,
                  "{\"jobs\":%zu,\"iterations\":%llu,"
                  "\"cold_millis\":%.3f,\"warm_millis\":%.3f,"
                  "\"store_hits\":%llu,\"hit_pct\":%.2f,"
                  "\"identical\":%s,\"speedup\":%.2f}",
                  jobs.size(),
                  static_cast<unsigned long long>(iters), cold_ms,
                  warm_ms,
                  static_cast<unsigned long long>(store_hits),
                  hit_pct, identical ? "true" : "false", speedup);
    entries.emplace_back(entry);
    if (!writeJsonArrayFile("BENCH_serve.json", entries)) {
        std::cerr << "error: could not write BENCH_serve.json\n";
        return 1;
    }
    std::cout << "wrote BENCH_serve.json\n";

    // The gate.
    if (hit_pct < 95.0) {
        std::cerr << "GATE FAILED: warm run served only " << hit_pct
                  << "% of cells from the store (need >= 95%)\n";
        return 1;
    }
    if (!identical) {
        std::cerr << "GATE FAILED: warm results are not "
                     "bit-identical to the cold run\n";
        return 1;
    }
    return 0;
}
