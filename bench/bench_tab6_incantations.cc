/**
 * @file
 * Regenerates Tab. 6: observations for all 16 combinations of the
 * four incantations (memory stress, general bank conflicts, thread
 * synchronisation, thread randomisation) on the GTX Titan and the
 * Radeon HD 7970, for coRR (intra-CTA), lb, mp and sb (inter-CTA),
 * all over global memory.
 *
 * Column encoding (reconstructed from the paper's comparisons of
 * columns 5/10/12/15/16): column-1 bits = rand(1) sync(2) bank(4)
 * stress(8).
 */

#include "bench_util.h"
#include "litmus/library.h"

using namespace gpulitmus;

namespace {

struct TestRow
{
    std::string label;
    litmus::Test test;
    std::vector<std::string> paper; // 16 values
};

void
runChip(const sim::ChipProfile &chip, const std::vector<TestRow> &rows)
{
    std::cout << "\n--- " << chip.vendor << " " << chip.chipName
              << " ---\n";
    Table table;
    std::vector<std::string> header{"test"};
    for (int col = 1; col <= 16; ++col)
        header.push_back(std::to_string(col));
    table.header(header);

    // Incantation legend rows.
    auto legend = [&](const std::string &name, int bit) {
        std::vector<std::string> row{name};
        for (int col = 1; col <= 16; ++col)
            row.push_back(((col - 1) & bit) ? "x" : "");
        table.row(row);
    };
    legend("memory stress", 8);
    legend("bank conflicts", 4);
    legend("thread sync", 2);
    legend("thread rand", 1);

    // The whole tests x 16-column grid is one campaign, sharded over
    // the worker pool (GPULITMUS_JOBS). Results come back in grid
    // order: test outermost, column innermost.
    harness::Campaign campaign;
    campaign.base(benchutil::config())
        .overChips(std::vector<sim::ChipProfile>{chip})
        .overColumns(1, 16);
    for (const auto &row : rows)
        campaign.test(row.test, row.label);
    auto results = campaign.run(benchutil::engine());

    for (size_t t = 0; t < rows.size(); ++t) {
        std::vector<std::string> measured{rows[t].label + " (sim)"};
        for (int col = 1; col <= 16; ++col)
            measured.push_back(std::to_string(
                results[t * 16 + static_cast<size_t>(col) - 1]
                    .observedPer100k));
        table.row(measured);
        std::vector<std::string> reference{rows[t].label + " (paper)"};
        for (const auto &p : rows[t].paper)
            reference.push_back(p);
        table.row(reference);
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    benchutil::printHeader(
        "Tab. 6 - observations for combinations of incantations",
        "16 on/off combinations of the four incantations of Sec. 4.3;"
        " all tests target global memory");

    std::vector<TestRow> titan_rows = {
        {"coRR (intra-CTA)", litmus::paperlib::coRR(),
         {"0", "0", "0", "0", "0", "1235", "0", "9774", "161", "118",
          "847", "362", "632", "3384", "3993", "9985"}},
        {"lb (inter-CTA)", litmus::paperlib::lb(),
         {"0", "0", "0", "0", "0", "0", "0", "0", "181", "1067",
          "1555", "2247", "4", "37", "83", "486"}},
        {"mp (inter-CTA)", litmus::paperlib::mp(),
         {"0", "0", "0", "0", "0", "621", "0", "2921", "315", "1128",
          "2372", "4347", "7", "94", "442", "2888"}},
        {"sb (inter-CTA)", litmus::paperlib::sb(),
         {"0", "0", "0", "0", "0", "0", "0", "0", "462", "1403",
          "3308", "6673", "3", "50", "88", "749"}},
    };
    runChip(sim::chip("Titan"), titan_rows);

    std::vector<TestRow> amd_rows = {
        {"coRR (intra-CTA)", litmus::paperlib::coRR(),
         {"0", "0", "0", "0", "0", "0", "0", "0", "0", "0", "0", "0",
          "0", "0", "0", "0"}},
        {"lb (inter-CTA)", litmus::paperlib::lb(),
         {"10959", "8979", "31895", "29092", "13510", "12729",
          "29779", "26737", "5094", "9360", "37624", "38664", "5321",
          "10054", "32796", "34196"}},
        {"mp (inter-CTA)", litmus::paperlib::mp(),
         {"212", "31", "243", "158", "277", "46", "318", "247", "473",
          "217", "1289", "563", "611", "339", "2542", "1628"}},
        {"sb (inter-CTA)", litmus::paperlib::sb(),
         {"0", "0", "0", "0", "2", "0", "2", "0", "0", "0", "0", "0",
          "0", "0", "0", "0"}},
    };
    runChip(sim::chip("HD7970"), amd_rows);
    return 0;
}
