/**
 * @file
 * Regenerates Fig. 11: sl-future, distilled from the He-Yu database
 * spin lock (Fig. 10). A critical section can read a value written by
 * the *next* critical section, violating transaction isolation. The
 * fix fences before the release and unlocks with an atomic exchange.
 */

#include "bench_util.h"
#include "litmus/library.h"

using namespace gpulitmus;

int
main()
{
    benchutil::printHeader(
        "Fig. 11 - PTX spin lock future value test (sl-future)",
        "init: global x=0, m=1; T0: ld.cg r0,[x]; unlock ||"
        " T1: lock; st.cg [x],1; final: r0=1 /\\ r2=0;"
        " threads: inter-CTA (AMD rows are n/a: the OpenCL compiler"
        " auto-inserts fences, Sec. 2.3)");

    auto chips = benchutil::nvidiaChips();
    Table table;
    table.header(benchutil::chipHeader("variant", chips));
    benchutil::obsRows(table, "sl-future",
                       litmus::paperlib::slFuture(false), chips,
                       {"0", "99", "41", "58", "0"},
                       benchutil::config());
    benchutil::obsRows(table, "sl-future+fixed",
                       litmus::paperlib::slFuture(true), chips,
                       {"0", "0", "0", "0", "0"},
                       benchutil::config());
    table.print(std::cout);
    return 0;
}
