/**
 * @file
 * Regenerates the model validation of Sec. 5.4: litmus tests are
 * generated with the diy extension, every test is run on every Nvidia
 * chip, and each observed behaviour is checked against the PTX model
 * — the model is experimentally sound iff every observed outcome is
 * allowed.
 *
 * The paper validates 10930 tests at 100k iterations each; set
 * GPULITMUS_VALIDATION_TESTS / GPULITMUS_VALIDATION_ITERS to scale
 * (defaults keep this binary around a minute). As ablations, the same
 * observations are checked against SC, plain (unscoped) RMO and the
 * Sec. 6 operational baseline, and against full SC-per-location: the
 * scoped model stays sound; SC and full SC-per-location are wildly
 * unsound (coRR!), and the unscoped models fail on scoped-fence
 * tests such as lb+membar.ctas.
 */

#include <cstdlib>

#include "bench_util.h"
#include "cat/models.h"
#include "common/strutil.h"
#include "gen/generator.h"
#include "litmus/library.h"
#include "model/baseline.h"
#include "model/checker.h"

using namespace gpulitmus;

namespace {

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    auto parsed = parseInt(v);
    return parsed && *parsed > 0 ? static_cast<uint64_t>(*parsed)
                                 : fallback;
}

} // namespace

int
main()
{
    uint64_t max_tests = envOr("GPULITMUS_VALIDATION_TESTS", 1500);
    uint64_t iters = envOr("GPULITMUS_VALIDATION_ITERS", 1500);
    uint64_t max_edges = envOr("GPULITMUS_VALIDATION_EDGES", 4);

    benchutil::printHeader(
        "Sec. 5.4 - validating the model against generated tests",
        "diy-generated tests, run on every Nvidia chip, checked"
        " against the PTX model and ablation models");

    // maxEdges=4 yields 440 distinct tests in milliseconds; 5 yields
    // 5714 and 6 exceeds the paper's 10930 — set
    // GPULITMUS_VALIDATION_EDGES=6 GPULITMUS_VALIDATION_TESTS=10930
    // to replicate the paper's scale.
    gen::GeneratorOptions gopts;
    gopts.maxEdges = static_cast<int>(max_edges);
    gopts.maxTests = max_tests;
    auto generated = gen::generate(gen::defaultPool(), gopts);

    // The paper's hand-picked tests join the generated family.
    struct Entry
    {
        std::string id;
        litmus::Test test;
    };
    std::vector<Entry> tests;
    for (auto &g : generated)
        tests.push_back({g.cycleName, std::move(g.test)});

    // Sec. 5.5: the model covers accesses with the .cg operator only;
    // .ca (L1) and volatile accesses are outside its scope (no fence
    // restores .ca ordering on Fermi), so — like the paper — they are
    // excluded from the validation set.
    auto inScope = [](const litmus::Test &t) {
        for (const auto &th : t.program.threads) {
            for (const auto &in : th.instrs) {
                if (in.isMemAccess() &&
                    (in.cacheOp == ptx::CacheOp::Ca || in.isVolatile))
                    return false;
            }
        }
        return true;
    };
    size_t excluded = 0;
    for (auto &nt : litmus::paperlib::allTests()) {
        if (inScope(nt.test))
            tests.push_back({nt.id, std::move(nt.test)});
        else
            ++excluded;
    }
    std::cout << "excluded " << excluded
              << " paper tests with .ca/volatile accesses (outside"
                 " the model's scope, Sec. 5.5)\n";

    std::cout << "tests: " << tests.size() << " (" << generated.size()
              << " generated + paper library), " << iters
              << " iterations each\n\n";

    struct ModelStats
    {
        const cat::Model *model;
        uint64_t violations = 0;
        std::string example;
    };
    std::vector<ModelStats> stats = {
        {&cat::models::ptx()},
        {&cat::models::rmo()},
        {&model::operationalBaseline()},
        {&cat::models::tso()},
        {&cat::models::sc()},
        {&cat::models::scPerLocFull()},
    };

    auto chips = benchutil::nvidiaChips();
    harness::RunConfig cfg;
    cfg.iterations = iters;

    // All (test x chip) cells are one campaign batch: the simulation
    // grid shards across the worker pool (GPULITMUS_JOBS) while the
    // model checking below stays serial.
    harness::Campaign campaign;
    campaign.base(cfg).overChips(chips);
    for (const auto &entry : tests)
        campaign.test(entry.test, entry.id);
    auto progress = [&](size_t done, size_t total,
                        const harness::JobResult &) {
        if (done % 500 == 0 || done == total) {
            std::cerr << "  simulated " << done << "/" << total
                      << " cells\r";
        }
    };
    auto results = campaign.run(benchutil::engine(), {}, progress);
    std::cerr << "\n";

    uint64_t total_runs = 0;
    uint64_t weak_tests = 0;
    for (size_t t = 0; t < tests.size(); ++t) {
        const auto &entry = tests[t];
        std::vector<model::Verdict> verdicts;
        verdicts.reserve(stats.size());
        for (auto &ms : stats)
            verdicts.push_back(
                model::Checker(*ms.model).check(entry.test));

        bool weak_seen = false;
        for (size_t c = 0; c < chips.size(); ++c) {
            const auto &chip = chips[c];
            const litmus::Histogram &hist =
                results[t * chips.size() + c].hist;
            total_runs += hist.total();
            if (hist.observed() > 0)
                weak_seen = true;
            for (size_t m = 0; m < stats.size(); ++m) {
                auto report =
                    model::checkSoundness(verdicts[m], hist);
                if (!report.sound) {
                    stats[m].violations += report.violations.size();
                    if (stats[m].example.empty()) {
                        stats[m].example =
                            entry.id + " on " + chip.shortName +
                            ": " + report.violations.front();
                    }
                }
            }
        }
        weak_tests += weak_seen;
    }

    Table table;
    table.header({"model", "observed-but-forbidden", "verdict",
                  "first counterexample"});
    for (const auto &ms : stats) {
        table.row({ms.model->name(),
                   std::to_string(ms.violations),
                   ms.violations == 0 ? "SOUND" : "UNSOUND",
                   ms.example.empty() ? "-" : ms.example});
    }
    table.print(std::cout);

    std::cout << "\ntotal simulated runs: " << total_runs
              << "; tests with weak behaviour observed: " << weak_tests
              << "/" << tests.size() << "\n";
    std::cout << "Paper's result: the scoped PTX model is"
                 " experimentally sound w.r.t. all 10930 tests on"
                 " every Nvidia chip of Tab. 1.\n";
    return 0;
}
