/**
 * @file
 * Regenerates the model validation of Sec. 5.4 as ONE conformance
 * campaign through the unified eval backend API: litmus tests are
 * generated with the diy extension, every (test x Nvidia chip) cell
 * runs through the sim backend, every (test x model) pair through an
 * axiomatic backend, and the ConformanceSink joins the two sides —
 * the model is experimentally sound iff no cell is "unsound"
 * (observed-but-forbidden).
 *
 * The paper validates 10930 tests at 100k iterations each; set
 * GPULITMUS_VALIDATION_TESTS / GPULITMUS_VALIDATION_ITERS to scale
 * (defaults keep this binary around a minute). As ablations, the same
 * observations are checked against SC, plain (unscoped) RMO and the
 * Sec. 6 operational baseline, and against full SC-per-location: the
 * scoped model stays sound; SC and full SC-per-location are wildly
 * unsound (coRR!), and the unscoped models fail on scoped-fence
 * tests such as lb+membar.ctas.
 */

#include <cstdlib>
#include <map>
#include <set>

#include "bench_util.h"
#include "common/strutil.h"
#include "eval/backend.h"
#include "gen/generator.h"
#include "litmus/library.h"
#include "model/checker.h"

using namespace gpulitmus;

namespace {

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    auto parsed = parseInt(v);
    return parsed && *parsed > 0 ? static_cast<uint64_t>(*parsed)
                                 : fallback;
}

} // namespace

int
main()
{
    uint64_t max_tests = envOr("GPULITMUS_VALIDATION_TESTS", 1500);
    uint64_t iters = envOr("GPULITMUS_VALIDATION_ITERS", 1500);
    uint64_t max_edges = envOr("GPULITMUS_VALIDATION_EDGES", 4);

    benchutil::printHeader(
        "Sec. 5.4 - validating the model against generated tests",
        "diy-generated tests, run on every Nvidia chip, checked"
        " against the PTX model and ablation models");

    // maxEdges=4 yields 440 distinct tests in milliseconds; 5 yields
    // 5714 and 6 exceeds the paper's 10930 — set
    // GPULITMUS_VALIDATION_EDGES=6 GPULITMUS_VALIDATION_TESTS=10930
    // to replicate the paper's scale.
    gen::GeneratorOptions gopts;
    gopts.maxEdges = static_cast<int>(max_edges);
    gopts.maxTests = max_tests;
    auto generated = gen::generate(gen::defaultPool(), gopts);

    // The paper's hand-picked tests join the generated family.
    struct Entry
    {
        std::string id;
        litmus::Test test;
    };
    std::vector<Entry> tests;
    for (auto &g : generated)
        tests.push_back({g.cycleName, std::move(g.test)});

    // Sec. 5.5: the model covers accesses with the .cg operator only;
    // .ca (L1) and volatile accesses are outside its scope (no fence
    // restores .ca ordering on Fermi), so — like the paper — they are
    // excluded from the validation set.
    size_t excluded = 0;
    for (auto &nt : litmus::paperlib::allTests()) {
        if (model::inModelScope(nt.test))
            tests.push_back({nt.id, std::move(nt.test)});
        else
            ++excluded;
    }
    std::cout << "excluded " << excluded
              << " paper tests with .ca/volatile accesses (outside"
                 " the model's scope, Sec. 5.5)\n";

    std::cout << "tests: " << tests.size() << " (" << generated.size()
              << " generated + paper library), " << iters
              << " iterations each\n\n";

    // The PTX model plus the ablation models, as eval backends.
    const std::vector<std::string> models = {
        "ptx", "rmo", "baseline", "tso", "sc", "sc-per-loc-full"};

    auto chips = benchutil::nvidiaChips();
    harness::RunConfig cfg;
    cfg.iterations = iters;

    // The whole validation is ONE mixed-backend campaign: the
    // (test x chip) simulation grid plus one model job per
    // (test x model), all sharded across the worker pool
    // (GPULITMUS_JOBS); the ConformanceSink joins the two sides.
    harness::Campaign campaign;
    campaign.base(cfg).overChips(chips);
    for (const auto &entry : tests)
        campaign.test(entry.test, entry.id);
    for (const auto &entry : tests) {
        for (const auto &model : models) {
            harness::Job job;
            job.backend = model;
            job.test = entry.test;
            job.label = entry.id;
            campaign.add(std::move(job));
        }
    }

    eval::ConformanceSink conformance;
    // Computed jobs only: deduped/cached cells are never reported.
    auto progress = [&](size_t done, size_t total,
                        const eval::EvalResult &) {
        if (done % 500 == 0 || done == total) {
            std::cerr << "  computed " << done << "/" << total
                      << " jobs\r";
        }
    };
    eval::Engine engine;
    auto results = engine.run(campaign, {&conformance}, progress);
    std::cerr << "\n";

    uint64_t total_runs = 0;
    std::set<std::string> weak_tests;
    for (const auto &r : results) {
        if (!r.hasHist())
            continue;
        total_runs += r.hist->total();
        if (r.hist->observed() > 0)
            weak_tests.insert(r.label());
    }

    // The Sec. 5.4 table: per model, how many observed-but-forbidden
    // outcomes across every (test x chip) cell.
    struct ModelStats
    {
        uint64_t violations = 0;
        std::string example;
    };
    std::map<std::string, ModelStats> stats;
    for (const auto &cell : conformance.cells()) {
        ModelStats &ms = stats[cell.model];
        ms.violations += cell.violations.size();
        if (!cell.violations.empty() && ms.example.empty()) {
            ms.example = cell.test + " on " + cell.chip + ": " +
                         cell.violations.front();
        }
    }

    Table table;
    table.header({"model", "observed-but-forbidden", "verdict",
                  "first counterexample"});
    for (const auto &model : models) {
        const ModelStats &ms = stats[model];
        table.row({model, std::to_string(ms.violations),
                   ms.violations == 0 ? "SOUND" : "UNSOUND",
                   ms.example.empty() ? "-" : ms.example});
    }
    table.print(std::cout);

    std::cout << "\ntotal simulated runs: " << total_runs
              << "; tests with weak behaviour observed: "
              << weak_tests.size() << "/" << tests.size() << "\n";
    std::cout << "Paper's result: the scoped PTX model is"
                 " experimentally sound w.r.t. all 10930 tests on"
                 " every Nvidia chip of Tab. 1.\n";
    return 0;
}
