/**
 * @file
 * Regenerates Fig. 8: dlb-lb, the load-buffering bug of the
 * Cederman-Tsigas deque (a steal can obtain a task pushed *after* the
 * corresponding pop emptied the deque, losing a task).
 *
 * The HD6570 cell is "n/a": the TeraScale 2 OpenCL compiler reorders
 * the steal's load past its CAS, a miscompilation that invalidates
 * the test (Sec. 3.2.1); we reproduce it through the simulated AMD
 * pipeline.
 */

#include "bench_util.h"
#include "litmus/library.h"
#include "opt/amd.h"

using namespace gpulitmus;

int
main()
{
    benchutil::printHeader(
        "Fig. 8 - PTX lb from load-balancing (dlb-lb)",
        "init: global t=0, h=0; T0: atom.cas r0,[h],0,1; [fence;]"
        " st.cg [t],1 || T1: ld.cg r1,[t]; [fence;]"
        " atom.cas r3,[h],0,1; final: r0=1 /\\ r1=1;"
        " threads: inter-CTA");

    auto cfg = benchutil::config();
    auto chips = benchutil::allResultChips();
    Table table;
    table.header(benchutil::chipHeader("variant", chips));

    // Every (variant x chip) cell that survives compilation is one
    // campaign job; AMD chips run the test their OpenCL compiler
    // produces, miscompiled cells render as "n/a".
    harness::Campaign campaign;
    campaign.base(cfg);
    std::vector<std::vector<bool>> runnable(2);
    for (bool fences : {false, true}) {
        litmus::Test test = litmus::paperlib::dlbLb(fences);
        for (const auto &chip : chips) {
            litmus::Test to_run = test;
            if (chip.isAmd()) {
                auto compiled = opt::amdCompile(test, chip);
                if (compiled.miscompiled) {
                    runnable[fences].push_back(false);
                    continue;
                }
                to_run = compiled.compiled;
            }
            runnable[fences].push_back(true);
            campaign.add(
                harness::Job::fromConfig(chip, to_run, cfg));
        }
    }
    auto results = campaign.run(benchutil::engine());

    size_t next = 0;
    for (bool fences : {false, true}) {
        litmus::Test test = litmus::paperlib::dlbLb(fences);
        std::vector<std::string> measured{std::string(test.name) +
                                          " (sim)"};
        for (size_t c = 0; c < chips.size(); ++c) {
            if (!runnable[fences][c])
                measured.push_back("n/a");
            else
                measured.push_back(std::to_string(
                    results[next++].observedPer100k));
        }
        table.row(measured);
        if (!fences) {
            table.row({"dlb-lb (paper)", "0", "750", "399", "2292",
                       "0", "n/a", "13591"});
        } else {
            table.row({"dlb-lb+fences (paper)", "0", "0", "0", "0",
                       "0", "n/a", "0"});
        }
    }
    table.print(std::cout);

    // Show the miscompilation evidence for the n/a cell.
    auto bad = opt::amdCompile(litmus::paperlib::dlbLb(false),
                               sim::chip("HD6570"));
    std::cout << "\nHD6570 compile notes:\n";
    for (const auto &q : bad.quirks)
        std::cout << "  " << q << "\n";
    return 0;
}
