/**
 * @file
 * Regenerates Fig. 8: dlb-lb, the load-buffering bug of the
 * Cederman-Tsigas deque (a steal can obtain a task pushed *after* the
 * corresponding pop emptied the deque, losing a task).
 *
 * The HD6570 cell is "n/a": the TeraScale 2 OpenCL compiler reorders
 * the steal's load past its CAS, a miscompilation that invalidates
 * the test (Sec. 3.2.1); we reproduce it through the simulated AMD
 * pipeline.
 */

#include "bench_util.h"
#include "litmus/library.h"
#include "opt/amd.h"

using namespace gpulitmus;

namespace {

std::string
amdCell(const sim::ChipProfile &chip, const litmus::Test &test,
        const harness::RunConfig &cfg)
{
    opt::AmdCompileResult compiled = opt::amdCompile(test, chip);
    if (compiled.miscompiled)
        return "n/a";
    return std::to_string(
        harness::observePer100k(chip, compiled.compiled, cfg));
}

} // namespace

int
main()
{
    benchutil::printHeader(
        "Fig. 8 - PTX lb from load-balancing (dlb-lb)",
        "init: global t=0, h=0; T0: atom.cas r0,[h],0,1; [fence;]"
        " st.cg [t],1 || T1: ld.cg r1,[t]; [fence;]"
        " atom.cas r3,[h],0,1; final: r0=1 /\\ r1=1;"
        " threads: inter-CTA");

    auto cfg = benchutil::config();
    auto chips = benchutil::allResultChips();
    Table table;
    table.header(benchutil::chipHeader("variant", chips));

    for (bool fences : {false, true}) {
        litmus::Test test = litmus::paperlib::dlbLb(fences);
        std::vector<std::string> measured{std::string(test.name) +
                                          " (sim)"};
        for (const auto &chip : chips) {
            if (chip.isAmd())
                measured.push_back(amdCell(chip, test, cfg));
            else
                measured.push_back(std::to_string(
                    harness::observePer100k(chip, test, cfg)));
        }
        table.row(measured);
        if (!fences) {
            table.row({"dlb-lb (paper)", "0", "750", "399", "2292",
                       "0", "n/a", "13591"});
        } else {
            table.row({"dlb-lb+fences (paper)", "0", "0", "0", "0",
                       "0", "n/a", "0"});
        }
    }
    table.print(std::cout);

    // Show the miscompilation evidence for the n/a cell.
    auto bad = opt::amdCompile(litmus::paperlib::dlbLb(false),
                               sim::chip("HD6570"));
    std::cout << "\nHD6570 compile notes:\n";
    for (const auto &q : bad.quirks)
        std::cout << "  " << q << "\n";
    return 0;
}
