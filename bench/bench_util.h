/**
 * @file
 * Shared plumbing for the benchmark binaries that regenerate the
 * paper's tables and figures.
 *
 * Every binary prints (a) the simulated observation counts, and (b)
 * the paper's published numbers for the same cell, so the shape can
 * be compared at a glance. Iteration counts come from GPULITMUS_ITERS
 * (default 100000, the paper's count); observations are normalised to
 * obs/100k.
 */

#ifndef GPULITMUS_BENCH_BENCH_UTIL_H
#define GPULITMUS_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/strutil.h"
#include "common/table.h"
#include "harness/campaign.h"
#include "litmus/test.h"
#include "sim/chip.h"

namespace gpulitmus::benchutil {

/** Positive-integer environment override with a fallback (shared by
 * the perf benches for their budget/rep knobs; iteration counts come
 * from harness::defaultIterations). */
inline uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    auto parsed = parseInt(v);
    return parsed && *parsed > 0 ? static_cast<uint64_t>(*parsed)
                                 : fallback;
}

inline harness::RunConfig
config()
{
    harness::RunConfig c;
    c.iterations = harness::defaultIterations();
    return c;
}

/**
 * The shared campaign engine for this binary: worker count from
 * GPULITMUS_JOBS (default: hardware concurrency), results cached
 * across sweeps so a cell queried by two tables is simulated once.
 */
inline harness::Engine &
engine()
{
    static harness::Engine e;
    return e;
}

/** The five Nvidia chips of the paper's per-test rows. */
inline std::vector<sim::ChipProfile>
nvidiaChips()
{
    std::vector<sim::ChipProfile> out;
    for (const auto &c : sim::resultChips()) {
        if (c.isNvidia())
            out.push_back(c);
    }
    return out;
}

/** All seven result chips (Nvidia + AMD). */
inline std::vector<sim::ChipProfile>
allResultChips()
{
    return sim::resultChips();
}

inline void
printHeader(const std::string &title, const std::string &what)
{
    std::cout << "=====================================================\n"
              << title << "\n"
              << what << "\n"
              << "iterations/run: " << config().iterations
              << " (set GPULITMUS_ITERS to change); all counts are"
                 " normalised to obs/100k\n"
              << "=====================================================\n";
}

/** Run one per-chip campaign row and append the measured and paper
 * rows; obsRows/scenarioRows differ only in how the test lands on
 * the campaign. */
inline void
campaignRows(Table &table, const std::string &label,
             harness::Campaign &campaign,
             const std::vector<sim::ChipProfile> &chips,
             const std::vector<std::string> &paper)
{
    auto results = campaign.overChips(chips).run(engine());
    std::vector<std::string> measured{label + " (sim)"};
    for (const auto &r : results)
        measured.push_back(std::to_string(r.observedPer100k));
    table.row(measured);
    std::vector<std::string> reference{label + " (paper)"};
    for (const auto &p : paper)
        reference.push_back(p);
    table.row(reference);
}

/** Append measured and paper rows for one test configuration. The
 * per-chip cells are one campaign batch, sharded across the engine's
 * worker pool. */
inline void
obsRows(Table &table, const std::string &label,
        const litmus::Test &test,
        const std::vector<sim::ChipProfile> &chips,
        const std::vector<std::string> &paper,
        const harness::RunConfig &cfg)
{
    harness::Campaign campaign;
    campaign.base(cfg).test(test, label);
    campaignRows(table, label, campaign, chips, paper);
}

/** obsRows for a registry scenario spec: one campaign batch over the
 * chips, measured row + paper row. The scenario's recommended
 * micro-step cap rides along via Campaign::scenario. */
inline void
scenarioRows(Table &table, const std::string &label,
             const std::string &spec,
             const std::vector<sim::ChipProfile> &chips,
             const std::vector<std::string> &paper,
             const harness::RunConfig &cfg)
{
    harness::Campaign campaign;
    campaign.base(cfg).scenario(spec);
    campaignRows(table, label, campaign, chips, paper);
}

inline std::vector<std::string>
chipHeader(const std::string &first,
           const std::vector<sim::ChipProfile> &chips)
{
    std::vector<std::string> h{first};
    for (const auto &c : chips)
        h.push_back(c.shortName);
    return h;
}

} // namespace gpulitmus::benchutil

#endif // GPULITMUS_BENCH_BENCH_UTIL_H
