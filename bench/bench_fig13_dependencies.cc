/**
 * @file
 * Regenerates Fig. 13 (Sec. 4.5): manufacturing false dependencies
 * that survive ptxas -O3.
 *
 * Scheme (a) — xor r2,r1,r1 — is provably zero intra-thread, so -O3
 * removes the whole address-computation chain and with it the
 * dependency; scheme (b) — and r2,r1,0x80000000 — would need an
 * inter-thread analysis to prove zero, so it survives. We show the
 * SASS for both, then run an lb test with each dependency flavour:
 * with (a) the compiled test reorders (lb observed / model allows);
 * with (b) the dependency forbids lb.
 */

#include "bench_util.h"
#include "cat/models.h"
#include "model/checker.h"
#include "opt/optcheck.h"
#include "opt/ptxas.h"

using namespace gpulitmus;

namespace {

litmus::Test
lbWithDep(bool xor_scheme)
{
    std::string dep_a, dep_b;
    auto chain = [&](const std::string &src) {
        if (xor_scheme)
            return "xor.b32 r2," + src + "," + src + ";";
        return "and.b32 r2," + src + ",0x80000000;";
    };
    dep_a = chain("r1");
    dep_b = chain("r1");
    std::string tail = "cvt.u64.u32 r3,r2; add.u64 r4,r4,r3;";
    return litmus::TestBuilder(xor_scheme ? "lb+deps-xor"
                                          : "lb+deps-and")
        .global("x", 0)
        .global("y", 0)
        .regLoc(0, "r4", "y")
        .regLoc(1, "r4", "x")
        .thread("ld.cg r1,[x];" + dep_a + tail + "st.cg [r4],1")
        .thread("ld.cg r1,[y];" + dep_b + tail + "st.cg [r4],1")
        .interCta()
        .exists("0:r1=1 /\\ 1:r1=1")
        .build();
}

} // namespace

int
main()
{
    benchutil::printHeader(
        "Fig. 13 - manufacturing dependencies that survive -O3",
        "load-to-store address dependencies via (a) xor-with-self"
        " (optimised away) and (b) and-with-high-bit (kept)");

    opt::PtxasOptions o3;
    o3.optLevel = 3;

    for (bool xor_scheme : {true, false}) {
        litmus::Test test = lbWithDep(xor_scheme);
        std::cout << "\n=== " << test.name << " ===\n";
        opt::SassProgram sass = opt::assemble(test, o3);
        std::cout << sass.disassemble();
        auto check = opt::optcheck(sass);
        std::cout << check.str();

        litmus::Test compiled = opt::sassToTest(test, sass);
        model::Checker checker(cat::models::ptx());
        bool allowed = checker.check(compiled).conditionSatisfiable;
        uint64_t obs = harness::observePer100k(
            sim::chip("Titan"), compiled, benchutil::config());
        std::cout << "compiled test: lb outcome "
                  << (allowed ? "ALLOWED" : "FORBIDDEN")
                  << " by the PTX model; observed " << obs
                  << "/100k on simulated Titan\n";
        std::cout << "expected: "
                  << (xor_scheme
                          ? "dependency removed -> allowed, observed"
                          : "dependency kept -> forbidden, 0")
                  << "\n";
    }
    return 0;
}
