/**
 * @file
 * The explorer pre-pass, measured: static analysis + SC enumeration
 * vs full weak-memory exploration, and proof that the substitution is
 * observationally invisible.
 *
 * For every workload this bench runs the mc backend twice inside one
 * binary:
 *
 * - "pre-pass": the default path — analysis/race.h classifies the
 *   program, and when it is fully ordered the SC enumeration
 *   (analysis/sc.h) is the answer, no explorer replay spent;
 * - "explore": GPULITMUS_MC_NO_PREPASS=1 — the full sharded
 *   exploration, exactly what every result looked like before the
 *   pre-pass existed.
 *
 * For fully-ordered workloads the two result cells must be
 * *byte-identical after normalisation*: the normalised cell keeps
 * every semantic field (test, chip, column, completeness, verdict,
 * the reachable keys, the satisfying keys) and drops only the
 * search-shaped ones (path weights, replay/cut statistics, budgets,
 * wall clock), which is the same normalisation the result cache
 * relies on when it ignores the kill-switch knob. Any normalised
 * drift exits 1. Racy workloads measure the other side of the
 * bargain: the analyzer's overhead when it must stand aside.
 *
 * Emits BENCH_analysis.json with per-workload verdicts, timings and
 * the pre-pass speedup. GPULITMUS_ANALYSIS_REPS controls the best-of
 * repetition count (default 3).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/race.h"
#include "common/strutil.h"
#include "common/table.h"
#include "eval/backend.h"
#include "litmus/library.h"
#include "sim/chip.h"

#include "bench_util.h"

using namespace gpulitmus;

namespace {

/** The semantic content of an exact result cell, rendered stably:
 * everything `explore --json` reports except the fields the pre-pass
 * is allowed to change (weights, search statistics, budgets, wall
 * clock). Two cells with equal strings are interchangeable to every
 * consumer of the reachable set and verdict. */
std::string
normalisedCell(const mc::ExploreResult &r, const litmus::Test &test)
{
    std::string out = "{";
    out += "\"test\":\"" + jsonEscape(r.testName) + "\",";
    out += "\"chip\":\"" + jsonEscape(r.chipName) + "\",";
    out += "\"column\":" + std::to_string(r.column) + ",";
    out += "\"complete\":" +
           std::string(r.complete ? "true" : "false") + ",";
    out += "\"verdict\":\"" + jsonEscape(r.verdict(test)) + "\",";
    out += "\"reachable\":[";
    bool first = true;
    for (const auto &[key, weight] : r.finals) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(key) + "\"";
    }
    out += "],\"satisfying\":[";
    first = true;
    for (const auto &key : r.satisfying) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(key) + "\"";
    }
    out += "]}";
    return out;
}

double
evaluateMs(const eval::McBackend &backend, const harness::Job &job,
           int reps, mc::ExploreResult *out)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        auto start = std::chrono::steady_clock::now();
        eval::EvalResult res = backend.evaluate(job);
        auto end = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double, std::milli>(end - start)
                      .count());
        *out = *res.exact;
    }
    return best;
}

} // namespace

int
main()
{
    const int reps = static_cast<int>(
        benchutil::envOr("GPULITMUS_ANALYSIS_REPS", 3));
    const int column = 16;

    struct Workload
    {
        const char *name;
        litmus::Test test;
        /** The analyzer verdict this workload exists to exercise. */
        bool expectFullyOrdered;
    };
    const Workload workloads[] = {
        // The fenced paper tests: every communication fully ordered,
        // so the pre-pass answers them without exploring.
        {"mp+membar.gl", litmus::paperlib::mpMembarGls(), true},
        {"mp+fence.gl", litmus::paperlib::mp(ptx::Scope::Gl), true},
        {"sb+fence.gl", litmus::paperlib::sb(ptx::Scope::Gl), true},
        // The racy side: the analyzer must stand aside (mp), even
        // when fences are present but under-scoped (lb+membar.cta
        // across CTAs — the Sec. 6 red-flag configuration).
        {"mp", litmus::paperlib::mp(), false},
        {"lb+membar.cta", litmus::paperlib::lbMembarCtas(), false},
    };

    std::cout << "static pre-pass vs full exploration (Titan, column "
              << column << ", best of " << reps << ")\n\n";

    Table table;
    table.header({"test", "verdict", "lint ms", "prepass ms",
                  "explore ms", "replays", "speedup", "cells"});
    std::vector<std::string> entries;
    bool ok = true;

    for (const auto &w : workloads) {
        auto lintStart = std::chrono::steady_clock::now();
        analysis::Report rep = analysis::analyze(w.test);
        auto lintEnd = std::chrono::steady_clock::now();
        double lint_ms =
            std::chrono::duration<double, std::milli>(lintEnd -
                                                      lintStart)
                .count();
        if (rep.fullyOrdered != w.expectFullyOrdered) {
            std::cerr << "VERDICT DRIFT: " << w.name << " expected "
                      << (w.expectFullyOrdered ? "fully-ordered"
                                               : "racy")
                      << ", analyzer says "
                      << (rep.fullyOrdered ? "fully-ordered" : "racy")
                      << "\n";
            ok = false;
        }

        harness::Job job;
        job.backend = harness::kMcBackend;
        job.chip = sim::chip("Titan");
        job.test = w.test;
        job.inc = sim::Incantations::fromColumn(column);
        job.shards = 1;
        eval::McBackend backend;

        ::unsetenv("GPULITMUS_MC_NO_PREPASS");
        mc::ExploreResult pre;
        double pre_ms = evaluateMs(backend, job, reps, &pre);
        ::setenv("GPULITMUS_MC_NO_PREPASS", "1", 1);
        mc::ExploreResult full;
        double full_ms = evaluateMs(backend, job, reps, &full);
        ::unsetenv("GPULITMUS_MC_NO_PREPASS");

        std::string preCell = normalisedCell(pre, w.test);
        std::string fullCell = normalisedCell(full, w.test);
        bool cellsIdentical = preCell == fullCell;
        if (!cellsIdentical) {
            std::cerr << "CELL DRIFT: " << w.name
                      << " pre-pass and exploration disagree after"
                         " normalisation\n  pre:  "
                      << preCell << "\n  full: " << fullCell << "\n";
            ok = false;
        }
        if (rep.fullyOrdered && pre.stats.replays != 0) {
            std::cerr << "PRE-PASS MISS: " << w.name
                      << " is fully ordered but still explored ("
                      << pre.stats.replays << " replays)\n";
            ok = false;
        }

        double speedup = pre_ms > 0.0 ? full_ms / pre_ms : 0.0;
        char lms[32], pms[32], fms[32], sp[32];
        std::snprintf(lms, sizeof lms, "%.3f", lint_ms);
        std::snprintf(pms, sizeof pms, "%.2f", pre_ms);
        std::snprintf(fms, sizeof fms, "%.2f", full_ms);
        std::snprintf(sp, sizeof sp, "%.2fx", speedup);
        table.row({w.name,
                   rep.fullyOrdered ? "fully-ordered" : "racy", lms,
                   pms, fms, std::to_string(full.stats.replays), sp,
                   cellsIdentical ? "identical" : "DRIFT"});

        std::string e = "{";
        e += "\"test\":\"" + jsonEscape(w.name) + "\",";
        e += "\"chip\":\"Titan\",";
        e += "\"column\":" + std::to_string(column) + ",";
        e += "\"fully_ordered\":" +
             std::string(rep.fullyOrdered ? "true" : "false") + ",";
        e += "\"racy_pairs\":" + std::to_string(rep.racyPairs()) +
             ",";
        e += "\"lint_ms\":" + std::string(lms) + ",";
        e += "\"prepass_ms\":" + std::string(pms) + ",";
        e += "\"explore_ms\":" + std::string(fms) + ",";
        e += "\"explore_replays\":" +
             std::to_string(full.stats.replays) + ",";
        e += "\"prepass_replays\":" +
             std::to_string(pre.stats.replays) + ",";
        e += "\"reachable_states\":" +
             std::to_string(pre.finals.size()) + ",";
        e += "\"cells_identical\":" +
             std::string(cellsIdentical ? "true" : "false") + ",";
        e += "\"speedup\":" + std::to_string(speedup);
        e += "}";
        entries.push_back(std::move(e));
    }
    table.print(std::cout);

    if (!ok)
        return 1;

    if (!writeJsonArrayFile("BENCH_analysis.json", entries)) {
        std::cerr << "error: could not write BENCH_analysis.json\n";
        return 1;
    }
    std::cout << "\nwrote BENCH_analysis.json (" << entries.size()
              << " workloads)\n";
    return 0;
}
