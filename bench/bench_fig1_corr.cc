/**
 * @file
 * Regenerates Fig. 1 of the paper: the coRR read-read coherence test
 * (intra-CTA, global memory), observed per 100k runs across the
 * seven result chips. Fermi and Kepler exhibit the violation; Maxwell
 * and both AMD chips do not.
 */

#include "bench_util.h"
#include "litmus/library.h"

using namespace gpulitmus;

int
main()
{
    benchutil::printHeader(
        "Fig. 1 - PTX test for coherent reads (coRR)",
        "init: global x=0; T0: st.cg [x],1 ||"
        " T1: ld.cg r1,[x]; ld.cg r2,[x]; final: r1=1 /\\ r2=0;"
        " threads: intra-CTA");

    auto chips = benchutil::allResultChips();
    litmus::Test test = litmus::paperlib::coRR();

    Table table;
    table.header(benchutil::chipHeader("obs/100k", chips));
    benchutil::obsRows(table, "coRR", test, chips,
                       {"11642", "8879", "9599", "9787", "0", "0",
                        "0"},
                       benchutil::config());
    table.print(std::cout);
    return 0;
}
