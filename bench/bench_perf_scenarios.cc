/**
 * @file
 * The application scenarios, sampled vs exact, head to head: every
 * registry scenario (both fence variants) on the Tesla C2075 — one
 * sampling sweep against one exhaustive exploration, with wall-clock
 * and what each method concludes about the forbidden condition.
 * Emits BENCH_scenarios.json.
 *
 * The point the numbers make: for the paper's application bugs an
 * exploration that settles the question (a concrete wrong-result
 * schedule, or a proof there is none over every terminating
 * execution) costs the same order as — usually far less than — one
 * sampling sweep that can only estimate a rate. GPULITMUS_ITERS
 * scales the sampling side (spin-loop scenarios sample at a tenth of
 * it, floor 1000, the straight-line ones at full count);
 * GPULITMUS_MC_BUDGET the replay budget (default 1<<20).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/strutil.h"
#include "common/table.h"
#include "harness/campaign.h"
#include "mc/explorer.h"
#include "scenario/registry.h"

#include "bench_util.h"

using namespace gpulitmus;

int
main()
{
    uint64_t base_iters = harness::defaultIterations();
    uint64_t budget = benchutil::envOr("GPULITMUS_MC_BUDGET", 1u << 20);
    const sim::ChipProfile &chip = sim::chip("TesC");

    std::cout << "registry scenarios: sampling vs exhaustive"
                 " exploration, Tesla C2075 column 16\n\n";

    Table table;
    table.header({"scenario", "mc ms", "replays", "claim", "wrong",
                  "sim ms", "iters", "obs/100k"});
    std::vector<std::string> entries;
    for (const auto &s : scenario::all()) {
        for (int fenced = 0; fenced <= 1; ++fenced) {
            std::string spec = "scenario:" + s.name +
                               ",fenced=" + std::to_string(fenced);
            std::string error;
            auto built = scenario::buildSpec(spec, &error);
            if (!built) {
                std::cerr << "error: " << error << "\n";
                return 1;
            }

            mc::ExploreOptions opts;
            opts.machine.maxMicroSteps = built->maxMicroSteps;
            opts.maxReplays = budget;
            mc::Explorer explorer(chip, built->test, opts);
            auto mc_start = std::chrono::steady_clock::now();
            mc::ExploreResult exact = explorer.explore();
            auto mc_end = std::chrono::steady_clock::now();
            double mc_ms = std::chrono::duration<double, std::milli>(
                               mc_end - mc_start)
                               .count();

            // Spin-loop scenarios cost ~10x a straight-line
            // iteration; sample them at a tenth of the budget so the
            // bench stays comparable cell to cell.
            bool spins = built->maxMicroSteps > 4000;
            uint64_t iters =
                spins ? std::max<uint64_t>(1000, base_iters / 10)
                      : base_iters;
            harness::RunConfig cfg;
            cfg.iterations = iters;
            cfg.maxMicroSteps = built->maxMicroSteps;
            auto sim_start = std::chrono::steady_clock::now();
            litmus::Histogram hist =
                harness::run(chip, built->test, cfg);
            auto sim_end = std::chrono::steady_clock::now();
            double sim_ms = std::chrono::duration<double, std::milli>(
                                sim_end - sim_start)
                                .count();
            uint64_t per100k =
                hist.total() > 0
                    ? hist.observed() * 100000 / hist.total()
                    : 0;

            const char *claim =
                !exact.satisfying.empty() ? "bug-reachable"
                : exact.complete          ? "proven-safe"
                : exact.fairComplete      ? "proven-safe-fair"
                                          : "bounded";

            char mc_buf[32], sim_buf[32];
            std::snprintf(mc_buf, sizeof mc_buf, "%.2f", mc_ms);
            std::snprintf(sim_buf, sizeof sim_buf, "%.2f", sim_ms);
            table.row({built->test.name, mc_buf,
                       std::to_string(exact.stats.replays), claim,
                       std::to_string(exact.satisfying.size()),
                       sim_buf, std::to_string(iters),
                       std::to_string(per100k)});

            std::string e = "{";
            e += "\"scenario\":\"" + jsonEscape(s.name) + "\",";
            e += "\"spec\":\"" + jsonEscape(spec) + "\",";
            e += "\"test\":\"" + jsonEscape(built->test.name) + "\",";
            e += "\"chip\":\"TesC\",";
            e += "\"fenced\":" +
                 std::string(fenced ? "true" : "false") + ",";
            e += "\"mc_ms\":" + std::string(mc_buf) + ",";
            e += "\"mc_replays\":" +
                 std::to_string(exact.stats.replays) + ",";
            e += "\"mc_states\":" +
                 std::to_string(exact.stats.distinctStates) + ",";
            e += "\"mc_complete\":" +
                 std::string(exact.complete ? "true" : "false") + ",";
            e += "\"mc_fair_complete\":" +
                 std::string(exact.fairComplete ? "true" : "false") +
                 ",";
            e += "\"claim\":\"" + std::string(claim) + "\",";
            e += "\"forbidden_reachable\":" +
                 std::to_string(exact.satisfying.size()) + ",";
            e += "\"sim_ms\":" + std::string(sim_buf) + ",";
            e += "\"sim_iterations\":" + std::to_string(iters) + ",";
            e += "\"wrong_per_100k\":" + std::to_string(per100k);
            e += "}";
            entries.push_back(std::move(e));

            // The fence variants are the fixes: a reachable wrong
            // result there is a simulator/scenario regression.
            if (fenced && !exact.satisfying.empty()) {
                std::cerr << "REGRESSION: " << built->test.name
                          << " reaches its forbidden condition\n";
                return 1;
            }
            // And the sampler must stay inside the explored set
            // whenever the exploration is exact.
            if (exact.complete) {
                for (const auto &[key, count] : hist.counts()) {
                    if (count > 0 && !exact.reachable(key)) {
                        std::cerr << "INCONSISTENT: " << s.name
                                  << " sampled '" << key
                                  << "' outside the exact set\n";
                        return 1;
                    }
                }
            }
        }
    }
    table.print(std::cout);

    if (!writeJsonArrayFile("BENCH_scenarios.json", entries)) {
        // Exit nonzero so CI artifact upload cannot silently skip
        // the file.
        std::cerr << "error: could not write BENCH_scenarios.json\n";
        return 1;
    }
    std::cout << "\nwrote BENCH_scenarios.json (" << entries.size()
              << " cells)\n";
    return 0;
}
