/**
 * @file
 * Regenerates Fig. 9: cas-sl, the compare-and-swap spin lock of CUDA
 * by Example (Fig. 2), distilled via Tab. 5. Without fences a thread
 * that acquires the lock can read a stale value of the data the
 * previous critical section wrote — the bug Nvidia's erratum [33]
 * acknowledges. With membar.gl fences the behaviour disappears.
 *
 * Driven through the Scenario API: the rows are the
 * `scenario:cas_spinlock` registry scenario (whose forbidden
 * condition is exactly the Fig. 9 stale read), so "observed" is
 * wrong-lock-acquisitions per 100k.
 */

#include "bench_util.h"

using namespace gpulitmus;

int
main()
{
    benchutil::printHeader(
        "Fig. 9 - PTX compare-and-swap spin lock (cas-sl)",
        "init: global x=0, m=1; T0: st.cg [x],1; [fence;]"
        " atom.exch r0,[m],0 || T1: atom.cas r1,[m],0,1; if acquired:"
        " [fence;] ld.cg r3,[x]; forbidden: r1=0 /\\ r3=0;"
        " threads: inter-CTA (scenario:cas_spinlock)");

    auto chips = benchutil::allResultChips();
    Table table;
    table.header(benchutil::chipHeader("variant", chips));
    benchutil::scenarioRows(table, "cas-sl", "scenario:cas_spinlock",
                            chips,
                            {"0", "47", "43", "512", "0", "508",
                             "748"},
                            benchutil::config());
    benchutil::scenarioRows(table, "cas-sl+fences",
                            "scenario:cas_spinlock,fenced=1", chips,
                            {"0", "0", "0", "0", "0", "0", "0"},
                            benchutil::config());
    table.print(std::cout);
    return 0;
}
