/**
 * @file
 * Regenerates Fig. 3: mp with L1 (.ca) load cache operators and .cg
 * stores, inter-CTA, swept over the fence strengths no-op /
 * membar.cta / membar.gl / membar.sys.
 *
 * The headline finding: on the Tesla C2075 no fence restores the
 * ordering — stale values keep being read from the L1 — so no fence
 * suffices under default CUDA compilation (loads default to .ca).
 */

#include "bench_util.h"
#include "litmus/library.h"

using namespace gpulitmus;

int
main()
{
    benchutil::printHeader(
        "Fig. 3 - PTX mp with L1 cache operators (mp-L1)",
        "init: global x=0, y=0; T0: st.cg [x],1; fence; st.cg [y],1 ||"
        " T1: ld.ca r1,[y]; fence; ld.ca r2,[x];"
        " final: r1=1 /\\ r2=0; threads: inter-CTA");

    auto chips = benchutil::nvidiaChips();
    Table table;
    table.header(benchutil::chipHeader("fence", chips));

    struct RowSpec
    {
        std::string label;
        litmus::paperlib::FenceOpt fence;
        std::vector<std::string> paper;
    };
    std::vector<RowSpec> rows = {
        {"no-op", std::nullopt, {"4979", "10581", "3635", "6011", "3"}},
        {"membar.cta", ptx::Scope::Cta, {"0", "308", "14", "1696", "0"}},
        {"membar.gl", ptx::Scope::Gl, {"0", "187", "0", "0", "0"}},
        {"membar.sys", ptx::Scope::Sys, {"0", "162", "0", "0", "0"}},
    };

    for (const auto &row : rows) {
        benchutil::obsRows(table, row.label,
                           litmus::paperlib::mpL1(row.fence), chips,
                           row.paper, benchutil::config());
    }
    table.print(std::cout);
    return 0;
}
