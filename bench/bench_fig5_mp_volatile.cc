/**
 * @file
 * Regenerates Fig. 5: mp with all accesses marked .volatile and both
 * locations in shared memory, intra-CTA. Contrary to the PTX manual,
 * .volatile does not restore SC for shared memory on Fermi or Kepler.
 */

#include "bench_util.h"
#include "litmus/library.h"

using namespace gpulitmus;

int
main()
{
    benchutil::printHeader(
        "Fig. 5 - PTX mp with volatiles (mp-volatile)",
        "init: shared x=0, y=0; T0: st.volatile [x],1;"
        " st.volatile [y],1 || T1: ld.volatile r1,[y];"
        " ld.volatile r2,[x]; final: r1=1 /\\ r2=0;"
        " threads: intra-CTA");

    auto chips = benchutil::nvidiaChips();
    Table table;
    table.header(benchutil::chipHeader("obs/100k", chips));
    benchutil::obsRows(table, "mp-volatile",
                       litmus::paperlib::mpVolatile(), chips,
                       {"6301", "4977", "2753", "2188", "0"},
                       benchutil::config());
    table.print(std::cout);
    return 0;
}
