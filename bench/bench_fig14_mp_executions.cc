/**
 * @file
 * Regenerates Fig. 14: the candidate executions of an mp test with a
 * membar.cta on the writer and a membar.gl on the reader, intra-CTA.
 * For the weak final state (r0=1, r2=0) the execution exhibits a
 * cycle in rmo-cta (membar.cta; rfe; membar.gl; fr), so the paper's
 * model forbids it; the other final states are allowed.
 */

#include "axiom/enumerate.h"
#include "bench_util.h"
#include "cat/models.h"

using namespace gpulitmus;

int
main()
{
    benchutil::printHeader(
        "Fig. 14 - an execution of the mp test",
        "T0: st.cg [x],1; membar.cta; st.cg [y],1 ||"
        " T1: ld.cg r0,[y]; membar.gl; ld.cg r2,[x]; intra-CTA");

    litmus::Test test =
        litmus::TestBuilder("mp-fig14")
            .global("x", 0)
            .global("y", 0)
            .thread("st.cg [x],1; membar.cta; st.cg [y],1")
            .thread("ld.cg r0,[y]; membar.gl; ld.cg r2,[x]")
            .intraCta()
            .exists("1:r0=1 /\\ 1:r2=0")
            .build();

    const cat::Model &model = cat::models::ptx();
    auto execs = axiom::enumerateExecutions(test);
    std::cout << "candidate executions: " << execs.size() << "\n";

    int shown = 0;
    for (const auto &ex : execs) {
        cat::ModelResult res = model.evaluate(ex);
        bool weak = test.condition.eval(ex.finalState);
        if (!weak && shown >= 2)
            continue; // print the weak one and two allowed ones
        ++shown;
        std::cout << "\n--- candidate (r0="
                  << ex.finalState.reg(1, "r0")
                  << ", r2=" << ex.finalState.reg(1, "r2") << ") -> "
                  << (res.allowed ? "ALLOWED" : "FORBIDDEN") << "\n";
        std::cout << ex.str();
        if (!res.allowed) {
            std::cout << "  forbidden by: " << res.firstFailure()
                      << "; cycle:";
            for (const auto &c : res.checks) {
                if (!c.passed) {
                    for (int id : c.cycle)
                        std::cout << " "
                                  << static_cast<char>('a' + id % 26);
                    break;
                }
            }
            std::cout << "\n";
        }
    }

    std::cout << "\nAs in Fig. 14, the weak execution has a cycle in"
                 " membar.cta; rfe; membar.gl; fr at CTA scope, so"
                 " cta-constraint forbids it.\n";
    return 0;
}
