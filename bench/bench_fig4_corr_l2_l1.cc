/**
 * @file
 * Regenerates Fig. 4: coRR mixing cache operators (first load .cg
 * from the L2, second load .ca from the L1), intra-CTA, swept over
 * fence strengths.
 *
 * On the Tesla C2075 no fence guarantees that an updated value read
 * from the L2 is subsequently read from the L1; on the GTX 540m a
 * membar.cta is not enough (1934/100k) but membar.gl is.
 */

#include "bench_util.h"
#include "litmus/library.h"

using namespace gpulitmus;

int
main()
{
    benchutil::printHeader(
        "Fig. 4 - PTX coRR mixing cache operators (coRR-L2-L1)",
        "init: global x=0; T0: st.cg [x],1 ||"
        " T1: ld.cg r1,[x]; fence; ld.ca r2,[x];"
        " final: r1=1 /\\ r2=0; threads: intra-CTA");

    auto chips = benchutil::nvidiaChips();
    Table table;
    table.header(benchutil::chipHeader("fence", chips));

    struct RowSpec
    {
        std::string label;
        litmus::paperlib::FenceOpt fence;
        std::vector<std::string> paper;
    };
    std::vector<RowSpec> rows = {
        {"no-op", std::nullopt, {"2556", "2982", "2", "141", "0"}},
        {"membar.cta", ptx::Scope::Cta,
         {"1934", "2180", "0", "0", "0"}},
        {"membar.gl", ptx::Scope::Gl, {"0", "1496", "0", "0", "0"}},
        {"membar.sys", ptx::Scope::Sys, {"0", "1428", "0", "0", "0"}},
    };

    for (const auto &row : rows) {
        benchutil::obsRows(table, row.label,
                           litmus::paperlib::coRRL2L1(row.fence),
                           chips, row.paper, benchutil::config());
    }
    table.print(std::cout);
    return 0;
}
