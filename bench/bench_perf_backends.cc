/**
 * @file
 * Times each eval backend on the Tab. 6 grid (the four classic idioms
 * x the 16 incantation columns on the GTX Titan) and emits
 * BENCH_backends.json — the starting point of the multi-backend
 * performance trajectory.
 *
 * The sim backend computes all 64 cells; the model backends collapse
 * the grid onto one evaluation per test (their cache identity ignores
 * the chip/incantation axes), so the "computed" column shows the
 * dedup working and the wall-clock shows what one sweep actually
 * costs per engine. GPULITMUS_BENCH_ITERS scales the sim side
 * (default 2000 to keep this binary in CI time).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/strutil.h"
#include "common/table.h"
#include "eval/backend.h"
#include "litmus/library.h"
#include "model/checker.h"

#include "bench_util.h"

using namespace gpulitmus;

namespace {

} // namespace

int
main()
{
    uint64_t iters = benchutil::envOr("GPULITMUS_BENCH_ITERS", 2000);

    const std::vector<std::string> backends =
        eval::builtinBackendNames();

    std::cout << "backend timing on the Tab. 6 grid (coRR/lb/mp/sb x"
                 " 16 columns x Titan), "
              << iters << " iterations/sim cell\n\n";

    Table table;
    table.header({"backend", "jobs", "computed", "wall ms",
                  "jobs/s"});
    std::vector<std::string> entries;
    for (const auto &backend : backends) {
        harness::Campaign campaign;
        campaign.iterations(iters)
            .overChips(std::vector<std::string>{"Titan"})
            .overColumns(1, 16)
            .overBackends({backend})
            .test(litmus::paperlib::coRR(), "coRR")
            .test(litmus::paperlib::lb(), "lb")
            .test(litmus::paperlib::mp(), "mp")
            .test(litmus::paperlib::sb(), "sb");

        // Cold-start every backend: without this, the process-wide
        // enumeration memo would let each axiomatic backend after the
        // first skip the very hot path being measured, making the
        // timings order-dependent.
        model::clearEnumerationCache();

        eval::Engine engine;
        auto start = std::chrono::steady_clock::now();
        auto results = engine.run(campaign);
        auto end = std::chrono::steady_clock::now();
        double wall_ms =
            std::chrono::duration<double, std::milli>(end - start)
                .count();

        size_t computed = 0;
        for (const auto &r : results)
            computed += !r.fromCache;
        double jobs_per_s =
            wall_ms > 0.0 ? 1000.0 * results.size() / wall_ms : 0.0;

        char wall[32], rate[32];
        std::snprintf(wall, sizeof wall, "%.2f", wall_ms);
        std::snprintf(rate, sizeof rate, "%.0f", jobs_per_s);
        table.row({backend, std::to_string(results.size()),
                   std::to_string(computed), wall, rate});

        std::string e = "{";
        e += "\"backend\":\"" + jsonEscape(backend) + "\",";
        e += "\"jobs\":" + std::to_string(results.size()) + ",";
        e += "\"computed\":" + std::to_string(computed) + ",";
        e += "\"iterations\":" + std::to_string(iters) + ",";
        e += "\"wall_ms\":" + std::string(wall) + ",";
        e += "\"jobs_per_sec\":" + std::string(rate) + ",";
        e += "\"threads\":" + std::to_string(engine.threads());
        e += "}";
        entries.push_back(std::move(e));
    }
    table.print(std::cout);

    if (!writeJsonArrayFile("BENCH_backends.json", entries)) {
        // Exit nonzero so CI artifact upload cannot silently skip
        // the file.
        std::cerr << "error: could not write BENCH_backends.json\n";
        return 1;
    }
    std::cout << "\nwrote BENCH_backends.json (" << entries.size()
              << " backends)\n";
    return 0;
}
