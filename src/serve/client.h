/**
 * @file
 * Client side of the `gpulitmus serve` protocol: connect to a running
 * daemon (Unix socket or loopback TCP), submit one request line, and
 * stream the event lines back (serve/protocol.h, docs/SERVE.md).
 *
 * The transport is deliberately thin — a connected fd, a line buffer —
 * because the protocol is line-delimited JSON and the interesting
 * logic (planning, evaluation, verdicts) all lives daemon-side. The
 * `gpulitmus submit`/`status` subcommands and the serve tests/CI smoke
 * job are the consumers.
 */

#ifndef GPULITMUS_SERVE_CLIENT_H
#define GPULITMUS_SERVE_CLIENT_H

#include <functional>
#include <memory>
#include <string>

#include "common/json.h"
#include "serve/protocol.h"

namespace gpulitmus::serve {

class Client
{
  public:
    /** Connect to a daemon's Unix-domain socket. Returns null and
     * sets `error` when the connection fails. */
    static std::unique_ptr<Client>
    connectUnix(const std::string &path, std::string *error);

    /** Connect to a daemon's TCP listener (host is an IPv4 literal,
     * normally 127.0.0.1). */
    static std::unique_ptr<Client>
    connectTcp(const std::string &host, int port, std::string *error);

    ~Client();

    /** Send one line (newline appended). */
    bool sendLine(const std::string &line,
                  std::string *error = nullptr);

    /** Read the next line, blocking. False on EOF or transport
     * error (`error` left empty for a clean EOF). */
    bool readLine(std::string *line, std::string *error = nullptr);

    /** Per-event callback: the parsed event object plus its raw wire
     * line (for `--json` passthrough). */
    using EventFn = std::function<void(const json::Value &event,
                                       const std::string &line)>;

    /**
     * Submit one request and consume its event stream until the
     * terminal `done`/`error` event. Returns the daemon's verdict as
     * a process exit code — the `summary` event's `exit` field (the
     * same 0/2 semantics as the batch CLI), 1 for a protocol `error`
     * event, -1 + `error` on transport failure.
     */
    int submit(const Request &req, const EventFn &onEvent,
               std::string *error);

  private:
    explicit Client(int fd) : fd_(fd) {}

    int fd_;
    std::string inbuf_;
};

} // namespace gpulitmus::serve

#endif // GPULITMUS_SERVE_CLIENT_H
