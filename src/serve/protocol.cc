#include "serve/protocol.h"

#include <algorithm>

#include "common/json.h"
#include "common/strutil.h"
#include "eval/backend.h"
#include "litmus/library.h"
#include "litmus/parser.h"
#include "model/checker.h"
#include "scenario/registry.h"
#include "sim/chip.h"

namespace gpulitmus::serve {

std::string
jsonField(const std::string &key, const std::string &value)
{
    return "\"" + jsonEscape(key) + "\":\"" + jsonEscape(value) +
           "\"";
}

namespace {

const std::vector<std::string> kCommands = {
    "hello",    "list",    "stats",    "metrics",  "sweep",
    "validate", "explore", "scenario", "shutdown",
};

bool
knownCommand(const std::string &cmd)
{
    return std::find(kCommands.begin(), kCommands.end(), cmd) !=
           kCommands.end();
}

} // namespace

std::optional<Request>
parseRequest(const std::string &line, std::string *error)
{
    auto doc = json::parse(line, error);
    if (!doc)
        return std::nullopt;
    if (!doc->isObject()) {
        if (error)
            *error = "request must be a JSON object";
        return std::nullopt;
    }

    Request req;
    req.cmd = doc->getString("cmd", "");
    if (req.cmd.empty()) {
        if (error)
            *error = "missing \"cmd\"";
        return std::nullopt;
    }
    if (!knownCommand(req.cmd)) {
        if (error)
            *error = "unknown cmd '" + req.cmd +
                     "' (valid: " + join(kCommands, ", ") + ")";
        return std::nullopt;
    }
    req.id = doc->getString("id", "");

    for (const auto &t : doc->getArray("tests")) {
        TestSpec spec;
        if (t.isString()) {
            // Shorthand: a bare string is a library id or a scenario
            // spec, disambiguated by the "scenario:" prefix — same as
            // a CLI positional.
            if (scenario::isSpec(t.string()))
                spec.spec = t.string();
            else
                spec.name = t.string();
        } else if (t.isObject()) {
            spec.name = t.getString("name", "");
            spec.source = t.getString("source", "");
            spec.spec = t.getString("spec", "");
        } else {
            if (error)
                *error = "each tests[] entry must be a string or an"
                         " object";
            return std::nullopt;
        }
        if (spec.name.empty() && spec.source.empty() &&
            spec.spec.empty()) {
            if (error)
                *error = "tests[] entry names no test (want name,"
                         " source or spec)";
            return std::nullopt;
        }
        req.tests.push_back(std::move(spec));
    }

    for (const auto &c : doc->getArray("chips")) {
        if (!c.isString()) {
            if (error)
                *error = "chips[] entries must be strings";
            return std::nullopt;
        }
        req.chips.push_back(c.string());
    }
    for (const auto &m : doc->getArray("models")) {
        if (!m.isString()) {
            if (error)
                *error = "models[] entries must be strings";
            return std::nullopt;
        }
        req.models.push_back(m.string());
    }
    for (const auto &col : doc->getArray("columns")) {
        if (!col.isNumber() || col.integer() < 1 ||
            col.integer() > 16) {
            if (error)
                *error = "columns[] entries must be integers 1..16";
            return std::nullopt;
        }
        req.columns.push_back(static_cast<int>(col.integer()));
    }
    int64_t column = doc->getInt("column", 16);
    if (column < 1 || column > 16) {
        if (error)
            *error = "column must be 1..16";
        return std::nullopt;
    }
    req.column = static_cast<int>(column);
    req.iterations =
        static_cast<uint64_t>(doc->getInt("iterations", 0));
    req.seed = static_cast<uint64_t>(doc->getInt("seed", 0x6c69));
    req.budget =
        static_cast<uint64_t>(doc->getInt("budget", 1 << 20));
    req.exact = doc->getBool("exact", false);
    return req;
}

std::string
renderRequest(const Request &req)
{
    std::string out = "{" + jsonField("cmd", req.cmd);
    if (!req.id.empty())
        out += "," + jsonField("id", req.id);
    if (!req.tests.empty()) {
        out += ",\"tests\":[";
        bool first = true;
        for (const auto &t : req.tests) {
            if (!first)
                out += ",";
            first = false;
            out += "{";
            bool f2 = true;
            auto field = [&](const char *key,
                             const std::string &value) {
                if (value.empty())
                    return;
                if (!f2)
                    out += ",";
                f2 = false;
                out += jsonField(key, value);
            };
            field("name", t.name);
            field("source", t.source);
            field("spec", t.spec);
            out += "}";
        }
        out += "]";
    }
    auto strArray = [&out](const char *key,
                           const std::vector<std::string> &values) {
        if (values.empty())
            return;
        out += std::string(",\"") + key + "\":[";
        bool first = true;
        for (const auto &v : values) {
            if (!first)
                out += ",";
            first = false;
            out += "\"" + jsonEscape(v) + "\"";
        }
        out += "]";
    };
    strArray("chips", req.chips);
    strArray("models", req.models);
    if (!req.columns.empty()) {
        out += ",\"columns\":[";
        bool first = true;
        for (int c : req.columns) {
            if (!first)
                out += ",";
            first = false;
            out += std::to_string(c);
        }
        out += "]";
    }
    out += ",\"column\":" + std::to_string(req.column);
    if (req.iterations)
        out += ",\"iterations\":" + std::to_string(req.iterations);
    out += ",\"seed\":" + std::to_string(req.seed);
    out += ",\"budget\":" + std::to_string(req.budget);
    if (req.exact)
        out += ",\"exact\":true";
    return out + "}";
}

// ---- planning -------------------------------------------------------

namespace {

struct LoadedTest
{
    litmus::Test test;
    int minMicroSteps = 0;
};

/** Resolve one TestSpec — library id, inline source or scenario spec
 * — without ever being fatal (the daemon survives bad requests). */
std::optional<LoadedTest>
resolveTest(const TestSpec &spec, std::string *error)
{
    if (!spec.spec.empty()) {
        auto built = scenario::buildSpec(spec.spec, error);
        if (!built)
            return std::nullopt;
        return LoadedTest{std::move(built->test),
                          built->maxMicroSteps};
    }
    if (!spec.source.empty()) {
        litmus::ParseError err;
        auto test = litmus::parseTest(spec.source, &err);
        if (!test) {
            if (error)
                *error = "cannot parse inline test: " + err.message;
            return std::nullopt;
        }
        return LoadedTest{std::move(*test), 0};
    }
    for (auto &named : litmus::paperlib::allTests()) {
        if (named.id == spec.name)
            return LoadedTest{std::move(named.test), 0};
    }
    if (error) {
        std::vector<std::string> ids;
        for (const auto &named : litmus::paperlib::allTests())
            ids.push_back(named.id);
        *error = "unknown test '" + spec.name +
                 "' (library ids: " + join(ids, ", ") + ")";
    }
    return std::nullopt;
}

/** sim::chip() is fatal on unknown names; the daemon looks names up
 * itself so a typo'd request errors instead of killing the server. */
const sim::ChipProfile *
resolveChip(const std::string &name, std::string *error)
{
    for (const auto &c : sim::allChips()) {
        if (c.shortName == name)
            return &c;
    }
    if (error) {
        std::vector<std::string> names;
        for (const auto &c : sim::allChips())
            names.push_back(c.shortName);
        *error = "unknown chip '" + name +
                 "' (valid: " + join(names, ", ") + ")";
    }
    return nullptr;
}

bool
resolveChips(const Request &req,
             const std::vector<sim::ChipProfile> &fallback,
             std::vector<sim::ChipProfile> *out, std::string *error)
{
    if (req.chips.empty()) {
        *out = fallback;
        return true;
    }
    if (req.chips.size() == 1 && req.chips[0] == "all") {
        *out = sim::allChips();
        return true;
    }
    for (const auto &name : req.chips) {
        const sim::ChipProfile *chip = resolveChip(name, error);
        if (!chip)
            return false;
        out->push_back(*chip);
    }
    return true;
}

/** Resolve the model list: default ptx, "none" empties it, every id
 * must be a model backend (not "sim"/"mc"). */
bool
resolveModels(const Request &req, std::vector<std::string> *out,
              std::string *error)
{
    std::vector<std::string> models = req.models;
    if (models.empty())
        models.push_back("ptx");
    if (models.size() == 1 && models[0] == "none")
        return true;
    for (const auto &id : models) {
        if (!eval::modelBackendByName(id, error))
            return false;
        out->push_back(id);
    }
    return true;
}

bool
planSweep(const Request &req, Plan *plan, std::string *error)
{
    std::vector<sim::ChipProfile> chips;
    if (!resolveChips(req, {sim::chip("Titan")}, &chips, error))
        return false;
    std::vector<int> columns = req.columns;
    if (columns.empty()) {
        for (int c = 1; c <= 16; ++c)
            columns.push_back(c);
    }

    harness::RunConfig cfg;
    cfg.iterations = req.iterations ? req.iterations
                                    : harness::defaultIterations();
    cfg.seed = req.seed;

    for (const auto &spec : req.tests) {
        auto loaded = resolveTest(spec, error);
        if (!loaded)
            return false;
        harness::RunConfig test_cfg = cfg;
        test_cfg.maxMicroSteps =
            std::max(cfg.maxMicroSteps, loaded->minMicroSteps);
        for (const auto &chip : chips) {
            std::vector<std::string> quirks;
            auto to_run =
                eval::compileForChip(loaded->test, chip, &quirks);
            for (const auto &q : quirks)
                plan->notes.push_back("compile note (" +
                                      chip.shortName + "): " + q);
            if (!to_run) {
                plan->skipped.push_back(loaded->test.name + " on " +
                                        chip.shortName);
                continue;
            }
            for (int col : columns) {
                harness::Job job = harness::Job::fromConfig(
                    chip, *to_run, test_cfg);
                job.inc = sim::Incantations::fromColumn(col);
                job.label = loaded->test.name;
                plan->jobs.push_back(std::move(job));
            }
        }
    }
    return true;
}

bool
planValidate(const Request &req, Plan *plan, std::string *error)
{
    std::vector<std::string> models;
    if (!resolveModels(req, &models, error))
        return false;
    if (models.empty()) {
        if (error)
            *error = "validate needs at least one model";
        return false;
    }
    // Default chip set as in the CLI: the Nvidia chips of the paper's
    // result rows (the models target PTX).
    std::vector<sim::ChipProfile> nvidia;
    for (const auto &c : sim::resultChips()) {
        if (c.isNvidia())
            nvidia.push_back(c);
    }
    std::vector<sim::ChipProfile> chips;
    if (!resolveChips(req, nvidia, &chips, error))
        return false;

    harness::RunConfig cfg;
    cfg.iterations = req.iterations ? req.iterations
                                    : harness::defaultIterations();
    cfg.seed = req.seed;
    cfg.inc = sim::Incantations::fromColumn(req.column);

    for (const auto &spec : req.tests) {
        auto loaded = resolveTest(spec, error);
        if (!loaded)
            return false;
        if (!model::inModelScope(loaded->test)) {
            plan->notes.push_back(
                loaded->test.name +
                " is outside the model scope (.ca/volatile/loops,"
                " Sec. 5.5); skipped");
            ++plan->outOfScope;
            continue;
        }
        harness::RunConfig test_cfg = cfg;
        test_cfg.maxMicroSteps =
            std::max(cfg.maxMicroSteps, loaded->minMicroSteps);
        for (const auto &chip : chips) {
            std::vector<std::string> quirks;
            auto to_run =
                eval::compileForChip(loaded->test, chip, &quirks);
            for (const auto &q : quirks)
                plan->notes.push_back("compile note (" +
                                      chip.shortName + "): " + q);
            if (!to_run) {
                plan->skipped.push_back(loaded->test.name + " on " +
                                        chip.shortName);
                continue;
            }
            harness::Job sim_job = harness::Job::fromConfig(
                chip, *to_run, test_cfg);
            sim_job.label = loaded->test.name;
            plan->jobs.push_back(sim_job);
            if (req.exact) {
                harness::Job mc_job = sim_job;
                mc_job.backend = harness::kMcBackend;
                mc_job.iterations = req.budget;
                plan->jobs.push_back(std::move(mc_job));
            }
            for (const auto &model : models) {
                harness::Job model_job = sim_job;
                model_job.backend = model;
                plan->jobs.push_back(std::move(model_job));
            }
        }
    }
    if (plan->jobs.empty()) {
        if (error) {
            *error = plan->outOfScope
                         ? "no in-scope tests to validate"
                         : "nothing to validate — every cell was"
                           " miscompiled";
        }
        return false;
    }
    return true;
}

bool
planExplore(const Request &req, Plan *plan, std::string *error)
{
    std::vector<sim::ChipProfile> chips;
    if (!resolveChips(req, {sim::chip("Titan")}, &chips, error))
        return false;
    std::vector<std::string> models;
    if (!resolveModels(req, &models, error))
        return false;

    harness::RunConfig cfg;
    cfg.inc = sim::Incantations::fromColumn(req.column);
    cfg.iterations = req.budget;

    for (const auto &spec : req.tests) {
        auto loaded = resolveTest(spec, error);
        if (!loaded)
            return false;
        harness::RunConfig test_cfg = cfg;
        test_cfg.maxMicroSteps =
            std::max(cfg.maxMicroSteps, loaded->minMicroSteps);
        // Out-of-scope tests still explore — the reachable set is a
        // property of the machine — but skip the model join, exactly
        // as the batch CLI does.
        bool in_scope = model::inModelScope(loaded->test);
        if (!in_scope)
            ++plan->outOfScope;
        for (const auto &chip : chips) {
            std::vector<std::string> quirks;
            auto to_run =
                eval::compileForChip(loaded->test, chip, &quirks);
            for (const auto &q : quirks)
                plan->notes.push_back("compile note (" +
                                      chip.shortName + "): " + q);
            if (!to_run) {
                plan->skipped.push_back(loaded->test.name + " on " +
                                        chip.shortName);
                continue;
            }
            harness::Job mc_job = harness::Job::fromConfig(
                chip, *to_run, test_cfg);
            mc_job.backend = harness::kMcBackend;
            mc_job.label = loaded->test.name;
            plan->jobs.push_back(mc_job);
            if (in_scope) {
                for (const auto &model : models) {
                    harness::Job model_job = mc_job;
                    model_job.backend = model;
                    plan->jobs.push_back(std::move(model_job));
                }
            }
        }
    }
    if (plan->jobs.empty()) {
        if (error)
            *error = "nothing to explore — every cell was"
                     " miscompiled";
        return false;
    }
    return true;
}

} // namespace

bool
planJobs(const Request &req, Plan *plan, std::string *error)
{
    if (req.tests.empty()) {
        if (error)
            *error = "'" + req.cmd + "' needs a tests[] list";
        return false;
    }
    if (req.cmd == "sweep")
        return planSweep(req, plan, error);
    if (req.cmd == "validate")
        return planValidate(req, plan, error);
    // "scenario" is explore over scenario specs: the planner is the
    // same; the name documents the intent (and the CI smoke uses it).
    if (req.cmd == "explore" || req.cmd == "scenario")
        return planExplore(req, plan, error);
    if (error)
        *error = "cmd '" + req.cmd + "' carries no jobs";
    return false;
}

} // namespace gpulitmus::serve
