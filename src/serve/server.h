/**
 * @file
 * The `gpulitmus serve` daemon: a persistent validation service over
 * the evaluation engine and the durable result store.
 *
 * One Server owns one eval::Engine (whose in-process BatchCache is the
 * L1) layered over one ResultStore (the durable L2), and listens on a
 * Unix-domain socket and/or a loopback TCP port. Each accepted
 * connection gets a handler thread speaking the line-delimited JSON
 * protocol (serve/protocol.h, docs/SERVE.md): requests plan to job
 * batches through the same planner the batch CLI mirrors, run on the
 * shared engine, and stream back progress/result/summary events.
 * Results already in the store are answered without touching a
 * backend — the second submission of a corpus validation is pure
 * store reads.
 *
 * Durability/resume: every accepted job-carrying request is journaled
 * to STORE/pending/<seq>.req before it runs and unlinked after its
 * results are flushed. A daemon killed mid-request replays the journal
 * at the next startup: cells finished before the kill come straight
 * from the store, only the tail recomputes. The store itself is the
 * checkpoint, at result granularity.
 *
 * Shutdown: SIGINT/SIGTERM (via notifySignal) or a `shutdown` request
 * stops the accept loop, drains in-flight client handlers, flushes
 * the store, and exits cleanly — the serve-smoke CI job asserts the
 * clean exit.
 */

#ifndef GPULITMUS_SERVE_SERVER_H
#define GPULITMUS_SERVE_SERVER_H

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "eval/backend.h"
#include "serve/protocol.h"
#include "serve/store.h"

namespace gpulitmus::serve {

struct ServerOptions
{
    /** Unix-domain socket path; empty disables. Mind sockaddr_un's
     * ~100-byte path limit. */
    std::string socketPath;
    /** TCP port on 127.0.0.1; 0 disables. Loopback only: the daemon
     * trusts its requests. */
    int tcpPort = 0;
    /** Result-store directory; empty runs without durability (L1
     * cache only, no journal). */
    std::string storeDir;
    /** Engine worker threads; 0 = harness::defaultJobs(). */
    int threads = 0;
    /** Store log cap (StoreOptions::maxBytes); 0 = unbounded. */
    uint64_t maxStoreBytes = 0;
};

/** Daemon counters, served by the `stats` request. */
struct ServerStats
{
    uint64_t connections = 0;
    uint64_t requests = 0;
    uint64_t jobs = 0;        ///< jobs planned across all requests
    uint64_t replayedRequests = 0; ///< journal entries run at startup
};

class Server
{
  public:
    /** Bind the listeners, open the store, replay the journal.
     * Returns null + `error` when a listener or the store cannot be
     * set up. */
    static std::unique_ptr<Server> create(const ServerOptions &opts,
                                          std::string *error);
    ~Server();

    /** Accept-and-serve until shutdown() (or a signal via
     * notifySignal, or a `shutdown` request). Drains in-flight
     * handlers and flushes the store before returning. */
    void run();

    /** Request a graceful stop; safe from any thread. */
    void shutdown();

    /** Async-signal-safe shutdown trigger for sigaction handlers:
     * writes one byte to the self-pipe the accept loop polls. */
    static void notifySignal(int sig);

    const ServerOptions &options() const { return opts_; }
    ResultStore *store() { return store_.get(); }
    ServerStats stats() const;

  private:
    explicit Server(ServerOptions opts);

    bool setup(std::string *error);
    void replayJournal();
    void acceptLoop();
    void handleClient(int fd);

    /** One connected client: line-buffered reads, mutex-serialised
     * writes (progress events arrive from engine worker threads). */
    struct Client;

    void handleRequest(Client &client, const std::string &line);
    void runJobsRequest(Client &client, const Request &req);
    std::string journalPath(uint64_t seq) const;

    ServerOptions opts_;
    std::unique_ptr<ResultStore> store_;
    std::unique_ptr<eval::Engine> engine_;

    int unixFd_ = -1;
    int tcpFd_ = -1;
    std::atomic<bool> running_{false};
    std::atomic<uint64_t> journalSeq_{0};

    std::mutex clientsMutex_;
    std::vector<std::thread> clients_;

    mutable std::mutex statsMutex_;
    ServerStats stats_;

    /** Self-pipe shared with the signal handler (one daemon per
     * process; the CLI installs the handlers). */
    static int sSignalPipe[2];
};

} // namespace gpulitmus::serve

#endif // GPULITMUS_SERVE_SERVER_H
