#include "serve/store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/log.h"
#include "common/version.h"
#include "obs/metrics.h"

namespace gpulitmus::serve {

namespace {

constexpr char kFileMagic[4] = {'G', 'L', 'R', 'S'};
constexpr uint32_t kFormatVersion = 1;
constexpr uint32_t kRecordMagic = 0x47524543; // "GREC"

// ---- little-endian buffer codec ------------------------------------
// Fixed-width little-endian, so a log written on any supported host
// replays on any other (the toolchain targets are all LE; the codec
// makes that explicit rather than memcpy-ing host order).

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out += static_cast<char>((v >> (8 * i)) & 0xff);
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out += static_cast<char>((v >> (8 * i)) & 0xff);
}

void
putDouble(std::string &out, double v)
{
    uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    putU64(out, bits);
}

void
putStr(std::string &out, std::string_view s)
{
    putU64(out, s.size());
    out.append(s.data(), s.size());
}

void
putCountMap(std::string &out,
            const std::map<std::string, uint64_t> &m)
{
    putU64(out, m.size());
    for (const auto &[key, count] : m) {
        putStr(out, key);
        putU64(out, count);
    }
}

void
putStrSet(std::string &out, const std::set<std::string> &s)
{
    putU64(out, s.size());
    for (const auto &key : s)
        putStr(out, key);
}

/** Bounds-checked sequential reader; any overrun latches !ok and
 * zero/empty values, so decode failures degrade to "corrupt record"
 * instead of UB. */
struct Reader
{
    std::string_view data;
    size_t pos = 0;
    bool ok = true;

    uint32_t
    u32()
    {
        if (pos + 4 > data.size()) {
            ok = false;
            return 0;
        }
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(
                     static_cast<unsigned char>(data[pos + i]))
                 << (8 * i);
        pos += 4;
        return v;
    }

    uint64_t
    u64()
    {
        if (pos + 8 > data.size()) {
            ok = false;
            return 0;
        }
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(
                     static_cast<unsigned char>(data[pos + i]))
                 << (8 * i);
        pos += 8;
        return v;
    }

    double
    dbl()
    {
        uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string
    str()
    {
        uint64_t n = u64();
        if (!ok || pos + n > data.size()) {
            ok = false;
            return {};
        }
        std::string s(data.substr(pos, n));
        pos += n;
        return s;
    }

    std::map<std::string, uint64_t>
    countMap()
    {
        std::map<std::string, uint64_t> m;
        uint64_t n = u64();
        for (uint64_t i = 0; ok && i < n; ++i) {
            std::string key = str();
            uint64_t count = u64();
            if (ok)
                m.emplace(std::move(key), count);
        }
        return m;
    }

    std::set<std::string>
    strSet()
    {
        std::set<std::string> s;
        uint64_t n = u64();
        for (uint64_t i = 0; ok && i < n; ++i) {
            std::string key = str();
            if (ok)
                s.insert(std::move(key));
        }
        return s;
    }
};

constexpr uint8_t kHasHist = 1 << 0;
constexpr uint8_t kHasVerdict = 1 << 1;
constexpr uint8_t kHasExact = 1 << 2;

} // namespace

/**
 * The decoded payload of one store record: the job-independent half
 * of an EvalResult. The test, chip profile and label come back from
 * the job a fetch supplies; model witnesses are display-only and
 * deliberately not persisted (docs/SERVE.md).
 */
struct ResultStore::Record
{
    uint64_t seq = 0; ///< append order (in-memory, drives eviction)

    std::string backend;

    bool hasHist = false;
    std::map<std::string, uint64_t> counts;
    uint64_t observed = 0;
    uint64_t total = 0;
    uint64_t observedPer100k = 0;

    std::optional<model::Verdict> verdict;
    std::optional<mc::ExploreResult> exact;

    std::string
    encode() const
    {
        std::string out;
        uint8_t flags = 0;
        if (hasHist)
            flags |= kHasHist;
        if (verdict)
            flags |= kHasVerdict;
        if (exact)
            flags |= kHasExact;
        out += static_cast<char>(flags);
        putStr(out, backend);
        if (hasHist) {
            putCountMap(out, counts);
            putU64(out, observed);
            putU64(out, total);
            putU64(out, observedPer100k);
        }
        if (verdict) {
            const model::Verdict &v = *verdict;
            putStr(out, v.testName);
            putStr(out, v.modelName);
            putU64(out, v.numCandidates);
            putU64(out, v.numAllowed);
            putStrSet(out, v.allowedKeys);
            putStrSet(out, v.forbiddenKeys);
            out += static_cast<char>(v.conditionSatisfiable ? 1 : 0);
            out += static_cast<char>(v.outOfScope ? 1 : 0);
            putStr(out, v.verdict);
            putStr(out, v.forbiddingCheck);
        }
        if (exact) {
            const mc::ExploreResult &x = *exact;
            putStr(out, x.testName);
            putStr(out, x.chipName);
            putU64(out, static_cast<uint64_t>(x.column));
            out += static_cast<char>(x.complete ? 1 : 0);
            out += static_cast<char>(x.fairComplete ? 1 : 0);
            putCountMap(out, x.finals);
            putStrSet(out, x.satisfying);
            putU64(out, x.paths);
            putU64(out, x.stats.replays);
            putU64(out, x.stats.choicePoints);
            putU64(out, x.stats.stateCuts);
            putU64(out, x.stats.sleepSkips);
            putU64(out, x.stats.distinctStates);
            putU64(out, x.stats.peakDepth);
            putU64(out, x.stats.resumes);
            putU64(out, x.stats.replayedChoices);
            putDouble(out, x.millis);
        }
        return out;
    }

    static std::shared_ptr<Record>
    decode(std::string_view payload)
    {
        Reader r{payload};
        auto rec = std::make_shared<Record>();
        if (payload.empty())
            return nullptr;
        uint8_t flags = static_cast<uint8_t>(payload[0]);
        r.pos = 1;
        rec->backend = r.str();
        if (flags & kHasHist) {
            rec->hasHist = true;
            rec->counts = r.countMap();
            rec->observed = r.u64();
            rec->total = r.u64();
            rec->observedPer100k = r.u64();
        }
        if (flags & kHasVerdict) {
            model::Verdict v;
            v.testName = r.str();
            v.modelName = r.str();
            v.numCandidates = r.u64();
            v.numAllowed = r.u64();
            v.allowedKeys = r.strSet();
            v.forbiddenKeys = r.strSet();
            if (r.pos + 2 > r.data.size())
                r.ok = false;
            if (r.ok) {
                v.conditionSatisfiable = r.data[r.pos++] != 0;
                v.outOfScope = r.data[r.pos++] != 0;
            }
            v.verdict = r.str();
            v.forbiddingCheck = r.str();
            rec->verdict = std::move(v);
        }
        if (flags & kHasExact) {
            mc::ExploreResult x;
            x.testName = r.str();
            x.chipName = r.str();
            x.column = static_cast<int>(r.u64());
            if (r.pos + 2 > r.data.size())
                r.ok = false;
            if (r.ok) {
                x.complete = r.data[r.pos++] != 0;
                x.fairComplete = r.data[r.pos++] != 0;
            }
            x.finals = r.countMap();
            x.satisfying = r.strSet();
            x.paths = r.u64();
            x.stats.replays = r.u64();
            x.stats.choicePoints = r.u64();
            x.stats.stateCuts = r.u64();
            x.stats.sleepSkips = r.u64();
            x.stats.distinctStates = r.u64();
            x.stats.peakDepth = static_cast<size_t>(r.u64());
            x.stats.resumes = r.u64();
            x.stats.replayedChoices = r.u64();
            x.millis = r.dbl();
            rec->exact = std::move(x);
        }
        // A record must consume its payload exactly: trailing bytes
        // mean the encoder and decoder disagree — treat as corrupt.
        if (!r.ok || r.pos != payload.size())
            return nullptr;
        return rec;
    }
};

namespace {

/** Checksum over payload + key, so a bit flip anywhere in the record
 * body (including the stored digest) is caught. */
uint64_t
recordChecksum(std::string_view payload, const Digest128 &key)
{
    Hash128 h;
    h.putBytes(reinterpret_cast<const uint8_t *>(payload.data()),
               payload.size());
    h.put64(key.lo);
    h.put64(key.hi);
    Digest128 d = h.digest();
    return d.lo ^ d.hi;
}

std::string
headerBytes()
{
    std::string out(kFileMagic, sizeof kFileMagic);
    putU32(out, kFormatVersion);
    std::string_view abi = kAbiVersionString;
    putU32(out, static_cast<uint32_t>(abi.size()));
    out.append(abi.data(), abi.size());
    return out;
}

/** Record header size on disk: magic + payloadLen + key.lo + key.hi
 * + checksum. */
constexpr size_t kRecordHeader = 4 + 4 + 8 + 8 + 8;

std::string
recordBytes(const Digest128 &key, const std::string &payload)
{
    std::string out;
    out.reserve(kRecordHeader + payload.size());
    putU32(out, kRecordMagic);
    putU32(out, static_cast<uint32_t>(payload.size()));
    putU64(out, key.lo);
    putU64(out, key.hi);
    putU64(out, recordChecksum(payload, key));
    out += payload;
    return out;
}

bool
writeAll(int fd, std::string_view bytes)
{
    size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::write(fd, bytes.data() + off,
                            bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

// ---- ResultStore ----------------------------------------------------

ResultStore::ResultStore(std::string dir, StoreOptions opts)
    : dir_(std::move(dir)), opts_(opts)
{
}

ResultStore::~ResultStore()
{
    if (fd_ >= 0) {
        if (opts_.syncOnFlush)
            ::fsync(fd_);
        ::close(fd_);
    }
}

std::string
ResultStore::logPath() const
{
    return dir_ + "/results.log";
}

std::unique_ptr<ResultStore>
ResultStore::open(const std::string &dir, StoreOptions opts,
                  std::string *error)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        if (error)
            *error = "cannot create store directory '" + dir +
                     "': " + ec.message();
        return nullptr;
    }
    std::unique_ptr<ResultStore> store(new ResultStore(dir, opts));
    if (!store->loadLog(error))
        return nullptr;
    return store;
}

bool
ResultStore::loadLog(std::string *error)
{
    std::string path = logPath();
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) {
        if (error)
            *error = "cannot open '" + path +
                     "': " + std::strerror(errno);
        return false;
    }

    // Read the whole log (the index is in-memory anyway).
    std::string bytes;
    {
        char buf[1 << 16];
        for (;;) {
            ssize_t n = ::read(fd_, buf, sizeof buf);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                if (error)
                    *error = "cannot read '" + path +
                             "': " + std::strerror(errno);
                return false;
            }
            if (n == 0)
                break;
            bytes.append(buf, static_cast<size_t>(n));
        }
    }

    const std::string header = headerBytes();
    auto reset = [&](bool stale) -> bool {
        if (::ftruncate(fd_, 0) != 0 ||
            ::lseek(fd_, 0, SEEK_SET) < 0 ||
            !writeAll(fd_, header)) {
            if (error)
                *error = "cannot initialise '" + path +
                         "': " + std::strerror(errno);
            return false;
        }
        logBytes_ = header.size();
        stats_.resetStale = stale;
        return true;
    };

    if (bytes.empty())
        return reset(false);

    // Header check: wrong magic/format is a foreign file; a different
    // ABI stamp is a stale store from another binary generation. Both
    // reset — stale verdicts must never be served, and the next run
    // refills the log.
    if (bytes.size() < header.size() ||
        std::string_view(bytes).substr(0, header.size()) != header) {
        warn("result store %s is from another build generation (or"
             " corrupt); resetting", path.c_str());
        return reset(true);
    }

    // Replay records until the first torn/corrupt one, then truncate
    // there: everything before is intact (checksummed), everything
    // after is unreadable without trusting a corrupt length field.
    size_t pos = header.size();
    size_t good = pos;
    while (pos < bytes.size()) {
        if (pos + kRecordHeader > bytes.size())
            break; // torn record header
        Reader r{std::string_view(bytes), pos};
        uint32_t magic = r.u32();
        uint32_t len = r.u32();
        Digest128 key{0, 0};
        key.lo = r.u64();
        key.hi = r.u64();
        uint64_t checksum = r.u64();
        if (magic != kRecordMagic ||
            pos + kRecordHeader + len > bytes.size())
            break;
        std::string_view payload(bytes.data() + pos + kRecordHeader,
                                 len);
        if (recordChecksum(payload, key) != checksum)
            break;
        auto rec = Record::decode(payload);
        if (!rec)
            break;
        rec->seq = appendSeq_++;
        index_[key] = std::move(rec);
        ++stats_.loaded;
        pos += kRecordHeader + len;
        good = pos;
    }
    if (good < bytes.size()) {
        stats_.truncatedBytes = bytes.size() - good;
        warn("result store %s: truncating %llu corrupt/torn bytes"
             " (%llu records recovered)",
             path.c_str(),
             static_cast<unsigned long long>(stats_.truncatedBytes),
             static_cast<unsigned long long>(stats_.loaded));
        if (::ftruncate(fd_, static_cast<off_t>(good)) != 0) {
            if (error)
                *error = "cannot truncate '" + path +
                         "': " + std::strerror(errno);
            return false;
        }
    }
    if (::lseek(fd_, 0, SEEK_END) < 0) {
        if (error)
            *error = "cannot seek '" + path +
                     "': " + std::strerror(errno);
        return false;
    }
    logBytes_ = good;
    return true;
}

Digest128
ResultStore::digestFor(const harness::Job &job)
{
    Hash128 h;
    auto put = [&h](std::string_view s) {
        h.put64(s.size());
        h.putBytes(reinterpret_cast<const uint8_t *>(s.data()),
                   s.size());
    };
    put(kAbiVersionString);
    put(job.backend);
    put(job.test.str());
    if (job.isSim() || job.isMc()) {
        // Chip + column select the machine mechanisms; iterations are
        // the sampling depth / replay budget; the micro-step cap
        // bounds runs. Sim adds the seed (the RNG stream identity);
        // mc search is deterministic, so no seed axis — the same
        // exclusions as Job::cacheKey.
        put(job.chip.shortName);
        h.put64(static_cast<uint64_t>(job.inc.column()));
        h.put64(job.iterations);
        h.put64(static_cast<uint64_t>(job.maxMicroSteps));
        if (job.isSim())
            h.put64(job.seed);
        // The mc shard width scales the budget pool, which can flip
        // a bounded verdict to complete — a different result. Only
        // appended when sharded, so every durable record written
        // before (or without) parallel exploration keeps its digest:
        // no ABI bump, no store migration.
        if (job.isMc() && job.shards > 1)
            h.put64(static_cast<uint64_t>(job.shards));
    }
    return h.digest();
}

std::shared_ptr<const ResultStore::Record>
ResultStore::lookup(const Digest128 &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        obs::counter("store_misses_total").add();
        return nullptr;
    }
    ++stats_.hits;
    obs::counter("store_hits_total").add();
    return it->second;
}

std::optional<eval::EvalResult>
ResultStore::fetchEval(const harness::Job &job)
{
    auto rec = lookup(digestFor(job));
    if (!rec)
        return std::nullopt;

    eval::EvalResult result;
    auto owned = std::make_shared<harness::Job>(job);
    result.backend = rec->backend;
    if (rec->hasHist) {
        litmus::Histogram hist(owned->test);
        hist.restore(rec->counts, rec->observed, rec->total);
        result.hist = std::move(hist);
        result.observedPer100k = rec->observedPer100k;
    }
    if (rec->verdict)
        result.verdict = *rec->verdict;
    if (rec->exact)
        result.exact = *rec->exact;
    result.job = std::move(owned);
    result.fromStore = true;
    result.millis = 0.0;
    return result;
}

std::optional<harness::JobResult>
ResultStore::fetchSim(const harness::Job &job)
{
    if (!job.isSim())
        return std::nullopt;
    auto rec = lookup(digestFor(job));
    if (!rec || !rec->hasHist)
        return std::nullopt;

    auto owned = std::make_shared<harness::Job>(job);
    harness::JobResult result{owned, litmus::Histogram(owned->test)};
    result.hist.restore(rec->counts, rec->observed, rec->total);
    result.observedPer100k = rec->observedPer100k;
    result.fromStore = true;
    result.millis = 0.0;
    return result;
}

void
ResultStore::putEval(const harness::Job &job,
                     const eval::EvalResult &result)
{
    auto rec = std::make_shared<Record>();
    rec->backend = result.backend;
    if (result.hasHist()) {
        rec->hasHist = true;
        rec->counts = result.hist->counts();
        rec->observed = result.hist->observed();
        rec->total = result.hist->total();
        rec->observedPer100k = result.observedPer100k;
    }
    if (result.hasVerdict()) {
        rec->verdict = *result.verdict;
        // Witness executions are display-only (the conformance join
        // reads keys and flags) and have no stable encoding; drop
        // them so every store round trip is exact over what it keeps.
        rec->verdict->witness.reset();
        rec->verdict->forbiddenWitness.reset();
    }
    if (result.hasExact())
        rec->exact = *result.exact;
    putRecord(digestFor(job), std::move(rec));
}

void
ResultStore::putSim(const harness::Job &job,
                    const harness::JobResult &result)
{
    auto rec = std::make_shared<Record>();
    rec->backend = job.backend;
    rec->hasHist = true;
    rec->counts = result.hist.counts();
    rec->observed = result.hist.observed();
    rec->total = result.hist.total();
    rec->observedPer100k = result.observedPer100k;
    putRecord(digestFor(job), std::move(rec));
}

void
ResultStore::putRecord(const Digest128 &key,
                       std::shared_ptr<const Record> rec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (index_.count(key))
        return; // results are pure functions of jobs: first write wins
    appendLocked(key, rec);
}

bool
ResultStore::appendLocked(const Digest128 &key,
                          const std::shared_ptr<const Record> &rec)
{
    auto mutable_rec = std::const_pointer_cast<Record>(rec);
    mutable_rec->seq = appendSeq_++;
    std::string bytes = recordBytes(key, rec->encode());
    if (!writeAll(fd_, bytes)) {
        warn("result store %s: append failed: %s", logPath().c_str(),
             std::strerror(errno));
        return false;
    }
    logBytes_ += bytes.size();
    ++stats_.appends;
    obs::counter("store_appends_total").add();
    index_[key] = rec;
    if (opts_.maxBytes > 0 && logBytes_ > opts_.maxBytes)
        compactLocked();
    return true;
}

bool
ResultStore::compactLocked()
{
    // Rewrite the log from the index, dropping oldest-appended
    // entries until the projected size fits half the cap (so each
    // compaction buys headroom instead of thrashing). Temp file +
    // rename keeps a crash mid-compaction recoverable: the directory
    // holds either the old log or the new one, both internally valid.
    std::vector<std::pair<const Digest128 *,
                          std::shared_ptr<const Record>>>
        entries;
    entries.reserve(index_.size());
    for (const auto &[key, rec] : index_)
        entries.push_back({&key, rec});
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  return a.second->seq < b.second->seq;
              });

    std::vector<std::string> encoded;
    encoded.reserve(entries.size());
    uint64_t total = headerBytes().size();
    for (const auto &[key, rec] : entries) {
        encoded.push_back(recordBytes(*key, rec->encode()));
        total += encoded.back().size();
    }
    size_t drop = 0;
    const uint64_t target = opts_.maxBytes / 2;
    while (drop < entries.size() && total > target) {
        total -= encoded[drop].size();
        ++drop;
    }

    std::string tmp = logPath() + ".compact";
    int tmp_fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (tmp_fd < 0) {
        warn("result store %s: compaction failed to open temp: %s",
             logPath().c_str(), std::strerror(errno));
        return false;
    }
    bool ok = writeAll(tmp_fd, headerBytes());
    for (size_t i = drop; ok && i < encoded.size(); ++i)
        ok = writeAll(tmp_fd, encoded[i]);
    if (ok && opts_.syncOnFlush)
        ok = ::fsync(tmp_fd) == 0;
    ::close(tmp_fd);
    if (!ok || ::rename(tmp.c_str(), logPath().c_str()) != 0) {
        warn("result store %s: compaction failed: %s",
             logPath().c_str(), std::strerror(errno));
        ::unlink(tmp.c_str());
        return false;
    }

    for (size_t i = 0; i < drop; ++i)
        index_.erase(*entries[i].first);
    stats_.evicted += drop;
    logBytes_ = total;

    // The old fd still points at the unlinked inode; reopen the new
    // log for subsequent appends.
    int new_fd = ::open(logPath().c_str(), O_WRONLY | O_APPEND);
    if (new_fd < 0) {
        warn("result store %s: cannot reopen after compaction: %s",
             logPath().c_str(), std::strerror(errno));
        return false;
    }
    ::close(fd_);
    fd_ = new_fd;
    return true;
}

bool
ResultStore::flush(std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Appends hit the kernel synchronously (::write); flush makes
    // them durable.
    if (opts_.syncOnFlush && ::fsync(fd_) != 0) {
        if (error)
            *error = "fsync '" + logPath() +
                     "' failed: " + std::strerror(errno);
        return false;
    }
    return true;
}

size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
}

StoreStats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace gpulitmus::serve
