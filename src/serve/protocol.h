/**
 * @file
 * The `gpulitmus serve` wire protocol: line-delimited JSON requests
 * and events, plus the shared request -> job planner.
 *
 * One request is one JSON object on one line; the daemon answers with
 * a stream of JSON event lines for that request and is ready for the
 * next line when the terminal `done` (or `error`) event has been
 * written. Full request/event schemas are documented in docs/SERVE.md;
 * the short form:
 *
 *   request: {"cmd":"validate","id":"r1","tests":[{"name":"mp"}],
 *             "chips":["Titan"],"models":["ptx"],"column":16,...}
 *   events:  {"event":"accepted","id":"r1","jobs":3}
 *            {"event":"progress","id":"r1","done":1,"total":2,...}
 *            {"event":"result","id":"r1",...}        (one per job)
 *            {"event":"summary","id":"r1","exit":0,...}
 *            {"event":"done","id":"r1"}
 *
 * The planner (planJobs) mirrors the batch CLI's job construction —
 * per-chip compilation via eval::compileForChip, model-scope policy
 * via model::inModelScope, the same defaults (chips, models, seeds,
 * budgets) — so a request submitted over the socket evaluates
 * bit-identically to the equivalent `gpulitmus sweep/validate/explore`
 * invocation. That equivalence is the serve-vs-batch acceptance test.
 */

#ifndef GPULITMUS_SERVE_PROTOCOL_H
#define GPULITMUS_SERVE_PROTOCOL_H

#include <optional>
#include <string>
#include <vector>

#include "harness/campaign.h"

namespace gpulitmus::serve {

/** One test reference inside a request: exactly one of the fields is
 * set — a built-in paper-library id, raw .litmus source, or a
 * registry-scenario spec ("scenario:<name>[,k=v...]"). */
struct TestSpec
{
    std::string name;   ///< paper-library id (e.g. "mp", "coRR")
    std::string source; ///< inline .litmus text
    std::string spec;   ///< scenario spec
};

/** A parsed request line. Defaults mirror the batch CLI flags. */
struct Request
{
    /** hello | list | stats | metrics | sweep | validate | explore |
     * scenario | shutdown. "scenario" is explore with scenario-spec
     * tests — the whole-application entry point; "metrics" returns
     * the telemetry registry (obs/metrics.h) as JSON plus Prometheus
     * text exposition. */
    std::string cmd;
    /** Client-chosen correlation id, echoed in every event. */
    std::string id;

    std::vector<TestSpec> tests;
    /** Chip short names; "all" expands the registry. Empty: the
     * per-command default (sweep/explore: Titan; validate: the
     * Nvidia result chips). */
    std::vector<std::string> chips;
    /** Model backend ids; "none" disables the join. Empty: ptx. */
    std::vector<std::string> models;

    /** Incantation columns (sweep). Empty: 1..16. */
    std::vector<int> columns;
    /** Incantation column (validate/explore/scenario). */
    int column = 16;
    /** Iterations per sim cell; 0 = harness::defaultIterations(). */
    uint64_t iterations = 0;
    /** Base seed — the batch CLI's --seed default. */
    uint64_t seed = 0x6c69;
    /** Exploration replay budget (mc cells). */
    uint64_t budget = 1 << 20;
    /** validate only: add one exhaustive exploration per sim cell. */
    bool exact = false;
};

/** Parse one request line. nullopt + `error` on malformed JSON, a
 * missing/unknown cmd, or bad field types. */
std::optional<Request> parseRequest(const std::string &line,
                                    std::string *error);

/** Render a Request back to its wire line (no trailing newline); the
 * client side of parseRequest. */
std::string renderRequest(const Request &req);

/** The job list a request plans to, plus everything the planner had
 * to say about it. */
struct Plan
{
    std::vector<harness::Job> jobs;
    /** (test, chip) cells dropped as miscompiled ("<test> on <chip>"). */
    std::vector<std::string> skipped;
    /** Compile quirks and scope notes, human-readable. */
    std::vector<std::string> notes;
    /** Tests excluded from the model join (out of model scope). */
    size_t outOfScope = 0;
};

/**
 * Expand a job-carrying request (sweep/validate/explore/scenario)
 * into its job list, mirroring the batch CLI exactly. False + `error`
 * on unresolvable tests/chips/models or an empty plan (every cell
 * miscompiled / nothing in scope).
 */
bool planJobs(const Request &req, Plan *plan, std::string *error);

/** JSON string field helper shared by the server/client event code:
 * `"key":"escaped"`. */
std::string jsonField(const std::string &key, const std::string &value);

} // namespace gpulitmus::serve

#endif // GPULITMUS_SERVE_PROTOCOL_H
