/**
 * @file
 * The durable, content-addressed result store: a verdict for a given
 * job never needs recomputing.
 *
 * Every engine result — a sampled histogram, a model verdict, an
 * exact exploration — is a pure function of its job (harness/batch.h
 * establishes that contract for the in-process cache; this layer
 * extends it across process lifetimes). The store persists results on
 * disk keyed by a 128-bit content digest of the job (Digest128,
 * common/hash.h) folded with the compiled-in ABI stamp
 * (common/version.h), so:
 *
 *  - two binaries of the same ABI generation share verdicts byte for
 *    byte (the warm half of BENCH_serve.json);
 *  - a binary of a *different* generation never serves a stale entry:
 *    the stamp is in the digest AND in the file header, so even a
 *    change to the digest function itself is caught.
 *
 * On-disk format (DIR/results.log), designed for crash safety over
 * compactness:
 *
 *   header:  "GLRS" u32(formatVersion) u32(abiLen) abi-bytes
 *   record:  u32(kRecordMagic) u32(payloadLen)
 *            u64(digest.lo) u64(digest.hi) u64(payloadChecksum)
 *            payload-bytes
 *
 * The log is append-only; the full index lives in memory (decoded
 * records, shared_ptr-served). open() replays the log: a torn tail
 * (crash mid-append) or a corrupt record (checksum/magic/length
 * mismatch) truncates the log at the last intact record — everything
 * before it is served, everything after is recomputed, nothing wrong
 * is ever returned. A header from another ABI generation resets the
 * log entirely (stale verdicts are worthless, ISSUE rule: never
 * served).
 *
 * Payloads deliberately exclude the job's test/chip (the requester
 * supplies those — a hit re-points the stored result at the submitted
 * job, exactly like BatchCache::servedFrom) and the model witnesses
 * (display-only; the conformance join never reads them — documented
 * in docs/SERVE.md).
 *
 * Capacity: maxBytes (StoreOptions) bounds the log. When an append
 * would exceed it, the log is compacted — rewritten from the index
 * dropping oldest-appended entries down to half the cap (temp file +
 * atomic rename, so a crash mid-compaction leaves either the old or
 * the new log, both valid).
 *
 * Thread safety: all public methods are safe from concurrent engine
 * workers and daemon client threads (one mutex; lookups copy a
 * shared_ptr, decodes happen once at load/put).
 */

#ifndef GPULITMUS_SERVE_STORE_H
#define GPULITMUS_SERVE_STORE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "eval/backend.h"
#include "harness/campaign.h"

namespace gpulitmus::serve {

struct StoreOptions
{
    /** Log size cap in bytes; 0 = unbounded. Exceeding it compacts
     * the log, evicting oldest-appended entries to half the cap. */
    uint64_t maxBytes = 0;
    /** fsync on every flush() (daemons); plain CLI store use keeps
     * it off and relies on the OS cache + torn-tail recovery. */
    bool syncOnFlush = true;
};

/** Counters over one open store's lifetime (monotonic). */
struct StoreStats
{
    uint64_t hits = 0;      ///< fetches served from the store
    uint64_t misses = 0;    ///< fetches that found nothing
    uint64_t appends = 0;   ///< records written by this process
    uint64_t loaded = 0;    ///< intact records replayed at open()
    uint64_t evicted = 0;   ///< records dropped by compaction
    /** Bytes cut from the log at open() (torn tail / corruption). */
    uint64_t truncatedBytes = 0;
    /** The log belonged to another ABI generation and was reset. */
    bool resetStale = false;
};

/**
 * One persistent result store rooted at a directory. Open one per
 * daemon (or per CLI invocation with --store); concurrent *processes*
 * on one directory are not coordinated — the daemon owns its store,
 * and the offline CLI path expects one process at a time (the ops
 * notes in docs/SERVE.md).
 */
class ResultStore
{
  public:
    ~ResultStore();

    /** Open (creating the directory/log as needed). Returns null and
     * sets `error` when the directory cannot be created or the log
     * cannot be opened for append. */
    static std::unique_ptr<ResultStore>
    open(const std::string &dir, StoreOptions opts = {},
         std::string *error = nullptr);

    /**
     * Content digest of a job, ABI stamp folded in. Mirrors the
     * *semantics* of harness::Job::cacheKey — model jobs key on
     * (backend, test text) only; sim jobs add chip/column/seed; mc
     * jobs add chip/column/budget but no seed — over the job's
     * content rather than 64-bit fnv1a folds, so records are immune
     * to in-process hash-seed choices and wide enough to address
     * every result a fleet of sweeps can produce.
     */
    static Digest128 digestFor(const harness::Job &job);

    /** Serve an evaluation result: null on miss; on hit the result is
     * re-pointed at `job` (label, owned test), `fromStore` set,
     * `millis` zeroed. */
    std::optional<eval::EvalResult> fetchEval(const harness::Job &job);

    /** fetchEval restricted to the simulator shape, for
     * harness::Engine (sweep --store). */
    std::optional<harness::JobResult>
    fetchSim(const harness::Job &job);

    /** Persist a computed result (idempotent: an existing digest is
     * left alone — results are pure functions of jobs, so the first
     * write is as good as any). */
    void putEval(const harness::Job &job,
                 const eval::EvalResult &result);
    void putSim(const harness::Job &job,
                const harness::JobResult &result);

    /** Push appended records to disk (and fsync when syncOnFlush).
     * False + `error` when the write-back fails. */
    bool flush(std::string *error = nullptr);

    size_t size() const;
    StoreStats stats() const;
    const std::string &dir() const { return dir_; }
    std::string logPath() const;

  private:
    ResultStore(std::string dir, StoreOptions opts);

    struct Record; ///< decoded payload + append order (store.cc)

    bool loadLog(std::string *error);
    bool appendLocked(const Digest128 &key,
                      const std::shared_ptr<const Record> &rec);
    bool compactLocked();
    void putRecord(const Digest128 &key,
                   std::shared_ptr<const Record> rec);
    std::shared_ptr<const Record> lookup(const Digest128 &key);

    std::string dir_;
    StoreOptions opts_;

    mutable std::mutex mutex_;
    std::unordered_map<Digest128, std::shared_ptr<const Record>,
                       Digest128::Hasher>
        index_;
    uint64_t appendSeq_ = 0; ///< eviction order stamp
    int fd_ = -1;            ///< append handle on results.log
    uint64_t logBytes_ = 0;  ///< current log length
    StoreStats stats_;
};

} // namespace gpulitmus::serve

#endif // GPULITMUS_SERVE_STORE_H
