#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/log.h"
#include "common/strutil.h"
#include "common/version.h"
#include "litmus/library.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/registry.h"
#include "sim/chip.h"

namespace gpulitmus::serve {

int Server::sSignalPipe[2] = {-1, -1};

namespace {

/** Start an event object: `{"event":"<name>"[,"id":"<id>"]`. The
 * caller appends fields and the closing brace. */
std::string
eventHead(const char *event, const std::string &id)
{
    std::string e = std::string("{\"event\":\"") + event + "\"";
    if (!id.empty())
        e += "," + jsonField("id", id);
    return e;
}

std::string
strArrayJson(const std::vector<std::string> &values)
{
    std::string out = "[";
    bool first = true;
    for (const auto &v : values) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(v) + "\"";
    }
    return out + "]";
}

/** The registry as one JSON object — the daemon's answer to `list`,
 * ABI stamp included so clients can check compatibility. */
std::string
registryJson()
{
    std::string out = "\"abi\":\"";
    out += kAbiVersionString;
    out += "\",\"abi_version\":" + std::to_string(kAbiVersion);
    out += ",\"scenarios\":[";
    bool first = true;
    for (const auto &s : scenario::all()) {
        if (!first)
            out += ",";
        first = false;
        out += "{" + jsonField("name", s.name) + "," +
               jsonField("spec", "scenario:" + s.name) + "," +
               jsonField("summary", s.summary) + "}";
    }
    out += "],\"library\":[";
    first = true;
    for (const auto &t : litmus::paperlib::allTests()) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(t.id) + "\"";
    }
    out += "],\"chips\":[";
    first = true;
    for (const auto &c : sim::allChips()) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(c.shortName) + "\"";
    }
    out += "],\"models\":" +
           strArrayJson(eval::builtinModelNames());
    out += ",\"backends\":" +
           strArrayJson(eval::builtinBackendNames());
    return out;
}

bool
writeAll(int fd, std::string_view bytes)
{
    size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n =
            ::send(fd, bytes.data() + off, bytes.size() - off,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

// ---- Client ---------------------------------------------------------

struct Server::Client
{
    int fd = -1;
    std::string inbuf = {};
    std::mutex writeMutex = {};

    /** Write one event line; serialised because progress events come
     * from engine worker threads while the handler owns the socket. */
    bool
    writeLine(const std::string &line)
    {
        std::lock_guard<std::mutex> lock(writeMutex);
        return writeAll(fd, line + "\n");
    }

    /**
     * Next request line; polls so the handler can notice daemon
     * shutdown instead of blocking in read() forever. Returns false
     * on EOF/error or when `running` drops.
     */
    bool
    readLine(std::string *line, const std::atomic<bool> &running)
    {
        for (;;) {
            auto nl = inbuf.find('\n');
            if (nl != std::string::npos) {
                *line = inbuf.substr(0, nl);
                inbuf.erase(0, nl + 1);
                if (!line->empty() && line->back() == '\r')
                    line->pop_back();
                return true;
            }
            if (!running.load())
                return false;
            struct pollfd pfd{fd, POLLIN, 0};
            int ready = ::poll(&pfd, 1, 250);
            if (ready < 0 && errno != EINTR)
                return false;
            if (ready <= 0)
                continue;
            char buf[4096];
            ssize_t n = ::recv(fd, buf, sizeof buf, 0);
            if (n == 0)
                return false; // peer closed
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            inbuf.append(buf, static_cast<size_t>(n));
        }
    }
};

// ---- lifecycle ------------------------------------------------------

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {}

Server::~Server()
{
    if (unixFd_ >= 0) {
        ::close(unixFd_);
        ::unlink(opts_.socketPath.c_str());
    }
    if (tcpFd_ >= 0)
        ::close(tcpFd_);
}

std::unique_ptr<Server>
Server::create(const ServerOptions &opts, std::string *error)
{
    std::unique_ptr<Server> server(new Server(opts));
    if (!server->setup(error))
        return nullptr;
    return server;
}

bool
Server::setup(std::string *error)
{
    if (opts_.socketPath.empty() && opts_.tcpPort == 0) {
        if (error)
            *error = "serve needs a --socket path or a --port";
        return false;
    }

    if (!opts_.storeDir.empty()) {
        StoreOptions sopts;
        sopts.maxBytes = opts_.maxStoreBytes;
        store_ = ResultStore::open(opts_.storeDir, sopts, error);
        if (!store_)
            return false;
    }

    eval::EngineOptions eopts;
    eopts.threads = opts_.threads;
    eopts.store = store_.get();
    engine_ = std::make_unique<eval::Engine>(eopts);

    if (sSignalPipe[0] < 0) {
        if (::pipe(sSignalPipe) != 0) {
            if (error)
                *error = std::string("cannot create signal pipe: ") +
                         std::strerror(errno);
            return false;
        }
        for (int fd : sSignalPipe)
            ::fcntl(fd, F_SETFL, O_NONBLOCK);
    }

    if (!opts_.socketPath.empty()) {
        struct sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opts_.socketPath.size() >= sizeof addr.sun_path) {
            if (error)
                *error = "socket path too long (" +
                         std::to_string(opts_.socketPath.size()) +
                         " bytes; limit " +
                         std::to_string(sizeof addr.sun_path - 1) +
                         ")";
            return false;
        }
        std::strncpy(addr.sun_path, opts_.socketPath.c_str(),
                     sizeof addr.sun_path - 1);
        ::unlink(opts_.socketPath.c_str()); // stale socket from a kill
        unixFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (unixFd_ < 0 ||
            ::bind(unixFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0 ||
            ::listen(unixFd_, 16) != 0) {
            if (error)
                *error = "cannot listen on '" + opts_.socketPath +
                         "': " + std::strerror(errno);
            return false;
        }
    }

    if (opts_.tcpPort != 0) {
        struct sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(opts_.tcpPort));
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        tcpFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        int one = 1;
        if (tcpFd_ >= 0)
            ::setsockopt(tcpFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof one);
        if (tcpFd_ < 0 ||
            ::bind(tcpFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0 ||
            ::listen(tcpFd_, 16) != 0) {
            if (error)
                *error = "cannot listen on 127.0.0.1:" +
                         std::to_string(opts_.tcpPort) + ": " +
                         std::strerror(errno);
            return false;
        }
    }

    replayJournal();
    return true;
}

void
Server::notifySignal(int)
{
    if (sSignalPipe[1] >= 0) {
        char byte = 1;
        // Best effort; a full pipe already means a pending wakeup.
        [[maybe_unused]] ssize_t n =
            ::write(sSignalPipe[1], &byte, 1);
    }
}

void
Server::shutdown()
{
    running_.store(false);
    notifySignal(0);
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    return stats_;
}

// ---- journal --------------------------------------------------------

std::string
Server::journalPath(uint64_t seq) const
{
    return opts_.storeDir + "/pending/" + std::to_string(seq) +
           ".req";
}

void
Server::replayJournal()
{
    if (!store_)
        return;
    std::string dir = opts_.storeDir + "/pending";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return;

    std::vector<std::pair<uint64_t, std::string>> entries;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.path().extension() != ".req")
            continue;
        auto seq = parseInt(entry.path().stem().string());
        entries.push_back(
            {seq ? static_cast<uint64_t>(*seq) : 0,
             entry.path().string()});
    }
    std::sort(entries.begin(), entries.end());
    for (const auto &[seq, path] : entries)
        journalSeq_ = std::max(journalSeq_.load(), seq + 1);

    // Requests interrupted by a crash/kill re-run to completion:
    // every cell already in the store is a hit, only the tail
    // computes. No client is attached, so results go to the store
    // alone — the resubmitting client gets them as store hits.
    for (const auto &[seq, path] : entries) {
        std::ifstream in(path);
        std::string line;
        if (!in || !std::getline(in, line)) {
            ::unlink(path.c_str());
            continue;
        }
        std::string error;
        auto req = parseRequest(line, &error);
        Plan plan;
        if (!req || !planJobs(*req, &plan, &error)) {
            warn("serve: dropping unreplayable journal entry %s: %s",
                 path.c_str(), error.c_str());
            ::unlink(path.c_str());
            continue;
        }
        inform("serve: replaying interrupted request '%s' (%zu jobs)",
               req->id.c_str(), plan.jobs.size());
        engine_->run(plan.jobs);
        store_->flush();
        ::unlink(path.c_str());
        obs::counter("serve_journal_replays_total").add();
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++stats_.replayedRequests;
    }
}

// ---- accept loop ----------------------------------------------------

void
Server::run()
{
    running_.store(true);
    acceptLoop();

    // Drain: handler threads notice running_ == false at their next
    // poll tick and finish their in-flight request first.
    std::vector<std::thread> clients;
    {
        std::lock_guard<std::mutex> lock(clientsMutex_);
        clients.swap(clients_);
    }
    for (auto &t : clients)
        t.join();

    if (store_) {
        std::string error;
        if (!store_->flush(&error))
            warn("serve: final store flush failed: %s",
                 error.c_str());
    }
}

void
Server::acceptLoop()
{
    // The signal pipe is static (shared by every Server this process
    // creates, because signal handlers need a fixed target). A
    // previous server that exited its loop on the running_ flag alone
    // — shutdown() raced with an accept — leaves its wake-up byte
    // unread, and that stale byte would shut this server down on its
    // first poll. Drain before looping; the pipe is non-blocking.
    char stale[64];
    while (::read(sSignalPipe[0], stale, sizeof stale) > 0) {
    }
    while (running_.load()) {
        struct pollfd pfds[3];
        nfds_t n = 0;
        int unix_slot = -1, tcp_slot = -1;
        if (unixFd_ >= 0) {
            unix_slot = static_cast<int>(n);
            pfds[n++] = {unixFd_, POLLIN, 0};
        }
        if (tcpFd_ >= 0) {
            tcp_slot = static_cast<int>(n);
            pfds[n++] = {tcpFd_, POLLIN, 0};
        }
        int sig_slot = static_cast<int>(n);
        pfds[n++] = {sSignalPipe[0], POLLIN, 0};

        int ready = ::poll(pfds, n, 500);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: poll failed: %s", std::strerror(errno));
            break;
        }
        if (ready == 0)
            continue;
        if (pfds[sig_slot].revents & POLLIN) {
            char drain[64];
            while (::read(sSignalPipe[0], drain, sizeof drain) > 0) {
            }
            running_.store(false);
            break;
        }
        for (int slot : {unix_slot, tcp_slot}) {
            if (slot < 0 || !(pfds[slot].revents & POLLIN))
                continue;
            int fd = ::accept(pfds[slot].fd, nullptr, nullptr);
            if (fd < 0)
                continue;
            {
                std::lock_guard<std::mutex> lock(statsMutex_);
                ++stats_.connections;
            }
            std::lock_guard<std::mutex> lock(clientsMutex_);
            clients_.emplace_back(
                [this, fd]() { handleClient(fd); });
        }
    }
}

void
Server::handleClient(int fd)
{
    Client client{fd};
    obs::counter("serve_connections_total").add();
    obs::gauge("serve_clients_connected").add(1);
    // Handshake first: the client learns the ABI generation before
    // submitting anything, so a stale client can bail out early.
    client.writeLine(eventHead("hello", "") +
                     ",\"abi\":\"" + kAbiVersionString +
                     "\",\"abi_version\":" +
                     std::to_string(kAbiVersion) +
                     ",\"threads\":" +
                     std::to_string(engine_->threads()) +
                     ",\"store_records\":" +
                     std::to_string(store_ ? store_->size() : 0) +
                     "}");

    std::string line;
    while (client.readLine(&line, running_)) {
        if (trim(line).empty())
            continue;
        handleRequest(client, line);
    }
    ::close(fd);
    obs::gauge("serve_clients_connected").add(-1);
}

// ---- request handling -----------------------------------------------

void
Server::handleRequest(Client &client, const std::string &line)
{
    std::string error;
    auto req = parseRequest(line, &error);
    if (!req) {
        client.writeLine(eventHead("error", "") + "," +
                         jsonField("message", error) + "}");
        return;
    }
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++stats_.requests;
    }
    obs::counter("serve_requests_total").add();
    obs::TimerScope latency(
        obs::timer("serve_request_latency_us"));
    obs::Span span("request " + req->cmd, "serve");

    if (req->cmd == "hello") {
        client.writeLine(eventHead("hello", req->id) +
                         ",\"abi\":\"" + kAbiVersionString +
                         "\",\"abi_version\":" +
                         std::to_string(kAbiVersion) + "}");
        return;
    }
    if (req->cmd == "list") {
        client.writeLine(eventHead("list", req->id) + "," +
                         registryJson() + "}");
        client.writeLine(eventHead("done", req->id) + "}");
        return;
    }
    if (req->cmd == "stats") {
        ServerStats s = stats();
        StoreStats ss = store_ ? store_->stats() : StoreStats{};
        client.writeLine(
            eventHead("stats", req->id) +
            ",\"connections\":" + std::to_string(s.connections) +
            ",\"requests\":" + std::to_string(s.requests) +
            ",\"jobs\":" + std::to_string(s.jobs) +
            ",\"replayed_requests\":" +
            std::to_string(s.replayedRequests) +
            ",\"store_records\":" +
            std::to_string(store_ ? store_->size() : 0) +
            ",\"store_hits\":" + std::to_string(ss.hits) +
            ",\"store_misses\":" + std::to_string(ss.misses) +
            ",\"engine_cache_hits\":" +
            std::to_string(engine_->cacheHits()) + "}");
        client.writeLine(eventHead("done", req->id) + "}");
        return;
    }
    if (req->cmd == "metrics") {
        // The whole telemetry registry, twice: structured for
        // `status --watch`/scripts, Prometheus text exposition for
        // scrapers (escaped into one JSON string; a scrape proxy
        // unwraps it — docs/OBSERVABILITY.md has the recipe).
        const auto &registry = obs::Registry::instance();
        client.writeLine(
            eventHead("metrics", req->id) +
            ",\"enabled\":" + (obs::enabled() ? "true" : "false") +
            ",\"metrics\":" + registry.json() + "," +
            jsonField("prometheus", registry.prometheus()) + "}");
        client.writeLine(eventHead("done", req->id) + "}");
        return;
    }
    if (req->cmd == "shutdown") {
        client.writeLine(eventHead("done", req->id) + "}");
        shutdown();
        return;
    }
    runJobsRequest(client, *req);
}

void
Server::runJobsRequest(Client &client, const Request &req)
{
    Plan plan;
    std::string error;
    if (!planJobs(req, &plan, &error)) {
        client.writeLine(eventHead("error", req.id) + "," +
                         jsonField("message", error) + "}");
        return;
    }
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        stats_.jobs += plan.jobs.size();
    }

    // Journal before running: a daemon killed mid-request replays
    // this entry at the next startup and completes it from the store.
    std::string journal;
    if (store_) {
        journal = journalPath(journalSeq_.fetch_add(1));
        std::ofstream out(journal);
        if (out)
            out << renderRequest(req) << "\n";
        else
            journal.clear();
    }

    client.writeLine(eventHead("accepted", req.id) +
                     ",\"jobs\":" +
                     std::to_string(plan.jobs.size()) +
                     ",\"skipped\":" + strArrayJson(plan.skipped) +
                     ",\"notes\":" + strArrayJson(plan.notes) + "}");

    eval::ConformanceSink conformance;

    // Progress at two granularities. Per-job events come from the
    // engine's workers as jobs complete; wall-clock heartbeats come
    // from a monitor thread so a *single* long job — an exploration
    // burning 128k replays between completions — is visibly alive.
    // The monitor samples the telemetry registry (the explorer ticks
    // mc_replays_total per replay, mc/explorer.cc) and derives
    // jobs/sec and an ETA; it only observes, so results are
    // unchanged.
    std::atomic<size_t> jobs_done{0};
    auto progress = [&client, &req, &jobs_done](
                        size_t done, size_t total,
                        const eval::EvalResult &r) {
        jobs_done.store(done);
        client.writeLine(eventHead("progress", req.id) +
                         ",\"done\":" + std::to_string(done) +
                         ",\"total\":" + std::to_string(total) +
                         "," + jsonField("label", r.label()) + "}");
    };

    std::mutex hb_mutex;
    std::condition_variable hb_cv;
    bool hb_stop = false;
    std::thread monitor([&]() {
        const auto t0 = std::chrono::steady_clock::now();
        uint64_t last_replays =
            obs::counter("mc_replays_total").value();
        std::unique_lock<std::mutex> lock(hb_mutex);
        while (!hb_cv.wait_for(lock, std::chrono::seconds(2),
                               [&] { return hb_stop; })) {
            auto elapsed_ms =
                std::chrono::duration_cast<
                    std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            size_t done = jobs_done.load();
            uint64_t replays =
                obs::counter("mc_replays_total").value();
            double secs =
                static_cast<double>(elapsed_ms) / 1000.0;
            double rate = secs > 0.0
                              ? static_cast<double>(done) / secs
                              : 0.0;
            std::string e = eventHead("progress", req.id);
            e += ",\"heartbeat\":true";
            e += ",\"done\":" + std::to_string(done);
            e += ",\"total\":" +
                 std::to_string(plan.jobs.size());
            e += ",\"elapsed_ms\":" + std::to_string(elapsed_ms);
            e += ",\"jobs_per_sec\":" + strprintf("%.3f", rate);
            if (rate > 0.0 && plan.jobs.size() > done) {
                double eta =
                    static_cast<double>(plan.jobs.size() - done) /
                    rate;
                e += ",\"eta_sec\":" + strprintf("%.1f", eta);
            }
            e += ",\"mc_replays_delta\":" +
                 std::to_string(replays - last_replays);
            last_replays = replays;
            client.writeLine(e + "}");
        }
    });

    auto results =
        engine_->run(plan.jobs, {&conformance}, progress);
    {
        std::lock_guard<std::mutex> lock(hb_mutex);
        hb_stop = true;
    }
    hb_cv.notify_all();
    monitor.join();

    uint64_t served = 0;
    for (const auto &r : results) {
        served += r.fromStore ? 1 : 0;
        client.writeLine(eventHead("result", req.id) +
                         ",\"cell\":" + eval::evalCellJson(r) + "}");
    }

    // Exit semantics mirror the batch CLI: 2 for a failed check
    // (observed/reachable ~exists condition, unsound or inconsistent
    // cell), 0 otherwise.
    int exit_code = 0;
    size_t forbidden_reachable = 0, bounded = 0;
    for (const auto &r : results) {
        if (r.hasHist() &&
            r.job->test.quantifier ==
                litmus::Quantifier::NotExists &&
            r.hist->observed() > 0 && req.cmd == "sweep")
            exit_code = 2;
        if (r.hasExact()) {
            const mc::ExploreResult &x = *r.exact;
            if (!x.complete && !x.fairComplete)
                ++bounded;
            if (r.job->test.quantifier ==
                    litmus::Quantifier::NotExists &&
                !x.satisfying.empty())
                ++forbidden_reachable;
        }
    }
    size_t unsound = conformance.unsoundCells();
    size_t inconsistent = conformance.inconsistentCells();
    if (req.cmd == "validate" && (unsound || inconsistent))
        exit_code = 2;
    if ((req.cmd == "explore" || req.cmd == "scenario") &&
        (unsound || forbidden_reachable))
        exit_code = 2;

    std::string summary = eventHead("summary", req.id);
    summary += ",\"exit\":" + std::to_string(exit_code);
    summary += ",\"results\":" + std::to_string(results.size());
    summary += ",\"store_results\":" + std::to_string(served);
    summary += ",\"cells\":" +
               std::to_string(conformance.cells().size());
    summary += ",\"sound\":" +
               std::to_string(conformance.soundCells());
    summary += ",\"unsound\":" + std::to_string(unsound);
    summary += ",\"imprecise\":" +
               std::to_string(conformance.impreciseCells());
    summary += ",\"rare\":" + std::to_string(conformance.rareCells());
    summary += ",\"unreachable\":" +
               std::to_string(conformance.unreachableCells());
    summary += ",\"bounded\":" + std::to_string(bounded);
    summary += ",\"forbidden_reachable\":" +
               std::to_string(forbidden_reachable);
    summary += ",\"inconsistent\":" + std::to_string(inconsistent);
    client.writeLine(summary + "}");

    if (store_) {
        std::string flush_error;
        if (!store_->flush(&flush_error))
            warn("serve: store flush failed: %s",
                 flush_error.c_str());
        else if (!journal.empty())
            ::unlink(journal.c_str());
    }
    client.writeLine(eventHead("done", req.id) + "}");
}

} // namespace gpulitmus::serve
