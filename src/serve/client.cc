#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gpulitmus::serve {

namespace {

std::unique_ptr<Client>
fail(int fd, std::string *error, const std::string &what)
{
    if (fd >= 0)
        ::close(fd);
    if (error)
        *error = what + ": " + std::strerror(errno);
    return nullptr;
}

} // namespace

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::unique_ptr<Client>
Client::connectUnix(const std::string &path, std::string *error)
{
    struct sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        if (error)
            *error = "socket path too long: " + path;
        return nullptr;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof addr.sun_path - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return fail(fd, error, "cannot create socket");
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0)
        return fail(fd, error, "cannot connect to '" + path + "'");
    return std::unique_ptr<Client>(new Client(fd));
}

std::unique_ptr<Client>
Client::connectTcp(const std::string &host, int port,
                   std::string *error)
{
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        if (error)
            *error = "not an IPv4 address: " + host;
        return nullptr;
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return fail(fd, error, "cannot create socket");
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0)
        return fail(fd, error,
                    "cannot connect to " + host + ":" +
                        std::to_string(port));
    return std::unique_ptr<Client>(new Client(fd));
}

bool
Client::sendLine(const std::string &line, std::string *error)
{
    std::string out = line + "\n";
    size_t off = 0;
    while (off < out.size()) {
        ssize_t n = ::send(fd_, out.data() + off, out.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = std::string("send failed: ") +
                         std::strerror(errno);
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

bool
Client::readLine(std::string *line, std::string *error)
{
    for (;;) {
        auto nl = inbuf_.find('\n');
        if (nl != std::string::npos) {
            *line = inbuf_.substr(0, nl);
            inbuf_.erase(0, nl + 1);
            if (!line->empty() && line->back() == '\r')
                line->pop_back();
            return true;
        }
        char buf[4096];
        ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
        if (n == 0)
            return false; // clean EOF
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = std::string("recv failed: ") +
                         std::strerror(errno);
            return false;
        }
        inbuf_.append(buf, static_cast<size_t>(n));
    }
}

int
Client::submit(const Request &req, const EventFn &onEvent,
               std::string *error)
{
    if (!sendLine(renderRequest(req), error))
        return -1;

    int exit_code = 0;
    std::string line;
    for (;;) {
        std::string readError;
        if (!readLine(&line, &readError)) {
            if (error)
                *error = readError.empty()
                             ? "connection closed before the "
                               "terminal event"
                             : readError;
            return -1;
        }
        auto event = json::parse(line);
        if (!event || !event->isObject())
            continue; // not ours to diagnose; wait for a real event
        std::string kind = event->getString("event");
        // The daemon echoes our id; skip stray events for other ids
        // (only possible if a caller multiplexes, which submit
        // doesn't — but cheap to be strict).
        if (!req.id.empty()) {
            std::string id = event->getString("id");
            if (!id.empty() && id != req.id && kind != "hello")
                continue;
        }
        if (onEvent)
            onEvent(*event, line);
        if (kind == "summary")
            exit_code = static_cast<int>(event->getInt("exit", 0));
        if (kind == "done")
            return exit_code;
        if (kind == "error") {
            if (error)
                *error = event->getString("message");
            return 1;
        }
    }
}

} // namespace gpulitmus::serve
