/**
 * @file
 * The unified evaluation API: one Job, three engines.
 *
 * The paper's central empirical move (Sec. 5.4) is running the *same*
 * litmus test through two very different engines — hardware
 * observation and herd-style model evaluation — and comparing
 * verdicts. This layer makes "evaluate test T under engine E" one
 * uniform operation:
 *
 * - a Backend has a name() and evaluates an EvalJob (the harness::Job
 *   — the job itself names its backend) to an EvalResult, a tagged
 *   result carrying a litmus::Histogram (simulation), a
 *   model::Verdict (axiomatic evaluation), or both;
 * - SimBackend wraps the operational machine (harness::runJob),
 *   AxiomBackend wraps model::Checker over any cat::Model (built-in
 *   or parsed from a .cat file), BaselineBackend wraps the Sec. 6
 *   operational-baseline model;
 * - eval::Engine shards a mixed-backend batch over the same
 *   deterministic pool/cache core as the simulation engine
 *   (harness/batch.h) — sim cells keep their PR-1 RNG streams
 *   bit-identically, model cells collapse onto one evaluation per
 *   (backend, test);
 * - ConformanceSink joins the sim histograms against the model
 *   verdicts per (chip, test, incantation) cell and classifies each
 *   as sound, unsound (observed-but-forbidden) or imprecise
 *   (allowed-never-observed) — the Sec. 5.4 table as one campaign.
 *   Exact (mc) results join too and upgrade imprecise cells to
 *   rare/unreachable/bounded; the full verdict lattice and the
 *   exact-vs-sampled evidence semantics are documented in
 *   docs/VERDICTS.md.
 *
 * Engine notes: SimBackend rides the pooled per-thread machine cache
 * in harness::runJob (one compiled machine per (chip, test) pair,
 * re-parameterised per job), and McBackend's explorer checkpoints
 * and digest-keys its search (mc/explorer.h) — both pure wall-clock
 * machinery whose results are bit-identical to recomputation, so
 * cache identities never observe them. The GPULITMUS_MC_DEBUG_KEYS /
 * GPULITMUS_MC_NO_CHECKPOINTS environment knobs (McBackend::
 * optionsFor) switch the explorer back to the PR-3 code paths for
 * forensic cross-checks.
 */

#ifndef GPULITMUS_EVAL_BACKEND_H
#define GPULITMUS_EVAL_BACKEND_H

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cat/cat.h"
#include "common/table.h"
#include "harness/campaign.h"
#include "litmus/outcome.h"
#include "mc/explorer.h"
#include "model/checker.h"

namespace gpulitmus::serve {
class ResultStore; // serve/store.h — only backend.cc needs the type
}

namespace gpulitmus::eval {

/** One Job across every engine: the harness job, whose `backend`
 * field names the engine that evaluates it. */
using EvalJob = harness::Job;

/**
 * Tagged result of evaluating one job under one backend: a histogram
 * (sim), a verdict (axiomatic), or — for joined sinks — either side
 * of the comparison. Self-contained: `job` owns the test the
 * histogram references.
 */
struct EvalResult
{
    /** The job as submitted (shared so histograms, which reference
     * their test, stay valid however results are copied around). */
    std::shared_ptr<const EvalJob> job;
    /** Resolved backend id ("sim", "ptx", "baseline", ...). */
    std::string backend;

    /** Simulation side: the outcome histogram. */
    std::optional<litmus::Histogram> hist;
    /** Observations normalised to per-100k, as the paper reports. */
    uint64_t observedPer100k = 0;

    /** Axiomatic side: the model verdict. */
    std::optional<model::Verdict> verdict;

    /** Exhaustive side: the exact reachable set (mc backend). */
    std::optional<mc::ExploreResult> exact;

    /** True when the engine served this cell from its cache (or from
     * a batch-mate with the same cache identity). */
    bool fromCache = false;
    /** True when the persistent result store answered this cell
     * (EngineOptions::store) without evaluating. */
    bool fromStore = false;
    /** Wall-clock of the evaluation (0 for cache hits). */
    double millis = 0.0;

    bool hasHist() const { return hist.has_value(); }
    bool hasVerdict() const { return verdict.has_value(); }
    bool hasExact() const { return exact.has_value(); }

    const sim::ChipProfile &chip() const { return job->chip; }
    std::string label() const { return job->displayLabel(); }
    int column() const { return job->inc.column(); }
};

/**
 * An evaluation engine: evaluates jobs, one at a time. Implementations
 * must be safe to call from multiple worker threads concurrently.
 */
class Backend
{
  public:
    virtual ~Backend() = default;

    /** Backend id; mixed into job keys and shown by sinks. */
    virtual std::string name() const = 0;

    /** Evaluate one job to a tagged result. */
    virtual EvalResult evaluate(const EvalJob &job) const = 0;
};

/** The operational simulator: wraps harness::runJob. Sim cells are
 * bit-identical to the PR-1 campaign engine (same derived seeds). */
class SimBackend : public Backend
{
  public:
    std::string name() const override { return harness::kSimBackend; }
    EvalResult evaluate(const EvalJob &job) const override;
};

/**
 * The exhaustive schedule explorer ("mc", alias "exhaustive"): the
 * same operational machine as SimBackend, enumerated instead of
 * sampled (mc/explorer.h). The job's `iterations` field is the
 * replay budget; `seed` is ignored (the search is deterministic).
 * Returns the exact reachable final-state set in EvalResult::exact —
 * or a bounded lower bound when the budget trips.
 */
class McBackend : public Backend
{
  public:
    std::string name() const override { return harness::kMcBackend; }
    EvalResult evaluate(const EvalJob &job) const override;

    /** The explorer configuration a job maps to (shared with tests
     * and benches so they explore exactly what the backend runs). */
    static mc::ExploreOptions optionsFor(const EvalJob &job);
};

/**
 * Herd-style axiomatic evaluation: wraps model::Checker over any
 * cat::Model — a built-in (non-owning) or one parsed from a .cat
 * file (owning). The result depends only on the test; candidate
 * enumeration is memoised process-wide (model/checker.h).
 */
class AxiomBackend : public Backend
{
  public:
    /** Non-owning view of a built-in (static-lifetime) model; the
     * backend id defaults to the model's name. */
    explicit AxiomBackend(const cat::Model &model,
                          axiom::EnumeratorOptions opts = {});

    /** Parse `source` as a .cat model the backend owns. Returns null
     * and sets `error` on bad syntax. */
    static std::shared_ptr<AxiomBackend>
    fromSource(const std::string &source, const std::string &name,
               std::string *error = nullptr);

    /** Load and parse a .cat model file. Returns null and sets
     * `error` when unreadable or malformed. */
    static std::shared_ptr<AxiomBackend>
    fromFile(const std::string &path, std::string *error = nullptr);

    std::string name() const override { return name_; }
    EvalResult evaluate(const EvalJob &job) const override;

    const cat::Model &model() const { return *model_; }

  protected:
    AxiomBackend(std::shared_ptr<const cat::Model> owned,
                 std::string name);

  private:
    std::shared_ptr<const cat::Model> owned_; ///< null for built-ins
    const cat::Model *model_;
    axiom::EnumeratorOptions opts_;
    std::string name_;
};

/** The Sec. 6 comparison baseline: the operational Nvidia model of
 * Sorensen et al. rendered axiomatically (model/baseline.h). The
 * paper shows it unsound (inter-CTA lb+membar.ctas). */
class BaselineBackend : public AxiomBackend
{
  public:
    BaselineBackend();
    std::string name() const override { return "baseline"; }
};

/**
 * Resolve a backend id: "sim"; "mc" (alias: exhaustive); a built-in
 * model name (ptx, rmo, sc, tso, sc-per-loc-full); "baseline"
 * (aliases: operational, sorensen); or a path to a .cat file
 * (anything containing '/' or ending in ".cat"). Instances are
 * cached process-wide, so repeated resolution is cheap and every job
 * naming the same backend shares one engine. Returns null and sets
 * `error` (which lists the valid names) when the id is unknown or
 * the file fails to parse.
 */
std::shared_ptr<const Backend>
backendByName(const std::string &name, std::string *error = nullptr);

/** backendByName restricted to axiomatic (model) backends: resolves
 * the id and rejects non-model engines like "sim". Returns null and
 * sets `error` (listing the valid model names) otherwise. */
std::shared_ptr<const AxiomBackend>
modelBackendByName(const std::string &name,
                   std::string *error = nullptr);

/** The built-in backend ids, in presentation order. */
std::vector<std::string> builtinBackendNames();

/** The built-in model backend ids (every builtin except the
 * simulator). */
std::vector<std::string> builtinModelNames();

/**
 * A test as a given chip actually runs it: AMD chips run what their
 * (simulated) OpenCL compiler produces, Nvidia chips run the test as
 * written. Returns nullopt when the compiler miscompiles the test
 * (the paper's "n/a" cells); `quirks` collects compile notes.
 */
std::optional<litmus::Test>
compileForChip(const litmus::Test &test, const sim::ChipProfile &chip,
               std::vector<std::string> *quirks = nullptr);

/** Streaming sink for evaluation results, delivered in job order. */
class EvalSink
{
  public:
    virtual ~EvalSink() = default;
    virtual void add(const EvalResult &result) = 0;
};

/** Progress callback: computed jobs finished / total to compute (cache
 * hits are not reported). Invoked from worker threads. */
using ProgressFn =
    std::function<void(size_t done, size_t total, const EvalResult &)>;

struct EngineOptions
{
    /** Worker threads; 0 means harness::defaultJobs(). */
    int threads = 0;
    /** Serve repeated cells from the in-process cache. */
    bool cache = true;
    /** Optional persistent result store (serve/store.h): the L2
     * behind the in-process cache. Consulted on every cache miss
     * before evaluating, fed every computed result. Not owned; must
     * outlive the engine. */
    serve::ResultStore *store = nullptr;
};

/**
 * The multi-backend engine: shards a batch of jobs — any mix of
 * backends — across a worker pool via the shared deterministic batch
 * core. Sim jobs produce histograms bit-identical to harness::Engine
 * at any thread count; model jobs with the same (backend, test)
 * collapse onto one evaluation. Unknown backend ids are fatal.
 */
class Engine
{
  public:
    explicit Engine(EngineOptions opts = {});

    std::vector<EvalResult>
    run(const std::vector<EvalJob> &jobs,
        const std::vector<EvalSink *> &sinks = {},
        ProgressFn progress = nullptr);

    /** Convenience: materialise and run a campaign's grid. */
    std::vector<EvalResult>
    run(const harness::Campaign &campaign,
        const std::vector<EvalSink *> &sinks = {},
        ProgressFn progress = nullptr);

    int threads() const { return threads_; }
    uint64_t cacheHits() const { return cache_.hits(); }
    size_t cacheSize() const { return cache_.size(); }
    void clearCache() { cache_.clear(); }

  private:
    int threads_ = 1;
    bool cacheEnabled_ = true;
    serve::ResultStore *store_ = nullptr;
    harness::BatchCache<EvalResult> cache_;
};

// ---- conformance ----------------------------------------------------

/**
 * Classification of one (chip, test, incantation, model) cell.
 *
 * Sampling alone can only produce the first three. When an exact
 * (mc) exploration of the same cell is present, every `Imprecise`
 * verdict upgrades to a definitive one: each allowed-but-unsampled
 * outcome is either reachable (the sampling was merely unlucky —
 * `Rare`, with the explorer's path weight) or provably unreachable
 * by the machine (`Unreachable` — the model is genuinely looser).
 * `Bounded` is the graceful degradation when the exploration budget
 * tripped before the question was settled.
 */
enum class Conformance
{
    Sound,       ///< every observed outcome is allowed by the model
    Unsound,     ///< an observed/reachable outcome is forbidden
    Imprecise,   ///< sound, but some allowed outcome never showed up
    Rare,        ///< imprecise, upgraded: the missing outcomes are
                 ///  reachable — under-sampling, not model slack
    Unreachable, ///< imprecise, upgraded: the missing outcomes are
                 ///  machine-unreachable — definitive model slack
    Bounded,     ///< imprecise; the exploration budget ran out first
};

const char *toString(Conformance kind);

/** One row of the Sec. 5.4 join. */
struct ConformanceCell
{
    std::string test;  ///< display label of the simulated cell
    std::string chip;  ///< chip short name
    int column = 16;   ///< incantation column of the simulated cell
    std::string model; ///< model backend id
    Conformance kind = Conformance::Sound;
    /** Observed-but-forbidden (or mc-reachable-but-forbidden)
     * outcome keys. */
    std::vector<std::string> violations;
    /** Allowed-but-never-observed outcome keys (still unresolved:
     * no exact data, or the budget tripped). */
    std::vector<std::string> unobserved;
    /** Allowed, unsampled, but mc-reachable: key -> path weight. */
    std::vector<std::pair<std::string, uint64_t>> rare;
    /** Allowed but provably machine-unreachable (exact data). */
    std::vector<std::string> unreachable;
    /** Sim-observed keys the exploration claims unreachable — an
     * internal inconsistency that must be empty (it would mean the
     * explorer lost states the sampler found). */
    std::vector<std::string> inconsistent;
    /** Simulated runs behind the observation (0 for mc-only cells). */
    uint64_t runs = 0;
    /** An exact exploration joined this cell. */
    bool hasExact = false;
    /** The joined exploration drained its choice tree. */
    bool exactComplete = false;
};

/**
 * Joins simulation histograms against model verdicts: feed it a
 * mixed-backend campaign (sim + one or more model backends over the
 * same tests) and it pairs every simulated (chip, test, incantation)
 * cell with every verdict for the same test text, classifying each
 * pair. Results from the mc backend join too: an exact exploration
 * of the same (chip, test, incantation) upgrades the cell's verdict
 * (Imprecise -> Rare/Unreachable/Bounded, see Conformance) and adds
 * reachable-but-forbidden outcomes to the violations — a definitive
 * unsoundness proof that needs no sampling luck. Cells with an
 * exploration but no sim histogram are classified from the exact set
 * alone. Duplicate deliveries (cache hits) are deduplicated by cell
 * identity.
 */
class ConformanceSink : public EvalSink
{
  public:
    void add(const EvalResult &result) override;

    /** The join, in first-seen sim-cell order. Computed lazily and
     * memoised until the next add(), so repeated accessors (summary,
     * the classification counts) never redo the O(cells x models)
     * pairing. */
    const std::vector<ConformanceCell> &cells() const;

    /** Cell counts by classification (over cells()). */
    size_t soundCells() const;
    size_t unsoundCells() const;
    size_t impreciseCells() const;
    size_t rareCells() const;
    size_t unreachableCells() const;
    size_t boundedCells() const;
    /** Cells whose sim observations escaped the exploration — must
     * stay 0; anything else is an explorer/simulator divergence. */
    size_t inconsistentCells() const;

    /** Per-model summary: cells, sound/unsound/imprecise counts and
     * the first counterexample. */
    Table summary() const;

    /** The join as a JSON array of cells. */
    void writeTo(std::ostream &os) const;
    bool writeFile(const std::string &path) const;

  private:
    struct SimCell
    {
        std::shared_ptr<const EvalJob> job; ///< owns the test
        litmus::Histogram hist;
        std::string text; ///< exact test text (join key)
    };

    struct ExactCell
    {
        std::shared_ptr<const EvalJob> job; ///< owns the test
        mc::ExploreResult exact;
        std::string text; ///< exact test text (join key)
    };

    /** The exploration joined to a sim cell, matched on (test text,
     * chip, incantation column); null when none was delivered. */
    const ExactCell *exactFor(const std::string &text,
                              const std::string &chip,
                              int column) const;

    std::vector<SimCell> sims_;
    std::vector<ExactCell> exacts_;
    /** Dedup of redelivered cells by (cache key, label): cache hits
     * across runs collapse, while distinctly-labelled submissions of
     * identical content keep their own rows. */
    std::set<std::pair<uint64_t, std::string>> seenSims_;
    std::set<std::pair<uint64_t, std::string>> seenExacts_;
    /** test text -> model id -> verdict; keyed by the exact text so
     * distinct tests can never collide into each other's verdicts. */
    std::map<std::string, std::map<std::string, model::Verdict>>
        verdicts_;
    /** Memoised join; reset by add(). */
    mutable std::optional<std::vector<ConformanceCell>> joined_;
};

/**
 * One evaluation result rendered as a JSON object — the schema of
 * JsonSink entries, shared with the serve layer's `result` events so
 * daemon output cannot drift from `--json` output. Sim entries mirror
 * harness::simCellJson plus the verdict fields; verdict/exact-only
 * entries carry the model and exploration statistics. Every entry
 * carries "from_store".
 */
std::string evalCellJson(const EvalResult &result);

/**
 * Writes evaluation results as a JSON array for machine consumption
 * (BENCH_backends.json, `gpulitmus validate --json`). Sim entries
 * mirror harness::JsonSink's schema plus the backend id; verdict
 * entries carry the model statistics.
 */
class JsonSink : public EvalSink
{
  public:
    void add(const EvalResult &result) override;

    void writeTo(std::ostream &os) const;
    bool writeFile(const std::string &path) const;
    size_t size() const { return entries_.size(); }

  private:
    std::vector<std::string> entries_;
};

} // namespace gpulitmus::eval

#endif // GPULITMUS_EVAL_BACKEND_H
