#include "eval/backend.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "analysis/race.h"
#include "analysis/sc.h"
#include "cat/models.h"
#include "common/log.h"
#include "common/strutil.h"
#include "model/baseline.h"
#include "obs/metrics.h"
#include "opt/amd.h"
#include "serve/store.h"

namespace gpulitmus::eval {

// ---- SimBackend -----------------------------------------------------

EvalResult
SimBackend::evaluate(const EvalJob &job) const
{
    harness::JobResult sim = harness::runJob(job);
    EvalResult result;
    result.job = sim.job;
    result.backend = name();
    result.hist = std::move(sim.hist);
    result.observedPer100k = sim.observedPer100k;
    result.millis = sim.millis;
    return result;
}

// ---- McBackend ------------------------------------------------------

mc::ExploreOptions
McBackend::optionsFor(const EvalJob &job)
{
    mc::ExploreOptions opts;
    opts.machine.inc = job.inc;
    opts.machine.maxMicroSteps = job.maxMicroSteps;
    opts.maxReplays = job.iterations;
    // Parallel exploration: the shard width is a result-shaping axis
    // (the budget pool is iterations × shards) and is part of the
    // job's cache identity; the thread count is wall-clock only and
    // comes from the engine's pool-sharing arbitration.
    opts.shards = job.shards > 0 ? job.shards : 1;
    opts.shardThreads = job.shardThreads;
    // Forensic knobs (mc/explorer.h): GPULITMUS_MC_DEBUG_KEYS=1
    // switches the state cache back to the PR-3 string keys (slow,
    // collision-free; diff against a digest-keyed run to implicate a
    // digest collision), GPULITMUS_MC_NO_CHECKPOINTS=1
    // disables snapshot resume (replays run from the root). Neither
    // changes any result — determinism tests pin that — so they are
    // deliberately excluded from job cache keys.
    auto envSet = [](const char *name) {
        const char *v = std::getenv(name);
        return v && *v && *v != '0';
    };
    if (envSet("GPULITMUS_MC_DEBUG_KEYS"))
        opts.debugStateKeys = true;
    if (envSet("GPULITMUS_MC_NO_CHECKPOINTS"))
        opts.checkpoints = false;
    return opts;
}

EvalResult
McBackend::evaluate(const EvalJob &job) const
{
    auto owned = std::make_shared<EvalJob>(job);
    EvalResult result;
    result.job = owned;
    result.backend = name();

    // Static pre-pass (docs/ANALYSIS.md): a program with no racy pair
    // can only reach sequentially consistent outcomes, so the SC
    // enumeration IS the exact reachable set — no weak-memory
    // exploration needed. The substitution is differentially
    // validated in tests/test_analysis.cc over the corpus, all
    // scenario variants and generated programs.
    // GPULITMUS_MC_NO_PREPASS=1 forces full exploration (and, like
    // the forensic knobs above, is excluded from job cache keys
    // because the reachable set and verdict are identical — only
    // search statistics and path weights differ).
    auto envSet = [](const char *name) {
        const char *v = std::getenv(name);
        return v && *v && *v != '0';
    };
    if (!envSet("GPULITMUS_MC_NO_PREPASS")) {
        analysis::Report rep = analysis::analyze(owned->test);
        if (rep.fullyOrdered) {
            auto start = std::chrono::steady_clock::now();
            if (auto sc = analysis::enumerateSc(owned->test)) {
                mc::ExploreResult x;
                x.testName = owned->test.name;
                x.chipName = owned->chip.shortName;
                x.column = owned->inc.column();
                x.complete = sc->complete;
                x.fairComplete = true;
                x.finals = std::move(sc->finals);
                x.satisfying = std::move(sc->satisfying);
                for (const auto &[key, w] : x.finals)
                    x.paths += w;
                x.stats.distinctStates = sc->states;
                x.budgetReplays = owned->iterations;
                auto end = std::chrono::steady_clock::now();
                x.millis = std::chrono::duration<double, std::milli>(
                               end - start)
                               .count();
                result.exact = std::move(x);
                result.millis = result.exact->millis;
                return result;
            }
        }
    }

    mc::Explorer explorer(owned->chip, owned->test,
                          optionsFor(*owned));
    result.exact = explorer.explore();
    result.millis = result.exact->millis;
    return result;
}

// ---- AxiomBackend ---------------------------------------------------

AxiomBackend::AxiomBackend(const cat::Model &model,
                           axiom::EnumeratorOptions opts)
    : model_(&model), opts_(opts), name_(model.name())
{
}

AxiomBackend::AxiomBackend(std::shared_ptr<const cat::Model> owned,
                           std::string name)
    : owned_(std::move(owned)), model_(owned_.get()),
      name_(std::move(name))
{
}

std::shared_ptr<AxiomBackend>
AxiomBackend::fromSource(const std::string &source,
                         const std::string &name, std::string *error)
{
    cat::CatError cat_error;
    auto model = cat::Model::parse(source, name, &cat_error);
    if (!model) {
        if (error) {
            *error = "cannot parse model '" + name +
                     "': " + cat_error.message + " (line " +
                     std::to_string(cat_error.line) + ")";
        }
        return nullptr;
    }
    // The protected constructor keeps the parsed model alive for the
    // backend's lifetime (built-ins are static and stay non-owned).
    struct Owner : AxiomBackend
    {
        Owner(std::shared_ptr<const cat::Model> m, std::string n)
            : AxiomBackend(std::move(m), std::move(n))
        {
        }
    };
    return std::make_shared<Owner>(
        std::make_shared<cat::Model>(std::move(*model)), name);
}

std::shared_ptr<AxiomBackend>
AxiomBackend::fromFile(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open model file '" + path + "'";
        return nullptr;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    return fromSource(buffer.str(), path, error);
}

EvalResult
AxiomBackend::evaluate(const EvalJob &job) const
{
    auto owned = std::make_shared<EvalJob>(job);
    EvalResult result;
    result.job = owned;
    result.backend = name();

    // Out-of-scope tests (.ca/volatile/loops, model::inModelScope)
    // get an explicit refusal instead of an enumeration the model
    // has nothing to say about — and, for looped programs, one that
    // would not terminate in useful time. The engine stays total
    // over arbitrary (scenario) grids; conformance joins skip these.
    if (!model::inModelScope(owned->test)) {
        model::Verdict v;
        v.testName = owned->test.name;
        v.modelName = name();
        v.outOfScope = true;
        v.verdict = "out-of-scope (.ca/volatile/loops, Sec. 5.5)";
        result.verdict = std::move(v);
        return result;
    }

    auto start = std::chrono::steady_clock::now();
    model::Checker checker(*model_, opts_);
    result.verdict = checker.check(owned->test);
    auto end = std::chrono::steady_clock::now();
    result.millis =
        std::chrono::duration<double, std::milli>(end - start).count();
    return result;
}

// ---- BaselineBackend ------------------------------------------------

BaselineBackend::BaselineBackend()
    : AxiomBackend(model::operationalBaseline())
{
}

// ---- registry -------------------------------------------------------

namespace {

bool
looksLikeModelPath(const std::string &name)
{
    return name.find('/') != std::string::npos ||
           endsWith(name, ".cat");
}

} // namespace

std::vector<std::string>
builtinBackendNames()
{
    std::vector<std::string> names{harness::kSimBackend,
                                   harness::kMcBackend};
    for (const auto &[name, model] : cat::models::all())
        names.push_back(name);
    names.push_back("baseline");
    return names;
}

std::shared_ptr<const Backend>
backendByName(const std::string &name, std::string *error)
{
    static std::mutex mutex;
    static std::unordered_map<std::string,
                              std::shared_ptr<const Backend>>
        registry;

    std::lock_guard<std::mutex> lock(mutex);
    auto it = registry.find(name);
    if (it != registry.end())
        return it->second;

    std::shared_ptr<const Backend> backend;
    if (name == harness::kSimBackend) {
        backend = std::make_shared<SimBackend>();
    } else if (name == harness::kMcBackend ||
               name == "exhaustive") {
        backend = std::make_shared<McBackend>();
    } else if (name == "baseline" || name == "operational" ||
               name == "sorensen") {
        backend = std::make_shared<BaselineBackend>();
    } else if (looksLikeModelPath(name)) {
        backend = AxiomBackend::fromFile(name, error);
        if (!backend)
            return nullptr;
    } else {
        for (const auto &[model_name, model] : cat::models::all()) {
            if (model_name == name) {
                backend = std::make_shared<AxiomBackend>(*model);
                break;
            }
        }
        if (!backend) {
            if (error) {
                *error = "unknown backend '" + name + "' (valid: " +
                         join(builtinBackendNames(), ", ") +
                         ", or a .cat file path)";
            }
            return nullptr;
        }
    }
    registry.emplace(name, backend);
    return backend;
}

std::vector<std::string>
builtinModelNames()
{
    std::vector<std::string> names;
    for (const auto &name : builtinBackendNames()) {
        if (name != harness::kSimBackend &&
            name != harness::kMcBackend)
            names.push_back(name);
    }
    return names;
}

std::shared_ptr<const AxiomBackend>
modelBackendByName(const std::string &name, std::string *error)
{
    auto backend = backendByName(name, error);
    if (!backend) {
        // File paths keep the open/parse diagnostic; an unknown id
        // gets the model list ("sim" would be misleading here).
        if (error && !looksLikeModelPath(name)) {
            *error = "unknown model '" + name + "' (valid: " +
                     join(builtinModelNames(), ", ") +
                     ", or a .cat file path)";
        }
        return nullptr;
    }
    auto axiom =
        std::dynamic_pointer_cast<const AxiomBackend>(backend);
    if (!axiom && error) {
        *error = "backend '" + name + "' is not a model (valid: " +
                 join(builtinModelNames(), ", ") +
                 ", or a .cat file path)";
    }
    return axiom;
}

// ---- compileForChip -------------------------------------------------

std::optional<litmus::Test>
compileForChip(const litmus::Test &test, const sim::ChipProfile &chip,
               std::vector<std::string> *quirks)
{
    if (!chip.isAmd())
        return test;
    auto compiled = opt::amdCompile(test, chip);
    if (quirks) {
        quirks->insert(quirks->end(), compiled.quirks.begin(),
                       compiled.quirks.end());
    }
    if (compiled.miscompiled)
        return std::nullopt;
    return compiled.compiled;
}

// ---- Engine ---------------------------------------------------------

Engine::Engine(EngineOptions opts)
    : threads_(opts.threads > 0 ? opts.threads
                                : harness::defaultJobs()),
      cacheEnabled_(opts.cache), store_(opts.store)
{
}

std::vector<EvalResult>
Engine::run(const std::vector<EvalJob> &jobs,
            const std::vector<EvalSink *> &sinks, ProgressFn progress)
{
    // Resolve every backend up front so a typo'd id fails before any
    // work is done, and workers never touch the registry lock.
    std::unordered_map<std::string, std::shared_ptr<const Backend>>
        backends;
    bool aliased = false;
    for (const auto &job : jobs) {
        auto it = backends.find(job.backend);
        if (it == backends.end()) {
            std::string error;
            auto backend = backendByName(job.backend, &error);
            if (!backend)
                fatal("%s", error.c_str());
            it = backends.emplace(job.backend, std::move(backend))
                     .first;
        }
        aliased |= it->second->name() != job.backend;
    }

    // Jobs naming a backend by an alias ("operational" for
    // "baseline") are normalised to the resolved name, so the cache
    // identity, the result's backend field and the conformance join
    // all agree — two aliases of one model dedup onto one evaluation
    // instead of computing it twice under two keys.
    // Sharded mc jobs spawn their own worker threads; arbitrate that
    // intra-job parallelism against the job-level pool so the two
    // levels share one thread budget instead of multiplying
    // (harness::intraJobThreads). Explicit job.shardThreads settings
    // are respected.
    const int intra = harness::intraJobThreads(jobs.size(), threads_);
    bool shardedMc = false;
    for (const auto &job : jobs)
        shardedMc |= job.isMc() && job.shards > 1 &&
                     job.shardThreads == 0;

    std::vector<EvalJob> normalised;
    const std::vector<EvalJob> *batch = &jobs;
    if (aliased || shardedMc) {
        normalised = jobs;
        for (auto &job : normalised) {
            const std::string resolved =
                backends.at(job.backend)->name();
            if (resolved != job.backend) {
                if (!backends.count(resolved))
                    backends.emplace(resolved,
                                     backends.at(job.backend));
                job.backend = resolved;
            }
            if (job.isMc() && job.shards > 1 &&
                job.shardThreads == 0)
                job.shardThreads = std::min(intra, job.shards);
        }
        batch = &normalised;
    }

    harness::BatchOps<EvalJob, EvalResult> ops;
    ops.cacheKey = [](const EvalJob &job) { return job.cacheKey(); };
    // The persistent store is the L2 behind the in-process cache: a
    // cache miss consults it before evaluating, and every computed
    // result feeds it.
    ops.execute = [&backends, store = store_](const EvalJob &job) {
        if (store) {
            if (auto hit = store->fetchEval(job)) {
                obs::counter("engine_jobs_from_store_total").add();
                return std::make_shared<EvalResult>(std::move(*hit));
            }
        }
        const Backend &backend = *backends.at(job.backend);
        auto result =
            std::make_shared<EvalResult>(backend.evaluate(job));
        if (store)
            store->putEval(job, *result);
        return result;
    };
    // Re-label a shared result for the job that requested it: the
    // cache key ignores labels (and, for model cells, the whole
    // chip/incantation axis), so the served copy re-points at the
    // submitted job and rebinds its histogram to stay self-contained.
    // harness::Engine::run has the JobResult twin of this closure —
    // keep the rebind invariant in sync there.
    ops.servedFrom = [](const EvalResult &src, const EvalJob &requested) {
        auto hit = std::make_shared<EvalResult>(src);
        auto owned = std::make_shared<EvalJob>(requested);
        if (hit->hist)
            hit->hist->rebind(owned->test);
        hit->job = std::move(owned);
        hit->fromCache = true;
        hit->millis = 0.0;
        return hit;
    };
    ops.describe = [](const EvalJob &job) {
        return job.backend + ":" + job.displayLabel();
    };

    auto slots = harness::runBatch<EvalJob, EvalResult>(
        *batch, threads_, cacheEnabled_ ? &cache_ : nullptr, ops,
        std::move(progress));

    std::vector<EvalResult> results;
    results.reserve(slots.size());
    for (const auto &slot : slots) {
        for (EvalSink *sink : sinks) {
            if (sink)
                sink->add(*slot);
        }
        results.push_back(*slot);
    }
    return results;
}

std::vector<EvalResult>
Engine::run(const harness::Campaign &campaign,
            const std::vector<EvalSink *> &sinks, ProgressFn progress)
{
    return run(campaign.jobs(), sinks, std::move(progress));
}

// ---- ConformanceSink ------------------------------------------------

const char *
toString(Conformance kind)
{
    switch (kind) {
      case Conformance::Sound: return "sound";
      case Conformance::Unsound: return "unsound";
      case Conformance::Imprecise: return "imprecise";
      case Conformance::Rare: return "rare";
      case Conformance::Unreachable: return "unreachable";
      case Conformance::Bounded: return "bounded";
    }
    return "?";
}

void
ConformanceSink::add(const EvalResult &result)
{
    joined_.reset();
    if (result.hasHist()) {
        // Cache hits redeliver identical cells; keep the first per
        // (cell, label) so re-runs do not duplicate rows but
        // distinctly-labelled duplicates stay visible.
        if (seenSims_
                .insert({result.job->cacheKey(), result.label()})
                .second) {
            sims_.push_back({result.job, *result.hist,
                             result.job->test.str()});
        }
    }
    if (result.hasExact()) {
        if (seenExacts_
                .insert({result.job->cacheKey(), result.label()})
                .second) {
            exacts_.push_back({result.job, *result.exact,
                               result.job->test.str()});
        }
    }
    // Out-of-scope refusals never join: the model said nothing, so
    // the cell must not read as trivially sound (or unsound).
    if (result.hasVerdict() && !result.verdict->outOfScope)
        verdicts_[result.job->test.str()][result.backend] =
            *result.verdict;
}

const ConformanceSink::ExactCell *
ConformanceSink::exactFor(const std::string &text,
                          const std::string &chip, int column) const
{
    for (const auto &e : exacts_) {
        if (e.text == text && e.job->chip.shortName == chip &&
            e.job->inc.column() == column)
            return &e;
    }
    return nullptr;
}

namespace {

/**
 * Classify one cell against one verdict from whatever evidence is
 * present: `observed` (sampling histogram, may be null) and `exact`
 * (exploration, may be null). The upgrade logic in one place so
 * sim+mc, sim-only and mc-only cells cannot drift apart.
 */
void
classify(ConformanceCell &cell, const model::Verdict &verdict,
         const std::map<std::string, uint64_t> *observed,
         const mc::ExploreResult *exact)
{
    auto observedHas = [&](const std::string &key) {
        if (!observed)
            return false;
        auto it = observed->find(key);
        return it != observed->end() && it->second > 0;
    };

    // Violations: sampled-but-forbidden, plus (definitively)
    // reachable-but-forbidden when an exploration is present.
    if (observed) {
        for (const auto &[key, count] : *observed) {
            if (count > 0 && !verdict.allowedKeys.count(key))
                cell.violations.push_back(key);
        }
    }
    if (exact) {
        for (const auto &[key, weight] : exact->finals) {
            if (!verdict.allowedKeys.count(key) &&
                !observedHas(key))
                cell.violations.push_back(key);
        }
        // Cross-engine sanity: everything the sampler saw must be
        // reachable by the exhaustive search of the same machine.
        if (observed && exact->complete) {
            for (const auto &[key, count] : *observed) {
                if (count > 0 && !exact->reachable(key))
                    cell.inconsistent.push_back(key);
            }
        }
        cell.hasExact = true;
        cell.exactComplete = exact->complete;
    }

    // The imprecision side: allowed outcomes the sampler missed,
    // resolved by the exploration when one is present.
    for (const auto &allowed : verdict.allowedKeys) {
        if (observedHas(allowed))
            continue;
        if (!exact) {
            cell.unobserved.push_back(allowed);
        } else if (exact->reachable(allowed)) {
            // Without a histogram, the exploration itself is the
            // observation: only unsampled-but-reachable keys count
            // as "rare".
            if (observed) {
                cell.rare.push_back(
                    {allowed, exact->finals.at(allowed)});
            }
        } else if (exact->complete) {
            cell.unreachable.push_back(allowed);
        } else {
            cell.unobserved.push_back(allowed);
        }
    }

    if (!cell.violations.empty())
        cell.kind = Conformance::Unsound;
    else if (!cell.unobserved.empty())
        cell.kind = cell.hasExact && !cell.exactComplete
                        ? Conformance::Bounded
                        : Conformance::Imprecise;
    else if (!cell.rare.empty())
        cell.kind = Conformance::Rare;
    else if (!cell.unreachable.empty())
        cell.kind = Conformance::Unreachable;
    else
        cell.kind = Conformance::Sound;
}

} // anonymous namespace

const std::vector<ConformanceCell> &
ConformanceSink::cells() const
{
    if (joined_)
        return *joined_;
    std::vector<ConformanceCell> out;
    for (const auto &sim : sims_) {
        auto matching = verdicts_.find(sim.text);
        if (matching == verdicts_.end())
            continue;
        const ExactCell *exact =
            exactFor(sim.text, sim.job->chip.shortName,
                     sim.job->inc.column());
        for (const auto &[model, verdict] : matching->second) {
            ConformanceCell cell;
            cell.test = sim.job->displayLabel();
            cell.chip = sim.job->chip.shortName;
            cell.column = sim.job->inc.column();
            cell.model = model;
            cell.runs = sim.hist.total();
            classify(cell, verdict, &sim.hist.counts(),
                     exact ? &exact->exact : nullptr);
            out.push_back(std::move(cell));
        }
    }
    // Explorations with no sim histogram of their own still make
    // cells: the exact set *is* the observation.
    for (const auto &exact : exacts_) {
        bool simmed = false;
        for (const auto &sim : sims_) {
            simmed = simmed ||
                     (sim.text == exact.text &&
                      sim.job->chip.shortName ==
                          exact.job->chip.shortName &&
                      sim.job->inc.column() ==
                          exact.job->inc.column());
        }
        if (simmed)
            continue;
        auto matching = verdicts_.find(exact.text);
        if (matching == verdicts_.end())
            continue;
        for (const auto &[model, verdict] : matching->second) {
            ConformanceCell cell;
            cell.test = exact.job->displayLabel();
            cell.chip = exact.job->chip.shortName;
            cell.column = exact.job->inc.column();
            cell.model = model;
            cell.runs = 0;
            classify(cell, verdict, nullptr, &exact.exact);
            out.push_back(std::move(cell));
        }
    }
    joined_ = std::move(out);
    return *joined_;
}

size_t
ConformanceSink::soundCells() const
{
    size_t n = 0;
    for (const auto &cell : cells())
        n += cell.kind == Conformance::Sound;
    return n;
}

size_t
ConformanceSink::unsoundCells() const
{
    size_t n = 0;
    for (const auto &cell : cells())
        n += cell.kind == Conformance::Unsound;
    return n;
}

size_t
ConformanceSink::impreciseCells() const
{
    size_t n = 0;
    for (const auto &cell : cells())
        n += cell.kind == Conformance::Imprecise;
    return n;
}

size_t
ConformanceSink::rareCells() const
{
    size_t n = 0;
    for (const auto &cell : cells())
        n += cell.kind == Conformance::Rare;
    return n;
}

size_t
ConformanceSink::unreachableCells() const
{
    size_t n = 0;
    for (const auto &cell : cells())
        n += cell.kind == Conformance::Unreachable;
    return n;
}

size_t
ConformanceSink::boundedCells() const
{
    size_t n = 0;
    for (const auto &cell : cells())
        n += cell.kind == Conformance::Bounded;
    return n;
}

size_t
ConformanceSink::inconsistentCells() const
{
    size_t n = 0;
    for (const auto &cell : cells())
        n += !cell.inconsistent.empty();
    return n;
}

Table
ConformanceSink::summary() const
{
    struct ModelRow
    {
        size_t cells = 0;
        size_t sound = 0, unsound = 0, imprecise = 0;
        size_t rare = 0, unreachable = 0, bounded = 0;
        std::string example; ///< first unsound counterexample
    };
    std::vector<std::string> order;
    std::map<std::string, ModelRow> rows;
    for (const auto &cell : cells()) {
        if (!rows.count(cell.model))
            order.push_back(cell.model);
        ModelRow &row = rows[cell.model];
        ++row.cells;
        switch (cell.kind) {
          case Conformance::Sound: ++row.sound; break;
          case Conformance::Imprecise: ++row.imprecise; break;
          case Conformance::Rare: ++row.rare; break;
          case Conformance::Unreachable: ++row.unreachable; break;
          case Conformance::Bounded: ++row.bounded; break;
          case Conformance::Unsound:
            ++row.unsound;
            if (row.example.empty()) {
                row.example = cell.test + " on " + cell.chip + ": " +
                              cell.violations.front();
            }
            break;
        }
    }
    Table table;
    table.header({"model", "cells", "sound", "unsound", "imprecise",
                  "rare", "unreach", "bounded", "verdict",
                  "first counterexample"});
    for (const auto &model : order) {
        const ModelRow &row = rows.at(model);
        table.row({model, std::to_string(row.cells),
                   std::to_string(row.sound),
                   std::to_string(row.unsound),
                   std::to_string(row.imprecise),
                   std::to_string(row.rare),
                   std::to_string(row.unreachable),
                   std::to_string(row.bounded),
                   row.unsound == 0 ? "SOUND" : "UNSOUND",
                   row.example.empty() ? "-" : row.example});
    }
    return table;
}

namespace {

std::vector<std::string>
cellJsonEntries(const std::vector<ConformanceCell> &cells)
{
    auto keyArray = [](const std::vector<std::string> &keys) {
        std::string out = "[";
        bool first = true;
        for (const auto &key : keys) {
            if (!first)
                out += ",";
            out += "\"" + jsonEscape(key) + "\"";
            first = false;
        }
        return out + "]";
    };
    std::vector<std::string> entries;
    entries.reserve(cells.size());
    for (const ConformanceCell &cell : cells) {
        std::string rare = "{";
        bool first = true;
        for (const auto &[key, weight] : cell.rare) {
            if (!first)
                rare += ",";
            rare += "\"" + jsonEscape(key) +
                    "\":" + std::to_string(weight);
            first = false;
        }
        rare += "}";
        entries.push_back(
            "{\"test\":\"" + jsonEscape(cell.test) + "\"," +
            "\"chip\":\"" + jsonEscape(cell.chip) + "\"," +
            "\"column\":" + std::to_string(cell.column) + "," +
            "\"model\":\"" + jsonEscape(cell.model) + "\"," +
            "\"kind\":\"" + toString(cell.kind) + "\"," +
            "\"runs\":" + std::to_string(cell.runs) + "," +
            "\"exact\":" + (cell.hasExact ? "true" : "false") + "," +
            "\"exact_complete\":" +
            (cell.exactComplete ? "true" : "false") + "," +
            "\"violations\":" + keyArray(cell.violations) + "," +
            "\"unobserved\":" + keyArray(cell.unobserved) + "," +
            "\"rare\":" + rare + "," +
            "\"unreachable\":" + keyArray(cell.unreachable) + "," +
            "\"inconsistent\":" + keyArray(cell.inconsistent) + "}");
    }
    return entries;
}

} // namespace

void
ConformanceSink::writeTo(std::ostream &os) const
{
    writeJsonArray(os, cellJsonEntries(cells()));
}

bool
ConformanceSink::writeFile(const std::string &path) const
{
    return writeJsonArrayFile(path, cellJsonEntries(cells()));
}

// ---- JsonSink -------------------------------------------------------

std::string
evalCellJson(const EvalResult &result)
{
    const EvalJob &job = *result.job;

    auto verdictFields = [](const model::Verdict &v) {
        std::string f;
        f += ",\"model\":\"" + jsonEscape(v.modelName) + "\"";
        f += ",\"candidates\":" + std::to_string(v.numCandidates);
        f += ",\"allowed\":" + std::to_string(v.numAllowed);
        f += ",\"model_verdict\":\"" + jsonEscape(v.verdict) + "\"";
        f += ",\"allowed_outcomes\":[";
        bool first = true;
        for (const auto &key : v.allowedKeys) {
            if (!first)
                f += ",";
            f += "\"" + jsonEscape(key) + "\"";
            first = false;
        }
        return f + "]";
    };

    auto exactFields = [&job](const mc::ExploreResult &x) {
        std::string f;
        f += ",\"chip\":\"" + jsonEscape(x.chipName) + "\"";
        f += ",\"column\":" + std::to_string(x.column);
        f += ",\"complete\":" +
             std::string(x.complete ? "true" : "false");
        f += ",\"fair_complete\":" +
             std::string(x.fairComplete ? "true" : "false");
        f += ",\"paths\":" + std::to_string(x.paths);
        f += ",\"replays\":" + std::to_string(x.stats.replays);
        f += ",\"states\":" + std::to_string(x.stats.distinctStates);
        f += ",\"state_cuts\":" + std::to_string(x.stats.stateCuts);
        f += ",\"sleep_skips\":" +
             std::to_string(x.stats.sleepSkips);
        // Bounded-verdict diagnostics (ISSUE 8): deepest frontier,
        // checkpoint resumes, and the replay budget the job carried.
        // The budget comes from the job — not the advisory
        // ExploreResult fields — so store-served cells render
        // byte-identically to computed ones (CI diffs them).
        f += ",\"peak_depth\":" + std::to_string(x.stats.peakDepth);
        f += ",\"resumes\":" + std::to_string(x.stats.resumes);
        f += ",\"budget_replays\":" + std::to_string(job.iterations);
        f += ",\"reachable\":{";
        bool first = true;
        for (const auto &[key, weight] : x.finals) {
            if (!first)
                f += ",";
            f += "\"" + jsonEscape(key) +
                 "\":" + std::to_string(weight);
            first = false;
        }
        return f + "}";
    };

    std::string e;
    if (result.hasHist()) {
        // Sim cells use the one schema shared with harness::JsonSink;
        // a both-sided result appends the verdict fields to it.
        e = harness::simCellJson(job, *result.hist,
                                 result.observedPer100k,
                                 result.fromCache, result.millis);
        if (result.hasVerdict()) {
            e.pop_back(); // reopen the object
            e += verdictFields(*result.verdict) + "}";
        }
    } else {
        e = "{";
        e += "\"label\":\"" + jsonEscape(result.label()) + "\",";
        e += "\"backend\":\"" + jsonEscape(result.backend) + "\",";
        e += "\"test\":\"" + jsonEscape(job.test.name) + "\",";
        e += "\"cached\":" +
             std::string(result.fromCache ? "true" : "false") + ",";
        e += "\"millis\":" + std::to_string(result.millis);
        if (result.hasVerdict())
            e += verdictFields(*result.verdict);
        if (result.hasExact())
            e += exactFields(*result.exact);
        e += "}";
    }
    // Provenance for store-hit assertions (CI serve-smoke greps it).
    e.pop_back(); // reopen the object
    e += std::string(",\"from_store\":") +
         (result.fromStore ? "true" : "false") + "}";
    return e;
}

void
JsonSink::add(const EvalResult &result)
{
    entries_.push_back(evalCellJson(result));
}

void
JsonSink::writeTo(std::ostream &os) const
{
    writeJsonArray(os, entries_);
}

bool
JsonSink::writeFile(const std::string &path) const
{
    return writeJsonArrayFile(path, entries_);
}

} // namespace gpulitmus::eval
