/**
 * @file
 * Scope trees: the placement of testing threads in the GPU execution
 * hierarchy (grid / CTA / warp), Sec. 4.1 of the paper.
 */

#ifndef GPULITMUS_LITMUS_SCOPE_TREE_H
#define GPULITMUS_LITMUS_SCOPE_TREE_H

#include <optional>
#include <string>
#include <vector>

namespace gpulitmus::litmus {

/**
 * Per-thread position in the hierarchy. All testing threads are in the
 * same grid (the paper does not test inter-grid interactions).
 */
struct ThreadPlacement
{
    int cta = 0;  ///< CTA (block / work-group) index within the grid
    int warp = 0; ///< warp index within the CTA

    bool operator==(const ThreadPlacement &other) const = default;
};

/**
 * The scope tree of a litmus test: thread index -> placement.
 */
class ScopeTree
{
  public:
    ScopeTree() = default;
    explicit ScopeTree(std::vector<ThreadPlacement> threads)
        : threads_(std::move(threads))
    {}

    /** n threads in the same warp of the same CTA. */
    static ScopeTree intraWarp(int n);
    /** n threads in the same CTA, each in its own warp (the paper's
     * "intra-CTA" configuration). */
    static ScopeTree intraCta(int n);
    /** n threads each in its own CTA ("inter-CTA"). */
    static ScopeTree interCta(int n);

    int numThreads() const { return static_cast<int>(threads_.size()); }
    const ThreadPlacement &placement(int tid) const;

    bool sameCta(int t1, int t2) const;
    bool sameWarp(int t1, int t2) const;

    /** Number of distinct CTAs used. */
    int numCtas() const;

    /** Render as "grid(cta(warp T0)(warp T1))". */
    std::string str() const;

    /**
     * Parse "grid(cta(warp T0) (warp T1))" or
     * "grid(cta(warp T0))(cta(warp T1))" (also accepts "block" /
     * "device" synonyms). Thread names must be T0..Tn-1; their
     * placements are recorded in index order.
     */
    static std::optional<ScopeTree> parse(const std::string &text);

    bool operator==(const ScopeTree &other) const = default;

  private:
    std::vector<ThreadPlacement> threads_;
};

} // namespace gpulitmus::litmus

#endif // GPULITMUS_LITMUS_SCOPE_TREE_H
