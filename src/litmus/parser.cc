#include "litmus/parser.h"

#include <cctype>

#include "common/log.h"
#include "common/strutil.h"
#include "ptx/parser.h"

namespace gpulitmus::litmus {

namespace {

bool
fail(ParseError *error, int line, const std::string &msg)
{
    if (error) {
        error->message = msg;
        error->line = line;
    }
    return false;
}

/**
 * Parse one init-block entry:
 *   "0:.reg .s32 r0"       register declaration (init 0)
 *   "0:.reg .b64 r1 = x"   register bound to a location address
 *   "0:r1 = x" / "0:r1=3"  CPU-litmus-style register init
 *   "x = 1"                location init (global by default)
 *   "global x = 1"         location init with region
 *   "shared y"             location declaration
 */
bool
parseInitEntry(const std::string &entry, Test &test, ParseError *error,
               int line)
{
    std::string e = trim(entry);
    if (e.empty())
        return true;

    // Thread-qualified entries start with "<tid>:".
    size_t colon = e.find(':');
    bool thread_entry = false;
    int tid = 0;
    if (colon != std::string::npos) {
        auto maybe_tid = parseInt(e.substr(0, colon));
        if (maybe_tid) {
            thread_entry = true;
            tid = static_cast<int>(*maybe_tid);
            e = trim(e.substr(colon + 1));
        }
    }

    if (thread_entry) {
        // Strip ".reg" and type tokens.
        std::string reg;
        std::string rhs;
        size_t eq = e.find('=');
        std::string lhs = eq == std::string::npos ? e
                                                  : trim(e.substr(0, eq));
        if (eq != std::string::npos)
            rhs = trim(e.substr(eq + 1));
        auto words = splitWhitespace(lhs);
        for (const auto &w : words) {
            if (w == ".reg" || (w.size() > 1 && w[0] == '.'))
                continue; // declaration keyword or type
            reg = w;
        }
        if (reg.empty())
            return fail(error, line, "bad register entry '" + entry +
                                         "'");
        if (rhs.empty()) {
            // Pure declaration; implicit zero init needs no record.
            return true;
        }
        if (auto v = parseInt(rhs)) {
            test.regInits.push_back({tid, reg, false, "", *v});
        } else {
            test.regInits.push_back({tid, reg, true, rhs, 0});
        }
        return true;
    }

    // Location entry, optionally prefixed with a region keyword.
    MemSpace space = MemSpace::Global;
    auto words = splitWhitespace(e);
    size_t idx = 0;
    if (!words.empty() &&
        (words[0] == "global" || words[0] == "shared")) {
        space = words[0] == "global" ? MemSpace::Global
                                     : MemSpace::Shared;
        ++idx;
    }
    std::string rest;
    for (size_t i = idx; i < words.size(); ++i)
        rest += words[i];
    if (rest.empty())
        return fail(error, line, "empty init entry");
    size_t eq = rest.find('=');
    std::string name = eq == std::string::npos ? rest
                                               : rest.substr(0, eq);
    int64_t value = 0;
    if (eq != std::string::npos) {
        auto v = parseInt(rest.substr(eq + 1));
        if (!v)
            return fail(error, line,
                        "bad location init '" + entry + "'");
        value = *v;
    }
    for (auto &l : test.locations) {
        if (l.name == name) {
            l.space = space;
            l.init = value;
            return true;
        }
    }
    test.locations.push_back({name, space, value});
    return true;
}

/** Ensure a location exists, defaulting to global with init 0. */
void
touchLocation(Test &test, const std::string &name)
{
    for (const auto &l : test.locations) {
        if (l.name == name)
            return;
    }
    test.locations.push_back({name, MemSpace::Global, 0});
}

/** Parse a memory-map line "x: shared, y: global". */
bool
tryParseMemoryMap(const std::string &line, Test &test)
{
    auto entries = split(line, ',');
    if (entries.empty())
        return false;
    std::vector<std::pair<std::string, MemSpace>> updates;
    for (const auto &raw : entries) {
        auto colon = raw.find(':');
        if (colon == std::string::npos)
            return false;
        std::string name = trim(raw.substr(0, colon));
        std::string region = trim(raw.substr(colon + 1));
        MemSpace space;
        if (region == "shared")
            space = MemSpace::Shared;
        else if (region == "global")
            space = MemSpace::Global;
        else
            return false;
        if (name.empty() ||
            !std::isalpha(static_cast<unsigned char>(name[0])))
            return false;
        updates.emplace_back(name, space);
    }
    for (const auto &[name, space] : updates) {
        touchLocation(test, name);
        for (auto &l : test.locations) {
            if (l.name == name)
                l.space = space;
        }
    }
    return true;
}

} // anonymous namespace

std::optional<Test>
parseTest(const std::string &text, ParseError *error)
{
    Test test;
    auto lines = split(text, '\n');
    size_t li = 0;
    bool in_comment = false;
    auto nextLine = [&]() -> std::optional<std::string> {
        while (li < lines.size()) {
            std::string l = lines[li++];
            // Litmus-style (* ... *) comments, possibly multi-line.
            std::string stripped;
            for (size_t i = 0; i < l.size();) {
                if (in_comment) {
                    auto close = l.find("*)", i);
                    if (close == std::string::npos) {
                        i = l.size();
                    } else {
                        in_comment = false;
                        i = close + 2;
                    }
                } else if (l.compare(i, 2, "(*") == 0) {
                    in_comment = true;
                    i += 2;
                } else {
                    stripped += l[i++];
                }
            }
            l = stripped;
            auto comment = l.find("//");
            if (comment != std::string::npos)
                l = l.substr(0, comment);
            l = trim(l);
            if (!l.empty())
                return l;
        }
        return std::nullopt;
    };

    // Header: arch + name.
    auto header = nextLine();
    if (!header) {
        if (error)
            error->message = "empty litmus file";
        return std::nullopt;
    }
    auto header_words = splitWhitespace(*header);
    if (header_words.size() < 2) {
        if (error) {
            error->message = "header must be '<arch> <name>'";
            error->line = static_cast<int>(li);
        }
        return std::nullopt;
    }
    test.arch = header_words[0];
    // Everything after the arch is the name: generated tests are
    // named by their cycle ("PodWW Rfe-dev PodRR Fre-dev"), which
    // must survive a print/reparse round trip.
    test.name = trim(header->substr(test.arch.size()));

    // Optional init block in braces, possibly spanning lines.
    auto line = nextLine();
    if (!line)
        return std::nullopt;
    if (!line->empty() && line->front() == '{') {
        std::string block = *line;
        while (block.find('}') == std::string::npos) {
            auto more = nextLine();
            if (!more) {
                if (error)
                    error->message = "unterminated init block";
                return std::nullopt;
            }
            block += " " + *more;
        }
        std::string inner =
            block.substr(1, block.find('}') - 1);
        for (const auto &entry : split(inner, ';')) {
            ParseError perr;
            if (!parseInitEntry(entry, test, &perr,
                                static_cast<int>(li))) {
                if (error)
                    *error = perr;
                return std::nullopt;
            }
        }
        line = nextLine();
        if (!line)
            return std::nullopt;
    }

    // Program table: first row holds thread names.
    if (line->find('|') == std::string::npos &&
        !startsWith(*line, "T0")) {
        if (error) {
            error->message = "expected thread header row";
            error->line = static_cast<int>(li);
        }
        return std::nullopt;
    }
    auto stripRow = [](std::string row) {
        row = trim(row);
        if (!row.empty() && row.back() == ';')
            row.pop_back();
        return row;
    };
    auto headers = split(stripRow(*line), '|');
    int nthreads = static_cast<int>(headers.size());
    std::vector<std::string> bodies(nthreads);
    // File line of each accumulated body row, per thread, so thread
    // parse errors and analysis findings can cite file:line.
    std::vector<std::vector<int>> bodyLines(nthreads);

    for (;;) {
        line = nextLine();
        if (!line)
            break;
        int rowLine = static_cast<int>(li);
        // Non-program trailer lines terminate the table.
        if (startsWith(*line, "ScopeTree") ||
            startsWith(*line, "exists") ||
            startsWith(*line, "~exists") ||
            startsWith(*line, "forall") ||
            startsWith(*line, "final:"))
            break;
        if (line->find('|') == std::string::npos &&
            line->find(':') != std::string::npos &&
            tryParseMemoryMap(*line, test))
            continue;
        auto cells = split(stripRow(*line), '|');
        for (int t = 0;
             t < nthreads && t < static_cast<int>(cells.size()); ++t) {
            std::string cell = trim(cells[t]);
            if (!cell.empty()) {
                bodies[t] += cell + "\n";
                bodyLines[t].push_back(rowLine);
            }
        }
    }

    for (int t = 0; t < nthreads; ++t) {
        ptx::ParseError perr;
        auto prog = ptx::parseThread(bodies[t], &perr, &bodyLines[t]);
        if (!prog) {
            if (error) {
                error->message = "T" + std::to_string(t) + ": " +
                                 perr.message;
                error->line = perr.line;
                error->col = perr.col;
            }
            return std::nullopt;
        }
        test.program.threads.push_back(std::move(*prog));
    }

    // Collect locations referenced symbolically.
    for (const auto &th : test.program.threads) {
        for (const auto &i : th.instrs) {
            if (i.isMemAccess() && i.addr.isSym())
                touchLocation(test, i.addr.sym);
        }
    }
    for (const auto &r : test.regInits) {
        if (r.isLocAddress)
            touchLocation(test, r.loc);
    }

    // Trailer: scope tree, memory map, condition — in any order.
    bool have_cond = false;
    while (line) {
        if (startsWith(*line, "ScopeTree")) {
            auto tree = ScopeTree::parse(*line);
            if (!tree) {
                if (error)
                    error->message = "bad scope tree '" + *line + "'";
                return std::nullopt;
            }
            test.scopeTree = std::move(*tree);
        } else if (startsWith(*line, "exists") ||
                   startsWith(*line, "~exists") ||
                   startsWith(*line, "forall") ||
                   startsWith(*line, "final:")) {
            auto qc = parseQuantifiedCondition(*line);
            if (!qc) {
                if (error)
                    error->message = "bad condition '" + *line + "'";
                return std::nullopt;
            }
            test.quantifier = qc->first;
            test.condition = std::move(qc->second);
            have_cond = true;
        } else if (tryParseMemoryMap(*line, test)) {
            // handled
        } else {
            if (error)
                error->message = "unexpected line '" + *line + "'";
            return std::nullopt;
        }
        line = nextLine();
    }

    if (!have_cond) {
        if (error)
            error->message = "missing final condition";
        return std::nullopt;
    }
    if (test.scopeTree.numThreads() == 0)
        test.scopeTree = ScopeTree::interCta(nthreads);
    if (test.scopeTree.numThreads() != nthreads) {
        if (error)
            error->message = "scope tree thread count mismatch";
        return std::nullopt;
    }

    test.validate();
    return test;
}

} // namespace gpulitmus::litmus
