#include "litmus/outcome.h"

#include "common/log.h"

namespace gpulitmus::litmus {

Histogram::Histogram(const Test &test)
    : test_(&test), regs_(test.observedRegs()),
      locs_(test.observedLocs())
{
}

std::string
Histogram::keyFor(const FinalState &state) const
{
    std::string key;
    for (const auto &[tid, reg] : regs_) {
        key += std::to_string(tid) + ":" + reg + "=" +
               std::to_string(state.reg(tid, reg)) + "; ";
    }
    for (const auto &loc : locs_) {
        key += loc + "=" + std::to_string(state.loc(loc)) + "; ";
    }
    if (!key.empty())
        key.resize(key.size() - 1); // drop trailing space
    return key;
}

void
Histogram::record(const FinalState &state)
{
    ++total_;
    ++counts_[keyFor(state)];
    if (test_->condition.eval(state))
        ++observed_;
}

std::string
Histogram::verdict() const
{
    switch (test_->quantifier) {
      case Quantifier::Exists:
        return observed_ > 0 ? "Ok" : "No";
      case Quantifier::NotExists:
        return observed_ == 0 ? "Ok" : "No";
      case Quantifier::Forall:
        return observed_ == total_ ? "Ok" : "No";
    }
    panic("unknown quantifier");
}

std::string
Histogram::str() const
{
    std::string out = "Test " + test_->name + "\n";
    out += "Histogram (" + std::to_string(counts_.size()) +
           " states)\n";
    for (const auto &[key, count] : counts_) {
        out += "  " + std::to_string(count) + "  " + key + "\n";
    }
    out += toString(test_->quantifier) + " (" +
           test_->condition.str() + ")  observed " +
           std::to_string(observed_) + "/" + std::to_string(total_) +
           "  " + verdict() + "\n";
    return out;
}

} // namespace gpulitmus::litmus
