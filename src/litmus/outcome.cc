#include "litmus/outcome.h"

#include <cstdio>

#include "common/log.h"

namespace gpulitmus::litmus {

Histogram::Histogram(const Test &test)
    : test_(&test), regs_(test.observedRegs()),
      locs_(test.observedLocs())
{
}

std::string
Histogram::keyFor(const FinalState &state) const
{
    // Hot path for both the sampling harness (once per iteration) and
    // the explorer (once per leaf): append in place, no temporaries.
    std::string key;
    key.reserve(16 * (regs_.size() + locs_.size()));
    char buf[24];
    auto append_int = [&](int64_t v) {
        key.append(buf, static_cast<size_t>(std::snprintf(
                            buf, sizeof buf, "%lld",
                            static_cast<long long>(v))));
    };
    for (const auto &[tid, reg] : regs_) {
        append_int(tid);
        key += ':';
        key += reg;
        key += '=';
        append_int(state.reg(tid, reg));
        key += "; ";
    }
    for (const auto &loc : locs_) {
        key += loc;
        key += '=';
        append_int(state.loc(loc));
        key += "; ";
    }
    if (!key.empty())
        key.resize(key.size() - 1); // drop trailing space
    return key;
}

void
Histogram::record(const FinalState &state)
{
    ++total_;
    ++counts_[keyFor(state)];
    if (test_->condition.eval(state))
        ++observed_;
}

void
Histogram::restore(std::map<std::string, uint64_t> counts,
                   uint64_t observed, uint64_t total)
{
    counts_ = std::move(counts);
    observed_ = observed;
    total_ = total;
}

std::string
Histogram::verdict() const
{
    switch (test_->quantifier) {
      case Quantifier::Exists:
        return observed_ > 0 ? "Ok" : "No";
      case Quantifier::NotExists:
        return observed_ == 0 ? "Ok" : "No";
      case Quantifier::Forall:
        return observed_ == total_ ? "Ok" : "No";
    }
    panic("unknown quantifier");
}

std::string
Histogram::str() const
{
    std::string out = "Test " + test_->name + "\n";
    out += "Histogram (" + std::to_string(counts_.size()) +
           " states)\n";
    for (const auto &[key, count] : counts_) {
        out += "  " + std::to_string(count) + "  " + key + "\n";
    }
    out += toString(test_->quantifier) + " (" +
           test_->condition.str() + ")  observed " +
           std::to_string(observed_) + "/" + std::to_string(total_) +
           "  " + verdict() + "\n";
    return out;
}

} // namespace gpulitmus::litmus
