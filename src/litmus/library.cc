#include "litmus/library.h"

#include "common/log.h"

namespace gpulitmus::litmus::paperlib {

using ptx::Scope;

namespace {

std::string
fenceText(FenceOpt fence)
{
    if (!fence)
        return "";
    return "membar." + ptx::toString(*fence) + ";";
}

std::string
fenceSuffix(FenceOpt fence)
{
    if (!fence)
        return "";
    return "+membar." + ptx::toString(*fence);
}

} // anonymous namespace

Test
coRR()
{
    return TestBuilder("coRR")
        .global("x", 0)
        .thread("st.cg [x],1")
        .thread("ld.cg r1,[x]; ld.cg r2,[x]")
        .intraCta()
        .exists("1:r1=1 /\\ 1:r2=0")
        .build();
}

Test
mpL1(FenceOpt fence)
{
    std::string f = fenceText(fence);
    return TestBuilder("mp-L1" + fenceSuffix(fence))
        .global("x", 0)
        .global("y", 0)
        .thread("st.cg [x],1;" + f + "st.cg [y],1")
        .thread("ld.ca r1,[y];" + f + "ld.ca r2,[x]")
        .interCta()
        .exists("1:r1=1 /\\ 1:r2=0")
        .build();
}

Test
coRRL2L1(FenceOpt fence)
{
    std::string f = fenceText(fence);
    return TestBuilder("coRR-L2-L1" + fenceSuffix(fence))
        .global("x", 0)
        .thread("st.cg [x],1")
        .thread("ld.cg r1,[x];" + f + "ld.ca r2,[x]")
        .intraCta()
        .exists("1:r1=1 /\\ 1:r2=0")
        .build();
}

Test
mpVolatile()
{
    return TestBuilder("mp-volatile")
        .shared("x", 0)
        .shared("y", 0)
        .thread("st.volatile [x],1; st.volatile [y],1")
        .thread("ld.volatile r1,[y]; ld.volatile r2,[x]")
        .intraCta()
        .exists("1:r1=1 /\\ 1:r2=0")
        .build();
}

Test
dlbMp(bool with_fences)
{
    // Fig. 7, distilled from the push/steal pair of the
    // Cederman-Tsigas deque (Fig. 6) via the Tab. 5 mapping.
    std::string t0 = "st.cg [d],1;";
    if (with_fences)
        t0 += "membar.gl;";
    t0 += "ld.volatile r2,[t]; add r2,r2,1; st.volatile [t],r2";

    std::string t1 = "ld.volatile r0,[t]; setp.eq p4,r0,0;";
    if (with_fences)
        t1 += "@!p4 membar.gl;";
    t1 += "@!p4 ld.cg r1,[d]";

    return TestBuilder(with_fences ? "dlb-mp+fences" : "dlb-mp")
        .global("t", 0)
        .global("d", 0)
        .thread(t0)
        .thread(t1)
        .interCta()
        .exists("1:r0=1 /\\ 1:r1=0")
        .build();
}

Test
dlbLb(bool with_fences)
{
    // Fig. 8: T0 pops (CAS on head) then pushes (store to tasks);
    // T1 steals (load tasks then CAS head).
    std::string t0 = "atom.cas r0,[h],0,1;";
    if (with_fences)
        t0 += "membar.gl;";
    t0 += "mov r2,1; st.cg [t],r2";

    std::string t1 = "ld.cg r1,[t];";
    if (with_fences)
        t1 += "membar.gl;";
    t1 += "atom.cas r3,[h],0,1";

    return TestBuilder(with_fences ? "dlb-lb+fences" : "dlb-lb")
        .global("t", 0)
        .global("h", 0)
        .thread(t0)
        .thread(t1)
        .interCta()
        .exists("0:r0=1 /\\ 1:r1=1")
        .build();
}

Test
casSl(bool with_fences)
{
    // Fig. 9: the critical-section store of the unlocking thread and
    // the guarded critical-section load of the locking thread.
    //
    // The paper predicates directly on the CAS result register (line
    // 1.3 "r1 membar.gl"); we materialise the predicate with setp so
    // the guard is a proper predicate register (same semantics: the
    // guarded instructions execute exactly when the lock was taken,
    // i.e. when r1 == 0).
    std::string t0 = "st.cg [x],1;";
    if (with_fences)
        t0 += "membar.gl;";
    t0 += "atom.exch r0,[m],0";

    std::string t1 = "atom.cas r1,[m],0,1; setp.eq p2,r1,0;";
    if (with_fences)
        t1 += "@p2 membar.gl;";
    t1 += "@p2 ld.cg r3,[x]";

    return TestBuilder(with_fences ? "cas-sl+fences" : "cas-sl")
        .global("x", 0)
        .global("m", 1)
        .thread(t0)
        .thread(t1)
        .interCta()
        .exists("1:r1=0 /\\ 1:r3=0")
        .build();
}

Test
slFuture(bool fixed)
{
    // Fig. 11: can a critical section read a value written by the
    // *next* critical section? The original unlocks with a plain
    // store after the critical section (and a trailing fence, which
    // is too late); the fixed version fences before the unlock and
    // releases with an atomic exchange.
    std::string t0;
    if (fixed) {
        t0 = "ld.cg r0,[x]; membar.gl; atom.exch r1,[m],0";
    } else {
        t0 = "ld.cg r0,[x]; st.cg [m],0; membar.gl";
    }

    std::string t1 = "atom.cas r2,[m],0,1; setp.eq p1,r2,0;"
                     "@p1 mov r3,1;";
    if (fixed)
        t1 += "@p1 membar.gl;";
    t1 += "@p1 st.cg [x],1";

    return TestBuilder(fixed ? "sl-future+fixed" : "sl-future")
        .global("x", 0)
        .global("m", 1)
        .thread(t0)
        .thread(t1)
        .interCta()
        .exists("0:r0=1 /\\ 1:r2=0")
        .build();
}

Test
mp(FenceOpt fence, bool inter_cta)
{
    std::string f = fenceText(fence);
    TestBuilder b("mp" + fenceSuffix(fence) +
                  (inter_cta ? "" : "+intra"));
    b.global("x", 0)
        .global("y", 0)
        .thread("st.cg [x],1;" + f + "st.cg [y],1")
        .thread("ld.cg r1,[y];" + f + "ld.cg r2,[x]");
    if (inter_cta)
        b.interCta();
    else
        b.intraCta();
    return b.exists("1:r1=1 /\\ 1:r2=0").build();
}

Test
sb(FenceOpt fence, bool inter_cta)
{
    std::string f = fenceText(fence);
    TestBuilder b("sb" + fenceSuffix(fence) +
                  (inter_cta ? "" : "+intra"));
    b.global("x", 0)
        .global("y", 0)
        .thread("st.cg [x],1;" + f + "ld.cg r2,[y]")
        .thread("st.cg [y],1;" + f + "ld.cg r2,[x]");
    if (inter_cta)
        b.interCta();
    else
        b.intraCta();
    return b.exists("0:r2=0 /\\ 1:r2=0").build();
}

Test
lb(FenceOpt fence, bool inter_cta)
{
    std::string f = fenceText(fence);
    TestBuilder b("lb" + fenceSuffix(fence) +
                  (inter_cta ? "" : "+intra"));
    b.global("x", 0)
        .global("y", 0)
        .thread("ld.cg r1,[x];" + f + "st.cg [y],1")
        .thread("ld.cg r1,[y];" + f + "st.cg [x],1");
    if (inter_cta)
        b.interCta();
    else
        b.intraCta();
    return b.exists("0:r1=1 /\\ 1:r1=1").build();
}

Test
lbMembarCtas()
{
    Test t = lb(Scope::Cta, true);
    t.name = "lb+membar.ctas";
    return t;
}

Test
mpMembarGls()
{
    Test t = mp(Scope::Gl, true);
    t.name = "mp+membar.gls";
    return t;
}

Test
sbFig12()
{
    return TestBuilder("SB-fig12")
        .shared("x", 0)
        .global("y", 0)
        .regLoc(0, "r1", "x")
        .regLoc(0, "r3", "y")
        .regLoc(1, "r1", "y")
        .regLoc(1, "r3", "x")
        .thread("mov.s32 r0,1; st.cg.s32 [r1],r0; ld.cg.s32 r2,[r3]")
        .thread("mov.s32 r0,1; st.cg.s32 [r1],r0; ld.cg.s32 r2,[r3]")
        .intraCta()
        .exists("0:r2=0 /\\ 1:r2=0")
        .build();
}

std::vector<NamedTest>
allTests()
{
    std::vector<NamedTest> tests;
    auto addTest = [&](std::string section, Test t) {
        tests.push_back({t.name, std::move(section), std::move(t)});
    };

    addTest("Fig. 1", coRR());
    for (FenceOpt f :
         {FenceOpt{}, FenceOpt{Scope::Cta}, FenceOpt{Scope::Gl},
          FenceOpt{Scope::Sys}}) {
        addTest("Fig. 3", mpL1(f));
        addTest("Fig. 4", coRRL2L1(f));
    }
    addTest("Fig. 5", mpVolatile());
    addTest("Fig. 7", dlbMp(false));
    addTest("Fig. 7", dlbMp(true));
    addTest("Fig. 8", dlbLb(false));
    addTest("Fig. 8", dlbLb(true));
    addTest("Fig. 9", casSl(false));
    addTest("Fig. 9", casSl(true));
    addTest("Fig. 11", slFuture(false));
    addTest("Fig. 11", slFuture(true));
    addTest("Tab. 3", mp());
    addTest("Tab. 3", sb());
    addTest("Tab. 3", lb());
    addTest("Tab. 3", mp(std::nullopt, false));
    addTest("Tab. 3", sb(std::nullopt, false));
    addTest("Tab. 3", lb(std::nullopt, false));
    addTest("Sec. 6", lbMembarCtas());
    addTest("Sec. 3.1.2", mpMembarGls());
    addTest("Fig. 12", sbFig12());
    return tests;
}

} // namespace gpulitmus::litmus::paperlib
