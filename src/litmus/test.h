/**
 * @file
 * The litmus test representation: locations with regions and initial
 * values, register initialisation (including registers holding
 * location addresses), the per-thread programs, the scope tree, and
 * the quantified final condition. Mirrors the GPU litmus format of
 * Fig. 12 in the paper.
 */

#ifndef GPULITMUS_LITMUS_TEST_H
#define GPULITMUS_LITMUS_TEST_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "litmus/condition.h"
#include "litmus/scope_tree.h"
#include "ptx/program.h"

namespace gpulitmus::litmus {

/** Memory regions from the test's memory map (Sec. 2.2). */
enum class MemSpace { Global, Shared };

std::string toString(MemSpace s);

/** One shared location of a test. */
struct LocationDef
{
    std::string name;
    MemSpace space = MemSpace::Global;
    int64_t init = 0;

    bool operator==(const LocationDef &other) const = default;
};

/** Initialisation of one register of one thread. */
struct RegInit
{
    int tid = 0;
    std::string reg;
    bool isLocAddress = false; ///< register holds the address of loc
    std::string loc;           ///< when isLocAddress
    int64_t value = 0;         ///< otherwise

    bool operator==(const RegInit &other) const = default;
};

/** A complete GPU litmus test. */
struct Test
{
    std::string name;
    std::string arch = "GPU_PTX";
    std::vector<LocationDef> locations;
    std::vector<RegInit> regInits;
    ptx::Program program;
    ScopeTree scopeTree;
    Quantifier quantifier = Quantifier::Exists;
    Condition condition;

    /** Look up a location definition by name; nullptr if absent. */
    const LocationDef *findLocation(const std::string &name) const;

    /**
     * Deterministic fake address for a location: global locations live
     * at globalBase + 64 * index, shared at sharedBase + 64 * index.
     */
    static constexpr int64_t globalBase = 0x10000;
    static constexpr int64_t sharedBase = 0x20000;
    static constexpr int64_t locStride = 64;

    int64_t addressOf(const std::string &name) const;

    /** Inverse of addressOf; empty if the address is no location. */
    std::optional<std::string> locationAt(int64_t addr) const;

    /** Space of the location containing this address. */
    std::optional<MemSpace> spaceOf(int64_t addr) const;

    /** Whole-test pretty printer in the Fig. 12 litmus format. */
    std::string str() const;

    /**
     * Registers that make up the observable outcome of a run: all
     * registers mentioned in the final condition, plus all locations
     * mentioned there.
     */
    std::vector<RegKey> observedRegs() const;
    std::vector<std::string> observedLocs() const;

    /** Validate internal consistency (thread counts, labels, locs). */
    void validate() const;
};

/**
 * Fluent builder used by the built-in test library, the generator and
 * the CUDA mapping layer.
 *
 *   Test t = TestBuilder("mp")
 *       .global("x", 0).global("y", 0)
 *       .thread("st.cg [x],1; st.cg [y],1")
 *       .thread("ld.cg r1,[y]; ld.cg r2,[x]")
 *       .interCta()
 *       .exists("1:r1=1 /\\ 1:r2=0")
 *       .build();
 */
class TestBuilder
{
  public:
    explicit TestBuilder(std::string name);

    TestBuilder &global(const std::string &loc, int64_t init = 0);
    TestBuilder &shared(const std::string &loc, int64_t init = 0);

    /** Append a thread from semicolon/newline-separated PTX text. */
    TestBuilder &thread(const std::string &ptx_text);

    /** Append a pre-built thread program. */
    TestBuilder &thread(ptx::ThreadProgram prog);

    /** Initialise a register with a plain value. */
    TestBuilder &regVal(int tid, const std::string &reg, int64_t value);

    /** Initialise a register with a location's address. */
    TestBuilder &regLoc(int tid, const std::string &reg,
                        const std::string &loc);

    TestBuilder &intraWarp();
    TestBuilder &intraCta();
    TestBuilder &interCta();
    TestBuilder &scope(ScopeTree tree);

    TestBuilder &exists(const std::string &cond);
    TestBuilder &notExists(const std::string &cond);
    TestBuilder &forall(const std::string &cond);

    /** Finalise; panics on inconsistent tests. */
    Test build();

  private:
    Test test_;
    bool scope_set_ = false;
};

} // namespace gpulitmus::litmus

#endif // GPULITMUS_LITMUS_TEST_H
