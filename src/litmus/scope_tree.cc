#include "litmus/scope_tree.h"

#include <algorithm>
#include <cctype>
#include <map>

#include "common/log.h"
#include "common/strutil.h"

namespace gpulitmus::litmus {

ScopeTree
ScopeTree::intraWarp(int n)
{
    std::vector<ThreadPlacement> t(n, ThreadPlacement{0, 0});
    return ScopeTree(std::move(t));
}

ScopeTree
ScopeTree::intraCta(int n)
{
    std::vector<ThreadPlacement> t;
    for (int i = 0; i < n; ++i)
        t.push_back(ThreadPlacement{0, i});
    return ScopeTree(std::move(t));
}

ScopeTree
ScopeTree::interCta(int n)
{
    std::vector<ThreadPlacement> t;
    for (int i = 0; i < n; ++i)
        t.push_back(ThreadPlacement{i, 0});
    return ScopeTree(std::move(t));
}

const ThreadPlacement &
ScopeTree::placement(int tid) const
{
    if (tid < 0 || tid >= numThreads())
        panic("scope tree has no thread %d", tid);
    return threads_[tid];
}

bool
ScopeTree::sameCta(int t1, int t2) const
{
    return placement(t1).cta == placement(t2).cta;
}

bool
ScopeTree::sameWarp(int t1, int t2) const
{
    return sameCta(t1, t2) && placement(t1).warp == placement(t2).warp;
}

int
ScopeTree::numCtas() const
{
    int max_cta = -1;
    for (const auto &t : threads_)
        max_cta = std::max(max_cta, t.cta);
    return max_cta + 1;
}

std::string
ScopeTree::str() const
{
    // Group threads by cta, then warp.
    std::map<int, std::map<int, std::vector<int>>> tree;
    for (int tid = 0; tid < numThreads(); ++tid)
        tree[threads_[tid].cta][threads_[tid].warp].push_back(tid);

    std::string out = "grid(";
    bool first_cta = true;
    for (const auto &[cta, warps] : tree) {
        if (!first_cta)
            out += " ";
        first_cta = false;
        out += "cta(";
        bool first_warp = true;
        for (const auto &[warp, tids] : warps) {
            if (!first_warp)
                out += " ";
            first_warp = false;
            out += "(warp";
            for (int tid : tids)
                out += " T" + std::to_string(tid);
            out += ")";
        }
        out += ")";
    }
    out += ")";
    return out;
}

std::optional<ScopeTree>
ScopeTree::parse(const std::string &text)
{
    // The published format is loosely parenthesised
    // ("grid(cta(warp T0) (warp T1))"), so we parse lexically: the
    // keywords cta/warp open a new index at their level and thread
    // names bind to the current (cta, warp) pair. Parentheses carry no
    // extra information beyond the keyword sequence.
    std::string body = trim(text);
    if (startsWith(body, "ScopeTree"))
        body = trim(body.substr(9));

    // Tokenise into words and thread names.
    std::vector<std::string> tokens;
    std::string cur;
    for (char c : body) {
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
            cur += c;
        } else {
            if (!cur.empty())
                tokens.push_back(cur);
            cur.clear();
        }
    }
    if (!cur.empty())
        tokens.push_back(cur);

    if (tokens.empty() ||
        (tokens[0] != "grid" && tokens[0] != "device" &&
         tokens[0] != "ndrange"))
        return std::nullopt;

    std::map<int, ThreadPlacement> placements;
    int cta_idx = -1;
    int warp_idx = -1;
    for (size_t i = 1; i < tokens.size(); ++i) {
        const std::string &tok = tokens[i];
        if (tok == "cta" || tok == "block" || tok == "work_group") {
            ++cta_idx;
            warp_idx = -1;
        } else if (tok == "warp" || tok == "wavefront") {
            ++warp_idx;
        } else if ((tok[0] == 'T' || tok[0] == 'P') && tok.size() > 1 &&
                   std::all_of(tok.begin() + 1, tok.end(), [](char c) {
                       return std::isdigit(
                           static_cast<unsigned char>(c));
                   })) {
            if (cta_idx < 0 || warp_idx < 0)
                return std::nullopt;
            int tid = std::stoi(tok.substr(1));
            placements[tid] = ThreadPlacement{cta_idx, warp_idx};
        } else {
            return std::nullopt;
        }
    }

    if (placements.empty())
        return std::nullopt;
    int n = placements.rbegin()->first + 1;
    std::vector<ThreadPlacement> threads(n);
    for (int i = 0; i < n; ++i) {
        auto it = placements.find(i);
        if (it == placements.end())
            return std::nullopt; // non-contiguous thread names
        threads[i] = it->second;
    }
    return ScopeTree(std::move(threads));
}

} // namespace gpulitmus::litmus
