/**
 * @file
 * The built-in library of litmus tests from the paper: every figure's
 * test, the Tab. 3 idioms, and the Sec. 6 counterexample against the
 * operational baseline model.
 *
 * Naming follows the paper: coRR (Fig. 1), mp-L1 (Fig. 3),
 * coRR-L2-L1 (Fig. 4), mp-volatile (Fig. 5), dlb-mp (Fig. 7),
 * dlb-lb (Fig. 8), cas-sl (Fig. 9), sl-future (Fig. 11), and the
 * classic idioms mp / sb / lb / coRR over global memory.
 */

#ifndef GPULITMUS_LITMUS_LIBRARY_H
#define GPULITMUS_LITMUS_LIBRARY_H

#include <optional>
#include <vector>

#include "litmus/test.h"
#include "ptx/types.h"

namespace gpulitmus::litmus::paperlib {

/** Fence choice for parameterised tests: nullopt = no fence. */
using FenceOpt = std::optional<ptx::Scope>;

/** Fig. 1: read-read coherence, intra-CTA, global memory. */
Test coRR();

/** Fig. 3: mp with L1 (.ca) loads and .cg stores, inter-CTA. */
Test mpL1(FenceOpt fence);

/** Fig. 4: coRR mixing .cg then .ca loads, intra-CTA. */
Test coRRL2L1(FenceOpt fence);

/** Fig. 5: mp with volatile accesses in shared memory, intra-CTA. */
Test mpVolatile();

/** Fig. 7: message passing distilled from the load-balancing deque. */
Test dlbMp(bool with_fences);

/** Fig. 8: load buffering distilled from the load-balancing deque. */
Test dlbLb(bool with_fences);

/** Fig. 9: spin lock using compare-and-swap (CUDA by Example). */
Test casSl(bool with_fences);

/** Fig. 11: spin lock future-value test (He–Yu). */
Test slFuture(bool fixed);

/** Tab. 3 idiom: message passing over global memory (.cg). */
Test mp(FenceOpt fence = std::nullopt, bool inter_cta = true);

/** Tab. 3 idiom: store buffering over global memory (.cg). */
Test sb(FenceOpt fence = std::nullopt, bool inter_cta = true);

/** Tab. 3 idiom: load buffering over global memory (.cg). */
Test lb(FenceOpt fence = std::nullopt, bool inter_cta = true);

/** Sec. 6: inter-CTA lb with membar.cta between all accesses — the
 * test that shows the Sorensen et al. operational model unsound. */
Test lbMembarCtas();

/** Sec. 3.1.2 fix: mp with .cg operators and membar.gl fences. */
Test mpMembarGls();

/** The exact sb test of Fig. 12, with x shared and y global. */
Test sbFig12();

/** A named paper test for registries and sweep drivers. */
struct NamedTest
{
    std::string id;      ///< e.g. "coRR", "mp-L1+membar.gl"
    std::string section; ///< paper cross-reference
    Test test;
};

/** All library tests (each fence variant separately). */
std::vector<NamedTest> allTests();

} // namespace gpulitmus::litmus::paperlib

#endif // GPULITMUS_LITMUS_LIBRARY_H
