/**
 * @file
 * Final-state snapshot of a litmus test execution: the registers of
 * every testing thread plus the final memory value of every testing
 * location. Produced by both the hardware simulator and the axiomatic
 * engine, consumed by final-condition evaluation and histograms.
 */

#ifndef GPULITMUS_LITMUS_STATE_H
#define GPULITMUS_LITMUS_STATE_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>

namespace gpulitmus::litmus {

/** (thread id, register name) key. */
using RegKey = std::pair<int, std::string>;

struct FinalState
{
    std::map<RegKey, int64_t> regs;
    std::map<std::string, int64_t> mem;

    int64_t
    reg(int tid, const std::string &name) const
    {
        auto it = regs.find({tid, name});
        return it == regs.end() ? 0 : it->second;
    }

    int64_t
    loc(const std::string &name) const
    {
        auto it = mem.find(name);
        return it == mem.end() ? 0 : it->second;
    }

    bool operator==(const FinalState &other) const = default;
    auto operator<=>(const FinalState &other) const = default;
};

} // namespace gpulitmus::litmus

#endif // GPULITMUS_LITMUS_STATE_H
