/**
 * @file
 * Outcome histograms: the per-test result of running a litmus test
 * many times, as the paper reports ("obs/100k").
 */

#ifndef GPULITMUS_LITMUS_OUTCOME_H
#define GPULITMUS_LITMUS_OUTCOME_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "litmus/test.h"

namespace gpulitmus::litmus {

/**
 * Histogram of observed final states for one test. Only the registers
 * and locations the final condition mentions contribute to the outcome
 * key (matching the real litmus tool's output).
 */
class Histogram
{
  public:
    explicit Histogram(const Test &test);

    /** Record one run's final state. */
    void record(const FinalState &state);

    /** Number of runs whose final state satisfied the condition body. */
    uint64_t observed() const { return observed_; }

    /** Total recorded runs. */
    uint64_t total() const { return total_; }

    /** Per-outcome counts, keyed by rendered outcome. */
    const std::map<std::string, uint64_t> &counts() const
    {
        return counts_;
    }

    /**
     * Verdict string in litmus style: "Ok" when the quantifier is
     * satisfied by the observations, "No" otherwise.
     */
    std::string verdict() const;

    /** Multi-line report: histogram plus observed count. */
    std::string str() const;

    /** Render an outcome key for a state (observed regs/locs only). */
    std::string keyFor(const FinalState &state) const;

    /**
     * Re-point at a content-identical Test instance. Campaign results
     * are self-contained (they own the test the histogram references);
     * the single-shot harness wrapper rebinds the returned histogram
     * to the caller's instance so it stays valid on its own.
     */
    void rebind(const Test &test) { test_ = &test; }

    /**
     * Install recorded counts wholesale — the deserialisation path of
     * the persistent result store (serve/store.h). The keys must be
     * keyFor renderings for this histogram's test, and `observed`
     * must be the condition-satisfying count of those very runs; the
     * store guarantees both by keying records on the full test text.
     * Replaces any previously recorded state.
     */
    void restore(std::map<std::string, uint64_t> counts,
                 uint64_t observed, uint64_t total);

  private:
    const Test *test_;
    std::vector<RegKey> regs_;
    std::vector<std::string> locs_;
    std::map<std::string, uint64_t> counts_;
    uint64_t observed_ = 0;
    uint64_t total_ = 0;
};

} // namespace gpulitmus::litmus

#endif // GPULITMUS_LITMUS_OUTCOME_H
