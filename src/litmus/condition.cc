#include "litmus/condition.h"

#include <cctype>

#include "common/log.h"
#include "common/strutil.h"

namespace gpulitmus::litmus {

Condition
Condition::regEq(int tid, std::string reg, int64_t value)
{
    Condition c;
    c.kind_ = Kind::RegEq;
    c.tid_ = tid;
    c.name_ = std::move(reg);
    c.value_ = value;
    return c;
}

Condition
Condition::locEq(std::string loc, int64_t value)
{
    Condition c;
    c.kind_ = Kind::LocEq;
    c.name_ = std::move(loc);
    c.value_ = value;
    return c;
}

Condition
Condition::conj(Condition a, Condition b)
{
    Condition c;
    c.kind_ = Kind::And;
    c.children_.push_back(std::make_shared<Condition>(std::move(a)));
    c.children_.push_back(std::make_shared<Condition>(std::move(b)));
    return c;
}

Condition
Condition::disj(Condition a, Condition b)
{
    Condition c;
    c.kind_ = Kind::Or;
    c.children_.push_back(std::make_shared<Condition>(std::move(a)));
    c.children_.push_back(std::make_shared<Condition>(std::move(b)));
    return c;
}

Condition
Condition::negate(Condition a)
{
    Condition c;
    c.kind_ = Kind::Not;
    c.children_.push_back(std::make_shared<Condition>(std::move(a)));
    return c;
}

bool
Condition::eval(const FinalState &state) const
{
    switch (kind_) {
      case Kind::True:
        return true;
      case Kind::RegEq:
        return state.reg(tid_, name_) == value_;
      case Kind::LocEq:
        return state.loc(name_) == value_;
      case Kind::And:
        return children_[0]->eval(state) && children_[1]->eval(state);
      case Kind::Or:
        return children_[0]->eval(state) || children_[1]->eval(state);
      case Kind::Not:
        return !children_[0]->eval(state);
    }
    panic("unknown Condition kind");
}

void
Condition::collectRegs(std::vector<RegKey> &out) const
{
    if (kind_ == Kind::RegEq) {
        RegKey key{tid_, name_};
        for (const auto &k : out) {
            if (k == key)
                return;
        }
        out.push_back(key);
        return;
    }
    for (const auto &c : children_)
        c->collectRegs(out);
}

void
Condition::collectLocs(std::vector<std::string> &out) const
{
    if (kind_ == Kind::LocEq) {
        for (const auto &l : out) {
            if (l == name_)
                return;
        }
        out.push_back(name_);
        return;
    }
    for (const auto &c : children_)
        c->collectLocs(out);
}

std::string
Condition::str() const
{
    switch (kind_) {
      case Kind::True:
        return "true";
      case Kind::RegEq:
        return std::to_string(tid_) + ":" + name_ + "=" +
               std::to_string(value_);
      case Kind::LocEq:
        return name_ + "=" + std::to_string(value_);
      case Kind::And:
        return "(" + children_[0]->str() + " /\\ " +
               children_[1]->str() + ")";
      case Kind::Or:
        return "(" + children_[0]->str() + " \\/ " +
               children_[1]->str() + ")";
      case Kind::Not:
        return "~(" + children_[0]->str() + ")";
    }
    panic("unknown Condition kind");
}

namespace {

/** Recursive-descent parser over a token cursor. */
class CondParser
{
  public:
    explicit CondParser(const std::string &text) : text_(text) {}

    std::optional<Condition>
    parse()
    {
        auto c = parseOr();
        skipSpace();
        if (!c || pos_ != text_.size())
            return std::nullopt;
        return c;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    eat(const std::string &tok)
    {
        skipSpace();
        if (text_.compare(pos_, tok.size(), tok) == 0) {
            pos_ += tok.size();
            return true;
        }
        return false;
    }

    std::optional<Condition>
    parseOr()
    {
        auto lhs = parseAnd();
        if (!lhs)
            return std::nullopt;
        while (eat("\\/")) {
            auto rhs = parseAnd();
            if (!rhs)
                return std::nullopt;
            lhs = Condition::disj(std::move(*lhs), std::move(*rhs));
        }
        return lhs;
    }

    std::optional<Condition>
    parseAnd()
    {
        auto lhs = parseUnary();
        if (!lhs)
            return std::nullopt;
        while (eat("/\\")) {
            auto rhs = parseUnary();
            if (!rhs)
                return std::nullopt;
            lhs = Condition::conj(std::move(*lhs), std::move(*rhs));
        }
        return lhs;
    }

    std::optional<Condition>
    parseUnary()
    {
        if (eat("~") || eat("not ")) {
            auto inner = parseUnary();
            if (!inner)
                return std::nullopt;
            return Condition::negate(std::move(*inner));
        }
        if (eat("(")) {
            auto inner = parseOr();
            if (!inner || !eat(")"))
                return std::nullopt;
            return inner;
        }
        return parseAtom();
    }

    std::optional<Condition>
    parseAtom()
    {
        skipSpace();
        size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != '=' &&
               text_[pos_] != ')' &&
               !std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        std::string lhs = text_.substr(start, pos_ - start);
        if (lhs.empty())
            return std::nullopt;
        if (!eat("="))
            return std::nullopt;
        skipSpace();
        size_t vstart = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == 'x'))
            ++pos_;
        auto value = parseInt(text_.substr(vstart, pos_ - vstart));
        if (!value)
            return std::nullopt;

        auto colon = lhs.find(':');
        if (colon != std::string::npos) {
            auto tid = parseInt(lhs.substr(0, colon));
            if (!tid)
                return std::nullopt;
            return Condition::regEq(static_cast<int>(*tid),
                                    lhs.substr(colon + 1), *value);
        }
        return Condition::locEq(lhs, *value);
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // anonymous namespace

std::optional<Condition>
parseCondition(const std::string &text)
{
    return CondParser(trim(text)).parse();
}

std::optional<std::pair<Quantifier, Condition>>
parseQuantifiedCondition(const std::string &text)
{
    std::string line = trim(text);
    Quantifier q = Quantifier::Exists;
    if (startsWith(line, "~exists")) {
        q = Quantifier::NotExists;
        line = trim(line.substr(7));
    } else if (startsWith(line, "exists")) {
        q = Quantifier::Exists;
        line = trim(line.substr(6));
    } else if (startsWith(line, "forall")) {
        q = Quantifier::Forall;
        line = trim(line.substr(6));
    } else if (startsWith(line, "final:")) {
        q = Quantifier::Exists;
        line = trim(line.substr(6));
    } else {
        return std::nullopt;
    }
    auto cond = parseCondition(line);
    if (!cond)
        return std::nullopt;
    return std::make_pair(q, std::move(*cond));
}

std::string
toString(Quantifier q)
{
    switch (q) {
      case Quantifier::Exists: return "exists";
      case Quantifier::NotExists: return "~exists";
      case Quantifier::Forall: return "forall";
    }
    panic("unknown Quantifier");
}

} // namespace gpulitmus::litmus
