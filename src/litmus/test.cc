#include "litmus/test.h"

#include <set>

#include "common/log.h"
#include "common/strutil.h"
#include "ptx/parser.h"

namespace gpulitmus::litmus {

std::string
toString(MemSpace s)
{
    return s == MemSpace::Global ? "global" : "shared";
}

const LocationDef *
Test::findLocation(const std::string &name) const
{
    for (const auto &l : locations) {
        if (l.name == name)
            return &l;
    }
    return nullptr;
}

int64_t
Test::addressOf(const std::string &name) const
{
    for (size_t i = 0; i < locations.size(); ++i) {
        if (locations[i].name == name) {
            int64_t base = locations[i].space == MemSpace::Global
                               ? globalBase
                               : sharedBase;
            return base + locStride * static_cast<int64_t>(i);
        }
    }
    panic("test '%s' has no location '%s'", this->name.c_str(),
          name.c_str());
}

std::optional<std::string>
Test::locationAt(int64_t addr) const
{
    for (size_t i = 0; i < locations.size(); ++i) {
        if (addressOf(locations[i].name) == addr)
            return locations[i].name;
    }
    return std::nullopt;
}

std::optional<MemSpace>
Test::spaceOf(int64_t addr) const
{
    auto loc = locationAt(addr);
    if (!loc)
        return std::nullopt;
    return findLocation(*loc)->space;
}

std::string
Test::str() const
{
    std::string out = arch + " " + name + "\n";
    out += "{";
    bool first = true;
    for (const auto &l : locations) {
        if (!first)
            out += " ";
        first = false;
        out += toString(l.space) + " " + l.name + "=" +
               std::to_string(l.init) + ";";
    }
    for (const auto &r : regInits) {
        out += " " + std::to_string(r.tid) + ":" + r.reg + "=";
        out += r.isLocAddress ? r.loc : std::to_string(r.value);
        out += ";";
    }
    out += "}\n";
    out += program.str();
    out += "ScopeTree(" + scopeTree.str() + ")\n";
    out += toString(quantifier) + " (" + condition.str() + ")\n";
    return out;
}

std::vector<RegKey>
Test::observedRegs() const
{
    std::vector<RegKey> regs;
    condition.collectRegs(regs);
    return regs;
}

std::vector<std::string>
Test::observedLocs() const
{
    std::vector<std::string> locs;
    condition.collectLocs(locs);
    return locs;
}

void
Test::validate() const
{
    if (program.numThreads() == 0)
        fatal("test '%s' has no threads", name.c_str());
    if (scopeTree.numThreads() != program.numThreads())
        fatal("test '%s': scope tree covers %d threads but program has "
              "%d",
              name.c_str(), scopeTree.numThreads(),
              program.numThreads());

    std::set<std::string> loc_names;
    for (const auto &l : locations) {
        if (!loc_names.insert(l.name).second)
            fatal("test '%s': duplicate location '%s'", name.c_str(),
                  l.name.c_str());
    }

    for (const auto &r : regInits) {
        if (r.tid < 0 || r.tid >= program.numThreads())
            fatal("test '%s': register init for bad thread %d",
                  name.c_str(), r.tid);
        if (r.isLocAddress && !loc_names.count(r.loc))
            fatal("test '%s': register %s bound to unknown location "
                  "'%s'",
                  name.c_str(), r.reg.c_str(), r.loc.c_str());
    }

    for (int t = 0; t < program.numThreads(); ++t) {
        for (const auto &i : program.threads[t].instrs) {
            if (i.isMemAccess() && i.addr.isSym() &&
                !loc_names.count(i.addr.sym)) {
                fatal("test '%s': T%d accesses unknown location '%s'",
                      name.c_str(), t, i.addr.sym.c_str());
            }
            if (i.op == ptx::Opcode::Bra)
                program.threads[t].labelTarget(i.target);
        }
    }
}

TestBuilder::TestBuilder(std::string name)
{
    test_.name = std::move(name);
}

TestBuilder &
TestBuilder::global(const std::string &loc, int64_t init)
{
    test_.locations.push_back({loc, MemSpace::Global, init});
    return *this;
}

TestBuilder &
TestBuilder::shared(const std::string &loc, int64_t init)
{
    test_.locations.push_back({loc, MemSpace::Shared, init});
    return *this;
}

TestBuilder &
TestBuilder::thread(const std::string &ptx_text)
{
    ptx::ParseError err;
    auto prog = ptx::parseThread(ptx_text, &err);
    if (!prog)
        fatal("test '%s': %s", test_.name.c_str(), err.message.c_str());
    test_.program.threads.push_back(std::move(*prog));
    return *this;
}

TestBuilder &
TestBuilder::thread(ptx::ThreadProgram prog)
{
    test_.program.threads.push_back(std::move(prog));
    return *this;
}

TestBuilder &
TestBuilder::regVal(int tid, const std::string &reg, int64_t value)
{
    test_.regInits.push_back({tid, reg, false, "", value});
    return *this;
}

TestBuilder &
TestBuilder::regLoc(int tid, const std::string &reg,
                    const std::string &loc)
{
    test_.regInits.push_back({tid, reg, true, loc, 0});
    return *this;
}

TestBuilder &
TestBuilder::intraWarp()
{
    test_.scopeTree =
        ScopeTree::intraWarp(test_.program.numThreads());
    scope_set_ = true;
    return *this;
}

TestBuilder &
TestBuilder::intraCta()
{
    test_.scopeTree = ScopeTree::intraCta(test_.program.numThreads());
    scope_set_ = true;
    return *this;
}

TestBuilder &
TestBuilder::interCta()
{
    test_.scopeTree = ScopeTree::interCta(test_.program.numThreads());
    scope_set_ = true;
    return *this;
}

TestBuilder &
TestBuilder::scope(ScopeTree tree)
{
    test_.scopeTree = std::move(tree);
    scope_set_ = true;
    return *this;
}

TestBuilder &
TestBuilder::exists(const std::string &cond)
{
    auto c = parseCondition(cond);
    if (!c)
        fatal("test '%s': bad condition '%s'", test_.name.c_str(),
              cond.c_str());
    test_.quantifier = Quantifier::Exists;
    test_.condition = std::move(*c);
    return *this;
}

TestBuilder &
TestBuilder::notExists(const std::string &cond)
{
    exists(cond);
    test_.quantifier = Quantifier::NotExists;
    return *this;
}

TestBuilder &
TestBuilder::forall(const std::string &cond)
{
    exists(cond);
    test_.quantifier = Quantifier::Forall;
    return *this;
}

Test
TestBuilder::build()
{
    if (!scope_set_) {
        // Default: the paper's most common configuration, one thread
        // per CTA.
        test_.scopeTree =
            ScopeTree::interCta(test_.program.numThreads());
    }
    test_.validate();
    return test_;
}

} // namespace gpulitmus::litmus
