/**
 * @file
 * Final-condition predicates for litmus tests.
 *
 * A condition is a boolean combination of atoms "t:reg = value" and
 * "loc = value", quantified with exists / ~exists / forall, exactly as
 * in the litmus format (Fig. 12, line 12 of the paper).
 */

#ifndef GPULITMUS_LITMUS_CONDITION_H
#define GPULITMUS_LITMUS_CONDITION_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "litmus/state.h"

namespace gpulitmus::litmus {

/** Quantifier applied to the predicate over all executions. */
enum class Quantifier {
    Exists,    ///< "exists (...)": is the outcome observable?
    NotExists, ///< "~exists (...)": forbidden outcome
    Forall,    ///< "forall (...)": must hold in every execution
};

/** Boolean predicate AST over final states. */
class Condition
{
  public:
    enum class Kind { True, RegEq, LocEq, And, Or, Not };

    Condition() : kind_(Kind::True) {}

    static Condition regEq(int tid, std::string reg, int64_t value);
    static Condition locEq(std::string loc, int64_t value);
    static Condition conj(Condition a, Condition b);
    static Condition disj(Condition a, Condition b);
    static Condition negate(Condition a);

    /** Evaluate against a final state. */
    bool eval(const FinalState &state) const;

    /**
     * All (tid, reg) atoms mentioned, used to build outcome keys.
     */
    void collectRegs(std::vector<RegKey> &out) const;

    /** All location atoms mentioned. */
    void collectLocs(std::vector<std::string> &out) const;

    /** Render, e.g. "0:r1=1 /\\ 1:r2=0". */
    std::string str() const;

    Kind kind() const { return kind_; }

  private:
    Kind kind_;
    // RegEq / LocEq payload
    int tid_ = 0;
    std::string name_;
    int64_t value_ = 0;
    // And / Or / Not children
    std::vector<std::shared_ptr<const Condition>> children_;
};

/**
 * Parse a condition body such as "0:r1=1 /\\ (1:r2=0 \\/ x=2)".
 * Returns nullopt on malformed input.
 */
std::optional<Condition> parseCondition(const std::string &text);

/**
 * Parse a full final-condition line including the quantifier, e.g.
 * "exists (0:r2=0 /\\ 1:r2=0)".
 */
std::optional<std::pair<Quantifier, Condition>>
parseQuantifiedCondition(const std::string &text);

std::string toString(Quantifier q);

} // namespace gpulitmus::litmus

#endif // GPULITMUS_LITMUS_CONDITION_H
