/**
 * @file
 * Parser for the GPU litmus text format of Fig. 12:
 *
 *   GPU_PTX SB
 *   {0:.reg .s32 r0; 0:.reg .b64 r1 = x; x=0;}
 *   T0                 | T1                 ;
 *   mov.s32 r0,1       | mov.s32 r0,1       ;
 *   st.cg.s32 [r1],r0  | st.cg.s32 [r1],r0  ;
 *   ld.cg.s32 r2,[r3]  | ld.cg.s32 r2,[r3]  ;
 *   ScopeTree(grid(cta(warp T0) (warp T1)))
 *   x: shared, y: global
 *   exists (0:r2=0 /\ 1:r2=0)
 */

#ifndef GPULITMUS_LITMUS_PARSER_H
#define GPULITMUS_LITMUS_PARSER_H

#include <optional>
#include <string>

#include "litmus/test.h"

namespace gpulitmus::litmus {

struct ParseError
{
    std::string message;
    int line = 0; ///< 1-based source line of the failure, 0 if unknown
    int col = 0;  ///< 1-based source column, 0 if unknown
};

/** Parse a whole litmus file. */
std::optional<Test> parseTest(const std::string &text,
                              ParseError *error = nullptr);

} // namespace gpulitmus::litmus

#endif // GPULITMUS_LITMUS_PARSER_H
