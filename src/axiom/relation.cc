#include "axiom/relation.h"

#include <algorithm>

#include "common/log.h"

namespace gpulitmus::axiom {

Relation::Relation(int n) : n_(n), rows_(static_cast<size_t>(n), 0)
{
    if (n < 0 || n > kMaxEvents)
        panic("relation size %d out of range", n);
}

Relation
Relation::identity(int n)
{
    Relation r(n);
    for (int i = 0; i < n; ++i)
        r.set(i, i);
    return r;
}

Relation
Relation::universal(int n)
{
    Relation r(n);
    uint64_t mask = n == 64 ? ~0ULL : ((1ULL << n) - 1);
    for (int i = 0; i < n; ++i)
        r.rows_[i] = mask;
    return r;
}

Relation
Relation::fromPairs(int n, const std::vector<std::pair<int, int>> &ps)
{
    Relation r(n);
    for (const auto &[i, j] : ps)
        r.set(i, j);
    return r;
}

bool
Relation::get(int i, int j) const
{
    return (rows_[static_cast<size_t>(i)] >> j) & 1;
}

void
Relation::set(int i, int j, bool v)
{
    if (i < 0 || i >= n_ || j < 0 || j >= n_)
        panic("relation index (%d, %d) out of range for size %d", i, j,
              n_);
    if (v)
        rows_[static_cast<size_t>(i)] |= 1ULL << j;
    else
        rows_[static_cast<size_t>(i)] &= ~(1ULL << j);
}

void
Relation::checkCompatible(const Relation &other) const
{
    if (n_ != other.n_)
        panic("relation size mismatch: %d vs %d", n_, other.n_);
}

Relation
Relation::operator|(const Relation &other) const
{
    checkCompatible(other);
    Relation r(n_);
    for (int i = 0; i < n_; ++i)
        r.rows_[i] = rows_[i] | other.rows_[i];
    return r;
}

Relation
Relation::operator&(const Relation &other) const
{
    checkCompatible(other);
    Relation r(n_);
    for (int i = 0; i < n_; ++i)
        r.rows_[i] = rows_[i] & other.rows_[i];
    return r;
}

Relation
Relation::minus(const Relation &other) const
{
    checkCompatible(other);
    Relation r(n_);
    for (int i = 0; i < n_; ++i)
        r.rows_[i] = rows_[i] & ~other.rows_[i];
    return r;
}

Relation
Relation::seq(const Relation &other) const
{
    checkCompatible(other);
    Relation r(n_);
    for (int i = 0; i < n_; ++i) {
        uint64_t row = rows_[i];
        uint64_t out = 0;
        while (row) {
            int k = __builtin_ctzll(row);
            row &= row - 1;
            out |= other.rows_[k];
        }
        r.rows_[i] = out;
    }
    return r;
}

Relation
Relation::inverse() const
{
    Relation r(n_);
    for (int i = 0; i < n_; ++i) {
        for (int j = 0; j < n_; ++j) {
            if (get(i, j))
                r.set(j, i);
        }
    }
    return r;
}

Relation
Relation::plus() const
{
    // Repeated squaring-ish Warshall.
    Relation r = *this;
    for (int k = 0; k < n_; ++k) {
        for (int i = 0; i < n_; ++i) {
            if (r.get(i, k))
                r.rows_[i] |= r.rows_[k];
        }
    }
    return r;
}

Relation
Relation::star() const
{
    return plus() | identity(n_);
}

Relation
Relation::maybe() const
{
    return *this | identity(n_);
}

Relation
Relation::restrict(EventSet a, EventSet b) const
{
    Relation r(n_);
    for (int i = 0; i < n_; ++i) {
        if ((a >> i) & 1)
            r.rows_[i] = rows_[i] & b;
    }
    return r;
}

bool
Relation::empty() const
{
    for (int i = 0; i < n_; ++i) {
        if (rows_[i])
            return false;
    }
    return true;
}

bool
Relation::irreflexive() const
{
    for (int i = 0; i < n_; ++i) {
        if (get(i, i))
            return false;
    }
    return true;
}

bool
Relation::acyclic() const
{
    return plus().irreflexive();
}

std::vector<int>
Relation::findCycle() const
{
    Relation closure = plus();
    for (int i = 0; i < n_; ++i) {
        if (!closure.get(i, i))
            continue;
        // Shortest path from i back to i via BFS with parent links.
        std::vector<int> parent(static_cast<size_t>(n_), -2);
        std::vector<int> queue;
        for (int k = 0; k < n_; ++k) {
            if (get(i, k) && parent[k] == -2) {
                parent[k] = i;
                queue.push_back(k);
            }
        }
        for (size_t qi = 0; qi < queue.size(); ++qi) {
            int m = queue[qi];
            if (m == i)
                break;
            for (int k = 0; k < n_; ++k) {
                if (get(m, k) && parent[k] == -2) {
                    parent[k] = m;
                    queue.push_back(k);
                }
            }
        }
        // Reconstruct i -> ... -> i; the closure guarantees i was
        // re-reached.
        std::vector<int> rev;
        int cur = i;
        do {
            cur = parent[cur];
            if (cur < 0)
                panic("cycle reconstruction lost the path");
            rev.push_back(cur);
        } while (cur != i);
        return std::vector<int>(rev.rbegin(), rev.rend());
    }
    return {};
}

uint64_t
Relation::pairCount() const
{
    uint64_t count = 0;
    for (int i = 0; i < n_; ++i)
        count += static_cast<uint64_t>(__builtin_popcountll(rows_[i]));
    return count;
}

std::vector<std::pair<int, int>>
Relation::pairs() const
{
    std::vector<std::pair<int, int>> out;
    for (int i = 0; i < n_; ++i) {
        for (int j = 0; j < n_; ++j) {
            if (get(i, j))
                out.emplace_back(i, j);
        }
    }
    return out;
}

std::string
Relation::str() const
{
    std::string out = "{";
    bool first = true;
    for (const auto &[i, j] : pairs()) {
        if (!first)
            out += ", ";
        first = false;
        out += "(" + std::to_string(i) + "," + std::to_string(j) + ")";
    }
    out += "}";
    return out;
}

} // namespace gpulitmus::axiom
