/**
 * @file
 * Candidate executions: a set of events plus the primitive relations
 * of the paper's model (po, dp components, fence relations, scope
 * relations, rf, co) and everything derived from them (fr, rfe, ...).
 */

#ifndef GPULITMUS_AXIOM_EXECUTION_H
#define GPULITMUS_AXIOM_EXECUTION_H

#include <map>
#include <string>
#include <vector>

#include "axiom/event.h"
#include "axiom/relation.h"
#include "litmus/state.h"

namespace gpulitmus::axiom {

/**
 * One candidate execution of a litmus test. Built by the enumerator;
 * consumed by the .cat evaluator through relationEnv().
 */
struct Execution
{
    std::vector<Event> events;

    // Primitive relations.
    Relation po;        ///< program order (total per thread)
    Relation rf;        ///< read-from (write -> read)
    Relation co;        ///< coherence (total per location over writes)
    Relation addr;      ///< address dependencies
    Relation data;      ///< data dependencies
    Relation ctrl;      ///< control dependencies
    Relation membarCta; ///< pairs separated by a membar.cta exactly
    Relation membarGl;  ///< pairs separated by a membar.gl exactly
    Relation membarSys; ///< pairs separated by a membar.sys exactly
    Relation scopeCta;  ///< events of threads in the same CTA
    Relation scopeGl;   ///< events of threads on the same GPU
    Relation scopeSys;  ///< universal scope relation

    litmus::FinalState finalState;

    int numEvents() const { return static_cast<int>(events.size()); }

    // Event-class masks.
    EventSet reads() const;
    EventSet writes() const;
    EventSet fences() const;
    EventSet all() const;

    /** Same-location (irreflexive) relation over memory events. */
    Relation sameLoc() const;

    /** po restricted to same-location pairs. */
    Relation poLoc() const;

    /** from-read: r -> all writes coherence-after r's source. */
    Relation fr() const;

    /** External (cross-thread) part of a relation. */
    Relation external(const Relation &r) const;
    /** Internal (same-thread) part of a relation. */
    Relation internal(const Relation &r) const;

    /** rmw pairs (atomic read -> its paired write). */
    Relation rmw() const;

    /**
     * Atomicity of read-modify-writes: no write intervenes (in co)
     * between an atomic's source and its own write. This is enforced
     * as a well-formedness condition of candidates because PTX
     * guarantees it independent of the memory model (the paper's
     * model omits atomics; see Sec. 2.3).
     */
    bool rmwAtomic() const;

    /**
     * The named relations and event sets handed to the .cat
     * evaluator. Keys follow herd: po, po-loc, rf, rfe, rfi, co, coe,
     * coi, fr, fre, fri, addr, data, ctrl, membar.cta, membar.gl,
     * membar.sys, cta, gl, sys, rmw, loc, id, ext, int, M, R, W, F.
     */
    std::map<std::string, Relation> relationEnv() const;

    /** Event-class sets for the evaluator's filters. */
    std::map<std::string, EventSet> setEnv() const;

    /** Render events and communication edges (Fig. 14 style). */
    std::string str() const;
};

} // namespace gpulitmus::axiom

#endif // GPULITMUS_AXIOM_EXECUTION_H
