/**
 * @file
 * Candidate-execution enumeration (Sec. 5.1.2 of the paper).
 *
 * Each thread is executed symbolically: loads branch over the set of
 * values any store in the test can write to that location (computed
 * to a fixpoint), dependencies are tracked by tainting register values
 * with the load events they derive from, and predication/branches
 * contribute control dependencies. Thread traces are then combined,
 * and every read-from assignment and per-location coherence order
 * consistent with the traces yields one candidate execution.
 */

#ifndef GPULITMUS_AXIOM_ENUMERATE_H
#define GPULITMUS_AXIOM_ENUMERATE_H

#include <vector>

#include "axiom/execution.h"
#include "litmus/test.h"

namespace gpulitmus::axiom {

struct EnumeratorOptions
{
    /** Per-thread step budget; paths exceeding it are dropped (the
     * paper's tests are loop-free, this guards imported tests). */
    int maxStepsPerThread = 256;
    /** Cap on distinct candidate values per location. */
    int maxValuesPerLoc = 16;
    /** Hard cap on generated candidates (safety valve). */
    uint64_t maxCandidates = 1ULL << 20;
};

/**
 * Enumerate the well-formed candidate executions of a test: rf maps
 * every read to a matching write, co totally orders writes per
 * location after the init write, and read-modify-writes are atomic.
 */
std::vector<Execution> enumerateExecutions(
    const litmus::Test &test, const EnumeratorOptions &opts = {});

} // namespace gpulitmus::axiom

#endif // GPULITMUS_AXIOM_ENUMERATE_H
