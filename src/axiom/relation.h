/**
 * @file
 * Dense relation algebra over event ids.
 *
 * Candidate executions of litmus tests have few events (the engine
 * caps at 64), so relations are bit matrices with one uint64_t row per
 * event. The operations mirror the .cat language: union, intersection,
 * difference, sequential composition, inverse, closures, and the
 * acyclicity / irreflexivity / emptiness checks.
 */

#ifndef GPULITMUS_AXIOM_RELATION_H
#define GPULITMUS_AXIOM_RELATION_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gpulitmus::axiom {

/** A set of events as a bit mask (executions have at most 64). */
using EventSet = uint64_t;

constexpr int kMaxEvents = 64;

class Relation
{
  public:
    Relation() : n_(0) {}
    explicit Relation(int n);

    static Relation identity(int n);
    static Relation universal(int n);
    static Relation fromPairs(int n,
                              const std::vector<std::pair<int, int>> &ps);

    int size() const { return n_; }

    bool get(int i, int j) const;
    void set(int i, int j, bool v = true);

    Relation operator|(const Relation &other) const;
    Relation operator&(const Relation &other) const;
    /** Set difference (the .cat "\" operator). */
    Relation minus(const Relation &other) const;
    /** Sequential composition (the .cat ";" operator). */
    Relation seq(const Relation &other) const;
    Relation inverse() const;
    /** Transitive closure (the .cat "+" operator). */
    Relation plus() const;
    /** Reflexive-transitive closure (the .cat "*" operator). */
    Relation star() const;
    /** Reflexive closure (the .cat "?" operator). */
    Relation maybe() const;

    /** Keep only pairs with domain in a and range in b. */
    Relation restrict(EventSet a, EventSet b) const;

    bool empty() const;
    bool irreflexive() const;
    /** True if the relation has no cycle (reflexive pairs count). */
    bool acyclic() const;

    /** One witness cycle (event ids), empty if acyclic. */
    std::vector<int> findCycle() const;

    uint64_t pairCount() const;
    std::vector<std::pair<int, int>> pairs() const;

    bool operator==(const Relation &other) const = default;

    std::string str() const;

  private:
    void checkCompatible(const Relation &other) const;

    int n_;
    std::vector<uint64_t> rows_;
};

} // namespace gpulitmus::axiom

#endif // GPULITMUS_AXIOM_RELATION_H
