#include "axiom/execution.h"

#include "common/log.h"

namespace gpulitmus::axiom {

std::string
Event::str() const
{
    std::string label(1, static_cast<char>('a' + (id % 26)));
    std::string out = label + ": ";
    switch (kind) {
      case Kind::Fence:
        out += "F." + ptx::toString(fenceScope);
        return out;
      case Kind::Read:
        out += "R";
        break;
      case Kind::Write:
        out += "W";
        break;
    }
    if (isAtomic)
        out += "*";
    if (cacheOp != ptx::CacheOp::None)
        out += "." + ptx::toString(cacheOp);
    if (isVolatile)
        out += ".vol";
    out += " " + loc + "=" + std::to_string(value);
    if (isInit())
        out += " (init)";
    else
        out += " [T" + std::to_string(tid) + "]";
    return out;
}

EventSet
Execution::reads() const
{
    EventSet s = 0;
    for (const auto &e : events) {
        if (e.isRead())
            s |= 1ULL << e.id;
    }
    return s;
}

EventSet
Execution::writes() const
{
    EventSet s = 0;
    for (const auto &e : events) {
        if (e.isWrite())
            s |= 1ULL << e.id;
    }
    return s;
}

EventSet
Execution::fences() const
{
    EventSet s = 0;
    for (const auto &e : events) {
        if (e.isFence())
            s |= 1ULL << e.id;
    }
    return s;
}

EventSet
Execution::all() const
{
    int n = numEvents();
    return n == 64 ? ~0ULL : ((1ULL << n) - 1);
}

Relation
Execution::sameLoc() const
{
    Relation r(numEvents());
    for (const auto &a : events) {
        for (const auto &b : events) {
            if (a.id != b.id && !a.isFence() && !b.isFence() &&
                a.loc == b.loc)
                r.set(a.id, b.id);
        }
    }
    return r;
}

Relation
Execution::poLoc() const
{
    return po & sameLoc();
}

Relation
Execution::fr() const
{
    // fr = rf^-1 ; co, minus identity (a read is not fr-before the
    // very write it reads from).
    Relation f = rf.inverse().seq(co);
    return f.minus(Relation::identity(numEvents()));
}

Relation
Execution::external(const Relation &r) const
{
    Relation out(numEvents());
    for (const auto &[i, j] : r.pairs()) {
        if (events[i].tid != events[j].tid)
            out.set(i, j);
    }
    return out;
}

Relation
Execution::internal(const Relation &r) const
{
    return r.minus(external(r));
}

Relation
Execution::rmw() const
{
    Relation r(numEvents());
    for (const auto &e : events) {
        if (e.isRead() && e.rmwPartner >= 0)
            r.set(e.id, e.rmwPartner);
    }
    return r;
}

bool
Execution::rmwAtomic() const
{
    // empty (rmw & (fre ; coe)): no external write sneaks in between
    // the read and the write of an atomic.
    Relation fre = external(fr());
    Relation coe = external(co);
    return (rmw() & fre.seq(coe)).empty();
}

std::map<std::string, Relation>
Execution::relationEnv() const
{
    std::map<std::string, Relation> env;
    env["po"] = po;
    env["po-loc"] = poLoc();
    env["rf"] = rf;
    env["rfe"] = external(rf);
    env["rfi"] = internal(rf);
    env["co"] = co;
    env["coe"] = external(co);
    env["coi"] = internal(co);
    Relation f = fr();
    env["fr"] = f;
    env["fre"] = external(f);
    env["fri"] = internal(f);
    env["addr"] = addr;
    env["data"] = data;
    env["ctrl"] = ctrl;
    env["membar.cta"] = membarCta;
    env["membar.gl"] = membarGl;
    env["membar.sys"] = membarSys;
    env["cta"] = scopeCta;
    env["gl"] = scopeGl;
    env["sys"] = scopeSys;
    env["rmw"] = rmw();
    env["loc"] = sameLoc();
    env["id"] = Relation::identity(numEvents());
    env["ext"] = external(Relation::universal(numEvents()));
    env["int"] = internal(Relation::universal(numEvents()))
                     .minus(Relation::identity(numEvents()));
    env["0"] = Relation(numEvents());
    return env;
}

std::map<std::string, EventSet>
Execution::setEnv() const
{
    std::map<std::string, EventSet> env;
    env["R"] = reads();
    env["W"] = writes();
    env["F"] = fences();
    env["M"] = reads() | writes();
    env["_"] = all();
    return env;
}

std::string
Execution::str() const
{
    std::string out;
    for (const auto &e : events)
        out += "  " + e.str() + "\n";
    auto emit = [&](const char *name, const Relation &r) {
        for (const auto &[i, j] : r.pairs()) {
            out += "  ";
            out += static_cast<char>('a' + (i % 26));
            out += " -";
            out += name;
            out += "-> ";
            out += static_cast<char>('a' + (j % 26));
            out += "\n";
        }
    };
    emit("rf", rf);
    emit("co", co);
    emit("fr", fr());
    return out;
}

} // namespace gpulitmus::axiom
