#include "axiom/enumerate.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/log.h"

namespace gpulitmus::axiom {

namespace {

using litmus::Test;

/** A register value with the set of local load events it derives
 * from (taint, for dependency computation). */
struct TaintedVal
{
    int64_t v = 0;
    std::set<int> taint; ///< local event indices of source loads
};

/** One thread-local event produced by symbolic execution. */
struct LocalEvent
{
    Event::Kind kind = Event::Kind::Read;
    std::string loc;
    int64_t value = 0;
    ptx::Scope fenceScope = ptx::Scope::Cta;
    ptx::CacheOp cacheOp = ptx::CacheOp::None;
    bool isVolatile = false;
    bool isAtomic = false;
    int rmwPartner = -1; ///< local index
    int instrIdx = -1;
    std::set<int> addrDeps; ///< local load indices
    std::set<int> dataDeps;
    std::set<int> ctrlDeps;
};

/** A complete symbolic execution of one thread. */
struct ThreadTrace
{
    std::vector<LocalEvent> events;
    std::map<std::string, int64_t> finalRegs;
};

using ValueSets = std::map<std::string, std::set<int64_t>>;

/**
 * Symbolic executor for one thread. Enumerates all traces via DFS
 * over load-value choices.
 */
class ThreadExplorer
{
  public:
    ThreadExplorer(const Test &test, int tid, const ValueSets &values,
                   const EnumeratorOptions &opts)
        : test_(test), prog_(test.program.threads[tid]), tid_(tid),
          values_(values), opts_(opts)
    {
    }

    /** Run; collected traces end up in traces, store values (for the
     * fixpoint pre-pass) in storeValues. */
    void
    run(std::vector<ThreadTrace> *traces, ValueSets *store_values)
    {
        traces_ = traces;
        storeValues_ = store_values;
        State st;
        for (const auto &ri : test_.regInits) {
            if (ri.tid != tid_)
                continue;
            int64_t v = ri.isLocAddress ? test_.addressOf(ri.loc)
                                        : ri.value;
            st.regs[ri.reg] = TaintedVal{v, {}};
        }
        explore(st);
    }

  private:
    struct State
    {
        int pc = 0;
        int steps = 0;
        std::map<std::string, TaintedVal> regs;
        std::set<int> ctrlTaint;
        std::vector<LocalEvent> events;
    };

    TaintedVal
    eval(const State &st, const ptx::Operand &op) const
    {
        switch (op.kind) {
          case ptx::Operand::Kind::Imm:
            return TaintedVal{op.imm, {}};
          case ptx::Operand::Kind::Reg: {
            auto it = st.regs.find(op.reg);
            return it == st.regs.end() ? TaintedVal{} : it->second;
          }
          case ptx::Operand::Kind::Sym:
            return TaintedVal{test_.addressOf(op.sym), {}};
          case ptx::Operand::Kind::None:
            break;
        }
        panic("evaluating empty operand");
    }

    /** Location named by a memory operand; nullopt if the address is
     * not a testing location. */
    std::optional<std::string>
    locOf(const State &st, const ptx::Operand &op, TaintedVal *addr_val)
    {
        TaintedVal a = eval(st, op);
        if (addr_val)
            *addr_val = a;
        return test_.locationAt(a.v);
    }

    std::set<int64_t>
    candidateValues(const std::string &loc) const
    {
        auto it = values_.find(loc);
        std::set<int64_t> vals =
            it == values_.end() ? std::set<int64_t>{} : it->second;
        const auto *def = test_.findLocation(loc);
        if (def)
            vals.insert(def->init);
        return vals;
    }

    void
    recordStore(const std::string &loc, int64_t v)
    {
        if (storeValues_)
            (*storeValues_)[loc].insert(v);
    }

    void
    emitTrace(const State &st)
    {
        if (!traces_)
            return;
        ThreadTrace t;
        t.events = st.events;
        for (const auto &[name, tv] : st.regs)
            t.finalRegs[name] = tv.v;
        traces_->push_back(std::move(t));
    }

    /** Append a memory/fence event, wiring dependency edges. */
    int
    pushEvent(State &st, LocalEvent ev, const std::set<int> &addr_deps,
              const std::set<int> &data_deps,
              const std::set<int> &extra_ctrl)
    {
        ev.addrDeps = addr_deps;
        ev.dataDeps = data_deps;
        ev.ctrlDeps = st.ctrlTaint;
        ev.ctrlDeps.insert(extra_ctrl.begin(), extra_ctrl.end());
        st.events.push_back(std::move(ev));
        return static_cast<int>(st.events.size()) - 1;
    }

    void
    explore(State st)
    {
        for (;;) {
            if (st.pc >= static_cast<int>(prog_.instrs.size())) {
                emitTrace(st);
                return;
            }
            if (++st.steps > opts_.maxStepsPerThread) {
                warn("thread %d of test '%s' exceeded the step budget;"
                     " dropping the path",
                     tid_, test_.name.c_str());
                return;
            }

            const ptx::Instruction &instr = prog_.instrs[st.pc];

            // Resolve the guard.
            std::set<int> guard_taint;
            bool execute = true;
            if (instr.hasGuard) {
                auto it = st.regs.find(instr.guardReg);
                TaintedVal g =
                    it == st.regs.end() ? TaintedVal{} : it->second;
                guard_taint = g.taint;
                bool set = g.v != 0;
                execute = instr.guardNegated ? !set : set;
            }

            if (!execute) {
                if (instr.op == ptx::Opcode::Bra) {
                    // An untaken conditional branch still taints
                    // subsequent control flow.
                    st.ctrlTaint.insert(guard_taint.begin(),
                                        guard_taint.end());
                }
                ++st.pc;
                continue;
            }

            switch (instr.op) {
              case ptx::Opcode::Nop:
                ++st.pc;
                break;

              case ptx::Opcode::Bra:
                st.ctrlTaint.insert(guard_taint.begin(),
                                    guard_taint.end());
                st.pc = prog_.labelTarget(instr.target);
                break;

              case ptx::Opcode::Membar: {
                LocalEvent ev;
                ev.kind = Event::Kind::Fence;
                ev.fenceScope = instr.scope;
                ev.instrIdx = st.pc;
                pushEvent(st, ev, {}, {}, guard_taint);
                ++st.pc;
                break;
              }

              case ptx::Opcode::Mov:
              case ptx::Opcode::Cvt: {
                st.regs[instr.dst] = eval(st, instr.srcs[0]);
                ++st.pc;
                break;
              }

              case ptx::Opcode::Add:
              case ptx::Opcode::Sub:
              case ptx::Opcode::And:
              case ptx::Opcode::Or:
              case ptx::Opcode::Xor:
              case ptx::Opcode::SetpEq:
              case ptx::Opcode::SetpNe: {
                TaintedVal a = eval(st, instr.srcs[0]);
                TaintedVal b = eval(st, instr.srcs[1]);
                TaintedVal r;
                switch (instr.op) {
                  case ptx::Opcode::Add: r.v = a.v + b.v; break;
                  case ptx::Opcode::Sub: r.v = a.v - b.v; break;
                  case ptx::Opcode::And: r.v = a.v & b.v; break;
                  case ptx::Opcode::Or: r.v = a.v | b.v; break;
                  case ptx::Opcode::Xor: r.v = a.v ^ b.v; break;
                  case ptx::Opcode::SetpEq: r.v = a.v == b.v; break;
                  case ptx::Opcode::SetpNe: r.v = a.v != b.v; break;
                  default: panic("unreachable");
                }
                r.taint = a.taint;
                r.taint.insert(b.taint.begin(), b.taint.end());
                st.regs[instr.dst] = std::move(r);
                ++st.pc;
                break;
              }

              case ptx::Opcode::Ld: {
                TaintedVal addr;
                auto loc = locOf(st, instr.addr, &addr);
                if (!loc) {
                    warn("test '%s': T%d load from non-testing address"
                         " %lld; dropping path",
                         test_.name.c_str(), tid_,
                         static_cast<long long>(addr.v));
                    return;
                }
                for (int64_t v : candidateValues(*loc)) {
                    State next = st;
                    LocalEvent ev;
                    ev.kind = Event::Kind::Read;
                    ev.loc = *loc;
                    ev.value = v;
                    ev.cacheOp = instr.cacheOp;
                    ev.isVolatile = instr.isVolatile;
                    ev.instrIdx = st.pc;
                    int idx = pushEvent(next, ev, addr.taint, {},
                                        guard_taint);
                    next.regs[instr.dst] = TaintedVal{v, {idx}};
                    ++next.pc;
                    explore(std::move(next));
                }
                return; // all continuations handled recursively
              }

              case ptx::Opcode::St: {
                TaintedVal addr;
                auto loc = locOf(st, instr.addr, &addr);
                if (!loc) {
                    warn("test '%s': T%d store to non-testing address"
                         " %lld; dropping path",
                         test_.name.c_str(), tid_,
                         static_cast<long long>(addr.v));
                    return;
                }
                TaintedVal val = eval(st, instr.srcs[0]);
                recordStore(*loc, val.v);
                LocalEvent ev;
                ev.kind = Event::Kind::Write;
                ev.loc = *loc;
                ev.value = val.v;
                ev.cacheOp = instr.cacheOp;
                ev.isVolatile = instr.isVolatile;
                ev.instrIdx = st.pc;
                pushEvent(st, ev, addr.taint, val.taint, guard_taint);
                ++st.pc;
                break;
              }

              case ptx::Opcode::AtomCas:
              case ptx::Opcode::AtomExch:
              case ptx::Opcode::AtomInc:
              case ptx::Opcode::AtomAdd: {
                TaintedVal addr;
                auto loc = locOf(st, instr.addr, &addr);
                if (!loc) {
                    warn("test '%s': T%d atomic on non-testing address;"
                         " dropping path",
                         test_.name.c_str(), tid_);
                    return;
                }
                for (int64_t old : candidateValues(*loc)) {
                    State next = st;
                    LocalEvent rd;
                    rd.kind = Event::Kind::Read;
                    rd.loc = *loc;
                    rd.value = old;
                    rd.isAtomic = true;
                    rd.instrIdx = st.pc;
                    int ridx = pushEvent(next, rd, addr.taint, {},
                                         guard_taint);

                    bool do_write = true;
                    int64_t new_val = 0;
                    std::set<int> data_deps;
                    switch (instr.op) {
                      case ptx::Opcode::AtomCas: {
                        TaintedVal cmp = eval(st, instr.srcs[0]);
                        TaintedVal swp = eval(st, instr.srcs[1]);
                        do_write = old == cmp.v;
                        new_val = swp.v;
                        data_deps = swp.taint;
                        data_deps.insert(cmp.taint.begin(),
                                         cmp.taint.end());
                        break;
                      }
                      case ptx::Opcode::AtomExch: {
                        TaintedVal v = eval(st, instr.srcs[0]);
                        new_val = v.v;
                        data_deps = v.taint;
                        break;
                      }
                      case ptx::Opcode::AtomInc:
                        new_val = old + 1;
                        data_deps = {ridx};
                        break;
                      case ptx::Opcode::AtomAdd: {
                        TaintedVal v = eval(st, instr.srcs[0]);
                        new_val = old + v.v;
                        data_deps = v.taint;
                        data_deps.insert(ridx);
                        break;
                      }
                      default:
                        panic("unreachable");
                    }

                    if (do_write) {
                        recordStore(*loc, new_val);
                        LocalEvent wr;
                        wr.kind = Event::Kind::Write;
                        wr.loc = *loc;
                        wr.value = new_val;
                        wr.isAtomic = true;
                        wr.rmwPartner = ridx;
                        wr.instrIdx = st.pc;
                        int widx = pushEvent(next, wr, addr.taint,
                                             data_deps, guard_taint);
                        next.events[ridx].rmwPartner = widx;
                    }
                    if (!instr.dst.empty())
                        next.regs[instr.dst] = TaintedVal{old, {ridx}};
                    ++next.pc;
                    explore(std::move(next));
                }
                return;
              }
            }
        }
    }

    const Test &test_;
    const ptx::ThreadProgram &prog_;
    int tid_;
    const ValueSets &values_;
    const EnumeratorOptions &opts_;
    std::vector<ThreadTrace> *traces_ = nullptr;
    ValueSets *storeValues_ = nullptr;
};

/** Fixpoint over possible store values per location. */
ValueSets
computeValueSets(const Test &test, const EnumeratorOptions &opts)
{
    ValueSets values;
    for (const auto &l : test.locations)
        values[l.name].insert(l.init);

    for (int round = 0; round < 8; ++round) {
        ValueSets fresh;
        for (int t = 0; t < test.program.numThreads(); ++t) {
            ThreadExplorer ex(test, t, values, opts);
            ex.run(nullptr, &fresh);
        }
        bool changed = false;
        for (const auto &[loc, vals] : fresh) {
            for (int64_t v : vals) {
                if (static_cast<int>(values[loc].size()) >=
                    opts.maxValuesPerLoc)
                    break;
                changed |= values[loc].insert(v).second;
            }
        }
        if (!changed)
            break;
    }
    return values;
}

} // anonymous namespace

std::vector<Execution>
enumerateExecutions(const litmus::Test &test,
                    const EnumeratorOptions &opts)
{
    ValueSets values = computeValueSets(test, opts);

    int nthreads = test.program.numThreads();
    std::vector<std::vector<ThreadTrace>> traces(nthreads);
    for (int t = 0; t < nthreads; ++t) {
        ThreadExplorer ex(test, t, values, opts);
        ex.run(&traces[t], nullptr);
        if (traces[t].empty()) {
            warn("test '%s': T%d has no complete trace",
                 test.name.c_str(), t);
            return {};
        }
    }

    std::vector<Execution> out;
    uint64_t candidates = 0;

    // Iterate over the cartesian product of per-thread traces.
    std::vector<size_t> pick(nthreads, 0);
    for (;;) {
        // ---- Build the combined event list. -------------------------
        std::vector<Event> events;
        // Init writes first.
        std::map<std::string, int> init_writes;
        for (const auto &l : test.locations) {
            Event e;
            e.id = static_cast<int>(events.size());
            e.tid = -1;
            e.kind = Event::Kind::Write;
            e.loc = l.name;
            e.value = l.init;
            init_writes[l.name] = e.id;
            events.push_back(std::move(e));
        }

        std::vector<std::vector<int>> global_id(nthreads);
        bool too_big = false;
        for (int t = 0; t < nthreads && !too_big; ++t) {
            const ThreadTrace &tr = traces[t][pick[t]];
            for (size_t k = 0; k < tr.events.size(); ++k) {
                if (events.size() >= kMaxEvents) {
                    too_big = true;
                    break;
                }
                const LocalEvent &le = tr.events[k];
                Event e;
                e.id = static_cast<int>(events.size());
                e.tid = t;
                e.poIndex = static_cast<int>(k);
                e.kind = le.kind;
                e.loc = le.loc;
                e.value = le.value;
                e.fenceScope = le.fenceScope;
                e.cacheOp = le.cacheOp;
                e.isVolatile = le.isVolatile;
                e.isAtomic = le.isAtomic;
                e.instrIdx = le.instrIdx;
                global_id[t].push_back(e.id);
                events.push_back(std::move(e));
            }
        }
        if (too_big) {
            warn("test '%s': execution exceeds %d events; skipped",
                 test.name.c_str(), kMaxEvents);
            goto advance;
        }

        {
            int n = static_cast<int>(events.size());
            // Fix up rmw partners to global ids.
            for (int t = 0; t < nthreads; ++t) {
                const ThreadTrace &tr = traces[t][pick[t]];
                for (size_t k = 0; k < tr.events.size(); ++k) {
                    if (tr.events[k].rmwPartner >= 0) {
                        events[global_id[t][k]].rmwPartner =
                            global_id[t][tr.events[k].rmwPartner];
                    }
                }
            }

            Execution base;
            base.events = events;
            base.po = Relation(n);
            base.addr = Relation(n);
            base.data = Relation(n);
            base.ctrl = Relation(n);
            base.membarCta = Relation(n);
            base.membarGl = Relation(n);
            base.membarSys = Relation(n);

            for (int t = 0; t < nthreads; ++t) {
                const ThreadTrace &tr = traces[t][pick[t]];
                const auto &ids = global_id[t];
                for (size_t i = 0; i < ids.size(); ++i) {
                    for (size_t j = i + 1; j < ids.size(); ++j)
                        base.po.set(ids[i], ids[j]);
                    const LocalEvent &le = tr.events[i];
                    for (int d : le.addrDeps)
                        base.addr.set(ids[d], ids[i]);
                    for (int d : le.dataDeps)
                        base.data.set(ids[d], ids[i]);
                    for (int d : le.ctrlDeps)
                        base.ctrl.set(ids[d], ids[i]);
                }
                // Fence relations: exact-scope pairs around each
                // fence event.
                for (size_t f = 0; f < ids.size(); ++f) {
                    const Event &fe = events[ids[f]];
                    if (!fe.isFence())
                        continue;
                    Relation *rel = nullptr;
                    switch (fe.fenceScope) {
                      case ptx::Scope::Cta:
                        rel = &base.membarCta;
                        break;
                      case ptx::Scope::Gl:
                        rel = &base.membarGl;
                        break;
                      case ptx::Scope::Sys:
                        rel = &base.membarSys;
                        break;
                    }
                    for (size_t i = 0; i < f; ++i) {
                        for (size_t j = f + 1; j < ids.size(); ++j) {
                            if (!events[ids[i]].isFence() &&
                                !events[ids[j]].isFence())
                                rel->set(ids[i], ids[j]);
                        }
                    }
                }
            }

            // Scope relations. Init writes participate everywhere;
            // they have no incoming edges elsewhere so they cannot
            // complete a cycle.
            base.scopeCta = Relation(n);
            base.scopeGl = Relation(n);
            base.scopeSys = Relation(n);
            for (int i = 0; i < n; ++i) {
                for (int j = 0; j < n; ++j) {
                    if (i == j)
                        continue;
                    base.scopeSys.set(i, j);
                    base.scopeGl.set(i, j); // single grid, single GPU
                    const Event &a = events[i];
                    const Event &b = events[j];
                    bool same_cta =
                        a.isInit() || b.isInit() ||
                        test.scopeTree.sameCta(a.tid, b.tid);
                    if (same_cta)
                        base.scopeCta.set(i, j);
                }
            }

            // ---- Enumerate coherence orders per location. -----------
            std::map<std::string, std::vector<int>> writes_of;
            for (const auto &e : events) {
                if (e.isWrite() && !e.isInit())
                    writes_of[e.loc].push_back(e.id);
            }

            // All per-location permutations, combined recursively.
            std::vector<std::string> locs;
            for (const auto &[loc, ws] : writes_of)
                locs.push_back(loc);

            std::function<void(size_t, Relation)> co_rec =
                [&](size_t li, Relation co) {
                    if (li == locs.size()) {
                        // ---- Enumerate rf. --------------------------
                        std::vector<int> reads;
                        for (const auto &e : events) {
                            if (e.isRead())
                                reads.push_back(e.id);
                        }
                        std::vector<std::vector<int>> sources(
                            reads.size());
                        for (size_t r = 0; r < reads.size(); ++r) {
                            const Event &re = events[reads[r]];
                            for (const auto &w : events) {
                                if (w.isWrite() && w.loc == re.loc &&
                                    w.value == re.value)
                                    sources[r].push_back(w.id);
                            }
                            if (sources[r].empty())
                                return; // infeasible combination
                        }
                        std::function<void(size_t, Relation)> rf_rec =
                            [&](size_t ri, Relation rf) {
                                if (candidates >= opts.maxCandidates)
                                    return;
                                if (ri == reads.size()) {
                                    Execution ex = base;
                                    ex.co = co;
                                    ex.rf = rf;
                                    if (!ex.rmwAtomic())
                                        return;
                                    // Final state.
                                    for (int t = 0; t < nthreads;
                                         ++t) {
                                        const ThreadTrace &tr =
                                            traces[t][pick[t]];
                                        for (const auto &[reg, v] :
                                             tr.finalRegs)
                                            ex.finalState
                                                .regs[{t, reg}] = v;
                                    }
                                    for (const auto &[loc, ws] :
                                         writes_of) {
                                        int last =
                                            init_writes.at(loc);
                                        for (int w : ws) {
                                            bool is_last = true;
                                            for (int w2 : ws) {
                                                if (w2 != w &&
                                                    co.get(w, w2))
                                                    is_last = false;
                                            }
                                            if (is_last)
                                                last = w;
                                        }
                                        ex.finalState.mem[loc] =
                                            events[last].value;
                                    }
                                    for (const auto &l :
                                         test.locations) {
                                        if (!ex.finalState.mem.count(
                                                l.name))
                                            ex.finalState
                                                .mem[l.name] = l.init;
                                    }
                                    ++candidates;
                                    out.push_back(std::move(ex));
                                    return;
                                }
                                for (int w : sources[ri]) {
                                    Relation rf2 = rf;
                                    rf2.set(w, reads[ri]);
                                    rf_rec(ri + 1, rf2);
                                }
                            };
                        rf_rec(0, Relation(
                                      static_cast<int>(events.size())));
                        return;
                    }
                    // Permute this location's writes.
                    std::vector<int> ws = writes_of[locs[li]];
                    std::sort(ws.begin(), ws.end());
                    do {
                        Relation co2 = co;
                        int init_id = init_writes.at(locs[li]);
                        int prev = init_id;
                        for (int w : ws) {
                            co2.set(prev, w);
                            prev = w;
                        }
                        // Transitive edges within the location chain.
                        for (size_t i = 0; i < ws.size(); ++i) {
                            co2.set(init_id, ws[i]);
                            for (size_t j = i + 1; j < ws.size(); ++j)
                                co2.set(ws[i], ws[j]);
                        }
                        co_rec(li + 1, co2);
                    } while (
                        std::next_permutation(ws.begin(), ws.end()));
                };
            co_rec(0, Relation(static_cast<int>(events.size())));
        }

      advance:
        // Advance the cartesian-product counter.
        int t = 0;
        for (; t < nthreads; ++t) {
            if (++pick[t] < traces[t].size())
                break;
            pick[t] = 0;
        }
        if (t == nthreads)
            break;
        if (candidates >= opts.maxCandidates) {
            warn("test '%s': candidate cap (%llu) reached",
                 test.name.c_str(),
                 static_cast<unsigned long long>(opts.maxCandidates));
            break;
        }
    }
    return out;
}

} // namespace gpulitmus::axiom
