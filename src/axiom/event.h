/**
 * @file
 * Memory events of candidate executions (Sec. 5.1.1 of the paper).
 *
 * Loads give rise to read events, stores to write events, membar to
 * fence events, and atomics to a read-write pair linked by rmwPartner.
 * Initial values are materialised as init write events with tid -1,
 * which "hit the memory before any update" (Sec. 5.1.1).
 */

#ifndef GPULITMUS_AXIOM_EVENT_H
#define GPULITMUS_AXIOM_EVENT_H

#include <cstdint>
#include <string>

#include "ptx/types.h"

namespace gpulitmus::axiom {

struct Event
{
    enum class Kind { Read, Write, Fence };

    int id = -1;       ///< dense index in the execution
    int tid = -1;      ///< issuing thread; -1 for init writes
    int poIndex = -1;  ///< position in the thread's program order
    Kind kind = Kind::Read;

    std::string loc;   ///< memory location (empty for fences)
    int64_t value = 0; ///< value read or written

    ptx::Scope fenceScope = ptx::Scope::Cta; ///< for fences
    ptx::CacheOp cacheOp = ptx::CacheOp::None;
    bool isVolatile = false;
    bool isAtomic = false;
    int rmwPartner = -1; ///< paired event id for atomics, else -1

    int instrIdx = -1; ///< index of the originating instruction

    bool isRead() const { return kind == Kind::Read; }
    bool isWrite() const { return kind == Kind::Write; }
    bool isFence() const { return kind == Kind::Fence; }
    bool isInit() const { return tid < 0; }

    /** Short label for graphs, e.g. "a: W.cg x=1". */
    std::string str() const;
};

} // namespace gpulitmus::axiom

#endif // GPULITMUS_AXIOM_EVENT_H
