#include "cuda/apps.h"

#include "scenario/catalog.h"

namespace gpulitmus::cuda {

litmus::Test
dotProductTest(int num_threads, bool with_fences)
{
    return scenario::spinlockDotProduct(num_threads, with_fences);
}

litmus::Test
workStealingTest(bool with_fences)
{
    return scenario::workStealingDeque(with_fences);
}

} // namespace gpulitmus::cuda
