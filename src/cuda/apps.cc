#include "cuda/apps.h"

#include "common/log.h"
#include "cuda/snippets.h"
#include "litmus/test.h"

namespace gpulitmus::cuda {

namespace {

/** Build the locked-accumulation program for one thread. */
std::string
dotProductThread(int tid, bool with_fences)
{
    std::string f = with_fences ? "membar.gl;" : "";
    std::string body;
    body += "LOCK: atom.cas r0,[m],0,1;";
    body += "setp.ne p0,r0,0;";
    body += "@p0 bra LOCK;";
    body += f; // lock-side fence (Fig. 2 line 3 (+))
    body += "ld.cg r1,[sum];";
    body += "add r2,r1," + std::to_string(tid + 1) + ";";
    body += "st.cg [sum],r2;";
    body += f; // unlock-side fence (Fig. 2 line 5 (+))
    body += "atom.exch r3,[m],0;";
    return body;
}

} // anonymous namespace

AppResult
runDotProduct(const sim::ChipProfile &chip, int num_threads,
              bool with_fences, uint64_t iterations, uint64_t seed)
{
    if (num_threads < 2 || num_threads > 6)
        fatal("runDotProduct supports 2..6 threads, got %d",
              num_threads);

    int64_t expected = 0;
    litmus::TestBuilder builder(with_fences ? "dot-product+fences"
                                            : "dot-product");
    builder.global("sum", 0).global("m", 0);
    for (int t = 0; t < num_threads; ++t) {
        builder.thread(dotProductThread(t, with_fences));
        expected += t + 1;
    }
    builder.interCta();
    builder.exists("sum=" + std::to_string(expected));
    litmus::Test test = builder.build();

    sim::MachineOptions opts;
    opts.inc = sim::Incantations::all();
    opts.maxMicroSteps = 20000; // spin loops need headroom
    sim::Machine machine(chip, test, opts);
    Rng rng(seed);

    AppResult result;
    for (uint64_t i = 0; i < iterations; ++i) {
        litmus::FinalState st = machine.run(rng);
        ++result.runs;
        if (st.loc("sum") != expected)
            ++result.wrong;
    }
    return result;
}

AppResult
runWorkStealing(const sim::ChipProfile &chip, bool with_fences,
                uint64_t iterations, uint64_t seed)
{
    litmus::Test test = distillDequeMp(with_fences);

    sim::MachineOptions opts;
    opts.inc = sim::Incantations::all();
    sim::Machine machine(chip, test, opts);
    Rng rng(seed);

    AppResult result;
    for (uint64_t i = 0; i < iterations; ++i) {
        litmus::FinalState st = machine.run(rng);
        ++result.runs;
        // The thief saw the pushed tail but read an empty task slot:
        // the deque lost a task.
        if (st.reg(1, "r0") == 1 && st.reg(1, "r1") == 0)
            ++result.wrong;
    }
    return result;
}

} // namespace gpulitmus::cuda
