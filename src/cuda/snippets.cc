#include "cuda/snippets.h"

#include "cuda/mapping.h"
#include "ptx/instruction.h"

namespace gpulitmus::cuda {

namespace {

using ptx::Operand;
namespace build = ptx::build;

Operand
imm(int64_t v)
{
    return Operand::makeImm(v);
}

Operand
reg(const std::string &r)
{
    return Operand::makeReg(r);
}

} // anonymous namespace

litmus::Test
distillCasSpinLock(bool with_fences)
{
    // Fig. 9, built through Tab. 5 from Fig. 2. T0 is inside the
    // critical section and unlocks; T1 locks and reads the data.
    ptx::ThreadProgram t0;
    t0.append(translate(CudaOp::GlobalStore, "", "x", imm(1)));
    if (with_fences)
        t0.append(translate(CudaOp::Threadfence)); // line 5 (+)
    t0.append(translate(CudaOp::AtomicExch, "r0", "m", imm(0)));

    ptx::ThreadProgram t1;
    t1.append(translate(CudaOp::AtomicCas, "r1", "m", imm(0),
                        imm(1))); // line 2
    // "if (lockValue == 0)" -> predicated instructions (Tab. 5).
    t1.append(build::setpEq("p2", reg("r1"), imm(0)));
    if (with_fences)
        t1.append(build::guarded(
            "p2", false, translate(CudaOp::Threadfence))); // line 3 (+)
    t1.append(build::guarded(
        "p2", false, translate(CudaOp::GlobalLoad, "r3", "x")));

    return litmus::TestBuilder(with_fences ? "cas-sl+fences"
                                           : "cas-sl")
        .global("x", 0)
        .global("m", 1)
        .thread(std::move(t0))
        .thread(std::move(t1))
        .interCta()
        .exists("1:r1=0 /\\ 1:r3=0")
        .build();
}

litmus::Test
distillDequeMp(bool with_fences)
{
    // Fig. 7: push writes the task (line 3) then bumps the volatile
    // tail (line 5); steal reads tail (line 8) and, if non-empty,
    // reads the task (line 10).
    ptx::ThreadProgram t0;
    t0.append(translate(CudaOp::GlobalStore, "", "d", imm(1))); // l.3
    if (with_fences)
        t0.append(translate(CudaOp::Threadfence)); // l.4 (+)
    t0.append(translate(CudaOp::VolatileLoad, "r2", "t")); // l.5
    t0.append(build::add("r2", reg("r2"), imm(1)));
    t0.append(translate(CudaOp::VolatileStore, "", "t", reg("r2")));

    ptx::ThreadProgram t1;
    t1.append(translate(CudaOp::VolatileLoad, "r0", "t")); // l.8
    t1.append(build::setpEq("p4", reg("r0"), imm(0)));
    if (with_fences)
        t1.append(build::guarded(
            "p4", true, translate(CudaOp::Threadfence))); // l.9 (+)
    t1.append(build::guarded(
        "p4", true,
        translate(CudaOp::GlobalLoad, "r1", "d"))); // l.10

    return litmus::TestBuilder(with_fences ? "dlb-mp+fences"
                                           : "dlb-mp")
        .global("t", 0)
        .global("d", 0)
        .thread(std::move(t0))
        .thread(std::move(t1))
        .interCta()
        .exists("1:r0=1 /\\ 1:r1=0")
        .build();
}

litmus::Test
distillDequeLb(bool with_fences)
{
    // Fig. 8: pop's CAS on head (line 20) then push's task write
    // (line 3) against steal's task read (line 10) then CAS (line 13).
    ptx::ThreadProgram t0;
    t0.append(translate(CudaOp::AtomicCas, "r0", "h", imm(0),
                        imm(1))); // l.20
    if (with_fences)
        t0.append(translate(CudaOp::Threadfence)); // l.21 (+)
    t0.append(build::mov("r2", imm(1)));           // l.3
    t0.append(translate(CudaOp::GlobalStore, "", "t", reg("r2")));

    ptx::ThreadProgram t1;
    t1.append(translate(CudaOp::GlobalLoad, "r1", "t")); // l.10
    if (with_fences)
        t1.append(translate(CudaOp::Threadfence)); // l.11 (+)
    t1.append(translate(CudaOp::AtomicCas, "r3", "h", imm(0),
                        imm(1))); // l.13

    return litmus::TestBuilder(with_fences ? "dlb-lb+fences"
                                           : "dlb-lb")
        .global("t", 0)
        .global("h", 0)
        .thread(std::move(t0))
        .thread(std::move(t1))
        .interCta()
        .exists("0:r0=1 /\\ 1:r1=1")
        .build();
}

litmus::Test
distillHeYuLock(bool fixed)
{
    // Fig. 11 from Fig. 10: can a critical section read a value the
    // *next* critical section writes?
    ptx::ThreadProgram t0;
    t0.append(translate(CudaOp::GlobalLoad, "r0", "x")); // l.7
    if (fixed) {
        t0.append(translate(CudaOp::Threadfence)); // l.8 (+)
        t0.append(translate(CudaOp::AtomicExch, "r1", "m",
                            imm(0))); // l.9 (+)
    } else {
        t0.append(translate(CudaOp::GlobalStore, "", "m",
                            imm(0))); // l.10 (-)
        t0.append(translate(CudaOp::Threadfence)); // l.11 (-)
    }

    ptx::ThreadProgram t1;
    t1.append(translate(CudaOp::AtomicCas, "r2", "m", imm(0),
                        imm(1))); // l.3
    t1.append(build::setpEq("p1", reg("r2"), imm(0))); // l.4
    t1.append(build::guarded("p1", false,
                             build::mov("r3", imm(1)))); // l.5
    if (fixed)
        t1.append(build::guarded(
            "p1", false, translate(CudaOp::Threadfence))); // l.6 (+)
    t1.append(build::guarded(
        "p1", false,
        translate(CudaOp::GlobalStore, "", "x", imm(1)))); // l.7

    return litmus::TestBuilder(fixed ? "sl-future+fixed"
                                     : "sl-future")
        .global("x", 0)
        .global("m", 1)
        .thread(std::move(t0))
        .thread(std::move(t1))
        .interCta()
        .exists("0:r0=1 /\\ 1:r2=0")
        .build();
}

std::string
casSpinLockSource(bool with_fences)
{
    std::string fence1 = with_fences ? "    __threadfence();\n" : "";
    return "__device__ void lock(void) {\n"
           "    while (atomicCAS(mutex, 0, 1) != 0);\n" +
           fence1 +
           "}\n"
           "__device__ void unlock(void) {\n" +
           fence1 +
           "    atomicExch(mutex, 0);\n"
           "}\n";
}

std::string
dequeSource(bool with_fences)
{
    std::string f = with_fences ? "    __threadfence();\n" : "";
    return "volatile int head, tail;\n"
           "void push(task) {\n"
           "    tasks[tail] = task;\n" +
           f +
           "    tail++;\n"
           "}\n"
           "Task steal() {\n"
           "    int oldHead = head;\n"
           "    if (tail <= oldHead.index) return EMPTY;\n" +
           f +
           "    task = tasks[oldHead.index];\n" +
           f +
           "    newHead = oldHead; newHead.index++;\n"
           "    if (CAS(&head, oldHead, newHead)) return task;\n"
           "    return FAILED;\n"
           "}\n";
}

std::string
heYuLockSource(bool fixed)
{
    if (fixed) {
        return "bool leaveLoop = false;\n"
               "while (!leaveLoop) {\n"
               "    int lockValue = atomicCAS(lockAddr, 0, 1);\n"
               "    if (lockValue == 0) {\n"
               "        leaveLoop = true;\n"
               "        __threadfence();\n"
               "        // critical section\n"
               "        __threadfence();\n"
               "        atomicExch(lockAddr, 0);\n"
               "    }\n"
               "}\n";
    }
    return "bool leaveLoop = false;\n"
           "while (!leaveLoop) {\n"
           "    int lockValue = atomicCAS(lockAddr, 0, 1);\n"
           "    if (lockValue == 0) {\n"
           "        leaveLoop = true;\n"
           "        // critical section\n"
           "        *lockAddr = 0;\n"
           "    }\n"
           "    __threadfence();\n"
           "}\n";
}

} // namespace gpulitmus::cuda
