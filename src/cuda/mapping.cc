#include "cuda/mapping.h"

#include "common/log.h"

namespace gpulitmus::cuda {

std::vector<MappingEntry>
mappingTable()
{
    return {
        {"atomicCAS", "atom.cas"},
        {"atomicExch", "atom.exch"},
        {"__threadfence", "membar.gl"},
        {"__threadfence_block", "membar.cta"},
        {"atomicAdd(...,1)", "atom.inc"},
        {"store to global int", "st.cg"},
        {"load from global int", "ld.cg"},
        {"store to volatile int", "st.volatile"},
        {"load from volatile int", "ld.volatile"},
        {"control flow (while, if)",
         "jumps & predicated instructions"},
    };
}

ptx::Instruction
translate(CudaOp op, const std::string &dst, const std::string &loc,
          const ptx::Operand &a, const ptx::Operand &b)
{
    using namespace ptx::build;
    ptx::Operand addr = ptx::Operand::makeSym(loc);
    switch (op) {
      case CudaOp::AtomicCas:
        return atomCas(dst, addr, a, b);
      case CudaOp::AtomicExch:
        return atomExch(dst, addr, a);
      case CudaOp::AtomicAdd1:
        return atomInc(dst, addr);
      case CudaOp::Threadfence:
        return membar(ptx::Scope::Gl);
      case CudaOp::ThreadfenceBlock:
        return membar(ptx::Scope::Cta);
      case CudaOp::GlobalStore:
        return st(addr, a, ptx::CacheOp::Cg);
      case CudaOp::GlobalLoad:
        return ld(dst, addr, ptx::CacheOp::Cg);
      case CudaOp::VolatileStore:
        return stVolatile(addr, a);
      case CudaOp::VolatileLoad:
        return ldVolatile(dst, addr);
    }
    panic("unknown CudaOp");
}

} // namespace gpulitmus::cuda
