/**
 * @file
 * Whole-application clients demonstrating end-to-end consequences of
 * the weak behaviours (Sec. 3.2): the dot-product reduction of CUDA
 * by Example App 1.2, whose per-CTA sums are merged under the spin
 * lock of Fig. 2, and the Cederman-Tsigas work-stealing deque.
 *
 * Since the Scenario API redesign these clients *are* registry
 * scenarios (scenario/catalog.h): each returns a litmus::Test whose
 * forbidden final condition is the application bug ("the sum is
 * wrong", "a task was lost"), so the clients run under
 * harness::Campaign grids, all eval backends and the exhaustive
 * explorer like any other test — the old bespoke AppResult sampling
 * loops are gone. These wrappers exist to keep the CUDA provenance
 * (Tab. 5, cuda/snippets.h) and the scenario registry pointing at
 * the same artefacts; they are the same functions the registry specs
 * `scenario:spinlock_dot_product` / `scenario:work_stealing_deque`
 * resolve to.
 */

#ifndef GPULITMUS_CUDA_APPS_H
#define GPULITMUS_CUDA_APPS_H

#include "litmus/test.h"

namespace gpulitmus::cuda {

/**
 * The dot-product client: `num_threads` CTAs (2..6) each add their
 * local sum (tid + 1) to a global accumulator under the full spin
 * lock of Fig. 2. Forbidden condition: the final sum is wrong.
 * Equals scenario::spinlockDotProduct.
 */
litmus::Test dotProductTest(int num_threads, bool with_fences);

/**
 * The work-stealing client: an owner pushes a task while a thief
 * steals concurrently. Forbidden condition: the thief observed the
 * pushed tail but read a stale (empty) task slot — a lost task.
 * Equals scenario::workStealingDeque.
 */
litmus::Test workStealingTest(bool with_fences);

} // namespace gpulitmus::cuda

#endif // GPULITMUS_CUDA_APPS_H
