/**
 * @file
 * Whole-application clients demonstrating end-to-end consequences of
 * the weak behaviours (Sec. 3.2): the dot-product reduction of CUDA
 * by Example App 1.2, whose per-CTA sums are merged under the spin
 * lock of Fig. 2, computes wrong results when the lock lacks fences;
 * and the work-stealing deque loses tasks.
 */

#ifndef GPULITMUS_CUDA_APPS_H
#define GPULITMUS_CUDA_APPS_H

#include <cstdint>

#include "sim/chip.h"
#include "sim/machine.h"

namespace gpulitmus::cuda {

struct AppResult
{
    uint64_t runs = 0;
    uint64_t wrong = 0; ///< runs with an incorrect final result
};

/**
 * The dot-product client: num_threads CTAs each add their local sum
 * (thread id + 1) to a global accumulator under the spin lock, then
 * the final sum is checked against the closed form. Without fences
 * the lock admits stale reads of the accumulator, losing updates.
 */
AppResult runDotProduct(const sim::ChipProfile &chip, int num_threads,
                        bool with_fences, uint64_t iterations,
                        uint64_t seed = 0xd07);

/**
 * The work-stealing client: an owner pushes a task while a thief
 * steals concurrently; a "lost" run is one where the thief observed
 * the pushed tail but read a stale (empty) task slot.
 */
AppResult runWorkStealing(const sim::ChipProfile &chip,
                          bool with_fences, uint64_t iterations,
                          uint64_t seed = 0xdec);

} // namespace gpulitmus::cuda

#endif // GPULITMUS_CUDA_APPS_H
