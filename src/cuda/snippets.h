/**
 * @file
 * The published CUDA snippets the paper audits, distilled to PTX
 * litmus tests through the Tab. 5 mapping:
 *
 * - the CUDA by Example spin lock (Fig. 2) -> cas-sl (Fig. 9);
 * - the Cederman-Tsigas work-stealing deque (Fig. 6) -> dlb-mp
 *   (Fig. 7) and dlb-lb (Fig. 8);
 * - the He-Yu database spin lock (Fig. 10) -> sl-future (Fig. 11).
 *
 * Each distillation is built instruction-by-instruction with
 * cuda::translate, so the tests in litmus/library.h are reproduced
 * from the CUDA side (the test suite asserts the equivalence).
 */

#ifndef GPULITMUS_CUDA_SNIPPETS_H
#define GPULITMUS_CUDA_SNIPPETS_H

#include "litmus/test.h"

namespace gpulitmus::cuda {

/** cas-sl distilled from the CUDA by Example lock of Fig. 2. */
litmus::Test distillCasSpinLock(bool with_fences);

/** dlb-mp distilled from the deque's push/steal pair (Fig. 6). */
litmus::Test distillDequeMp(bool with_fences);

/** dlb-lb distilled from the deque's pop/steal pair (Fig. 6). */
litmus::Test distillDequeLb(bool with_fences);

/** sl-future distilled from the He-Yu lock of Fig. 10. */
litmus::Test distillHeYuLock(bool fixed);

/** The CUDA source of Fig. 2 (with or without the (+) fences), for
 * documentation and the examples. */
std::string casSpinLockSource(bool with_fences);

/** The CUDA source of Fig. 6 (deque excerpts). */
std::string dequeSource(bool with_fences);

/** The CUDA source of Fig. 10 (He-Yu lock). */
std::string heYuLockSource(bool fixed);

} // namespace gpulitmus::cuda

#endif // GPULITMUS_CUDA_SNIPPETS_H
