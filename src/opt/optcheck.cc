#include "opt/optcheck.h"

#include "common/log.h"

namespace gpulitmus::opt {

uint32_t
encodeSpec(AccessType type, int position)
{
    return kSpecMagic | (static_cast<uint32_t>(type) << 8) |
           (static_cast<uint32_t>(position) & 0xff);
}

AccessType
accessTypeOf(const ptx::Instruction &in)
{
    if (in.op == ptx::Opcode::Ld) {
        switch (in.cacheOp) {
          case ptx::CacheOp::Cg: return AccessType::LoadCg;
          case ptx::CacheOp::Ca: return AccessType::LoadCa;
          default: return AccessType::LoadOther;
        }
    }
    if (in.op == ptx::Opcode::St)
        return AccessType::Store;
    return AccessType::Atomic;
}

namespace {

/** The register that identifies an access: its destination for loads
 * and atomics, its value register (or address) for stores. */
std::string
accessReg(const ptx::Instruction &in)
{
    if (!in.dst.empty())
        return in.dst;
    if (!in.srcs.empty() && in.srcs[0].isReg())
        return in.srcs[0].reg;
    if (in.addr.isReg())
        return in.addr.reg;
    // Symbolic-address immediate store: identify by the location.
    return "[" + in.addr.str() + "]";
}

} // anonymous namespace

void
embedSpecification(const litmus::Test &test, SassProgram &prog)
{
    for (int t = 0; t < test.program.numThreads() &&
                    t < static_cast<int>(prog.threads.size());
         ++t) {
        int position = 0;
        for (const auto &in : test.program.threads[t].instrs) {
            if (!in.isMemAccess())
                continue;
            SassInstr spec;
            spec.kind = SassInstr::Kind::Spec;
            spec.specReg = accessReg(in);
            spec.specWord = encodeSpec(accessTypeOf(in), position++);
            char buf[64];
            std::snprintf(buf, sizeof(buf), "XOR R2, %s, 0x%08x",
                          spec.specReg.c_str(), spec.specWord);
            spec.text = buf;
            prog.threads[t].instrs.push_back(std::move(spec));
        }
    }
}

CheckResult
optcheck(const SassProgram &prog)
{
    CheckResult result;
    for (const auto &thread : prog.threads) {
        ThreadCheck tc;

        // Decode the specification and the actual access sequence.
        std::vector<SpecEntry> spec;
        std::vector<const SassInstr *> actual;
        for (const auto &in : thread.instrs) {
            if (in.kind == SassInstr::Kind::Spec &&
                (in.specWord & kSpecMagicMask) == kSpecMagic) {
                SpecEntry e;
                e.reg = in.specReg;
                e.type = static_cast<AccessType>(
                    (in.specWord >> 8) & 0xf);
                e.position = static_cast<int>(in.specWord & 0xff);
                spec.push_back(std::move(e));
            } else if (in.kind == SassInstr::Kind::MemAccess) {
                actual.push_back(&in);
            }
        }

        if (actual.size() < spec.size()) {
            tc.ok = false;
            tc.problems.push_back(
                "access removed: specification lists " +
                std::to_string(spec.size()) + " accesses, code has " +
                std::to_string(actual.size()));
        }
        if (actual.size() > spec.size()) {
            tc.ok = false;
            tc.problems.push_back("unexpected extra memory access");
        }

        size_t n = std::min(spec.size(), actual.size());
        for (size_t i = 0; i < n; ++i) {
            const SpecEntry &s = spec[i];
            const ptx::Instruction &a = actual[i]->ptx;
            if (s.position != static_cast<int>(i)) {
                tc.ok = false;
                tc.problems.push_back(
                    "specification out of order at index " +
                    std::to_string(i));
                continue;
            }
            if (accessTypeOf(a) != s.type ||
                accessReg(a) != s.reg) {
                tc.ok = false;
                tc.problems.push_back(
                    "access " + std::to_string(i) +
                    " does not match its specification (got '" +
                    actual[i]->text + "', expected register " + s.reg +
                    "): reordered or rewritten");
            }
        }

        result.ok &= tc.ok;
        result.threads.push_back(std::move(tc));
    }
    return result;
}

std::string
CheckResult::str() const
{
    std::string out = ok ? "optcheck: OK\n" : "optcheck: FAILED\n";
    for (size_t t = 0; t < threads.size(); ++t) {
        for (const auto &p : threads[t].problems)
            out += "  T" + std::to_string(t) + ": " + p + "\n";
    }
    return out;
}

} // namespace gpulitmus::opt
