/**
 * @file
 * A SASS-like machine-code representation produced by the mock ptxas
 * assembler (Sec. 4.4 background).
 *
 * Real SASS is undocumented; the paper inspects it with cuobjdump and
 * only needs the sequence of memory accesses plus the embedded
 * specification instructions. Our SASS mirrors that: each thread is a
 * list of instructions that are either lowered memory accesses,
 * lowered ALU/control instructions, ptxas-inserted filler (spills and
 * address recomputations at -O0), or the xor specification markers.
 */

#ifndef GPULITMUS_OPT_SASS_H
#define GPULITMUS_OPT_SASS_H

#include <cstdint>
#include <string>
#include <vector>

#include "ptx/instruction.h"

namespace gpulitmus::opt {

/** One SASS instruction. */
struct SassInstr
{
    enum class Kind {
        MemAccess, ///< lowered ld/st/atom (semantic payload in ptx)
        Fence,     ///< lowered membar
        Alu,       ///< lowered ALU / control instruction
        Filler,    ///< assembler-inserted spill / recomputation
        Spec,      ///< an embedded xor specification instruction
    };

    Kind kind = Kind::Alu;
    ptx::Instruction ptx; ///< the semantic payload (for Mem/Fence/Alu)
    std::string text;     ///< rendered SASS-style text
    uint32_t specWord = 0; ///< for Kind::Spec: the encoded constant
    std::string specReg;   ///< for Kind::Spec: the register operand
};

/** One thread's SASS code. */
struct SassThread
{
    std::vector<SassInstr> instrs;
};

/** A whole compiled litmus test. */
struct SassProgram
{
    std::vector<SassThread> threads;
    /** Human-readable notes about transformations applied. */
    std::vector<std::string> notes;

    /** cuobjdump-style disassembly listing. */
    std::string disassemble() const;
};

} // namespace gpulitmus::opt

#endif // GPULITMUS_OPT_SASS_H
