#include "opt/ptxas.h"

#include "common/log.h"
#include "opt/optcheck.h"

namespace gpulitmus::opt {

namespace {

using ptx::Instruction;
using ptx::Opcode;

/** Is this ALU instruction's result provably zero by an intra-thread
 * analysis? (xor r, a, a and and r, a, 0 are; and r, a, 0x80000000 is
 * not — a's high bit is unknown without inter-thread reasoning.) */
bool
provablyZero(const Instruction &in)
{
    if (in.op == Opcode::Xor && in.srcs.size() == 2 &&
        in.srcs[0] == in.srcs[1])
        return true;
    if (in.op == Opcode::And && in.srcs.size() == 2) {
        for (const auto &s : in.srcs) {
            if (s.isImm() && s.imm == 0)
                return true;
        }
    }
    return false;
}

std::string
sassText(const Instruction &in)
{
    // A light SASS-flavoured rendering: LD/ST/ATOM/MEMBAR/IMAD...
    switch (in.op) {
      case Opcode::Ld:
        return "LD.E" +
               (in.cacheOp == ptx::CacheOp::Cg ? std::string(".CG")
                                               : std::string("")) +
               " " + in.dst + ", [" + in.addr.str() + "]";
      case Opcode::St:
        return "ST.E" +
               (in.cacheOp == ptx::CacheOp::Cg ? std::string(".CG")
                                               : std::string("")) +
               " [" + in.addr.str() + "], " + in.srcs[0].str();
      case Opcode::AtomCas:
        return "ATOM.E.CAS " + in.dst + ", [" + in.addr.str() + "], " +
               in.srcs[0].str() + ", " + in.srcs[1].str();
      case Opcode::AtomExch:
        return "ATOM.E.EXCH " + in.dst + ", [" + in.addr.str() +
               "], " + in.srcs[0].str();
      case Opcode::AtomInc:
        return "RED.E.INC [" + in.addr.str() + "]";
      case Opcode::AtomAdd:
        return "RED.E.ADD [" + in.addr.str() + "], " +
               in.srcs[0].str();
      case Opcode::Membar:
        return "MEMBAR." + ptx::toString(in.scope);
      default:
        return in.str();
    }
}

} // anonymous namespace

PtxasOptions
optionsFor(const sim::ChipProfile &chip)
{
    PtxasOptions opts;
    opts.sdkVersion = chip.sdk;
    opts.targetMaxwell = chip.arch == "Maxwell";
    return opts;
}

SassProgram
assemble(const litmus::Test &test, const PtxasOptions &opts)
{
    SassProgram out;

    for (int t = 0; t < test.program.numThreads(); ++t) {
        const auto &prog = test.program.threads[t];
        SassThread st;

        // Determine dead ALU chains at -O3: instructions whose result
        // is provably zero, plus pure forwarders of such values.
        std::vector<bool> dead(prog.instrs.size(), false);
        if (opts.optLevel >= 3) {
            std::map<std::string, bool> zero_regs;
            for (size_t i = 0; i < prog.instrs.size(); ++i) {
                const Instruction &in = prog.instrs[i];
                if (provablyZero(in)) {
                    dead[i] = true;
                    zero_regs[in.dst] = true;
                    continue;
                }
                // cvt/mov of a zero register forwards zero.
                if ((in.op == Opcode::Cvt || in.op == Opcode::Mov) &&
                    in.srcs.size() == 1 && in.srcs[0].isReg() &&
                    zero_regs.count(in.srcs[0].reg)) {
                    dead[i] = true;
                    zero_regs[in.dst] = true;
                    continue;
                }
                // add r, r, zero-reg is the identity.
                if (in.op == Opcode::Add && in.srcs.size() == 2 &&
                    in.srcs[0].isReg() && in.srcs[1].isReg() &&
                    in.srcs[0].reg == in.dst &&
                    zero_regs.count(in.srcs[1].reg)) {
                    dead[i] = true;
                    continue;
                }
                if (!in.dst.empty())
                    zero_regs.erase(in.dst);
            }
        }

        int filler = 0;
        for (size_t i = 0; i < prog.instrs.size(); ++i) {
            const Instruction &in = prog.instrs[i];
            if (dead[i]) {
                out.notes.push_back(
                    "T" + std::to_string(t) + ": -O3 eliminated '" +
                    in.str() + "' (provably zero result)");
                continue;
            }
            SassInstr si;
            si.ptx = in;
            if (in.isMemAccess())
                si.kind = SassInstr::Kind::MemAccess;
            else if (in.isFence())
                si.kind = SassInstr::Kind::Fence;
            else
                si.kind = SassInstr::Kind::Alu;
            si.text = sassText(in);

            if (opts.optLevel == 0 && in.isMemAccess() && !st.instrs.empty()) {
                // -O0 separates accesses with spill traffic.
                for (int k = 0; k < 3; ++k) {
                    SassInstr f;
                    f.kind = SassInstr::Kind::Filler;
                    f.text = "MOV R" + std::to_string(60 + filler % 4) +
                             ", R" + std::to_string(filler % 8) +
                             "  // spill";
                    ++filler;
                    st.instrs.push_back(f);
                }
            }
            st.instrs.push_back(std::move(si));
        }

        // The CUDA 5.5 / Maxwell bug: adjacent volatile loads from the
        // same address are swapped (Sec. 4.4; found while testing
        // coRR; fixed in CUDA 6.0).
        if (opts.sdkVersion == "5.5" && opts.targetMaxwell &&
            opts.optLevel >= 1) {
            for (size_t i = 0; i + 1 < st.instrs.size(); ++i) {
                SassInstr &a = st.instrs[i];
                SassInstr &b = st.instrs[i + 1];
                if (a.kind == SassInstr::Kind::MemAccess &&
                    b.kind == SassInstr::Kind::MemAccess &&
                    a.ptx.op == Opcode::Ld && b.ptx.op == Opcode::Ld &&
                    a.ptx.isVolatile && b.ptx.isVolatile &&
                    a.ptx.addr == b.ptx.addr) {
                    std::swap(a, b);
                    out.notes.push_back(
                        "T" + std::to_string(t) +
                        ": CUDA 5.5 reordered volatile loads from the"
                        " same address");
                    break;
                }
            }
        }

        out.threads.push_back(std::move(st));
    }

    if (opts.embedSpec)
        embedSpecification(test, out);
    return out;
}

litmus::Test
sassToTest(const litmus::Test &original, const SassProgram &prog)
{
    litmus::Test out = original;
    out.name = original.name + "+sass";
    out.program.threads.clear();
    for (const auto &thread : prog.threads) {
        ptx::ThreadProgram tp;
        for (const auto &in : thread.instrs) {
            switch (in.kind) {
              case SassInstr::Kind::MemAccess:
              case SassInstr::Kind::Fence:
              case SassInstr::Kind::Alu:
                tp.append(in.ptx);
                break;
              case SassInstr::Kind::Filler:
              case SassInstr::Kind::Spec:
                break;
            }
        }
        out.program.threads.push_back(std::move(tp));
    }
    out.validate();
    return out;
}

std::string
SassProgram::disassemble() const
{
    std::string out;
    for (size_t t = 0; t < threads.size(); ++t) {
        out += "// --- thread " + std::to_string(t) + " ---\n";
        for (const auto &i : threads[t].instrs) {
            out += "    " + i.text + "\n";
        }
    }
    for (const auto &n : notes)
        out += "// note: " + n + "\n";
    return out;
}

} // namespace gpulitmus::opt
