/**
 * @file
 * The mock ptxas assembler: lowers PTX litmus threads to SASS with
 * optimisation behaviour modelled on Sec. 4.4 of the paper:
 *
 * - at -O0, each PTX access is lowered to a SASS access but adjacent
 *   accesses are separated by several filler instructions (spills and
 *   address recomputations) — undesirable for testing;
 * - at -O3, filler is optimised away; false dependencies whose
 *   nullness is provable *intra-thread* (the xor-with-self scheme of
 *   Fig. 13a) are eliminated, removing the dependency, while the
 *   and-with-high-bit scheme of Fig. 13b survives (proving it zero
 *   would need an inter-thread analysis);
 * - with CUDA SDK 5.5 targeting Maxwell, adjacent volatile loads from
 *   the same address are (incorrectly) reordered — the compiler bug
 *   the paper found while testing coRR.
 */

#ifndef GPULITMUS_OPT_PTXAS_H
#define GPULITMUS_OPT_PTXAS_H

#include "litmus/test.h"
#include "opt/sass.h"
#include "sim/chip.h"

namespace gpulitmus::opt {

struct PtxasOptions
{
    int optLevel = 3;            ///< -O0 .. -O3
    std::string sdkVersion = "6.0";
    bool targetMaxwell = false;  ///< -arch=sm_50
    bool embedSpec = true;       ///< add the optcheck xor markers
};

/** Assemble a litmus test's threads to SASS. */
SassProgram assemble(const litmus::Test &test,
                     const PtxasOptions &opts = {});

/** ptxas options matching how a chip was driven in Tab. 4. */
PtxasOptions optionsFor(const sim::ChipProfile &chip);

/**
 * Rebuild a runnable litmus test from compiled SASS (filler and spec
 * markers dropped): what the hardware actually executes, for running
 * compiled tests on the simulator.
 */
litmus::Test sassToTest(const litmus::Test &original,
                        const SassProgram &prog);

} // namespace gpulitmus::opt

#endif // GPULITMUS_OPT_PTXAS_H
