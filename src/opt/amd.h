/**
 * @file
 * The AMD OpenCL compilation pipeline with the quirks the paper
 * documents (Sec. 2.3, 3.1.2, 3.2.1, 4.4). Tests for AMD chips are
 * written in OpenCL and the vendor compiler stands between the test
 * and the hardware; we model the compiler as a source-to-source
 * transformation on the litmus test:
 *
 * - GCN 1.0: the fence between two loads is removed (observed in the
 *   Southern Islands ISA; reported to AMD) — mp stays weak with
 *   fences;
 * - TeraScale 2: a load is reordered past a CAS — a miscompilation
 *   that invalidates CAS-based synchronisation, making the dlb-lb
 *   hardware result unusable ("n/a" in Fig. 8);
 * - both: repeated loads of one location are coalesced into a single
 *   load unless suppressed (Sec. 4.4 and the online material explain
 *   the suppression).
 */

#ifndef GPULITMUS_OPT_AMD_H
#define GPULITMUS_OPT_AMD_H

#include <string>
#include <vector>

#include "litmus/test.h"
#include "sim/chip.h"

namespace gpulitmus::opt {

struct AmdCompileResult
{
    litmus::Test compiled;
    /** Human-readable compiler quirks applied. */
    std::vector<std::string> quirks;
    /** True when a quirk invalidates the test's intent (the paper
     * reports "n/a" instead of an observation count). */
    bool miscompiled = false;
};

/**
 * Compile a litmus test with the (simulated) AMD OpenCL compiler for
 * the given chip. suppress_coalescing reflects the workaround the
 * paper describes in its online material.
 */
AmdCompileResult amdCompile(const litmus::Test &test,
                            const sim::ChipProfile &chip,
                            bool suppress_coalescing = true);

} // namespace gpulitmus::opt

#endif // GPULITMUS_OPT_AMD_H
