/**
 * @file
 * optcheck (Sec. 4.4): detects whether the assembler optimised a
 * litmus test in a way that alters its meaning.
 *
 * A specification is embedded into the compiled code as a sequence of
 * xor instructions, one per memory access, placed at the end of each
 * thread. The integer literal of each xor encodes which register the
 * access uses, what type of instruction it is, and its position in
 * the order of memory accesses; a magic constant distinguishes the
 * markers from ordinary xors. optcheck then disassembles the binary
 * and checks the actual access sequence against the specification,
 * reporting removals and reorderings.
 */

#ifndef GPULITMUS_OPT_OPTCHECK_H
#define GPULITMUS_OPT_OPTCHECK_H

#include <cstdint>
#include <string>
#include <vector>

#include "litmus/test.h"
#include "opt/sass.h"

namespace gpulitmus::opt {

/** The magic constant marking specification xors. */
constexpr uint32_t kSpecMagic = 0x07f3a000;
constexpr uint32_t kSpecMagicMask = 0xfffff000;

/** Instruction-type codes carried in the spec word. */
enum class AccessType : uint32_t {
    LoadCg = 0x0,  ///< load with cache operator .cg
    LoadCa = 0x1,  ///< load with cache operator .ca
    LoadOther = 0x2,
    Store = 0x3,
    Atomic = 0x4,
};

/** One decoded specification entry. */
struct SpecEntry
{
    std::string reg;     ///< register the access uses
    AccessType type = AccessType::LoadOther;
    int position = 0;    ///< index in the intended access order
};

/** Encode one entry into the spec word (low 12 bits: type<<8|pos). */
uint32_t encodeSpec(AccessType type, int position);

/** Classify a PTX access for the spec. */
AccessType accessTypeOf(const ptx::Instruction &in);

/** Append the xor specification markers to each SASS thread. */
void embedSpecification(const litmus::Test &test, SassProgram &prog);

/** Per-thread verdict of the conformance check. */
struct ThreadCheck
{
    bool ok = true;
    std::vector<std::string> problems;
};

struct CheckResult
{
    bool ok = true;
    std::vector<ThreadCheck> threads;

    std::string str() const;
};

/**
 * Check a compiled program against its embedded specification:
 * every specified access must be present, in specification order,
 * using the specified register.
 */
CheckResult optcheck(const SassProgram &prog);

} // namespace gpulitmus::opt

#endif // GPULITMUS_OPT_OPTCHECK_H
