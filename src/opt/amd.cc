#include "opt/amd.h"

#include "common/log.h"

namespace gpulitmus::opt {

namespace {

using ptx::Instruction;
using ptx::Opcode;

/** Remove fences that sit between two loads with no store or atomic
 * in between (the GCN 1.0 quirk of Sec. 3.1.2). */
bool
removeFencesBetweenLoads(ptx::ThreadProgram &prog,
                         std::vector<std::string> &quirks, int tid)
{
    bool changed = false;
    for (size_t i = 0; i < prog.instrs.size(); ++i) {
        if (!prog.instrs[i].isFence())
            continue;
        // Find the nearest memory accesses before and after.
        const Instruction *before = nullptr;
        const Instruction *after = nullptr;
        for (size_t j = i; j-- > 0;) {
            if (prog.instrs[j].isMemAccess()) {
                before = &prog.instrs[j];
                break;
            }
        }
        for (size_t j = i + 1; j < prog.instrs.size(); ++j) {
            if (prog.instrs[j].isMemAccess()) {
                after = &prog.instrs[j];
                break;
            }
        }
        if (before && after && before->op == Opcode::Ld &&
            after->op == Opcode::Ld) {
            quirks.push_back(
                "T" + std::to_string(tid) +
                ": GCN 1.0 compiler removed the fence between two"
                " loads");
            prog.instrs.erase(prog.instrs.begin() +
                              static_cast<std::ptrdiff_t>(i));
            // Labels bind instruction indices: everything past the
            // erased slot shifts down, or spin-loop branch targets
            // in labelled programs (scenarios) would silently land
            // one instruction late.
            for (auto &[name, idx] : prog.labels) {
                if (idx > static_cast<int>(i))
                    --idx;
            }
            --i;
            changed = true;
        }
    }
    return changed;
}

/** Reorder a load past a following CAS to a different location (the
 * TeraScale 2 miscompilation of Sec. 3.2.1 / Fig. 8's "n/a"). */
bool
reorderLoadPastCas(ptx::ThreadProgram &prog,
                   std::vector<std::string> &quirks, int tid)
{
    for (size_t i = 0; i + 1 < prog.instrs.size(); ++i) {
        Instruction &a = prog.instrs[i];
        Instruction &b = prog.instrs[i + 1];
        if (a.op == Opcode::Ld && b.op == Opcode::AtomCas &&
            !(a.addr == b.addr) && !b.hasGuard &&
            // No dependency from the load into the CAS.
            b.addr.reg != a.dst && a.dst != "" ) {
            std::swap(a, b);
            quirks.push_back(
                "T" + std::to_string(tid) +
                ": TeraScale 2 compiler reordered a load past a CAS"
                " (miscompilation: invalidates CAS-based"
                " synchronisation)");
            return true;
        }
    }
    return false;
}

/** Coalesce repeated loads of one location into a register move. */
bool
coalesceRepeatedLoads(ptx::ThreadProgram &prog,
                      std::vector<std::string> &quirks, int tid)
{
    for (size_t i = 0; i + 1 < prog.instrs.size(); ++i) {
        const Instruction &a = prog.instrs[i];
        if (a.op != Opcode::Ld)
            continue;
        for (size_t j = i + 1; j < prog.instrs.size(); ++j) {
            const Instruction &b = prog.instrs[j];
            if (b.writesMemory() || b.isFence())
                break;
            if (b.op == Opcode::Ld && b.addr == a.addr &&
                !b.hasGuard) {
                Instruction mv = ptx::build::mov(
                    b.dst, ptx::Operand::makeReg(a.dst));
                prog.instrs[j] = mv;
                quirks.push_back(
                    "T" + std::to_string(tid) +
                    ": compiler coalesced repeated loads of one"
                    " location into a single load");
                return true;
            }
        }
    }
    return false;
}

} // anonymous namespace

AmdCompileResult
amdCompile(const litmus::Test &test, const sim::ChipProfile &chip,
           bool suppress_coalescing)
{
    if (!chip.isAmd())
        fatal("amdCompile called for non-AMD chip '%s'",
              chip.shortName.c_str());

    AmdCompileResult result;
    result.compiled = test;
    result.compiled.name = test.name + "@" + chip.shortName;

    for (int t = 0; t < result.compiled.program.numThreads(); ++t) {
        auto &prog = result.compiled.program.threads[t];
        if (chip.amdRemovesFenceBetweenLoads)
            removeFencesBetweenLoads(prog, result.quirks, t);
        if (chip.amdReordersLoadCas) {
            if (reorderLoadPastCas(prog, result.quirks, t))
                result.miscompiled = true;
        }
        if (chip.amdCoalescesRepeatedLoads && !suppress_coalescing) {
            if (coalesceRepeatedLoads(prog, result.quirks, t))
                result.miscompiled = true;
        }
    }
    return result;
}

} // namespace gpulitmus::opt
