/**
 * @file
 * The simulator's nondeterminism interface: every stochastic decision
 * the operational machine makes — which actor gets the next slot,
 * whether a younger access bypasses an older one, whether a store
 * buffer drains out of order, whether a stale L1 line keeps serving —
 * is a *choice point* routed through one pluggable ChoiceProvider.
 *
 * Two providers exist:
 *
 * - RngChoice samples every choice from an Rng with the probabilities
 *   the chip profile prescribes. Machine::run(Rng&) instantiates it,
 *   and the draw sequence is bit-identical to the pre-refactor
 *   machine: histograms, seeds and campaign caches are unchanged.
 * - mc::Explorer's replay provider (mc/explorer.h) enumerates the
 *   alternatives instead, turning the same machine into an exhaustive
 *   state-space search.
 *
 * Choice kinds are tagged so a provider can apply per-kind policy.
 * Kinds marked "timing-only" below never change the set of reachable
 * final states — they stretch or compress when things happen, which
 * matters for observation *rates* but is subsumed by exhaustive
 * scheduling — so a model checker may pin them to a canonical value.
 *
 * Providers may also *abort* an iteration from a scheduling pick by
 * returning ChoiceProvider::kAbortRun: the machine stops immediately
 * and reports no final state. Searchers use this to cut replays
 * whose continuation is already memoised without paying for an
 * exception unwind per cut (and without serialising worker threads
 * on the unwinder's global lock). Samplers never abort.
 */

#ifndef GPULITMUS_SIM_CHOICE_H
#define GPULITMUS_SIM_CHOICE_H

#include <cstddef>
#include <cstdint>

#include "common/rng.h"

namespace gpulitmus::sim {

enum class ChoiceKind : uint8_t {
    Schedule,     ///< which actor (thread / drain) takes the slot
    IssueOrCommit,///< thread slot: fetch-issue vs retire from window
    CommitBypass, ///< younger window entry overtakes older entries
    DrainLazy,    ///< drain actor defers (timing-only)
    DrainReorder, ///< store buffer drains out of order this time
    DrainIndex,   ///< which younger buffer entry drains early
    StoreBypass,  ///< bank-conflicted store skips the buffer
    AtomFlush,    ///< atomic flushes the SM's buffer before acting
    FenceLeak,    ///< inter-CTA-transparent membar.cta still flushes
    L1Warm,       ///< L1 line starts the iteration warm
    L1StaleServe, ///< stale L1 line serves its old value once more
    CgEvict,      ///< .cg access evicts the matching L1 line
    FenceInval,   ///< fence invalidates one stale L1 line
    Placement,    ///< CTA->SM shuffle pick (SMs are homogeneous and
                  ///  placements distinct, so reachability-irrelevant)
    StartSkew,    ///< thread start delay (timing-only)
    ReplayDelay,  ///< replay penalty of a bypassed entry (timing-only)
};

const char *toString(ChoiceKind kind);

/**
 * Conservative memory-event footprint of one actor's next slot: which
 * testing locations the slot may read or write, and which SM's
 * private structures (store buffer, L1) it may touch. Used by DPOR
 * sleep sets to decide whether two slots commute; over-approximation
 * is sound (it only wakes sleeping actors unnecessarily).
 */
struct ActorFootprint
{
    uint64_t reads = 0;  ///< location-index bitmask
    uint64_t writes = 0; ///< location-index bitmask
    int sm = -1;         ///< SM whose private state the slot may touch
};

/** One row of the scheduler's actor table at a Schedule choice. */
struct ActorOption
{
    /** Stable actor identity across steps: thread tid, or
     * numThreads + smId for an SM's drain actor. */
    int id = 0;
    bool isDrain = false;
    /** May the actor act at all this step? The random scheduler
     * still samples disabled actors (a no-op slot, exactly as the
     * pre-refactor machine did); exhaustive search skips them. */
    bool enabled = false;
    ActorFootprint foot;
};

/** May the two slots be executed in either order with the same
 * outcome? False whenever the footprints conflict (shared location
 * with a write, or the same SM's private structures). */
bool independentActors(const ActorOption &a, const ActorOption &b);

/**
 * The provider interface. The machine calls exactly one method per
 * nondeterministic decision, in a deterministic order given the
 * answers, so a provider can replay and enumerate executions.
 */
class ChoiceProvider
{
  public:
    virtual ~ChoiceProvider() = default;

    /**
     * Sentinel a provider may return from pickActor() to abandon the
     * current iteration: the machine stops immediately and returns an
     * empty (meaningless) final state. Searchers use it to cut
     * replays whose continuation is already memoised — an exception-
     * free fast path that costs one compare per scheduling step.
     * Samplers never return it.
     */
    static constexpr size_t kAbortRun = static_cast<size_t>(-1);

    /** Uniform-shaped pick in [0, n); n >= 1. */
    virtual uint64_t pick(ChoiceKind kind, uint64_t n) = 0;

    /**
     * Bernoulli-shaped choice with probability p of true. `relevant`
     * is false when the machine can prove the answer cannot affect
     * the reachable final states (e.g. warming an L1 line of an SM
     * hosting no testing thread); samplers must ignore it, searchers
     * may pin the answer instead of branching.
     */
    virtual bool chance(ChoiceKind kind, double p, bool relevant = true) = 0;

    /** Does the provider want the actor table at Schedule choices?
     * Samplers say no and the machine skips building footprints on
     * its hot path. */
    virtual bool wantsActors() const { return false; }

    /**
     * Scheduling pick: one slot among the n actors, or kAbortRun to
     * abandon the iteration. `actors` is null unless wantsActors().
     * The default (sampling) shape is a uniform pick over all n
     * actors, disabled ones included — a disabled pick is a no-op
     * slot, exactly the pre-refactor behaviour.
     */
    virtual size_t
    pickActor(const ActorOption *actors, size_t n)
    {
        (void)actors;
        return static_cast<size_t>(pick(ChoiceKind::Schedule, n));
    }

    /** Replay penalty (in commit slots) charged to a bypassed window
     * entry. Timing-only; searchers return 0. */
    virtual int
    delayBump()
    {
        return 2 + static_cast<int>(pick(ChoiceKind::ReplayDelay, 4));
    }
};

/**
 * The sampling provider: draws every choice from an Rng with the
 * machine-supplied probabilities. One pick()/chance() maps to exactly
 * one below()/chance() on the Rng, so the stream consumed for a given
 * run is bit-identical to the pre-refactor Machine::run(Rng&).
 */
class RngChoice final : public ChoiceProvider
{
  public:
    explicit RngChoice(Rng &rng) : rng_(&rng) {}

    uint64_t
    pick(ChoiceKind, uint64_t n) override
    {
        return rng_->below(n);
    }

    bool
    chance(ChoiceKind, double p, bool = true) override
    {
        return rng_->chance(p);
    }

  private:
    Rng *rng_;
};

} // namespace gpulitmus::sim

#endif // GPULITMUS_SIM_CHOICE_H
