/**
 * @file
 * Chip profiles: the micro-architectural parameters that make the
 * simulated GPUs of Tab. 1 exhibit (or not exhibit) each weak
 * behaviour.
 *
 * The paper measures real silicon; we have none, so each chip is a
 * parameter point of the operational machine in machine.h. The
 * *mechanisms* (store buffers, non-coherent L1s, out-of-order commit
 * windows, scoped fences) are shared; the per-chip numbers are fitted
 * so the observation tables reproduce the paper's shape: which chip
 * is weak on which idiom, and which fence restores order. The fits
 * are documented per field; see DESIGN.md for the substitution
 * rationale.
 */

#ifndef GPULITMUS_SIM_CHIP_H
#define GPULITMUS_SIM_CHIP_H

#include <string>
#include <vector>

#include "ptx/types.h"

namespace gpulitmus::sim {

/** Probability of L1 invalidation per fence scope (cta, gl, sys). */
struct InvalProbs
{
    double cta = 1.0;
    double gl = 1.0;
    double sys = 1.0;

    double
    at(ptx::Scope s) const
    {
        switch (s) {
          case ptx::Scope::Cta: return cta;
          case ptx::Scope::Gl: return gl;
          case ptx::Scope::Sys: return sys;
        }
        return 1.0;
    }
};

struct ChipProfile
{
    // ---- identity (Tab. 1 / Tab. 4) --------------------------------
    std::string shortName; ///< e.g. "Titan"
    std::string chipName;  ///< e.g. "GTX Titan"
    std::string vendor;    ///< "Nvidia" or "AMD"
    std::string arch;      ///< "Fermi", "Kepler", ...
    int year = 0;
    std::string sdk;       ///< SDK version used (Tab. 4)
    std::string driver;    ///< driver version (Tab. 4)
    std::string options;   ///< -arch option (Tab. 4)

    int numSMs = 8; ///< streaming multiprocessors / compute units

    // ---- commit-window relaxations ----------------------------------
    /** Same-address read-read reordering (the coRR load-load hazard,
     * Fig. 1). Fermi/Kepler true; Maxwell and AMD false. */
    bool allowCoRR = false;
    /** Probability a younger same-address load overtakes when jitter
     * (memory stress or bank conflicts) is present. */
    double corrPass = 0.0;
    /** Probability a younger store overtakes an older load to a
     * different location (load buffering; needs memory stress). */
    double rwPass = 0.0;
    /** Probability a younger load overtakes an older load, different
     * locations (reader-side mp; needs memory stress). */
    double rrPass = 0.0;
    /** Probability a younger store overtakes an older store when the
     * chip has no store buffer (AMD writer-side mp). */
    double wwPass = 0.0;
    /** Probability a younger load overtakes an older store
     * (bufferless sb path; on GCN only under bank conflicts). */
    double wrPass = 0.0;
    /** wrPass contribution that requires the bank-conflict
     * incantation (HD7970 sb, Tab. 6). */
    double wrPassBank = 0.0;
    /** Probability an atomic overtakes an older plain store (AMD
     * cas-sl path; Nvidia gets cas-sl from the store buffer). */
    double atomPass = 0.0;
    /** Window reordering of shared-memory accesses; volatile does not
     * inhibit it (mp-volatile, Fig. 5). */
    double sharedPass = 0.0;

    /** Probability an *inter-CTA-transparent* membar.cta still blocks
     * the window (lb+membar.ctas observed ~4x less than lb on Titan,
     * Sec. 6). */
    double ctaFenceInterBlock = 0.75;
    /** Nvidia's window machinery only engages under memory stress
     * (Tab. 6 columns 1-8 are all zero on Titan); AMD exhibits weak
     * behaviours without it (Sec. 4.3.1). */
    bool reorderNeedsStress = true;

    // ---- store buffer (per SM, Nvidia) ------------------------------
    bool storeBuffer = false;
    /** Probability the drain actor defers when picked under memory
     * stress (visibility delay; drives sb and cas-sl magnitudes). */
    double drainLaziness = 0.0;
    /** Probability a drain picks a younger (different-address) entry
     * first (writer-side mp / dlb-mp). */
    double drainOutOfOrder = 0.0;
    /** Probability an atomic flushes the SM's store buffer before it
     * acts at the L2 (atomics serialise against pending stores on
     * some chips; scales the cas-sl magnitudes of Fig. 9). */
    double atomFlush = 0.0;

    // ---- L1 behaviour (.ca loads, Nvidia) ---------------------------
    /** Probability a testing location is warm in an SM's L1 at
     * iteration start (models residue of previous iterations). */
    double l1WarmProb = 0.0;
    /** Probability a stale-marked line keeps serving its old value at
     * a .ca hit (per read) under memory stress. */
    double l1StaleServe = 0.0;
    /** Fence-invalidation probabilities for lines staled by *other*
     * SMs' stores (mp-L1, Fig. 3). */
    InvalProbs invalInter;
    /** Fence-invalidation probabilities for lines staled by stores
     * from the *same* SM (coRR-L2-L1, Fig. 4). */
    InvalProbs invalSame;
    /** ld.cg evicts a matching L1 line ("existing cache lines ...
     * will be evicted", PTX manual p. 121; reliable on Kepler only). */
    double cgLoadEvicts = 0.0;
    /** st.cg evicts the issuing SM's matching L1 line. */
    double cgStoreEvicts = 0.0;

    // ---- compiler quirks (consumed by the opt module) ----------------
    /** CUDA 5.5 reorders volatile loads to the same address at -O3
     * (Sec. 4.4, observed on Maxwell). */
    bool cuda55ReordersVolatileLoads = false;
    /** AMD OpenCL removes fences between loads (GCN 1.0, Sec 3.1.2). */
    bool amdRemovesFenceBetweenLoads = false;
    /** AMD OpenCL reorders a load past a CAS (TeraScale 2, Fig. 8's
     * "n/a" cell). */
    bool amdReordersLoadCas = false;
    /** AMD OpenCL coalesces repeated loads of one location unless
     * suppressed (Sec. 4.4). */
    bool amdCoalescesRepeatedLoads = false;

    bool isNvidia() const { return vendor == "Nvidia"; }
    bool isAmd() const { return vendor == "AMD"; }
};

/** All chips of Tab. 1 in paper order (including the GTX 280, which
 * showed no weak behaviours and is omitted from the result tables). */
const std::vector<ChipProfile> &allChips();

/** The chips that appear in the paper's per-test result rows. */
std::vector<ChipProfile> resultChips();

/** Look up by short name ("GTX5", "TesC", ..., "HD7970"); fatal if
 * unknown. */
const ChipProfile &chip(const std::string &short_name);

} // namespace gpulitmus::sim

#endif // GPULITMUS_SIM_CHIP_H
