#include "sim/choice.h"

namespace gpulitmus::sim {

const char *
toString(ChoiceKind kind)
{
    switch (kind) {
      case ChoiceKind::Schedule: return "schedule";
      case ChoiceKind::IssueOrCommit: return "issue-or-commit";
      case ChoiceKind::CommitBypass: return "commit-bypass";
      case ChoiceKind::DrainLazy: return "drain-lazy";
      case ChoiceKind::DrainReorder: return "drain-reorder";
      case ChoiceKind::DrainIndex: return "drain-index";
      case ChoiceKind::StoreBypass: return "store-bypass";
      case ChoiceKind::AtomFlush: return "atom-flush";
      case ChoiceKind::FenceLeak: return "fence-leak";
      case ChoiceKind::L1Warm: return "l1-warm";
      case ChoiceKind::L1StaleServe: return "l1-stale-serve";
      case ChoiceKind::CgEvict: return "cg-evict";
      case ChoiceKind::FenceInval: return "fence-inval";
      case ChoiceKind::Placement: return "placement";
      case ChoiceKind::StartSkew: return "start-skew";
      case ChoiceKind::ReplayDelay: return "replay-delay";
    }
    return "?";
}

bool
independentActors(const ActorOption &a, const ActorOption &b)
{
    if (a.id == b.id)
        return false;
    // Same SM: the slots share a store buffer and an L1.
    if (a.foot.sm >= 0 && a.foot.sm == b.foot.sm)
        return false;
    uint64_t aw = a.foot.writes, bw = b.foot.writes;
    uint64_t ar = a.foot.reads | aw, br = b.foot.reads | bw;
    return (aw & br) == 0 && (bw & ar) == 0;
}

} // namespace gpulitmus::sim
