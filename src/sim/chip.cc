#include "sim/chip.h"

#include "common/log.h"

namespace gpulitmus::sim {

namespace {

std::vector<ChipProfile>
buildChips()
{
    std::vector<ChipProfile> chips;

    {
        // Tesla GTX 280 (2008): the paper observed no weak behaviours
        // on it (footnote 7) and omits it from the result tables.
        ChipProfile c;
        c.shortName = "GTX280";
        c.chipName = "GTX 280";
        c.vendor = "Nvidia";
        c.arch = "Tesla";
        c.year = 2008;
        c.sdk = "5.5";
        c.driver = "331.20";
        c.options = "sm_13";
        c.numSMs = 30;
        chips.push_back(c);
    }

    {
        // Fermi GTX 540m: coRR and mp-volatile weak; mp-L1 weak but
        // any fence restores it (Fig. 3); the same-SM L1 path needs a
        // .gl fence (Fig. 4: membar.cta leaves 1934/100k); none of
        // the RMW-based tests (Figs. 7, 8, 9, 11) observed.
        ChipProfile c;
        c.shortName = "GTX5";
        c.chipName = "GTX 540m";
        c.vendor = "Nvidia";
        c.arch = "Fermi";
        c.year = 2011;
        c.sdk = "5.5";
        c.driver = "331.20";
        c.options = "sm_21";
        c.numSMs = 2;
        c.allowCoRR = true;
        c.corrPass = 0.65;
        c.sharedPass = 0.16;
        c.ctaFenceInterBlock = 1.0;
        c.l1WarmProb = 0.25;
        c.l1StaleServe = 0.85;
        c.invalInter = {1.0, 1.0, 1.0};   // any fence fixes Fig. 3
        c.invalSame = {0.25, 1.0, 1.0};   // .cta insufficient in Fig. 4
        c.cgLoadEvicts = 0.80; // usually, not reliably (Fig. 4)
        chips.push_back(c);
    }

    {
        // Fermi Tesla C2075: the weakest chip in the study; no fence
        // restores L1 coherence on either path (Figs. 3 and 4), and
        // all the RMW-based tests are observed.
        ChipProfile c;
        c.shortName = "TesC";
        c.chipName = "Tesla C2075";
        c.vendor = "Nvidia";
        c.arch = "Fermi";
        c.year = 2011;
        c.sdk = "5.5";
        c.driver = "334.16";
        c.options = "sm_20";
        c.numSMs = 14;
        c.allowCoRR = true;
        c.corrPass = 0.50;
        c.rwPass = 0.075;
        c.rrPass = 0.05;
        c.sharedPass = 0.13;
        c.ctaFenceInterBlock = 1.0;
        c.storeBuffer = true;
        c.drainLaziness = 0.08;
        c.drainOutOfOrder = 0.22;
        c.atomFlush = 0.80;
        c.l1WarmProb = 0.58;
        c.l1StaleServe = 0.92;
        c.invalInter = {0.97, 0.98, 0.985}; // no fence fully fixes
        c.invalSame = {0.27, 0.50, 0.52};
        c.cgLoadEvicts = 0.97; // usually, not reliably (Fig. 4)
        chips.push_back(c);
    }

    {
        // Kepler GTX 660.
        ChipProfile c;
        c.shortName = "GTX6";
        c.chipName = "GTX 660";
        c.vendor = "Nvidia";
        c.arch = "Kepler";
        c.year = 2012;
        c.sdk = "5.0";
        c.driver = "331.67";
        c.options = "sm_30";
        c.numSMs = 5;
        c.allowCoRR = true;
        c.corrPass = 0.55;
        c.rwPass = 0.040;
        c.rrPass = 0.018;
        c.sharedPass = 0.07;
        c.ctaFenceInterBlock = 0.996; // lb+membar.ctas: 19/100k
        c.storeBuffer = true;
        c.drainLaziness = 0.05;
        c.drainOutOfOrder = 0.45;
        c.atomFlush = 0.85;
        c.l1WarmProb = 0.24;
        c.l1StaleServe = 0.9;
        c.invalInter = {0.9996, 1.0, 1.0};
        c.invalSame = {1.0, 1.0, 1.0};
        c.cgLoadEvicts = 0.999;  // Kepler honours the manual
        c.cgStoreEvicts = 0.9998; // Fig. 4 nearly silent (obs 2)
        chips.push_back(c);
    }

    {
        // Kepler GTX Titan: the chip of Tab. 6; strong store-buffer
        // effects (sb up to 6673/100k) and the Sec. 6 lb+membar.ctas
        // counterexample (586/100k).
        ChipProfile c;
        c.shortName = "Titan";
        c.chipName = "GTX Titan";
        c.vendor = "Nvidia";
        c.arch = "Kepler";
        c.year = 2013;
        c.sdk = "6.0";
        c.driver = "331.62";
        c.options = "sm_35";
        c.numSMs = 14;
        c.allowCoRR = true;
        c.corrPass = 0.55;
        c.rwPass = 0.220;
        c.rrPass = 0.090;
        c.sharedPass = 0.06;
        c.ctaFenceInterBlock = 0.74; // lb 2247 -> lb+ctas 586
        c.storeBuffer = true;
        c.drainLaziness = 0.15;
        c.drainOutOfOrder = 0.50;
        c.atomFlush = 0.40;
        c.l1WarmProb = 0.42;
        c.l1StaleServe = 0.9;
        c.invalInter = {0.78, 1.0, 1.0}; // membar.cta leaves 1696
        c.invalSame = {0.999, 1.0, 1.0}; // Fig. 4: 141 -> 0 with .cta
        c.cgLoadEvicts = 0.0;  // Fig. 4 observed without fences
        c.cgStoreEvicts = 0.995;
        chips.push_back(c);
    }

    {
        // Maxwell GTX 750: essentially strong in the paper's tests
        // (only mp-L1 with no fence shows 3/100k); the CUDA 5.5
        // volatile-load reordering of Sec. 4.4 was found on Maxwell.
        ChipProfile c;
        c.shortName = "GTX7";
        c.chipName = "GTX 750";
        c.vendor = "Nvidia";
        c.arch = "Maxwell";
        c.year = 2014;
        c.sdk = "6.0";
        c.driver = "331.62";
        c.options = "sm_50";
        c.numSMs = 4;
        c.l1WarmProb = 0.004;
        c.l1StaleServe = 0.03;
        c.invalInter = {1.0, 1.0, 1.0};
        c.invalSame = {1.0, 1.0, 1.0};
        c.cgLoadEvicts = 1.0;
        c.cgStoreEvicts = 1.0;
        c.cuda55ReordersVolatileLoads = true;
        chips.push_back(c);
    }

    {
        // AMD TeraScale 2 (Radeon HD 6570): no coRR; mp weak without
        // fences, fixed by OpenCL global fences; cas-sl observed; the
        // compiler reorders a load past a CAS (dlb-lb "n/a").
        ChipProfile c;
        c.shortName = "HD6570";
        c.chipName = "Radeon HD 6570";
        c.vendor = "AMD";
        c.arch = "TeraScale 2";
        c.year = 2011;
        c.sdk = "2.9";
        c.driver = "14.4";
        c.options = "default";
        c.numSMs = 8;
        c.reorderNeedsStress = false;
        c.rrPass = 0.12;   // reader-side mp (9327/100k unfenced)
        c.wwPass = 0.04;
        c.atomPass = 0.045; // cas-sl 508
        c.amdReordersLoadCas = true;
        c.amdCoalescesRepeatedLoads = true;
        chips.push_back(c);
    }

    {
        // AMD GCN 1.0 (Radeon HD 7970): massive load buffering (up to
        // 38664/100k in Tab. 6), modest mp, sb only under bank
        // conflicts; the compiler removes fences between loads.
        ChipProfile c;
        c.shortName = "HD7970";
        c.chipName = "Radeon HD 7970";
        c.vendor = "AMD";
        c.arch = "GCN 1.0";
        c.year = 2012;
        c.sdk = "2.9";
        c.driver = "14.4";
        c.options = "default";
        c.numSMs = 32;
        c.reorderNeedsStress = false;
        c.rwPass = 0.85;
        c.rrPass = 0.030;
        c.wwPass = 0.030;
        c.wrPassBank = 0.00002;
        c.atomPass = 0.070; // cas-sl 748
        c.amdRemovesFenceBetweenLoads = true;
        c.amdCoalescesRepeatedLoads = true;
        chips.push_back(c);
    }

    return chips;
}

} // anonymous namespace

const std::vector<ChipProfile> &
allChips()
{
    static std::vector<ChipProfile> chips = buildChips();
    return chips;
}

std::vector<ChipProfile>
resultChips()
{
    std::vector<ChipProfile> out;
    for (const auto &c : allChips()) {
        if (c.shortName != "GTX280")
            out.push_back(c);
    }
    return out;
}

const ChipProfile &
chip(const std::string &short_name)
{
    for (const auto &c : allChips()) {
        if (c.shortName == short_name || c.chipName == short_name)
            return c;
    }
    fatal("unknown chip '%s'", short_name.c_str());
}

} // namespace gpulitmus::sim
