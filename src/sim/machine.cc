#include "sim/machine.h"

#include <algorithm>

#include "common/log.h"

namespace gpulitmus::sim {

// ---------------------------------------------------------------------
// Incantations
// ---------------------------------------------------------------------

Incantations
Incantations::fromColumn(int column)
{
    if (column < 1 || column > 16)
        fatal("Tab. 6 column must be 1..16, got %d", column);
    int bits = column - 1;
    Incantations inc;
    inc.threadRandomisation = bits & 1;
    inc.threadSync = bits & 2;
    inc.bankConflicts = bits & 4;
    inc.memoryStress = bits & 8;
    return inc;
}

int
Incantations::column() const
{
    return 1 + (threadRandomisation ? 1 : 0) + (threadSync ? 2 : 0) +
           (bankConflicts ? 4 : 0) + (memoryStress ? 8 : 0);
}

std::string
Incantations::str() const
{
    std::string out;
    auto add = [&](bool on, const char *name) {
        if (on) {
            if (!out.empty())
                out += "+";
            out += name;
        }
    };
    add(memoryStress, "stress");
    add(bankConflicts, "bank");
    add(threadSync, "sync");
    add(threadRandomisation, "rand");
    return out.empty() ? "none" : out;
}

// ---------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------

Machine::Machine(const ChipProfile &chip, const litmus::Test &test,
                 MachineOptions opts)
    : chip_(&chip), test_(&test), opts_(opts)
{
    compile();
}

int
Machine::regIndex(int tid, const std::string &name)
{
    auto &names = regNames_[tid];
    for (size_t i = 0; i < names.size(); ++i) {
        if (names[i] == name)
            return static_cast<int>(i);
    }
    if (names.size() >= 64)
        fatal("thread %d uses more than 64 registers", tid);
    names.push_back(name);
    return static_cast<int>(names.size()) - 1;
}

Machine::COperand
Machine::compileOperand(const ptx::Operand &op, int tid)
{
    COperand c;
    switch (op.kind) {
      case ptx::Operand::Kind::Imm:
        c.isImm = true;
        c.imm = op.imm;
        break;
      case ptx::Operand::Kind::Sym:
        c.isImm = true;
        c.imm = test_->addressOf(op.sym);
        break;
      case ptx::Operand::Kind::Reg:
        c.isImm = false;
        c.reg = regIndex(tid, op.reg);
        break;
      case ptx::Operand::Kind::None:
        c.isImm = true;
        c.imm = 0;
        break;
    }
    return c;
}

int
Machine::locIndexOf(int64_t addr) const
{
    int64_t base = addr >= litmus::Test::sharedBase
                       ? litmus::Test::sharedBase
                       : litmus::Test::globalBase;
    if (addr < litmus::Test::globalBase)
        return -1;
    int64_t off = addr - base;
    if (off % litmus::Test::locStride != 0)
        return -1;
    int idx = static_cast<int>(off / litmus::Test::locStride);
    if (idx < 0 || idx >= static_cast<int>(locShared_.size()))
        return -1;
    // The base encodes the space; check consistency.
    bool shared = addr >= litmus::Test::sharedBase;
    if (locShared_[idx] != shared)
        return -1;
    return idx;
}

void
Machine::compile()
{
    int nthreads = test_->program.numThreads();
    regNames_.resize(nthreads);
    compiled_.resize(nthreads);

    for (const auto &l : test_->locations) {
        locShared_.push_back(l.space == litmus::MemSpace::Shared);
        locInit_.push_back(l.init);
    }

    for (int t = 0; t < nthreads; ++t) {
        const auto &prog = test_->program.threads[t];
        CThread &ct = compiled_[t];
        for (const auto &in : prog.instrs) {
            CInstr ci;
            ci.op = in.op;
            ci.cacheOp = in.cacheOp;
            ci.scope = in.scope;
            ci.isVolatile = in.isVolatile;
            if (in.hasGuard) {
                ci.guardReg = regIndex(t, in.guardReg);
                ci.guardNeg = in.guardNegated;
            }
            if (!in.dst.empty())
                ci.dst = regIndex(t, in.dst);
            if (!in.addr.isNone())
                ci.addr = compileOperand(in.addr, t);
            if (in.srcs.size() > 0)
                ci.src0 = compileOperand(in.srcs[0], t);
            if (in.srcs.size() > 1)
                ci.src1 = compileOperand(in.srcs[1], t);
            if (in.op == ptx::Opcode::Bra)
                ci.braTarget = prog.labelTarget(in.target);
            ct.instrs.push_back(ci);
        }
        ct.regInit.assign(regNames_[t].size(), 0);
        for (const auto &ri : test_->regInits) {
            if (ri.tid != t)
                continue;
            int idx = regIndex(t, ri.reg);
            if (idx >= static_cast<int>(ct.regInit.size()))
                ct.regInit.resize(idx + 1, 0);
            ct.regInit[idx] = ri.isLocAddress
                                  ? test_->addressOf(ri.loc)
                                  : ri.value;
        }
        // regIndex may have grown the name table for init-only regs.
        ct.regInit.resize(regNames_[t].size(), 0);
    }

    hasSameCtaPeer_.assign(nthreads, false);
    for (int a = 0; a < nthreads; ++a) {
        for (int b = 0; b < nthreads; ++b) {
            if (a != b && test_->scopeTree.sameCta(a, b))
                hasSameCtaPeer_[a] = true;
        }
    }
}

// ---------------------------------------------------------------------
// Per-run reset
// ---------------------------------------------------------------------

void
Machine::resetRun(ChoiceProvider &cp)
{
    // Every container below is reset *in place*: after the first run
    // the sizes are stable, so assign/resize/clear reuse the pooled
    // capacity and the reset performs no heap allocation. The choice
    // draw order is identical to the pre-pooling reset (placement,
    // then L1 warmth, then start skew) — bit-compatibility with the
    // golden histograms depends on it.
    int nthreads = test_->program.numThreads();
    int nlocs = static_cast<int>(locShared_.size());

    l2_.assign(locInit_.begin(), locInit_.end());

    int nctas = test_->scopeTree.numCtas();
    sharedMem_.resize(nctas);
    for (auto &mem : sharedMem_)
        mem.assign(locInit_.begin(), locInit_.end());

    // CTA -> SM placement: distinct SMs per CTA (the scheduler
    // spreads resident CTAs across SMs). Without thread randomisation
    // the layout is fixed; with it, each iteration draws a fresh
    // assignment.
    ctaSm_.resize(nctas);
    if (opts_.inc.threadRandomisation && nctas <= chip_->numSMs) {
        smIds_.resize(chip_->numSMs);
        for (int s = 0; s < chip_->numSMs; ++s)
            smIds_[s] = s;
        // Fisher-Yates, one pick per swap: the sampler consumes the
        // Rng exactly as Rng::shuffle did. SMs are homogeneous and
        // every placement puts the CTAs on distinct SMs, so the kind
        // is reachability-irrelevant by construction.
        for (size_t i = smIds_.size() - 1; i > 0; --i) {
            size_t j = static_cast<size_t>(
                cp.pick(ChoiceKind::Placement, i + 1));
            std::swap(smIds_[i], smIds_[j]);
        }
        for (int c = 0; c < nctas; ++c)
            ctaSm_[c] = smIds_[c];
    } else {
        for (int c = 0; c < nctas; ++c)
            ctaSm_[c] = c % chip_->numSMs;
    }

    sms_.resize(chip_->numSMs);
    for (auto &sm : sms_) {
        sm.l1.assign(nlocs, std::nullopt);
        sm.buffer.clear();
    }

    uint64_t used_sms = 0;
    for (int c = 0; c < nctas; ++c)
        used_sms |= 1ULL << (ctaSm_[c] & 63);

    // Warm L1 lines: residue of previous iterations holding the
    // (re-)initialised values. Lines of SMs hosting no testing
    // thread are never read, so those choices cannot affect the
    // reachable final states.
    for (size_t s = 0; s < sms_.size(); ++s) {
        SmState &sm = sms_[s];
        bool relevant = (used_sms >> (s & 63)) & 1;
        for (int i = 0; i < nlocs; ++i) {
            if (!locShared_[i] &&
                cp.chance(ChoiceKind::L1Warm, chip_->l1WarmProb,
                          relevant))
                sm.l1[i] = L1Line{locInit_[i], false, false};
        }
    }

    threads_.resize(nthreads);
    for (int t = 0; t < nthreads; ++t) {
        ThreadState &ts = threads_[t];
        ts.ctaId = test_->scopeTree.placement(t).cta;
        ts.smId = ctaSm_[ts.ctaId];
        ts.pc = 0;
        ts.executed = 0;
        ts.frontDone = false;
        const auto &init = compiled_[t].regInit;
        ts.regs.assign(init.begin(), init.end());
        ts.pendingRegs = 0;
        ts.window.clear();
        ts.wroteLocs = 0;
        if (opts_.inc.threadSync)
            ts.startDelay =
                static_cast<int>(cp.pick(ChoiceKind::StartSkew, 3));
        else
            ts.startDelay = static_cast<int>(cp.pick(
                ChoiceKind::StartSkew,
                static_cast<uint64_t>(opts_.skewMax)));
    }
}

bool
Machine::allDone() const
{
    for (const auto &t : threads_) {
        if (!t.done())
            return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Main loop
// ---------------------------------------------------------------------

litmus::FinalState
Machine::run(Rng &rng)
{
    RngChoice choices(rng);
    return run(choices);
}

/**
 * Build the actor table for one Schedule choice: threads first, then
 * the drain actors, mirroring the index space the scheduler picks
 * over. Footprints over-approximate what the slot may touch: for a
 * thread, the union over its window (issue-only slots touch nothing
 * shared, so the union covers them too); a fence or atomic in the
 * window may additionally flush the SM's buffer.
 */
void
Machine::fillActorTable(int nthreads, const int *drain_sms,
                        int ndrains)
{
    actors_.assign(static_cast<size_t>(nthreads + ndrains),
                   ActorOption{});
    for (int t = 0; t < nthreads; ++t) {
        const ThreadState &ts = threads_[t];
        ActorOption &a = actors_[static_cast<size_t>(t)];
        a.id = t;
        a.isDrain = false;
        a.enabled = !ts.done();
        a.foot.sm = ts.smId;
        bool flushes = false;
        for (const auto &e : ts.window) {
            switch (e.kind) {
              case WindowEntry::Kind::Load:
                a.foot.reads |= 1ULL << (e.loc & 63);
                break;
              case WindowEntry::Kind::Store:
                a.foot.writes |= 1ULL << (e.loc & 63);
                break;
              case WindowEntry::Kind::Atomic:
                a.foot.reads |= 1ULL << (e.loc & 63);
                a.foot.writes |= 1ULL << (e.loc & 63);
                flushes = true;
                break;
              case WindowEntry::Kind::Fence:
                // A fence's invalidation sweep touches the SM's L1
                // lines for *any* location, and whether a line is
                // stale depends on every remote store's ordering
                // relative to the fence: conservatively conflict
                // with all memory events.
                a.foot.reads = ~0ULL;
                a.foot.writes = ~0ULL;
                flushes = true;
                break;
            }
        }
        if (flushes) {
            for (const auto &b : sms_[ts.smId].buffer)
                a.foot.writes |= 1ULL << (b.loc & 63);
        }
    }
    for (int d = 0; d < ndrains; ++d) {
        int sm = drain_sms[d];
        ActorOption &a = actors_[static_cast<size_t>(nthreads + d)];
        a.id = nthreads + sm;
        a.isDrain = true;
        a.enabled = true;
        a.foot.sm = sm;
        for (const auto &b : sms_[sm].buffer)
            a.foot.writes |= 1ULL << (b.loc & 63);
    }
}

litmus::FinalState
Machine::run(ChoiceProvider &cp)
{
    return runLight(cp) ? collectFinalState() : litmus::FinalState{};
}

litmus::FinalState
Machine::resume(const Snapshot &snap, ChoiceProvider &cp)
{
    return resumeLight(snap, cp) ? collectFinalState()
                                 : litmus::FinalState{};
}

bool
Machine::runLight(ChoiceProvider &cp)
{
    resetRun(cp);
    truncated_ = false;
    return mainLoop(0, cp);
}

bool
Machine::resumeLight(const Snapshot &snap, ChoiceProvider &cp)
{
    restore(snap);
    return mainLoop(snap.step, cp);
}

litmus::FinalState
Machine::finalState() const
{
    return collectFinalState();
}

bool
Machine::mainLoop(int start_step, ChoiceProvider &cp)
{
    int nthreads = static_cast<int>(threads_.size());
    for (int step = start_step;
         step < opts_.maxMicroSteps && !allDone(); ++step) {
        curStep_ = step;
        // Actors: threads plus (under stress) one drain actor per SM
        // with a non-empty buffer.
        int ndrains = 0;
        int drain_sms[64];
        if (stress() && chip_->storeBuffer) {
            for (int s = 0; s < chip_->numSMs &&
                            s < static_cast<int>(sizeof(drain_sms) /
                                                 sizeof(int));
                 ++s) {
                if (!sms_[s].buffer.empty())
                    drain_sms[ndrains++] = s;
            }
        }
        const ActorOption *table = nullptr;
        if (cp.wantsActors()) {
            fillActorTable(nthreads, drain_sms, ndrains);
            table = actors_.data();
        }
        size_t picked = cp.pickActor(
            table, static_cast<size_t>(nthreads + ndrains));
        if (picked == ChoiceProvider::kAbortRun) {
            // The provider abandoned the iteration (a searcher cut a
            // replay whose continuation it already knows).
            return false;
        }
        int choice = static_cast<int>(picked);
        if (choice < nthreads) {
            if (!threads_[choice].done())
                threadAction(choice, cp);
        } else {
            int sm = drain_sms[choice - nthreads];
            if (!cp.chance(ChoiceKind::DrainLazy,
                           chip_->drainLaziness))
                drainOne(sm, cp, false);
        }
    }

    // If the step budget ran out (imported tests with unbounded
    // spins), finish deterministically in order.
    if (!allDone())
        truncated_ = true;
    for (int t = 0; t < nthreads; ++t) {
        ThreadState &ts = threads_[t];
        int guard = opts_.maxMicroSteps;
        while (!ts.done() && guard-- > 0) {
            if (!ts.window.empty()) {
                WindowEntry e = ts.window.front();
                ts.window.erase(ts.window.begin());
                perform(t, e, cp);
            } else {
                ts.startDelay = 0;
                issueOne(t, cp);
            }
        }
    }

    for (int s = 0; s < chip_->numSMs; ++s)
        drainAll(s, cp);

    return true;
}

// ---------------------------------------------------------------------
// Snapshot / restore
// ---------------------------------------------------------------------

void
Machine::snapshot(Snapshot &out) const
{
    // Vector copy-assignment reuses the target's capacity (and its
    // elements' nested capacity), so a pooled snapshot costs only the
    // element copies after first use. SMs hosting no thread are
    // invariant mid-run (see encodeTo) and skipped: restore() leaves
    // the machine's — already correct — copies in place.
    out.threads = threads_;
    uint64_t used = 0;
    for (const auto &ts : threads_)
        used |= 1ULL << (ts.smId & 63);
    out.sms.resize(sms_.size());
    for (size_t s = 0; s < sms_.size(); ++s) {
        if ((used >> (s & 63)) & 1)
            out.sms[s] = sms_[s];
    }
    out.l2 = l2_;
    out.sharedMem = sharedMem_;
    out.step = curStep_;
    out.truncated = truncated_;
}

void
Machine::restore(const Snapshot &snap)
{
    // A snapshot may be restored into a *sibling* machine — one
    // compiled from the same (chip, test, options) — for cross-thread
    // hand-off of subtree roots. A fresh sibling has never run
    // resetRun(), so its per-run SM pool is unsized: bring it up to
    // the snapshot's SM count and give every slot the post-reset
    // empty state. Slots hosting no testing thread are unobservable
    // (encodeTo skips them) and under the explorer never hold warm
    // lines, so sibling and source states agree byte-for-byte.
    if (sms_.size() < snap.sms.size()) {
        int nlocs = static_cast<int>(locShared_.size());
        sms_.resize(snap.sms.size());
        for (auto &sm : sms_) {
            sm.l1.assign(static_cast<size_t>(nlocs), std::nullopt);
            sm.buffer.clear();
        }
    }
    uint64_t used = 0;
    for (const auto &ts : snap.threads)
        used |= 1ULL << (ts.smId & 63);
    threads_ = snap.threads;
    for (size_t s = 0; s < sms_.size(); ++s) {
        if ((used >> (s & 63)) & 1)
            sms_[s] = snap.sms[s];
    }
    l2_ = snap.l2;
    sharedMem_ = snap.sharedMem;
    truncated_ = snap.truncated;
}

// ---------------------------------------------------------------------
// Thread actions
// ---------------------------------------------------------------------

void
Machine::threadAction(int tid, ChoiceProvider &cp)
{
    ThreadState &ts = threads_[tid];
    if (ts.startDelay > 0) {
        --ts.startDelay;
        return;
    }
    bool can_commit = !ts.window.empty();
    bool can_issue = false;
    if (!ts.frontDone) {
        if (ts.pc >= static_cast<int>(compiled_[tid].instrs.size())) {
            ts.frontDone = true;
        } else if (ts.window.size() < 8) {
            can_issue =
                issueReady(ts, compiled_[tid].instrs[ts.pc]);
        }
    }

    if (can_issue &&
        (!can_commit ||
         cp.chance(ChoiceKind::IssueOrCommit, 0.6)))
        issueOne(tid, cp);
    else if (can_commit)
        commitOne(tid, cp);
}

bool
Machine::issueReady(const ThreadState &ts, const CInstr &in) const
{
    auto ready = [&](const COperand &op) {
        return op.isImm || op.reg < 0 ||
               !((ts.pendingRegs >> op.reg) & 1);
    };
    if (in.guardReg >= 0 && ((ts.pendingRegs >> in.guardReg) & 1))
        return false;
    switch (in.op) {
      case ptx::Opcode::Ld:
        return ready(in.addr);
      case ptx::Opcode::St:
        return ready(in.addr) && ready(in.src0);
      case ptx::Opcode::AtomCas:
        return ready(in.addr) && ready(in.src0) && ready(in.src1);
      case ptx::Opcode::AtomExch:
      case ptx::Opcode::AtomAdd:
        return ready(in.addr) && ready(in.src0);
      case ptx::Opcode::AtomInc:
        return ready(in.addr);
      case ptx::Opcode::Membar:
      case ptx::Opcode::Nop:
      case ptx::Opcode::Bra:
        return true;
      default:
        return ready(in.src0) && ready(in.src1);
    }
}

void
Machine::issueOne(int tid, ChoiceProvider &cp)
{
    ThreadState &ts = threads_[tid];
    const CThread &ct = compiled_[tid];
    if (ts.pc >= static_cast<int>(ct.instrs.size())) {
        ts.frontDone = true;
        return;
    }
    const CInstr &in = ct.instrs[ts.pc];
    if (++ts.executed > opts_.maxMicroSteps) {
        // Unbounded loop guard: stop fetching.
        ts.frontDone = true;
        truncated_ = true;
        return;
    }

    auto val = [&](const COperand &op) -> int64_t {
        return op.isImm ? op.imm : ts.regs[op.reg];
    };

    // Guard.
    if (in.guardReg >= 0) {
        bool set = ts.regs[in.guardReg] != 0;
        bool execute = in.guardNeg ? !set : set;
        if (!execute) {
            ++ts.pc;
            return;
        }
    }

    switch (in.op) {
      case ptx::Opcode::Nop:
        ++ts.pc;
        return;
      case ptx::Opcode::Bra:
        ts.pc = in.braTarget;
        return;
      case ptx::Opcode::Mov:
      case ptx::Opcode::Cvt:
        ts.regs[in.dst] = val(in.src0);
        ++ts.pc;
        return;
      case ptx::Opcode::Add:
        ts.regs[in.dst] = val(in.src0) + val(in.src1);
        ++ts.pc;
        return;
      case ptx::Opcode::Sub:
        ts.regs[in.dst] = val(in.src0) - val(in.src1);
        ++ts.pc;
        return;
      case ptx::Opcode::And:
        ts.regs[in.dst] = val(in.src0) & val(in.src1);
        ++ts.pc;
        return;
      case ptx::Opcode::Or:
        ts.regs[in.dst] = val(in.src0) | val(in.src1);
        ++ts.pc;
        return;
      case ptx::Opcode::Xor:
        ts.regs[in.dst] = val(in.src0) ^ val(in.src1);
        ++ts.pc;
        return;
      case ptx::Opcode::SetpEq:
        ts.regs[in.dst] = val(in.src0) == val(in.src1);
        ++ts.pc;
        return;
      case ptx::Opcode::SetpNe:
        ts.regs[in.dst] = val(in.src0) != val(in.src1);
        ++ts.pc;
        return;
      default:
        break;
    }

    // Memory operations enter the window.
    WindowEntry e;
    e.op = in.op;
    e.cacheOp = in.cacheOp;
    e.scope = in.scope;
    if (in.op == ptx::Opcode::Membar) {
        e.kind = WindowEntry::Kind::Fence;
    } else {
        int64_t addr = val(in.addr);
        int loc = locIndexOf(addr);
        if (loc < 0) {
            warn("test '%s': T%d accesses non-testing address %lld;"
                 " treating as nop",
                 test_->name.c_str(), tid,
                 static_cast<long long>(addr));
            ++ts.pc;
            return;
        }
        e.loc = loc;
        e.shared = locShared_[loc];
        e.dst = in.dst;
        switch (in.op) {
          case ptx::Opcode::Ld:
            e.kind = WindowEntry::Kind::Load;
            break;
          case ptx::Opcode::St:
            e.kind = WindowEntry::Kind::Store;
            e.src0 = val(in.src0);
            break;
          case ptx::Opcode::AtomCas:
            e.kind = WindowEntry::Kind::Atomic;
            e.src0 = val(in.src0);
            e.src1 = val(in.src1);
            break;
          case ptx::Opcode::AtomExch:
          case ptx::Opcode::AtomAdd:
            e.kind = WindowEntry::Kind::Atomic;
            e.src0 = val(in.src0);
            break;
          case ptx::Opcode::AtomInc:
            e.kind = WindowEntry::Kind::Atomic;
            break;
          default:
            panic("unexpected opcode in window path");
        }
        if (e.dst >= 0)
            ts.pendingRegs |= 1ULL << e.dst;
    }
    ts.window.push_back(e);
    ++ts.pc;
    (void)cp;
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

double
Machine::corrJitterFactor() const
{
    // The load-load hazard needs latency jitter on the testing
    // warp's loads. Bank conflicts deliver it directly -- but only
    // when thread randomisation moves the testing threads into the
    // conflicting lanes (Tab. 6: column 5 shows nothing, column 6
    // does); memory stress delivers a much weaker, indirect jitter
    // (columns 9-12 are an order of magnitude below column 8).
    if (opts_.inc.bankConflicts && opts_.inc.threadRandomisation)
        return 1.0;
    if (opts_.inc.bankConflicts && stress())
        return 0.5;
    if (stress())
        return 0.04;
    return 0.0;
}

bool
Machine::fenceActiveFor(const ThreadState &ts,
                        const WindowEntry &fence,
                        bool target_shared) const
{
    if (target_shared)
        return true; // shared memory is CTA-local; every scope orders
    if (ptx::scopeAtLeast(fence.scope, ptx::Scope::Gl))
        return true;
    // membar.cta orders the global stream only when an in-CTA
    // observer exists (same-SM streams are snooped in order).
    int tid = static_cast<int>(&ts - threads_.data());
    return hasSameCtaPeer_[tid];
}

double
Machine::pairPass(const ThreadState &ts, const WindowEntry &older,
                  const WindowEntry &younger) const
{
    using Kind = WindowEntry::Kind;

    if (younger.kind == Kind::Fence)
        return 0.0; // fences commit in order

    if (older.kind == Kind::Fence) {
        if (fenceActiveFor(ts, older, younger.shared))
            return 0.0;
        // Transparent inter-CTA membar.cta; partially effective.
        return 1.0 - chip_->ctaFenceInterBlock;
    }

    // Same-location accesses: ordered, except the read-read hazard.
    // The hazard only arises between loads on the same path (same
    // cache operator): Fig. 4's mixed .cg/.ca pairs show it is almost
    // absent across paths (GTX6: 2/100k vs 9599/100k for pure coRR).
    if (older.loc == younger.loc && older.shared == younger.shared) {
        if (older.kind == Kind::Load && younger.kind == Kind::Load &&
            older.cacheOp == younger.cacheOp && chip_->allowCoRR)
            return chip_->corrPass * corrJitterFactor();
        return 0.0;
    }

    // Shared-memory pairs: one jittered pass probability.
    if (older.shared && younger.shared) {
        if (stress() || opts_.inc.bankConflicts)
            return chip_->sharedPass;
        return 0.0;
    }
    if (older.shared != younger.shared) {
        // Mixed spaces: treat like the global path.
    }

    // Global path. On Nvidia the reordering machinery only engages
    // under memory stress (Tab. 6: columns 1-8 show no inter-CTA
    // weak behaviours on Titan); AMD reorders without it. The
    // reader-side load-load reorder additionally engages under
    // bank-conflict jitter when randomisation steers the testing
    // warp into it (Titan's columns 6 and 8 show mp without stress).
    double bank_wr = opts_.inc.bankConflicts ? chip_->wrPassBank : 0.0;
    bool engaged = stress() || !chip_->reorderNeedsStress;

    // Bank conflicts serialise Nvidia's LSU pipeline: the stress-
    // engaged reordering machinery is strongly damped (Tab. 6 shows
    // lb dropping from 2247 to 486 when bank conflicts are added to
    // column 12). AMD is unaffected. On AMD the conflicts instead add
    // reader-side jitter that *boosts* load-load reordering (Tab. 6:
    // HD7970 mp roughly doubles with bank conflicts).
    double damp = 1.0;
    double rr_boost = 1.0;
    if (opts_.inc.bankConflicts) {
        if (chip_->reorderNeedsStress)
            damp = 0.12;
        else
            rr_boost = 2.5;
    }

    auto reads = [](const WindowEntry &e) {
        return e.kind == Kind::Load || e.kind == Kind::Atomic;
    };
    auto writes = [](const WindowEntry &e) {
        return e.kind == Kind::Store || e.kind == Kind::Atomic;
    };

    if (younger.kind == Kind::Load) {
        if (older.kind == Kind::Store)
            return (engaged ? chip_->wrPass * damp : 0.0) + bank_wr;
        // Past a load or an atomic's read part. Bank-conflict jitter
        // with randomisation drives this even without stress (Titan's
        // columns 6 and 8 show mp without memory stress).
        double rr = engaged ? chip_->rrPass * damp : 0.0;
        if (opts_.inc.bankConflicts && opts_.inc.threadRandomisation)
            rr = std::max(rr, chip_->rrPass * rr_boost);
        else if (engaged)
            rr = std::max(rr, chip_->rrPass * damp * rr_boost);
        return rr;
    }
    if (!engaged)
        return 0.0;
    if (younger.kind == Kind::Store) {
        if (reads(older))
            return chip_->rwPass * damp; // lb (atomics don't fence)
        return chip_->wwPass * damp;     // bufferless writer-side mp
    }
    // younger atomic
    if (writes(older) && older.kind != Kind::Load)
        return chip_->atomPass * damp;
    return chip_->rwPass * damp;
}

void
Machine::commitOne(int tid, ChoiceProvider &cp)
{
    ThreadState &ts = threads_[tid];
    SmState &sm = sms_[ts.smId];

    // An active fence at the head must wait for the store buffer; the
    // commit slot drains instead.
    const WindowEntry &head = ts.window.front();
    if (head.kind == WindowEntry::Kind::Fence &&
        fenceActiveFor(ts, head, false) && !sm.buffer.empty()) {
        drainOne(ts.smId, cp, true);
        return;
    }

    // Select the entry to retire: try younger entries with their
    // pass probabilities, else the oldest.
    size_t chosen = 0;
    for (size_t i = 1; i < ts.window.size(); ++i) {
        double p = 1.0;
        for (size_t j = 0; j < i && p > 0.0; ++j)
            p = std::min(p, pairPass(ts, ts.window[j], ts.window[i]));
        if (p > 0.0 && cp.chance(ChoiceKind::CommitBypass, p)) {
            chosen = i;
            break;
        }
    }

    if (chosen == 0 && ts.window[0].delay > 0) {
        // A bypassed entry replays before it can retire.
        --ts.window[0].delay;
        return;
    }
    for (size_t j = 0; j < chosen; ++j)
        ts.window[j].delay += cp.delayBump();

    WindowEntry e = ts.window[chosen];
    ts.window.erase(ts.window.begin() +
                    static_cast<std::ptrdiff_t>(chosen));
    perform(tid, e, cp);
}

// ---------------------------------------------------------------------
// Memory system
// ---------------------------------------------------------------------

void
Machine::writeToL2(int loc, int64_t value, int writer_sm,
                   ChoiceProvider &cp)
{
    l2_[loc] = value;
    for (int s = 0; s < chip_->numSMs; ++s) {
        auto &line = sms_[s].l1[loc];
        if (!line)
            continue;
        if (line->value == value) {
            line->stale = false;
            continue;
        }
        line->stale = true;
        line->staleFromOwnSM = s == writer_sm;
    }
    (void)cp;
}

void
Machine::drainOne(int sm_id, ChoiceProvider &cp, bool in_order_only)
{
    SmState &sm = sms_[sm_id];
    if (sm.buffer.empty())
        return;
    size_t pick = 0;
    if (!in_order_only && sm.buffer.size() > 1 &&
        cp.chance(ChoiceKind::DrainReorder, chip_->drainOutOfOrder)) {
        // Out-of-order drain, preserving per-location order: a
        // younger entry may drain early only if no older entry
        // targets the same location.
        size_t cand = 1 + static_cast<size_t>(cp.pick(
                              ChoiceKind::DrainIndex,
                              sm.buffer.size() - 1));
        bool blocked = false;
        for (size_t j = 0; j < cand; ++j) {
            if (sm.buffer[j].loc == sm.buffer[cand].loc)
                blocked = true;
        }
        if (!blocked)
            pick = cand;
    }
    BufferEntry e = sm.buffer[pick];
    sm.buffer.erase(sm.buffer.begin() +
                    static_cast<std::ptrdiff_t>(pick));
    writeToL2(e.loc, e.value, sm_id, cp);
}

void
Machine::drainAll(int sm_id, ChoiceProvider &cp)
{
    while (!sms_[sm_id].buffer.empty())
        drainOne(sm_id, cp, true);
}

int64_t
Machine::readGlobal(int tid, const WindowEntry &e, ChoiceProvider &cp)
{
    ThreadState &ts = threads_[tid];
    SmState &sm = sms_[ts.smId];

    // Store-to-load forwarding from the SM's own buffer.
    for (auto it = sm.buffer.rbegin(); it != sm.buffer.rend(); ++it) {
        if (it->loc == e.loc)
            return it->value;
    }

    bool own_wrote = (ts.wroteLocs >> e.loc) & 1;
    if (e.cacheOp == ptx::CacheOp::Ca && !own_wrote) {
        auto &line = sm.l1[e.loc];
        if (line) {
            if (!line->stale)
                return line->value;
            double serve = stress() ? chip_->l1StaleServe : 0.02;
            if (cp.chance(ChoiceKind::L1StaleServe, serve))
                return line->value;
            line.reset(); // self-invalidate, fall through to miss
        }
        int64_t v = l2_[e.loc];
        sm.l1[e.loc] = L1Line{v, false, false};
        return v;
    }

    // .cg (and volatile / default) reads the L2; on chips honouring
    // the manual it also evicts a matching L1 line.
    if (cp.chance(ChoiceKind::CgEvict, chip_->cgLoadEvicts))
        sm.l1[e.loc].reset();
    return l2_[e.loc];
}

void
Machine::applyFenceInvalidation(int sm_id, ptx::Scope scope,
                                ChoiceProvider &cp)
{
    SmState &sm = sms_[sm_id];
    for (auto &line : sm.l1) {
        if (!line || !line->stale)
            continue;
        double p = line->staleFromOwnSM
                       ? chip_->invalSame.at(scope)
                       : chip_->invalInter.at(scope);
        if (cp.chance(ChoiceKind::FenceInval, p))
            line.reset();
    }
}

void
Machine::perform(int tid, const WindowEntry &e, ChoiceProvider &cp)
{
    ThreadState &ts = threads_[tid];
    SmState &sm = sms_[ts.smId];

    switch (e.kind) {
      case WindowEntry::Kind::Fence: {
        bool active = fenceActiveFor(ts, e, false);
        // Even an inter-CTA-transparent membar.cta usually flushes
        // the SM's buffer (it orders the SM-local stream); it leaks
        // with probability 1 - ctaFenceInterBlock, which is what
        // keeps inter-CTA lb+membar.ctas observable (Sec. 6).
        if (active || cp.chance(ChoiceKind::FenceLeak,
                                chip_->ctaFenceInterBlock))
            drainAll(ts.smId, cp);
        // Reader-side invalidation of stale L1 lines, with per-chip
        // per-scope success probabilities (Figs. 3 and 4).
        applyFenceInvalidation(ts.smId, e.scope, cp);
        return;
      }

      case WindowEntry::Kind::Load: {
        int64_t v;
        if (e.shared)
            v = sharedMem_[ts.ctaId][e.loc];
        else
            v = readGlobal(tid, e, cp);
        if (e.dst >= 0) {
            ts.regs[e.dst] = v;
            ts.pendingRegs &= ~(1ULL << e.dst);
        }
        return;
      }

      case WindowEntry::Kind::Store: {
        if (e.shared) {
            sharedMem_[ts.ctaId][e.loc] = e.src0;
            return;
        }
        ts.wroteLocs |= 1ULL << e.loc;
        if (cp.chance(ChoiceKind::CgEvict, chip_->cgStoreEvicts))
            sm.l1[e.loc].reset();
        // Bank conflicts serialise the pipeline enough that stores
        // often go straight to the L2 (Tab. 6: Titan sb collapses
        // from 6673 to 749 when bank conflicts are added). A store
        // must never bypass a buffered store to the same location:
        // per-location coherence would break.
        bool same_loc_buffered = false;
        for (const auto &b : sm.buffer) {
            if (b.loc == e.loc)
                same_loc_buffered = true;
        }
        bool bypass = opts_.inc.bankConflicts && !same_loc_buffered &&
                      cp.chance(ChoiceKind::StoreBypass, 0.5);
        if (chip_->storeBuffer && stress() && !bypass) {
            sm.buffer.push_back({e.loc, e.src0});
        } else {
            writeToL2(e.loc, e.src0, ts.smId, cp);
        }
        return;
      }

      case WindowEntry::Kind::Atomic: {
        int64_t old;
        int64_t *cell;
        if (e.shared) {
            cell = &sharedMem_[ts.ctaId][e.loc];
            old = *cell;
        } else {
            // On some chips atomics serialise against the SM's
            // pending stores before acting at the L2.
            if (cp.chance(ChoiceKind::AtomFlush, chip_->atomFlush))
                drainAll(ts.smId, cp);
            // Atomics act at the L2 directly; same-location buffered
            // stores must land first (PTX annuls atomic guarantees
            // when plain stores race, but per-location order holds).
            for (;;) {
                bool found = false;
                for (size_t i = 0; i < sm.buffer.size(); ++i) {
                    if (sm.buffer[i].loc == e.loc) {
                        found = true;
                        break;
                    }
                }
                if (!found)
                    break;
                drainOne(ts.smId, cp, true);
            }
            cell = &l2_[e.loc];
            old = *cell;
        }

        bool wrote = false;
        int64_t new_val = old;
        switch (e.op) {
          case ptx::Opcode::AtomCas:
            if (old == e.src0) {
                new_val = e.src1;
                wrote = true;
            }
            break;
          case ptx::Opcode::AtomExch:
            new_val = e.src0;
            wrote = true;
            break;
          case ptx::Opcode::AtomInc:
            new_val = old + 1;
            wrote = true;
            break;
          case ptx::Opcode::AtomAdd:
            new_val = old + e.src0;
            wrote = true;
            break;
          default:
            panic("unexpected atomic opcode");
        }
        if (wrote) {
            if (e.shared) {
                *cell = new_val;
            } else {
                writeToL2(e.loc, new_val, ts.smId, cp);
                ts.wroteLocs |= 1ULL << e.loc;
            }
        }
        if (e.dst >= 0) {
            ts.regs[e.dst] = old;
            ts.pendingRegs &= ~(1ULL << e.dst);
        }
        return;
      }
    }
}

// ---------------------------------------------------------------------
// State encoding (model-checker state key)
// ---------------------------------------------------------------------

namespace {

/** Byte/word consumers for the one canonical state traversal: the
 * string sink materialises the encoding, the hash sink folds the same
 * byte stream straight into a 128-bit digest. */
struct StringSink
{
    std::string &out;

    void
    put64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void put8(uint8_t v) { out.push_back(static_cast<char>(v)); }
};

struct HashSink
{
    Hash128 &h;

    void put64(uint64_t v) { h.put64(v); }
    void put8(uint8_t v) { h.put8(v); }
};

} // anonymous namespace

uint64_t
Machine::executedSignature() const
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto &ts : threads_) {
        h ^= static_cast<uint64_t>(ts.executed);
        h *= 0x100000001b3ULL;
    }
    return h;
}

template <typename Sink>
void
Machine::encodeTo(Sink &sink) const
{
    // SMs hosting no testing thread are invariant for the rest of the
    // run: their buffers only fill from their own threads (there are
    // none) and their L1 lines are never served to anyone, so they
    // cannot influence any continuation. Encoding the used-SM mask
    // and then only the used SMs keeps the key injective while
    // skipping the constant majority (8-SM chips host 2-4 CTAs).
    uint64_t used = 0;
    for (const auto &ts : threads_)
        used |= 1ULL << (ts.smId & 63);

    for (const auto &ts : threads_) {
        sink.put64(static_cast<uint64_t>(ts.pc));
        sink.put8(static_cast<uint8_t>(ts.frontDone));
        sink.put8(static_cast<uint8_t>(ts.startDelay));
        sink.put64(ts.pendingRegs);
        sink.put64(ts.wroteLocs);
        sink.put64(ts.regs.size());
        for (int64_t r : ts.regs)
            sink.put64(static_cast<uint64_t>(r));
        sink.put64(ts.window.size());
        for (const auto &e : ts.window) {
            sink.put8(static_cast<uint8_t>(e.kind));
            sink.put8(static_cast<uint8_t>(e.op));
            sink.put8(static_cast<uint8_t>(e.cacheOp));
            sink.put8(static_cast<uint8_t>(e.scope));
            sink.put64(static_cast<uint64_t>(e.loc));
            sink.put8(static_cast<uint8_t>(e.shared));
            sink.put64(static_cast<uint64_t>(e.dst));
            sink.put64(static_cast<uint64_t>(e.src0));
            sink.put64(static_cast<uint64_t>(e.src1));
            sink.put8(static_cast<uint8_t>(e.delay));
        }
    }
    sink.put64(used);
    for (size_t s = 0; s < sms_.size(); ++s) {
        if (!((used >> (s & 63)) & 1))
            continue;
        const SmState &sm = sms_[s];
        sink.put64(sm.buffer.size());
        for (const auto &b : sm.buffer) {
            sink.put64(static_cast<uint64_t>(b.loc));
            sink.put64(static_cast<uint64_t>(b.value));
        }
        for (const auto &line : sm.l1) {
            if (!line) {
                sink.put8(0);
                continue;
            }
            sink.put8(static_cast<uint8_t>(
                1 | (line->stale ? 2 : 0) |
                (line->staleFromOwnSM ? 4 : 0)));
            sink.put64(static_cast<uint64_t>(line->value));
        }
    }
    for (int64_t v : l2_)
        sink.put64(static_cast<uint64_t>(v));
    for (const auto &mem : sharedMem_) {
        for (int64_t v : mem)
            sink.put64(static_cast<uint64_t>(v));
    }
}

void
Machine::encodeState(std::string &out) const
{
    StringSink sink{out};
    encodeTo(sink);
}

void
Machine::hashState(Hash128 &h) const
{
    HashSink sink{h};
    encodeTo(sink);
}

// ---------------------------------------------------------------------
// Final state
// ---------------------------------------------------------------------

Digest128
Machine::outcomeDigest() const
{
    // Exactly the fields collectFinalState materialises, in the same
    // order: equal digests imply equal final states.
    Hash128 h;
    for (const auto &ts : threads_) {
        h.put64(ts.regs.size());
        for (int64_t r : ts.regs)
            h.put64(static_cast<uint64_t>(r));
    }
    for (size_t i = 0; i < locShared_.size(); ++i) {
        if (locShared_[i])
            h.put64(static_cast<uint64_t>(
                sharedMem_.empty() ? locInit_[i]
                                   : sharedMem_[0][i]));
        else
            h.put64(static_cast<uint64_t>(l2_[i]));
    }
    return h.digest();
}

litmus::FinalState
Machine::collectFinalState() const
{
    litmus::FinalState st;
    for (size_t t = 0; t < threads_.size(); ++t) {
        const auto &names = regNames_[t];
        for (size_t r = 0; r < names.size(); ++r)
            st.regs[{static_cast<int>(t), names[r]}] =
                threads_[t].regs[r];
    }
    for (size_t i = 0; i < locShared_.size(); ++i) {
        const std::string &name = test_->locations[i].name;
        if (locShared_[i])
            st.mem[name] = sharedMem_.empty()
                               ? locInit_[i]
                               : sharedMem_[0][static_cast<int>(i)];
        else
            st.mem[name] = l2_[i];
    }
    return st;
}

} // namespace gpulitmus::sim
