/**
 * @file
 * The operational GPU machine: executes one litmus-test iteration on
 * a simulated chip, producing a final state.
 *
 * Mechanisms (all shared across chips; chips differ in parameters):
 *
 * - per-thread in-order issue with a register scoreboard (dependent
 *   instructions stall, so address/data/control dependencies order
 *   accesses exactly as RMO requires);
 * - a per-thread commit window from which memory operations retire
 *   out of order, subject to same-address ordering (minus the
 *   read-read load-load hazard on chips that allow coRR), fences, and
 *   per-pair pass probabilities;
 * - a per-SM store buffer (Nvidia): committed stores become visible
 *   to other SMs only when drained to the L2; atomics bypass the
 *   buffer and act on the L2 directly — which is precisely why the
 *   fenceless spin locks of Sec. 3.2.2 break;
 * - per-SM non-coherent L1s: .ca loads may hit lines staled by other
 *   SMs' (or the same SM's) stores; fences invalidate stale lines
 *   only with per-chip, per-scope probabilities (Figs. 3 and 4);
 * - scoped fences: membar.gl/sys order the window and flush the
 *   buffer; membar.cta does so only when a same-CTA testing peer
 *   exists (an SM orders its local stream; there is no same-SM
 *   observer to violate otherwise) — this is what lets the simulator
 *   reproduce inter-CTA lb+membar.ctas (Sec. 6) while staying sound
 *   w.r.t. the PTX model;
 * - the four incantations of Sec. 4.3 as scheduling knobs: memory
 *   stress activates the reordering/buffering machinery, bank
 *   conflicts add intra-SM jitter (and stall the testing warp a
 *   little), thread synchronisation aligns thread start times, and
 *   thread randomisation re-randomises placement and start skew every
 *   iteration.
 *
 * Hot-path contracts (what the model checker and the sampling harness
 * lean on):
 *
 * - Compile once, run many: a Machine compiles its test to indexed
 *   registers and instruction arrays at construction; run()/resume()
 *   reset and reuse pooled per-run storage in place, so the steady
 *   state of the step loop performs no heap allocation. setOptions()
 *   re-parameterises the *runtime* knobs (incantations, step limits)
 *   without recompiling — the compiled program depends only on the
 *   test — which is what lets one compiled machine serve a whole
 *   (chip, test) batch of jobs.
 *
 * - Snapshot/restore lifetime: snapshot() captures the complete
 *   mutable run state at the top of a scheduling step; resume()
 *   restores it and continues the main loop from that step. A
 *   Snapshot is a plain copyable value, portable to any Machine
 *   constructed from the same (chip, test, options) triple — the
 *   compiled program and chip profile must match, but the consuming
 *   machine need not be the producer. This is what lets the parallel
 *   explorer hand subtree-root snapshots to worker threads that each
 *   own a sibling machine. Restoring into a machine compiled from a
 *   different test/chip — or after setOptions() changed the
 *   incantations — is undefined. snapshot(Snapshot&) reuses the
 *   target's storage, so a pooled snapshot is allocation-free after
 *   first use.
 *
 * - State-key stability: encodeState() and hashState() emit the same
 *   canonical byte stream (hashState folds it into a 128-bit digest
 *   without materialising it). Two states with equal encodings behave
 *   identically under identical future choices. The encoding — and
 *   therefore the digest — is stable within a process and across
 *   processes of one build, but is NOT a serialisation format: field
 *   layout may change between versions, so never persist keys or
 *   digests across builds (see common/hash.h).
 */

#ifndef GPULITMUS_SIM_MACHINE_H
#define GPULITMUS_SIM_MACHINE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "litmus/test.h"
#include "sim/chip.h"
#include "sim/choice.h"

namespace gpulitmus::sim {

/** The four incantations of Sec. 4.3. */
struct Incantations
{
    bool memoryStress = false;
    bool bankConflicts = false;
    bool threadSync = false;
    bool threadRandomisation = false;

    static Incantations none() { return {}; }
    static Incantations all() { return {true, true, true, true}; }

    /**
     * Tab. 6 column (1..16). Bit assignment reconstructed from the
     * paper's column comparisons: bit0 = thread randomisation, bit1 =
     * thread synchronisation, bit2 = bank conflicts, bit3 = memory
     * stress, column = bits + 1.
     */
    static Incantations fromColumn(int column);
    int column() const;

    std::string str() const;
};

struct MachineOptions
{
    Incantations inc = Incantations::all();
    /** Abort threshold for one iteration (guards imported tests with
     * unbounded loops). */
    int maxMicroSteps = 4000;
    /** Start-time skew (in micro-steps) without thread sync. */
    int skewMax = 48;
};

/**
 * Executes iterations of one litmus test on one chip. Construct once;
 * call run() per iteration (state is reset each time).
 */
class Machine
{
  public:
    Machine(const ChipProfile &chip, const litmus::Test &test,
            MachineOptions opts = {});

    /**
     * Re-parameterise the runtime knobs (incantations, step limits)
     * without recompiling. The compiled program depends only on the
     * test, so a cached machine can serve jobs differing in options.
     * Invalidates outstanding Snapshots semantically (a snapshot
     * captures state produced under the old options).
     */
    void setOptions(const MachineOptions &opts) { opts_ = opts; }
    const MachineOptions &options() const { return opts_; }

    /** One iteration; draws all randomness from rng. Thin wrapper
     * over run(ChoiceProvider&) with the RngChoice sampler — the
     * draw sequence is bit-identical to the pre-refactor machine. */
    litmus::FinalState run(Rng &rng);

    /** One iteration; every nondeterministic decision is answered by
     * the provider (see sim/choice.h). */
    litmus::FinalState run(ChoiceProvider &choices);

    /**
     * run() without materialising the final state: returns false when
     * the provider aborted the iteration (ChoiceProvider::kAbortRun),
     * true otherwise. After a true return, query outcomeDigest() —
     * and finalState() only for digests not seen before. Searchers
     * use this to skip the final-state maps for the (overwhelmingly
     * common) leaves whose outcome repeats an earlier one.
     */
    bool runLight(ChoiceProvider &choices);

    /**
     * 128-bit digest of the observable final state of the last
     * completed (non-aborted) run: every thread register plus the
     * final memory value of every testing location — exactly the
     * fields finalState() materialises, so equal digests imply equal
     * final states (up to the ~2^-128 collision bound of
     * common/hash.h).
     */
    Digest128 outcomeDigest() const;

    /** Materialise the final state of the last completed run. */
    litmus::FinalState finalState() const;

    /**
     * Append a canonical encoding of the mutable run state (thread
     * contexts, commit windows, store buffers, L1s, L2, shared
     * memory) to `out`. Two runs whose encodings match behave
     * identically under identical future choices — the state key the
     * model checker dedups on. The per-thread fetch counters are
     * excluded (they only drive the runaway-loop guard); see
     * executedSignature() for detecting when that exclusion could
     * matter.
     */
    void encodeState(std::string &out) const;

    /**
     * Fold the canonical state encoding into an incremental 128-bit
     * hash with no intermediate buffer. hashState() and encodeState()
     * are generated from one shared traversal, so they digest exactly
     * the same fields in the same order and cannot drift: states with
     * equal encodings have equal digests, and unequal encodings
     * collide only with ~2^-128 probability (common/hash.h).
     */
    void hashState(Hash128 &h) const;

    /**
     * Digest of the per-thread fetch counters. For loop-free
     * programs this is a function of the encoded state; for loops,
     * two encodeState-equal states with different signatures differ
     * only in how close they are to the runaway-loop guard — a
     * searcher deduping them must demote its result from "exact" to
     * "bounded".
     */
    uint64_t executedSignature() const;

    /** Did the last run() hit a step guard (the outer micro-step
     * bound or a thread's fetch guard)? Guard-truncated executions
     * end deterministically, so a search that never sees truncation
     * is exploring the unguarded machine exactly. */
    bool lastRunTruncated() const { return truncated_; }

    const ChipProfile &chip() const { return *chip_; }

  private:
    // ---- compiled program ------------------------------------------
    struct COperand
    {
        bool isImm = true;
        int reg = -1;
        int64_t imm = 0;
    };

    struct CInstr
    {
        ptx::Opcode op = ptx::Opcode::Nop;
        ptx::CacheOp cacheOp = ptx::CacheOp::None;
        ptx::Scope scope = ptx::Scope::Gl;
        bool isVolatile = false;
        int guardReg = -1;
        bool guardNeg = false;
        int dst = -1;
        COperand addr;
        COperand src0, src1;
        int braTarget = -1;
    };

    struct CThread
    {
        std::vector<CInstr> instrs;
        std::vector<int64_t> regInit;
    };

    // ---- runtime state ----------------------------------------------
    struct WindowEntry
    {
        enum class Kind { Load, Store, Atomic, Fence };
        Kind kind = Kind::Load;
        ptx::Opcode op = ptx::Opcode::Nop;
        ptx::CacheOp cacheOp = ptx::CacheOp::None;
        ptx::Scope scope = ptx::Scope::Gl;
        int loc = -1; ///< location index; -1 for fences
        bool shared = false;
        int dst = -1;
        int64_t src0 = 0, src1 = 0;
        /** Replay delay: bumped when a younger access passes this
         * entry (the bypassed access replays in the pipeline), which
         * widens the race window for other threads to intervene. */
        int delay = 0;
    };

    struct ThreadState
    {
        int smId = 0;
        int ctaId = 0;
        int pc = 0;
        int startDelay = 0;
        int executed = 0;
        bool frontDone = false;
        std::vector<int64_t> regs;
        uint64_t pendingRegs = 0;
        std::vector<WindowEntry> window;
        uint64_t wroteLocs = 0; ///< bitmask over location indices

        bool done() const { return frontDone && window.empty(); }
    };

    struct L1Line
    {
        int64_t value = 0;
        bool stale = false;
        bool staleFromOwnSM = false;
    };

    struct BufferEntry
    {
        int loc = -1;
        int64_t value = 0;
    };

    struct SmState
    {
        std::vector<std::optional<L1Line>> l1; ///< per location
        std::vector<BufferEntry> buffer;
    };

  public:
    /**
     * The complete mutable run state at the top of a scheduling step.
     * A plain copyable value — but only meaningful for the Machine
     * that produced it (see the file header's lifetime rules). Opaque
     * outside the machine: holders store and pass it back, nothing
     * more.
     */
    struct Snapshot
    {
        std::vector<ThreadState> threads;
        std::vector<SmState> sms;
        std::vector<int64_t> l2;
        std::vector<std::vector<int64_t>> sharedMem;
        int step = 0;         ///< main-loop position to resume at
        bool truncated = false;
    };

    /**
     * Capture the current run state into `out`, reusing its storage
     * (a pooled snapshot is allocation-free after first use). Only
     * meaningful at a Schedule choice point — the top of a main-loop
     * step, before the pick mutates anything — which is exactly where
     * providers see the actor table.
     */
    void snapshot(Snapshot &out) const;

    /**
     * Restore `snap` and continue that interrupted run from its step:
     * the first decision the provider is asked for is the Schedule
     * pick of the snapshotted step. Behaviourally identical to (and
     * much cheaper than) re-running from the start under the same
     * choice prefix.
     */
    litmus::FinalState resume(const Snapshot &snap,
                              ChoiceProvider &choices);

    /** resume() in the light shape of runLight(). */
    bool resumeLight(const Snapshot &snap, ChoiceProvider &choices);

  private:
    // ---- helpers ----------------------------------------------------
    void compile();
    int regIndex(int tid, const std::string &name);
    COperand compileOperand(const ptx::Operand &op, int tid);
    int locIndexOf(int64_t addr) const;

    void resetRun(ChoiceProvider &cp);
    void restore(const Snapshot &snap);
    /** The step loop plus the deterministic finish; run() enters it
     * at step 0, resume() at the snapshot's step. False when the
     * provider aborted the iteration. */
    bool mainLoop(int start_step, ChoiceProvider &cp);
    /** One traversal generates both state encodings (see
     * encodeState/hashState); Sink is a byte/word consumer. */
    template <typename Sink> void encodeTo(Sink &sink) const;
    bool allDone() const;
    void threadAction(int tid, ChoiceProvider &cp);
    bool issueReady(const ThreadState &ts, const CInstr &in) const;
    void issueOne(int tid, ChoiceProvider &cp);
    void commitOne(int tid, ChoiceProvider &cp);
    double pairPass(const ThreadState &ts, const WindowEntry &older,
                    const WindowEntry &younger) const;
    bool fenceActiveFor(const ThreadState &ts, const WindowEntry &fence,
                        bool target_shared) const;
    void perform(int tid, const WindowEntry &e, ChoiceProvider &cp);
    void drainOne(int sm, ChoiceProvider &cp, bool in_order_only);
    void drainAll(int sm, ChoiceProvider &cp);
    void writeToL2(int loc, int64_t value, int writer_sm,
                   ChoiceProvider &cp);
    int64_t readGlobal(int tid, const WindowEntry &e,
                       ChoiceProvider &cp);
    void applyFenceInvalidation(int sm, ptx::Scope scope,
                                ChoiceProvider &cp);
    void fillActorTable(int nthreads, const int *drain_sms,
                        int ndrains);
    litmus::FinalState collectFinalState() const;

    double corrJitterFactor() const;
    bool stress() const { return opts_.inc.memoryStress; }

    const ChipProfile *chip_;
    const litmus::Test *test_;
    MachineOptions opts_;

    // Compiled once.
    std::vector<CThread> compiled_;
    std::vector<std::vector<std::string>> regNames_; ///< per thread
    std::vector<bool> locShared_;
    std::vector<int64_t> locInit_;
    std::vector<bool> hasSameCtaPeer_;

    // Reset per run (storage pooled across runs: reset happens in
    // place, so the steady state allocates nothing).
    std::vector<ThreadState> threads_;
    std::vector<SmState> sms_;
    std::vector<int64_t> l2_;
    std::vector<std::vector<int64_t>> sharedMem_; ///< per CTA
    /** Scratch actor table, built per Schedule choice only when the
     * provider wantsActors() (exhaustive search; never the sampler). */
    std::vector<ActorOption> actors_;
    /** Scratch for resetRun's CTA->SM placement draw. */
    std::vector<int> ctaSm_, smIds_;
    /** Set when a run hits the outer step bound or a fetch guard. */
    bool truncated_ = false;
    /** Main-loop position, maintained so snapshot() can record where
     * to resume. */
    int curStep_ = 0;
};

} // namespace gpulitmus::sim

#endif // GPULITMUS_SIM_MACHINE_H
