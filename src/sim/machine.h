/**
 * @file
 * The operational GPU machine: executes one litmus-test iteration on
 * a simulated chip, producing a final state.
 *
 * Mechanisms (all shared across chips; chips differ in parameters):
 *
 * - per-thread in-order issue with a register scoreboard (dependent
 *   instructions stall, so address/data/control dependencies order
 *   accesses exactly as RMO requires);
 * - a per-thread commit window from which memory operations retire
 *   out of order, subject to same-address ordering (minus the
 *   read-read load-load hazard on chips that allow coRR), fences, and
 *   per-pair pass probabilities;
 * - a per-SM store buffer (Nvidia): committed stores become visible
 *   to other SMs only when drained to the L2; atomics bypass the
 *   buffer and act on the L2 directly — which is precisely why the
 *   fenceless spin locks of Sec. 3.2.2 break;
 * - per-SM non-coherent L1s: .ca loads may hit lines staled by other
 *   SMs' (or the same SM's) stores; fences invalidate stale lines
 *   only with per-chip, per-scope probabilities (Figs. 3 and 4);
 * - scoped fences: membar.gl/sys order the window and flush the
 *   buffer; membar.cta does so only when a same-CTA testing peer
 *   exists (an SM orders its local stream; there is no same-SM
 *   observer to violate otherwise) — this is what lets the simulator
 *   reproduce inter-CTA lb+membar.ctas (Sec. 6) while staying sound
 *   w.r.t. the PTX model;
 * - the four incantations of Sec. 4.3 as scheduling knobs: memory
 *   stress activates the reordering/buffering machinery, bank
 *   conflicts add intra-SM jitter (and stall the testing warp a
 *   little), thread synchronisation aligns thread start times, and
 *   thread randomisation re-randomises placement and start skew every
 *   iteration.
 */

#ifndef GPULITMUS_SIM_MACHINE_H
#define GPULITMUS_SIM_MACHINE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "litmus/test.h"
#include "sim/chip.h"
#include "sim/choice.h"

namespace gpulitmus::sim {

/** The four incantations of Sec. 4.3. */
struct Incantations
{
    bool memoryStress = false;
    bool bankConflicts = false;
    bool threadSync = false;
    bool threadRandomisation = false;

    static Incantations none() { return {}; }
    static Incantations all() { return {true, true, true, true}; }

    /**
     * Tab. 6 column (1..16). Bit assignment reconstructed from the
     * paper's column comparisons: bit0 = thread randomisation, bit1 =
     * thread synchronisation, bit2 = bank conflicts, bit3 = memory
     * stress, column = bits + 1.
     */
    static Incantations fromColumn(int column);
    int column() const;

    std::string str() const;
};

struct MachineOptions
{
    Incantations inc = Incantations::all();
    /** Abort threshold for one iteration (guards imported tests with
     * unbounded loops). */
    int maxMicroSteps = 4000;
    /** Start-time skew (in micro-steps) without thread sync. */
    int skewMax = 48;
};

/**
 * Executes iterations of one litmus test on one chip. Construct once;
 * call run() per iteration (state is reset each time).
 */
class Machine
{
  public:
    Machine(const ChipProfile &chip, const litmus::Test &test,
            MachineOptions opts = {});

    /** One iteration; draws all randomness from rng. Thin wrapper
     * over run(ChoiceProvider&) with the RngChoice sampler — the
     * draw sequence is bit-identical to the pre-refactor machine. */
    litmus::FinalState run(Rng &rng);

    /** One iteration; every nondeterministic decision is answered by
     * the provider (see sim/choice.h). */
    litmus::FinalState run(ChoiceProvider &choices);

    /**
     * Append a canonical encoding of the mutable run state (thread
     * contexts, commit windows, store buffers, L1s, L2, shared
     * memory) to `out`. Two runs whose encodings match behave
     * identically under identical future choices — the state key the
     * model checker dedups on. The per-thread fetch counters are
     * excluded (they only drive the runaway-loop guard); see
     * executedSignature() for detecting when that exclusion could
     * matter.
     */
    void encodeState(std::string &out) const;

    /**
     * Digest of the per-thread fetch counters. For loop-free
     * programs this is a function of the encoded state; for loops,
     * two encodeState-equal states with different signatures differ
     * only in how close they are to the runaway-loop guard — a
     * searcher deduping them must demote its result from "exact" to
     * "bounded".
     */
    uint64_t executedSignature() const;

    /** Did the last run() hit a step guard (the outer micro-step
     * bound or a thread's fetch guard)? Guard-truncated executions
     * end deterministically, so a search that never sees truncation
     * is exploring the unguarded machine exactly. */
    bool lastRunTruncated() const { return truncated_; }

    const ChipProfile &chip() const { return *chip_; }

  private:
    // ---- compiled program ------------------------------------------
    struct COperand
    {
        bool isImm = true;
        int reg = -1;
        int64_t imm = 0;
    };

    struct CInstr
    {
        ptx::Opcode op = ptx::Opcode::Nop;
        ptx::CacheOp cacheOp = ptx::CacheOp::None;
        ptx::Scope scope = ptx::Scope::Gl;
        bool isVolatile = false;
        int guardReg = -1;
        bool guardNeg = false;
        int dst = -1;
        COperand addr;
        COperand src0, src1;
        int braTarget = -1;
    };

    struct CThread
    {
        std::vector<CInstr> instrs;
        std::vector<int64_t> regInit;
    };

    // ---- runtime state ----------------------------------------------
    struct WindowEntry
    {
        enum class Kind { Load, Store, Atomic, Fence };
        Kind kind = Kind::Load;
        ptx::Opcode op = ptx::Opcode::Nop;
        ptx::CacheOp cacheOp = ptx::CacheOp::None;
        ptx::Scope scope = ptx::Scope::Gl;
        int loc = -1; ///< location index; -1 for fences
        bool shared = false;
        int dst = -1;
        int64_t src0 = 0, src1 = 0;
        /** Replay delay: bumped when a younger access passes this
         * entry (the bypassed access replays in the pipeline), which
         * widens the race window for other threads to intervene. */
        int delay = 0;
    };

    struct ThreadState
    {
        int smId = 0;
        int ctaId = 0;
        int pc = 0;
        int startDelay = 0;
        int executed = 0;
        bool frontDone = false;
        std::vector<int64_t> regs;
        uint64_t pendingRegs = 0;
        std::vector<WindowEntry> window;
        uint64_t wroteLocs = 0; ///< bitmask over location indices

        bool done() const { return frontDone && window.empty(); }
    };

    struct L1Line
    {
        int64_t value = 0;
        bool stale = false;
        bool staleFromOwnSM = false;
    };

    struct BufferEntry
    {
        int loc = -1;
        int64_t value = 0;
    };

    struct SmState
    {
        std::vector<std::optional<L1Line>> l1; ///< per location
        std::vector<BufferEntry> buffer;
    };

    // ---- helpers ----------------------------------------------------
    void compile();
    int regIndex(int tid, const std::string &name);
    COperand compileOperand(const ptx::Operand &op, int tid);
    int locIndexOf(int64_t addr) const;

    void resetRun(ChoiceProvider &cp);
    bool allDone() const;
    void threadAction(int tid, ChoiceProvider &cp);
    bool issueReady(const ThreadState &ts, const CInstr &in) const;
    void issueOne(int tid, ChoiceProvider &cp);
    void commitOne(int tid, ChoiceProvider &cp);
    double pairPass(const ThreadState &ts, const WindowEntry &older,
                    const WindowEntry &younger) const;
    bool fenceActiveFor(const ThreadState &ts, const WindowEntry &fence,
                        bool target_shared) const;
    void perform(int tid, const WindowEntry &e, ChoiceProvider &cp);
    void drainOne(int sm, ChoiceProvider &cp, bool in_order_only);
    void drainAll(int sm, ChoiceProvider &cp);
    void writeToL2(int loc, int64_t value, int writer_sm,
                   ChoiceProvider &cp);
    int64_t readGlobal(int tid, const WindowEntry &e,
                       ChoiceProvider &cp);
    void applyFenceInvalidation(int sm, ptx::Scope scope,
                                ChoiceProvider &cp);
    void fillActorTable(int nthreads, const int *drain_sms,
                        int ndrains);
    litmus::FinalState collectFinalState();

    double corrJitterFactor() const;
    bool stress() const { return opts_.inc.memoryStress; }

    const ChipProfile *chip_;
    const litmus::Test *test_;
    MachineOptions opts_;

    // Compiled once.
    std::vector<CThread> compiled_;
    std::vector<std::vector<std::string>> regNames_; ///< per thread
    std::vector<bool> locShared_;
    std::vector<int64_t> locInit_;
    std::vector<bool> hasSameCtaPeer_;

    // Reset per run.
    std::vector<ThreadState> threads_;
    std::vector<SmState> sms_;
    std::vector<int64_t> l2_;
    std::vector<std::vector<int64_t>> sharedMem_; ///< per CTA
    /** Scratch actor table, built per Schedule choice only when the
     * provider wantsActors() (exhaustive search; never the sampler). */
    std::vector<ActorOption> actors_;
    /** Set when a run hits the outer step bound or a fetch guard. */
    bool truncated_ = false;
};

} // namespace gpulitmus::sim

#endif // GPULITMUS_SIM_MACHINE_H
