/**
 * @file
 * The built-in scenario catalog: the paper's audited applications
 * (Sec. 3.2) plus the classic GPU synchronisation idioms the
 * workgroup-progress literature catalogues, each as a Builder-made
 * test whose bug is the forbidden final condition.
 *
 * These constructors back the registry entries in registry.cc; they
 * are exposed directly for the CUDA layer (cuda/apps.h), the benches
 * and the tests.
 */

#ifndef GPULITMUS_SCENARIO_CATALOG_H
#define GPULITMUS_SCENARIO_CATALOG_H

#include "litmus/test.h"

namespace gpulitmus::scenario {

/**
 * The CUDA by Example spin lock distilled (Fig. 2 -> Fig. 9): T0
 * unlocks after writing data, T1 locks and reads it. Forbidden: the
 * lock was acquired yet the read returned stale data — the bug of
 * Nvidia's erratum. Straight-line (the lock acquisition is the
 * single CAS of the distillation).
 */
litmus::Test casSpinlock(bool fenced);

/**
 * The dot-product client of CUDA by Example App 1.2: `threads` CTAs
 * (2..6) each add their local sum (tid + 1) to a global accumulator
 * under the *full* spin lock (CAS loop, critical section, release).
 * Forbidden: the final sum is wrong — an update was lost to a stale
 * read inside the critical section.
 */
litmus::Test spinlockDotProduct(int threads, bool fenced);

/**
 * The Cederman-Tsigas work-stealing deque, push/steal pair (Fig. 6
 * -> Fig. 7): forbidden, the thief observed the pushed tail but read
 * an empty task slot — the deque lost a task.
 */
litmus::Test workStealingDeque(bool fenced);

/**
 * A ticket lock protecting an accumulator: each thread draws a
 * ticket (atom.inc), spins until served, adds tid + 1 to the sum and
 * publishes the next ticket. Forbidden: the final sum is wrong.
 */
litmus::Test ticketLock(bool fenced);

/**
 * A one-slot producer/consumer ring: the producer fills the slot and
 * publishes the head; the consumer spins on the head, then reads the
 * slot. Forbidden: the consumer read an empty slot after seeing the
 * published head (message passing through a spin loop).
 */
litmus::Test producerConsumerRing(bool fenced);

/**
 * A two-thread flag barrier: each thread writes its data, raises its
 * flag, spins on the other's flag, then reads the other's data.
 * Forbidden: either thread read stale data after the barrier.
 */
litmus::Test flagBarrier(bool fenced);

/**
 * A seqlock: the writer bumps the sequence odd, writes both data
 * words, bumps it even; the reader samples the sequence around its
 * reads. Forbidden: the reader saw a stable even sequence yet torn
 * (stale) data.
 */
litmus::Test seqlock(bool fenced);

} // namespace gpulitmus::scenario

#endif // GPULITMUS_SCENARIO_CATALOG_H
