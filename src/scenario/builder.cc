#include "scenario/builder.h"

#include "common/log.h"

namespace gpulitmus::scenario {

using ptx::Operand;

// ---- Cond -----------------------------------------------------------

Cond
operator&&(const Cond &a, const Cond &b)
{
    return Cond(litmus::Condition::conj(a.cond_, b.cond_));
}

Cond
operator||(const Cond &a, const Cond &b)
{
    return Cond(litmus::Condition::disj(a.cond_, b.cond_));
}

Cond
operator!(const Cond &a)
{
    return Cond(litmus::Condition::negate(a.cond_));
}

Cond
operator==(const Reg &r, int64_t v)
{
    return Cond(litmus::Condition::regEq(r.tid(), r.name(), v));
}

Cond
operator!=(const Reg &r, int64_t v)
{
    return !(r == v);
}

Cond
operator==(const Loc &l, int64_t v)
{
    return Cond(litmus::Condition::locEq(l.name(), v));
}

Cond
operator!=(const Loc &l, int64_t v)
{
    return !(l == v);
}

// ---- Thread ---------------------------------------------------------

Reg
Thread::reg(const std::string &name)
{
    regNames_.insert(name);
    return Reg(tid_, name);
}

Thread &
Thread::append(ptx::Instruction instr)
{
    prog_.append(std::move(instr));
    return *this;
}

ptx::Instruction &
Thread::last(const char *modifier)
{
    if (prog_.instrs.empty())
        fatal("scenario '%s': T%d applies .%s() before any op",
              owner_->name_.c_str(), tid_, modifier);
    return prog_.instrs.back();
}

Reg
Thread::scratch()
{
    for (;;) {
        std::string name = "r" + std::to_string(nextScratch_++);
        if (!regNames_.count(name))
            return reg(name);
    }
}

Thread &
Thread::ld(const Reg &dst, const Loc &src)
{
    if (dst.tid() != tid_)
        fatal("scenario '%s': T%d loads into T%d's register %s",
              owner_->name_.c_str(), tid_, dst.tid(),
              dst.name().c_str());
    return append(
        ptx::build::ld(dst.name(), Operand::makeSym(src.name())));
}

Thread &
Thread::st(const Loc &dst, const Val &value)
{
    return append(ptx::build::st(Operand::makeSym(dst.name()),
                                 value.operand()));
}

Thread &
Thread::cas(const Reg &dst, const Loc &l, const Val &cmp,
            const Val &swap)
{
    return append(ptx::build::atomCas(dst.name(),
                                      Operand::makeSym(l.name()),
                                      cmp.operand(), swap.operand()));
}

Thread &
Thread::exch(const Reg &dst, const Loc &l, const Val &value)
{
    return append(ptx::build::atomExch(
        dst.name(), Operand::makeSym(l.name()), value.operand()));
}

Thread &
Thread::inc(const Reg &dst, const Loc &l)
{
    return append(
        ptx::build::atomInc(dst.name(), Operand::makeSym(l.name())));
}

Thread &
Thread::membar(ptx::Scope scope)
{
    return append(ptx::build::membar(scope));
}

Thread &
Thread::mov(const Reg &dst, const Val &v)
{
    return append(ptx::build::mov(dst.name(), v.operand()));
}

Thread &
Thread::add(const Reg &dst, const Val &a, const Val &b)
{
    return append(
        ptx::build::add(dst.name(), a.operand(), b.operand()));
}

Thread &
Thread::and_(const Reg &dst, const Val &a, const Val &b)
{
    return append(
        ptx::build::and_(dst.name(), a.operand(), b.operand()));
}

Thread &
Thread::xor_(const Reg &dst, const Val &a, const Val &b)
{
    return append(
        ptx::build::xor_(dst.name(), a.operand(), b.operand()));
}

Thread &
Thread::setpEq(const Reg &pred, const Val &a, const Val &b)
{
    return append(
        ptx::build::setpEq(pred.name(), a.operand(), b.operand()));
}

Thread &
Thread::setpNe(const Reg &pred, const Val &a, const Val &b)
{
    ptx::Instruction i =
        ptx::build::setpEq(pred.name(), a.operand(), b.operand());
    i.op = ptx::Opcode::SetpNe;
    return append(std::move(i));
}

Thread &
Thread::label(const std::string &name)
{
    prog_.label(name);
    return *this;
}

Thread &
Thread::branch(const std::string &target)
{
    return append(ptx::build::bra(target));
}

Thread &
Thread::branchIf(const Reg &pred, const std::string &target)
{
    return append(ptx::build::guarded(pred.name(), false,
                                      ptx::build::bra(target)));
}

Thread &
Thread::branchIfNot(const Reg &pred, const std::string &target)
{
    return append(ptx::build::guarded(pred.name(), true,
                                      ptx::build::bra(target)));
}

Thread &
Thread::volatile_()
{
    ptx::Instruction &i = last("volatile_");
    if (i.op != ptx::Opcode::Ld && i.op != ptx::Opcode::St)
        fatal("scenario '%s': .volatile_() on a non-ld/st op",
              owner_->name_.c_str());
    i.isVolatile = true;
    i.cacheOp = ptx::CacheOp::None; // Tab. 5: volatile has no .cg/.ca
    return *this;
}

Thread &
Thread::ca()
{
    last("ca").cacheOp = ptx::CacheOp::Ca;
    return *this;
}

Thread &
Thread::cg()
{
    last("cg").cacheOp = ptx::CacheOp::Cg;
    return *this;
}

Thread &
Thread::cv()
{
    last("cv").cacheOp = ptx::CacheOp::Cv;
    return *this;
}

Thread &
Thread::scope(ptx::Scope s)
{
    last("scope").scope = s;
    return *this;
}

Thread &
Thread::onlyIf(const Reg &pred)
{
    ptx::Instruction &i = last("onlyIf");
    i.hasGuard = true;
    i.guardNegated = false;
    i.guardReg = pred.name();
    return *this;
}

Thread &
Thread::unless(const Reg &pred)
{
    ptx::Instruction &i = last("unless");
    i.hasGuard = true;
    i.guardNegated = true;
    i.guardReg = pred.name();
    return *this;
}

Thread &
Thread::dependsOn(const Reg &src)
{
    ptx::Instruction target = last("dependsOn");
    if (!target.isMemAccess())
        fatal("scenario '%s': .dependsOn() on a non-memory op",
              owner_->name_.c_str());
    prog_.instrs.pop_back();

    // Fig. 13 shapes, matching gen/generator.cc: mask the source to
    // zero, then route the value (data dep) or the address (addr
    // dep) through the masked register.
    Reg rz = scratch();
    append(ptx::build::and_(rz.name(),
                            Operand::makeReg(src.name()),
                            Operand::makeImm(0x80000000)));
    if (target.op == ptx::Opcode::St) {
        Reg rv = scratch();
        ptx::Instruction addv = ptx::build::add(
            rv.name(), Operand::makeReg(rz.name()), target.srcs[0]);
        addv.type = ptx::DataType::S32;
        append(std::move(addv));
        target.srcs[0] = Operand::makeReg(rv.name());
    } else {
        if (!target.addr.isSym())
            fatal("scenario '%s': address dependency needs a"
                  " location-addressed access",
                  owner_->name_.c_str());
        Reg rw = scratch();
        Reg ra = scratch();
        owner_->regInits_.push_back(
            {tid_, ra.name(), true, target.addr.sym, 0});
        append(ptx::build::cvt(rw.name(), Operand::makeReg(rz.name())));
        ptx::Instruction adda = ptx::build::add(
            ra.name(), Operand::makeReg(ra.name()),
            Operand::makeReg(rw.name()));
        adda.type = ptx::DataType::U64;
        append(std::move(adda));
        target.addr = Operand::makeReg(ra.name());
    }
    return append(std::move(target));
}

// ---- Builder --------------------------------------------------------

Builder::Builder(std::string name) : name_(std::move(name)) {}

Loc
Builder::global(const std::string &name, int64_t init)
{
    locations_.push_back({name, litmus::MemSpace::Global, init});
    return Loc(name);
}

Loc
Builder::shared(const std::string &name, int64_t init)
{
    locations_.push_back({name, litmus::MemSpace::Shared, init});
    return Loc(name);
}

Thread &
Builder::thread()
{
    int tid = static_cast<int>(threads_.size());
    return thread(tid, 0);
}

Thread &
Builder::thread(int cta, int warp)
{
    int tid = static_cast<int>(threads_.size());
    threads_.push_back(
        Thread(this, tid, litmus::ThreadPlacement{cta, warp}));
    return threads_.back();
}

Builder &
Builder::init(const Reg &r, int64_t value)
{
    regInits_.push_back({r.tid(), r.name(), false, "", value});
    return *this;
}

Builder &
Builder::initAddr(const Reg &r, const Loc &l)
{
    regInits_.push_back({r.tid(), r.name(), true, l.name(), 0});
    return *this;
}

Builder &
Builder::forbid(const Cond &cond)
{
    quantifier_ = litmus::Quantifier::NotExists;
    condition_ = cond.condition();
    condSet_ = true;
    return *this;
}

Builder &
Builder::require(const Cond &cond)
{
    quantifier_ = litmus::Quantifier::Forall;
    condition_ = cond.condition();
    condSet_ = true;
    return *this;
}

Builder &
Builder::allow(const Cond &cond)
{
    quantifier_ = litmus::Quantifier::Exists;
    condition_ = cond.condition();
    condSet_ = true;
    return *this;
}

litmus::Test
Builder::build() const
{
    if (!condSet_)
        fatal("scenario '%s': no forbid()/require()/allow() condition",
              name_.c_str());

    litmus::Test test;
    test.name = name_;
    test.locations = locations_;
    test.regInits = regInits_;
    std::vector<litmus::ThreadPlacement> placements;
    for (const auto &t : threads_) {
        test.program.threads.push_back(t.prog_);
        placements.push_back(t.placement_);
    }
    test.scopeTree = litmus::ScopeTree(std::move(placements));
    test.quantifier = quantifier_;
    test.condition = condition_;
    test.validate();
    return test;
}

} // namespace gpulitmus::scenario
