/**
 * @file
 * The scenario Builder: a fluent, *typed* front end for constructing
 * whole-application workloads as litmus tests.
 *
 * The paper's Sec. 3.2 / Sec. 7 punchline is that weak behaviours
 * break deployed programs — spin locks, work-stealing deques — not
 * just four-instruction idioms. This layer makes such programs
 * first-class citizens of the whole pipeline: a scenario is written
 * once against typed handles (`Loc`, `Reg`) with structured ops
 * (`ld/st/cas/exch/inc/membar/branch/label`, plus `.volatile_()`,
 * cache-operator, guard and dependency modifiers), its "wrong
 * result" is stated as a `forbid(...)` / `require(...)` final
 * condition, and `build()` lowers the whole thing to a plain
 * `litmus::Test` — which then runs unchanged under every backend:
 * sampled (`sim`), exhaustive (`mc`) and axiomatic (model ids), via
 * `harness::Campaign` grids, the CLI and the conformance join.
 *
 * Lowering is exact: the emitted instructions are the same
 * `ptx::build` encodings the hand-written library and the CUDA
 * distillations use, so a Builder transcription of a library test is
 * structurally identical to it (the test suite pins cas-sl and mp).
 * Labelled programs (spin loops) survive the litmus print/reparse
 * round trip: `ptx::Program::str()` renders labels in the form
 * `ptx::parseThread` accepts.
 *
 *   using namespace gpulitmus::scenario;
 *   Builder b("mp");
 *   Loc x = b.global("x"), y = b.global("y");
 *   Thread &t0 = b.thread();
 *   t0.st(x, 1).st(y, 1);
 *   Thread &t1 = b.thread();
 *   Reg r1 = t1.reg("r1"), r2 = t1.reg("r2");
 *   t1.ld(r1, y).ld(r2, x);
 *   litmus::Test test =
 *       b.allow(r1 == 1 && r2 == 0).build();
 */

#ifndef GPULITMUS_SCENARIO_BUILDER_H
#define GPULITMUS_SCENARIO_BUILDER_H

#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <vector>

#include "litmus/test.h"
#include "ptx/instruction.h"

namespace gpulitmus::scenario {

class Builder;
class Thread;

/** Typed handle to a shared memory location of the scenario. */
class Loc
{
  public:
    const std::string &name() const { return name_; }

  private:
    friend class Builder;
    explicit Loc(std::string name) : name_(std::move(name)) {}
    std::string name_;
};

/**
 * Typed handle to a register of one specific thread. Carrying the
 * owning thread id is what lets a final-condition atom `r1 == 1` know
 * which thread's r1 it constrains.
 */
class Reg
{
  public:
    int tid() const { return tid_; }
    const std::string &name() const { return name_; }

  private:
    friend class Thread;
    Reg(int tid, std::string name)
        : tid_(tid), name_(std::move(name))
    {}
    int tid_;
    std::string name_;
};

/** An instruction operand: an immediate or a register handle. */
class Val
{
  public:
    Val(int64_t v) : op_(ptx::Operand::makeImm(v)) {}
    Val(int v) : op_(ptx::Operand::makeImm(v)) {}
    Val(const Reg &r) : op_(ptx::Operand::makeReg(r.name())) {}

    const ptx::Operand &operand() const { return op_; }

  private:
    ptx::Operand op_;
};

/**
 * A final-condition expression over typed handles, composed with the
 * C++ operators: `r1 == 1 && (sum != 3 || r2 == 0)`. Wraps a
 * `litmus::Condition`; `!=` lowers to the negation of an equality
 * atom, which the litmus condition grammar round-trips as `~(...)`.
 */
class Cond
{
  public:
    const litmus::Condition &condition() const { return cond_; }

    friend Cond operator&&(const Cond &a, const Cond &b);
    friend Cond operator||(const Cond &a, const Cond &b);
    friend Cond operator!(const Cond &a);

    friend Cond operator==(const Reg &r, int64_t v);
    friend Cond operator!=(const Reg &r, int64_t v);
    friend Cond operator==(const Loc &l, int64_t v);
    friend Cond operator!=(const Loc &l, int64_t v);

  private:
    explicit Cond(litmus::Condition c) : cond_(std::move(c)) {}
    litmus::Condition cond_;
};

// Namespace-scope declarations (the in-class friends alone are only
// reachable via Cond-argument ADL, which the atom forms lack).
Cond operator&&(const Cond &a, const Cond &b);
Cond operator||(const Cond &a, const Cond &b);
Cond operator!(const Cond &a);
Cond operator==(const Reg &r, int64_t v);
Cond operator!=(const Reg &r, int64_t v);
Cond operator==(const Loc &l, int64_t v);
Cond operator!=(const Loc &l, int64_t v);

/**
 * One thread of the scenario under construction. Every op appends an
 * instruction and returns the thread for chaining; the trailing
 * modifiers (`volatile_`, `ca`, `scope`, `onlyIf`, `dependsOn`, ...)
 * rewrite the most recently appended instruction.
 */
class Thread
{
  public:
    /** Typed handle to this thread's register `name`. */
    Reg reg(const std::string &name);

    // ---- memory ops (default cache operator: .cg, as the paper's
    // tests use throughout) ---------------------------------------
    Thread &ld(const Reg &dst, const Loc &src);
    Thread &st(const Loc &dst, const Val &value);
    /** atom.cas dst,[l],cmp,swap */
    Thread &cas(const Reg &dst, const Loc &l, const Val &cmp,
                const Val &swap);
    /** atom.exch dst,[l],value */
    Thread &exch(const Reg &dst, const Loc &l, const Val &value);
    /** atom.inc dst,[l] — CUDA atomicAdd(&l, 1), returns the old
     * value. */
    Thread &inc(const Reg &dst, const Loc &l);
    Thread &membar(ptx::Scope scope = ptx::Scope::Gl);

    // ---- ALU / control flow --------------------------------------
    Thread &mov(const Reg &dst, const Val &v);
    Thread &add(const Reg &dst, const Val &a, const Val &b);
    Thread &and_(const Reg &dst, const Val &a, const Val &b);
    Thread &xor_(const Reg &dst, const Val &a, const Val &b);
    Thread &setpEq(const Reg &pred, const Val &a, const Val &b);
    Thread &setpNe(const Reg &pred, const Val &a, const Val &b);
    /** Bind `name` to the next appended instruction. */
    Thread &label(const std::string &name);
    Thread &branch(const std::string &target);
    /** `@pred bra target` / `@!pred bra target`. */
    Thread &branchIf(const Reg &pred, const std::string &target);
    Thread &branchIfNot(const Reg &pred, const std::string &target);

    // ---- trailing modifiers (rewrite the last instruction) -------
    /** Mark the last ld/st volatile (clears the cache operator, as
     * the Tab. 5 mapping does for volatile int accesses). */
    Thread &volatile_();
    /** Cache operator of the last ld/st: .ca (L1), .cg (L2), .cv. */
    Thread &ca();
    Thread &cg();
    Thread &cv();
    /** Scope of the last membar (or atomic). */
    Thread &scope(ptx::Scope s);
    /** Predicate the last instruction: `@pred ...` / `@!pred ...`. */
    Thread &onlyIf(const Reg &pred);
    Thread &unless(const Reg &pred);
    /**
     * Make the last memory access artificially depend on `src`, in
     * the paper's Fig. 13 style (gen/generator.cc emits the same
     * shapes): a store value is routed through
     * `and.b32 rz,src,0x80000000; add.s32 rv,rz,v`, a load address
     * through `cvt` + `add.u64` onto a register preloaded with the
     * location's address. Scratch registers are allocated fresh.
     */
    Thread &dependsOn(const Reg &src);

    int tid() const { return tid_; }

  private:
    friend class Builder;
    Thread(Builder *owner, int tid, litmus::ThreadPlacement placement)
        : owner_(owner), tid_(tid), placement_(placement)
    {}

    Thread &append(ptx::Instruction instr);
    ptx::Instruction &last(const char *modifier);
    /** Fresh scratch register (r64, r65, ...) for dependency
     * plumbing; fatal if the scenario already uses the name. */
    Reg scratch();

    Builder *owner_;
    int tid_;
    litmus::ThreadPlacement placement_;
    ptx::ThreadProgram prog_;
    std::set<std::string> regNames_;
    int nextScratch_ = 64;
};

/**
 * Whole-scenario builder. Declare locations, open thread blocks,
 * state the final condition, `build()`.
 */
class Builder
{
  public:
    explicit Builder(std::string name);

    // ---- locations -----------------------------------------------
    Loc global(const std::string &name, int64_t init = 0);
    Loc shared(const std::string &name, int64_t init = 0);

    // ---- threads -------------------------------------------------
    /** Open a thread block in its own CTA (the paper's default
     * inter-CTA placement). */
    Thread &thread();
    /** Open a thread block at an explicit (cta, warp) position in
     * the scope tree. */
    Thread &thread(int cta, int warp);

    // ---- register initialisation ---------------------------------
    Builder &init(const Reg &r, int64_t value);
    /** Initialise a register with a location's address (register-
     * addressed accesses, address dependencies). */
    Builder &initAddr(const Reg &r, const Loc &l);

    // ---- final condition -----------------------------------------
    /** The bug: `~exists (cond)` — the scenario is correct iff cond
     * is never reachable. This is what "wrong result" means for an
     * application scenario; see docs/VERDICTS.md. */
    Builder &forbid(const Cond &cond);
    /** The invariant: `forall (cond)` — must hold in every final
     * state. */
    Builder &require(const Cond &cond);
    /** Litmus-style `exists (cond)`: is the outcome observable? */
    Builder &allow(const Cond &cond);

    /** Lower to a litmus::Test; panics on inconsistent scenarios
     * (missing condition, unknown labels, ...). */
    litmus::Test build() const;

  private:
    friend class Thread;

    std::string name_;
    std::vector<litmus::LocationDef> locations_;
    std::vector<litmus::RegInit> regInits_;
    std::deque<Thread> threads_; ///< deque: stable Thread& handles
    litmus::Quantifier quantifier_ = litmus::Quantifier::Exists;
    litmus::Condition condition_;
    bool condSet_ = false;
};

} // namespace gpulitmus::scenario

#endif // GPULITMUS_SCENARIO_BUILDER_H
