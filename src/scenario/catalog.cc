#include "scenario/catalog.h"

#include "common/log.h"
#include "scenario/builder.h"

namespace gpulitmus::scenario {

namespace {

std::string
fenceSuffix(bool fenced)
{
    return fenced ? "+fences" : "";
}

} // anonymous namespace

litmus::Test
casSpinlock(bool fenced)
{
    // The Fig. 9 distillation, instruction for instruction (the test
    // suite pins it against cuda::distillCasSpinLock / paperlib).
    Builder b("cas_spinlock" + fenceSuffix(fenced));
    Loc x = b.global("x", 0);
    Loc m = b.global("m", 1);

    Thread &t0 = b.thread();
    Reg r0 = t0.reg("r0");
    t0.st(x, 1);
    if (fenced)
        t0.membar(); // unlock-side fence, Fig. 2 line 5 (+)
    t0.exch(r0, m, 0);

    Thread &t1 = b.thread();
    Reg r1 = t1.reg("r1");
    Reg p2 = t1.reg("p2");
    Reg r3 = t1.reg("r3");
    t1.cas(r1, m, 0, 1); // lock attempt, Fig. 2 line 2
    t1.setpEq(p2, r1, 0);
    if (fenced)
        t1.membar().onlyIf(p2); // lock-side fence, line 3 (+)
    t1.ld(r3, x).onlyIf(p2);

    return b.forbid(r1 == 0 && r3 == 0).build();
}

litmus::Test
spinlockDotProduct(int threads, bool fenced)
{
    if (threads < 2 || threads > 6)
        fatal("spinlock_dot_product supports 2..6 threads, got %d",
              threads);

    Builder b("spinlock_dot_product+t" + std::to_string(threads) +
              fenceSuffix(fenced));
    Loc sum = b.global("sum", 0);
    Loc m = b.global("m", 0);

    int64_t expected = 0;
    for (int t = 0; t < threads; ++t) {
        expected += t + 1;
        Thread &th = b.thread();
        Reg r0 = th.reg("r0");
        Reg p0 = th.reg("p0");
        Reg r1 = th.reg("r1");
        Reg r2 = th.reg("r2");
        Reg r3 = th.reg("r3");
        th.label("LOCK").cas(r0, m, 0, 1); // while (CAS != 0);
        th.setpNe(p0, r0, 0);
        th.branchIf(p0, "LOCK");
        if (fenced)
            th.membar(); // lock-side fence (Fig. 2 line 3 (+))
        th.ld(r1, sum);
        th.add(r2, r1, t + 1);
        th.st(sum, r2);
        if (fenced)
            th.membar(); // unlock-side fence (Fig. 2 line 5 (+))
        th.exch(r3, m, 0);
    }

    return b.forbid(sum != expected).build();
}

litmus::Test
workStealingDeque(bool fenced)
{
    // The Fig. 7 push/steal distillation (volatile tail, as the
    // deque declares it), pinned against cuda::distillDequeMp.
    Builder b("work_stealing_deque" + fenceSuffix(fenced));
    Loc t = b.global("t", 0); // tail
    Loc d = b.global("d", 0); // task slot

    Thread &push = b.thread();
    Reg r2 = push.reg("r2");
    push.st(d, 1); // tasks[tail] = task (l.3)
    if (fenced)
        push.membar(); // l.4 (+)
    push.ld(r2, t).volatile_(); // tail++ (l.5)
    push.add(r2, r2, 1);
    push.st(t, r2).volatile_();

    Thread &steal = b.thread();
    Reg r0 = steal.reg("r0");
    Reg p4 = steal.reg("p4");
    Reg r1 = steal.reg("r1");
    steal.ld(r0, t).volatile_(); // read tail (l.8)
    steal.setpEq(p4, r0, 0);     // empty?
    if (fenced)
        steal.membar().unless(p4); // l.9 (+)
    steal.ld(r1, d).unless(p4); // read task (l.10)

    return b.forbid(r0 == 1 && r1 == 0).build();
}

litmus::Test
ticketLock(bool fenced)
{
    Builder b("ticket_lock" + fenceSuffix(fenced));
    Loc ticket = b.global("ticket", 0);
    Loc serving = b.global("serving", 0);
    Loc sum = b.global("sum", 0);

    int64_t expected = 0;
    for (int t = 0; t < 2; ++t) {
        expected += t + 1;
        Thread &th = b.thread();
        Reg r0 = th.reg("r0");
        Reg r1 = th.reg("r1");
        Reg p0 = th.reg("p0");
        Reg r2 = th.reg("r2");
        Reg r3 = th.reg("r3");
        Reg r4 = th.reg("r4");
        th.inc(r0, ticket); // draw a ticket
        th.label("SPIN").ld(r1, serving);
        th.setpNe(p0, r1, r0);
        th.branchIf(p0, "SPIN");
        if (fenced)
            th.membar();
        th.ld(r2, sum); // critical section
        th.add(r3, r2, t + 1);
        th.st(sum, r3);
        if (fenced)
            th.membar();
        th.add(r4, r0, 1); // serve the next ticket
        th.st(serving, r4);
    }

    return b.forbid(sum != expected).build();
}

litmus::Test
producerConsumerRing(bool fenced)
{
    Builder b("producer_consumer_ring" + fenceSuffix(fenced));
    Loc slot = b.global("slot", 0);
    Loc head = b.global("head", 0);

    Thread &prod = b.thread();
    prod.st(slot, 1); // fill the slot
    if (fenced)
        prod.membar();
    prod.st(head, 1).volatile_(); // publish

    Thread &cons = b.thread();
    Reg r0 = cons.reg("r0");
    Reg p0 = cons.reg("p0");
    Reg r1 = cons.reg("r1");
    cons.label("SPIN").ld(r0, head).volatile_();
    cons.setpEq(p0, r0, 0);
    cons.branchIf(p0, "SPIN"); // wait for the head
    if (fenced)
        cons.membar();
    cons.ld(r1, slot);

    return b.forbid(r1 == 0).build();
}

litmus::Test
flagBarrier(bool fenced)
{
    Builder b("flag_barrier" + fenceSuffix(fenced));
    Loc x0 = b.global("x0", 0);
    Loc x1 = b.global("x1", 0);
    Loc f0 = b.global("f0", 0);
    Loc f1 = b.global("f1", 0);

    auto side = [&](Loc mine, Loc my_flag, Loc other_flag,
                    Loc theirs) -> Reg {
        Thread &th = b.thread();
        Reg r0 = th.reg("r0");
        Reg p0 = th.reg("p0");
        Reg r1 = th.reg("r1");
        th.st(mine, 1); // my contribution
        if (fenced)
            th.membar();
        th.st(my_flag, 1); // arrive
        th.label("SPIN").ld(r0, other_flag);
        th.setpEq(p0, r0, 0);
        th.branchIf(p0, "SPIN"); // wait for the other side
        if (fenced)
            th.membar();
        th.ld(r1, theirs); // read their contribution
        return r1;
    };
    Reg a = side(x0, f0, f1, x1);
    Reg bb = side(x1, f1, f0, x0);

    return b.forbid(a == 0 || bb == 0).build();
}

litmus::Test
seqlock(bool fenced)
{
    Builder b("seqlock" + fenceSuffix(fenced));
    Loc s = b.global("s", 0);
    Loc d1 = b.global("d1", 0);
    Loc d2 = b.global("d2", 0);

    Thread &w = b.thread();
    w.st(s, 1); // sequence odd: write in progress
    if (fenced)
        w.membar();
    w.st(d1, 1);
    w.st(d2, 1);
    if (fenced)
        w.membar();
    w.st(s, 2); // sequence even: write complete

    Thread &r = b.thread();
    Reg r0 = r.reg("r0");
    Reg r1 = r.reg("r1");
    Reg r2 = r.reg("r2");
    Reg r3 = r.reg("r3");
    r.ld(r0, s);
    if (fenced)
        r.membar();
    r.ld(r1, d1);
    r.ld(r2, d2);
    if (fenced)
        r.membar();
    r.ld(r3, s);

    // A stable, even sequence (2 before and after) promises a
    // complete snapshot; torn data under it is the seqlock bug.
    return b.forbid(r0 == 2 && r3 == 2 && (r1 == 0 || r2 == 0))
        .build();
}

} // namespace gpulitmus::scenario
