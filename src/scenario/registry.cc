#include "scenario/registry.h"

#include "common/log.h"
#include "common/strutil.h"
#include "scenario/catalog.h"

namespace gpulitmus::scenario {

namespace {

constexpr const char *kSpecPrefix = "scenario:";

/** Parse "1"/"0"/"true"/"false"/"yes"/"no" or any integer. */
std::optional<int64_t>
parseValue(const std::string &text)
{
    std::string t = trim(text);
    if (t == "true" || t == "yes")
        return 1;
    if (t == "false" || t == "no")
        return 0;
    return parseInt(t);
}

const ParamSpec kFenced{"fenced", 0,
                        "1 adds the (+) membar.gl fences", 0, 1};

std::vector<Scenario>
makeRegistry()
{
    std::vector<Scenario> out;

    out.push_back(
        {"cas_spinlock",
         "CUDA by Example spin lock, distilled (Fig. 9): acquired"
         " lock reads stale data",
         "Sec. 3.2.2, Fig. 2/9",
         {kFenced},
         4000,
         [](const Args &a) { return casSpinlock(a.getBool("fenced")); }});

    out.push_back(
        {"spinlock_dot_product",
         "dot-product client: CTAs accumulate under the full spin"
         " lock; a stale read loses an update",
         "Sec. 3.2.2 (CUDA by Example App 1.2)",
         {{"threads", 2, "accumulating CTAs (2..6)", 2, 6}, kFenced},
         20000,
         [](const Args &a) {
             return spinlockDotProduct(
                 static_cast<int>(a.get("threads")),
                 a.getBool("fenced"));
         }});

    out.push_back(
        {"work_stealing_deque",
         "Cederman-Tsigas deque push/steal: the thief sees the tail"
         " but reads an empty task slot",
         "Sec. 3.2.1, Fig. 6/7",
         {kFenced},
         4000,
         [](const Args &a) {
             return workStealingDeque(a.getBool("fenced"));
         }});

    out.push_back(
        {"ticket_lock",
         "ticket lock around an accumulator: a stale read in the"
         " critical section loses an update",
         "beyond the paper (Sorensen et al. spin-loop catalogue)",
         {kFenced},
         20000,
         [](const Args &a) { return ticketLock(a.getBool("fenced")); }});

    out.push_back(
        {"producer_consumer_ring",
         "one-slot ring: the consumer spins on the head, then reads"
         " an empty slot",
         "Sec. 2 (mp idiom behind a spin loop)",
         {kFenced},
         20000,
         [](const Args &a) {
             return producerConsumerRing(a.getBool("fenced"));
         }});

    out.push_back(
        {"flag_barrier",
         "two-thread flag barrier: a thread passes the barrier yet"
         " reads the other side's stale data",
         "beyond the paper (workgroup barriers)",
         {kFenced},
         20000,
         [](const Args &a) { return flagBarrier(a.getBool("fenced")); }});

    out.push_back(
        {"seqlock",
         "seqlock: the reader sees a stable even sequence but torn"
         " data",
         "beyond the paper (classic seqlock under weak memory)",
         {kFenced},
         4000,
         [](const Args &a) { return seqlock(a.getBool("fenced")); }});

    return out;
}

} // anonymous namespace

int64_t
Args::get(const std::string &name) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        fatal("scenario argument '%s' was not validated",
              name.c_str());
    return it->second;
}

std::optional<Args>
parseArgs(const std::vector<ParamSpec> &params, const std::string &text,
          std::string *error)
{
    Args args;
    for (const auto &p : params)
        args.values_[p.name] = p.defaultValue;

    if (trim(text).empty())
        return args;
    for (const auto &part : split(text, ',')) {
        auto eq = part.find('=');
        std::string key = trim(
            eq == std::string::npos ? part : part.substr(0, eq));
        // A bare key is a boolean switch: "fenced" == "fenced=1".
        std::optional<int64_t> value =
            eq == std::string::npos
                ? std::optional<int64_t>(1)
                : parseValue(part.substr(eq + 1));
        if (!args.values_.count(key)) {
            if (error) {
                *error = "unknown scenario parameter '" + key +
                         "'; valid:";
                for (const auto &p : params)
                    *error += " " + p.name + "(default " +
                              std::to_string(p.defaultValue) + ")";
                if (params.empty())
                    *error += " (none)";
            }
            return std::nullopt;
        }
        if (!value) {
            if (error)
                *error = "bad value for scenario parameter '" + key +
                         "' in '" + part + "'";
            return std::nullopt;
        }
        for (const auto &p : params) {
            if (p.name == key && (*value < p.min || *value > p.max)) {
                if (error)
                    *error = "scenario parameter '" + key + "'=" +
                             std::to_string(*value) +
                             " is out of range [" +
                             std::to_string(p.min) + ", " +
                             std::to_string(p.max) + "]";
                return std::nullopt;
            }
        }
        args.values_[key] = *value;
    }
    return args;
}

const std::vector<Scenario> &
all()
{
    static const std::vector<Scenario> registry = makeRegistry();
    return registry;
}

const Scenario *
find(const std::string &name)
{
    for (const auto &s : all()) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

bool
isSpec(const std::string &text)
{
    return startsWith(text, kSpecPrefix);
}

std::optional<SpecTest>
buildSpec(const std::string &spec, std::string *error)
{
    if (!isSpec(spec)) {
        if (error)
            *error = "not a scenario spec (want scenario:<name>"
                     "[,k=v...]): '" +
                     spec + "'";
        return std::nullopt;
    }
    std::string body = spec.substr(std::string(kSpecPrefix).size());
    auto comma = body.find(',');
    std::string name = trim(
        comma == std::string::npos ? body : body.substr(0, comma));
    std::string argtext =
        comma == std::string::npos ? "" : body.substr(comma + 1);

    const Scenario *s = find(name);
    if (!s) {
        if (error) {
            *error = "unknown scenario '" + name + "'; registered:";
            for (const auto &r : all())
                *error += " " + r.name;
        }
        return std::nullopt;
    }
    auto args = parseArgs(s->params, argtext, error);
    if (!args)
        return std::nullopt;
    return SpecTest{s->build(*args), s, s->maxMicroSteps};
}

} // namespace gpulitmus::scenario
