/**
 * @file
 * The scenario registry: named, parameterised application workloads
 * (built with scenario::Builder, lowered to litmus::Test) that every
 * surface API accepts next to .litmus files.
 *
 * A scenario is addressed by a *spec* string:
 *
 *   scenario:<name>[,key=value...]
 *
 * e.g. `scenario:spinlock_dot_product,threads=3,fenced=1`. The CLI
 * (`run/sweep/validate/explore/list`), `harness::Campaign::scenario`
 * and the benches all resolve specs through buildSpec(), so one
 * registration makes a workload available to the sampled, exhaustive
 * and axiomatic backends alike.
 *
 * Each registry scenario states its bug as the test's *forbidden*
 * final condition (`~exists`): the sampler's observed count is then
 * "wrong results per 100k", and an exhaustive (`mc`) exploration
 * yields an exact verdict — reachable-forbidden (the bug, for
 * certain) or unreachable (the fix, proven). See docs/VERDICTS.md.
 */

#ifndef GPULITMUS_SCENARIO_REGISTRY_H
#define GPULITMUS_SCENARIO_REGISTRY_H

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "litmus/test.h"

namespace gpulitmus::scenario {

/** One declared parameter of a registry scenario. */
struct ParamSpec
{
    std::string name;
    int64_t defaultValue = 0;
    std::string help;
    /** Inclusive accepted range; out-of-range spec values are a
     * recoverable buildSpec error, not a fatal in the builder. */
    int64_t min = INT64_MIN;
    int64_t max = INT64_MAX;
};

/** Key=value arguments of one spec, validated against the params. */
class Args
{
  public:
    /** Value of `name`, or the registered default. */
    int64_t get(const std::string &name) const;
    bool getBool(const std::string &name) const
    {
        return get(name) != 0;
    }

  private:
    friend std::optional<Args>
    parseArgs(const std::vector<ParamSpec> &params,
              const std::string &text, std::string *error);
    std::map<std::string, int64_t> values_;
};

/** One registered scenario. */
struct Scenario
{
    std::string name;     ///< registry id, e.g. "spinlock_dot_product"
    std::string summary;  ///< one line, shown by `gpulitmus list`
    std::string paperRef; ///< paper cross-reference, e.g. "Sec. 3.2.2"
    std::vector<ParamSpec> params;
    /** Recommended per-iteration micro-step cap: scenarios with spin
     * loops need more headroom than the straight-line default. */
    int maxMicroSteps = 4000;
    std::function<litmus::Test(const Args &)> build;
};

/** All registered scenarios, in presentation order. */
const std::vector<Scenario> &all();

/** Look up a scenario by registry id; nullptr if absent. */
const Scenario *find(const std::string &name);

/** A spec resolved to a runnable test. */
struct SpecTest
{
    litmus::Test test;
    const Scenario *scenario = nullptr;
    /** The scenario's recommended machine cap (spin-loop headroom);
     * callers take max(their default, this). */
    int maxMicroSteps = 4000;
};

/** True when `text` is a scenario spec ("scenario:..."), as opposed
 * to a .litmus file path. */
bool isSpec(const std::string &text);

/**
 * Resolve "scenario:<name>[,k=v...]" to a built test. Returns
 * nullopt and sets `error` (listing the registry on an unknown name,
 * the declared params on an unknown key) on a malformed spec.
 */
std::optional<SpecTest> buildSpec(const std::string &spec,
                                  std::string *error = nullptr);

} // namespace gpulitmus::scenario

#endif // GPULITMUS_SCENARIO_REGISTRY_H
