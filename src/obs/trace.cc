#include "obs/trace.h"

#include <atomic>
#include <fstream>
#include <mutex>
#include <vector>

#include "common/strutil.h"
#include "obs/metrics.h"

namespace gpulitmus::obs {

namespace {

struct TraceEvent
{
    std::string name;
    const char *cat;
    uint64_t tid;
    uint64_t ts;
    uint64_t dur;
};

struct TraceState
{
    std::mutex mutex;
    std::vector<TraceEvent> events;
    std::chrono::steady_clock::time_point epoch;
};

std::atomic<bool> gActive{false};

TraceState &
state()
{
    // Leaked like the metric registry: spans may close during static
    // destruction.
    static TraceState *s = new TraceState();
    return *s;
}

/** Small dense thread ids so the viewer's per-thread lanes are
 * readable (raw pthread ids are 64-bit noise). */
uint64_t
traceTid()
{
    static std::atomic<uint64_t> next{1};
    thread_local uint64_t tid =
        next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

} // namespace

void
Trace::start()
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.events.clear();
    s.epoch = std::chrono::steady_clock::now();
    gActive.store(true, std::memory_order_release);
}

bool
Trace::active()
{
    return gActive.load(std::memory_order_relaxed) && enabled();
}

void
Trace::stop()
{
    gActive.store(false, std::memory_order_release);
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.events.clear();
}

uint64_t
Trace::now()
{
    TraceState &s = state();
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - s.epoch)
                  .count();
    return us < 0 ? 0 : static_cast<uint64_t>(us);
}

void
Trace::record(const std::string &name, const char *cat,
              uint64_t tsMicros, uint64_t durMicros)
{
    if (!active())
        return;
    TraceState &s = state();
    uint64_t tid = traceTid();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.events.push_back({name, cat, tid, tsMicros, durMicros});
}

std::string
Trace::json()
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (const auto &e : s.events) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"name\":\"" + jsonEscape(e.name) +
               "\",\"cat\":\"" + e.cat +
               "\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
               std::to_string(e.tid) +
               ",\"ts\":" + std::to_string(e.ts) +
               ",\"dur\":" + std::to_string(e.dur) + "}";
    }
    return out + "],\"displayTimeUnit\":\"ms\"}";
}

bool
Trace::writeFile(const std::string &path, std::string *error)
{
    std::ofstream out(path);
    if (!out) {
        if (error)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }
    out << json() << "\n";
    if (!out) {
        if (error)
            *error = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

} // namespace gpulitmus::obs
