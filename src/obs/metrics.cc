#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "common/strutil.h"

namespace gpulitmus::obs {

// ---- enable switch --------------------------------------------------

namespace {

bool
envEnabled()
{
    const char *v = std::getenv("GPULITMUS_OBS");
    return !(v && *v == '0' && v[1] == '\0');
}

std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> flag{envEnabled()};
    return flag;
}

} // namespace

bool
enabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    enabledFlag().store(on, std::memory_order_relaxed);
}

// ---- thread stripes -------------------------------------------------

namespace detail {

size_t
threadStripe()
{
    static std::atomic<size_t> next{0};
    thread_local size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return stripe;
}

} // namespace detail

// ---- Timer ----------------------------------------------------------

namespace {

size_t
bucketFor(uint64_t micros)
{
    size_t b = 0;
    while (micros > 1 && b + 1 < Timer::kBuckets) {
        micros >>= 1;
        ++b;
    }
    return b;
}

} // namespace

void
Timer::record(uint64_t micros)
{
    if (!enabled())
        return;
    size_t s = detail::threadStripe();
    counts_[s].value.fetch_add(1, std::memory_order_relaxed);
    sums_[s].value.fetch_add(micros, std::memory_order_relaxed);
    buckets_[bucketFor(micros)].fetch_add(1,
                                          std::memory_order_relaxed);
    uint64_t seen = min_.load(std::memory_order_relaxed);
    while (micros < seen &&
           !min_.compare_exchange_weak(seen, micros,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (micros > seen &&
           !max_.compare_exchange_weak(seen, micros,
                                       std::memory_order_relaxed)) {
    }
}

uint64_t
Timer::count() const
{
    uint64_t sum = 0;
    for (const auto &s : counts_)
        sum += s.value.load(std::memory_order_relaxed);
    return sum;
}

uint64_t
Timer::sumMicros() const
{
    uint64_t sum = 0;
    for (const auto &s : sums_)
        sum += s.value.load(std::memory_order_relaxed);
    return sum;
}

uint64_t
Timer::minMicros() const
{
    uint64_t v = min_.load(std::memory_order_relaxed);
    return v == UINT64_MAX ? 0 : v;
}

uint64_t
Timer::maxMicros() const
{
    return max_.load(std::memory_order_relaxed);
}

uint64_t
Timer::bucket(size_t i) const
{
    return i < kBuckets
               ? buckets_[i].load(std::memory_order_relaxed)
               : 0;
}

void
Timer::reset()
{
    for (auto &s : counts_)
        s.value.store(0, std::memory_order_relaxed);
    for (auto &s : sums_)
        s.value.store(0, std::memory_order_relaxed);
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

// ---- Registry -------------------------------------------------------

struct Registry::Impl
{
    mutable std::mutex mutex;
    // std::map: stable addresses under insertion, name-sorted
    // iteration for the renderers.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Timer>> timers;
};

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Registry::Impl &
Registry::impl() const
{
    // Leaked on purpose: worker threads may tick counters during
    // static destruction (detached clients), so the maps must outlive
    // every other static.
    static Impl *impl = new Impl();
    return *impl;
}

Counter &
Registry::counter(const std::string &name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    auto &slot = i.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    auto &slot = i.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Timer &
Registry::timer(const std::string &name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    auto &slot = i.timers[name];
    if (!slot)
        slot = std::make_unique<Timer>();
    return *slot;
}

std::vector<MetricSample>
Registry::snapshot() const
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    std::vector<MetricSample> out;
    out.reserve(i.counters.size() + i.gauges.size() +
                i.timers.size());
    for (const auto &[name, c] : i.counters) {
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::kCounter;
        s.value = static_cast<int64_t>(c->value());
        out.push_back(std::move(s));
    }
    for (const auto &[name, g] : i.gauges) {
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::kGauge;
        s.value = g->value();
        out.push_back(std::move(s));
    }
    for (const auto &[name, t] : i.timers) {
        MetricSample s;
        s.name = name;
        s.kind = MetricSample::kTimer;
        s.value = static_cast<int64_t>(t->count());
        s.sumMicros = t->sumMicros();
        s.minMicros = t->minMicros();
        s.maxMicros = t->maxMicros();
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return out;
}

std::string
Registry::json() const
{
    std::string out = "{";
    bool first = true;
    for (const auto &s : snapshot()) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(s.name) + "\":";
        if (s.kind == MetricSample::kTimer) {
            uint64_t count = static_cast<uint64_t>(s.value);
            uint64_t mean = count ? s.sumMicros / count : 0;
            out += "{\"count\":" + std::to_string(count) +
                   ",\"sum_us\":" + std::to_string(s.sumMicros) +
                   ",\"min_us\":" + std::to_string(s.minMicros) +
                   ",\"max_us\":" + std::to_string(s.maxMicros) +
                   ",\"mean_us\":" + std::to_string(mean) + "}";
        } else {
            out += std::to_string(s.value);
        }
    }
    return out + "}";
}

std::string
Registry::prometheus() const
{
    std::string out;
    for (const auto &s : snapshot()) {
        std::string name = "gpulitmus_" + s.name;
        switch (s.kind) {
          case MetricSample::kCounter:
            out += "# TYPE " + name + " counter\n";
            out += name + " " + std::to_string(s.value) + "\n";
            break;
          case MetricSample::kGauge:
            out += "# TYPE " + name + " gauge\n";
            out += name + " " + std::to_string(s.value) + "\n";
            break;
          case MetricSample::kTimer:
            out += "# TYPE " + name + "_count counter\n";
            out += name + "_count " + std::to_string(s.value) + "\n";
            out += "# TYPE " + name + "_sum_us counter\n";
            out += name + "_sum_us " +
                   std::to_string(s.sumMicros) + "\n";
            out += "# TYPE " + name + "_min_us gauge\n";
            out += name + "_min_us " +
                   std::to_string(s.minMicros) + "\n";
            out += "# TYPE " + name + "_max_us gauge\n";
            out += name + "_max_us " +
                   std::to_string(s.maxMicros) + "\n";
            break;
        }
    }
    return out;
}

void
Registry::reset()
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    for (auto &[name, c] : i.counters)
        c->reset();
    for (auto &[name, g] : i.gauges)
        g->reset();
    for (auto &[name, t] : i.timers)
        t->reset();
}

Counter &
counter(const std::string &name)
{
    return Registry::instance().counter(name);
}

Gauge &
gauge(const std::string &name)
{
    return Registry::instance().gauge(name);
}

Timer &
timer(const std::string &name)
{
    return Registry::instance().timer(name);
}

} // namespace gpulitmus::obs
