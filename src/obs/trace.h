/**
 * @file
 * Span tracing to Chrome trace-event JSON (Perfetto-loadable).
 *
 * A trace is a flat list of named scopes — "job mp@Titan c16",
 * "explore ticket_lock", "request validate" — each with the thread
 * that ran it and wall-clock start/duration. Collection is off until
 * `Trace::start()` (the CLI's `--trace out.json` flag); off means a
 * Span constructor is one relaxed load and no clock read, preserving
 * the obs layer's zero-overhead-when-off contract (obs/metrics.h —
 * GPULITMUS_OBS=0 also forces tracing off).
 *
 * Spans record at *scope* granularity (requests, jobs, explorations,
 * store flushes), never per iteration or per replay, so a mutex on
 * the event list is comfortably off any hot path. The serialised form
 * is the Trace Event Format's "X" (complete) events — one JSON object
 * per span with µs timestamps — which chrome://tracing and
 * https://ui.perfetto.dev open directly (docs/OBSERVABILITY.md has
 * the runbook; tools/check_obs.py validates the shape in CI).
 */

#ifndef GPULITMUS_OBS_TRACE_H
#define GPULITMUS_OBS_TRACE_H

#include <chrono>
#include <cstdint>
#include <string>

namespace gpulitmus::obs {

class Trace
{
  public:
    /** Begin collecting spans (idempotent; clears prior events). */
    static void start();

    /** Collecting? (start() called, not stop(), and obs enabled) */
    static bool active();

    /** Stop and discard everything collected. */
    static void stop();

    /** Record one complete span. `ts`/`dur` in µs; `ts` is relative
     * to start() (see now()). `cat` groups spans in the viewer:
     * "engine", "mc", "serve", "cli". */
    static void record(const std::string &name, const char *cat,
                       uint64_t tsMicros, uint64_t durMicros);

    /** µs since start() — the timestamp base every span uses. */
    static uint64_t now();

    /** The collected trace as one Chrome trace-event JSON document:
     * {"traceEvents":[...],"displayTimeUnit":"ms"}. */
    static std::string json();

    /** Serialise to a file; false + `error` on I/O failure. */
    static bool writeFile(const std::string &path,
                          std::string *error = nullptr);
};

/** RAII span: names a scope on construction, records it on
 * destruction. Inactive traces cost one branch. */
class Span
{
  public:
    explicit Span(std::string name, const char *cat = "app")
    {
        if (!Trace::active())
            return;
        live_ = true;
        name_ = std::move(name);
        cat_ = cat;
        start_ = Trace::now();
    }

    ~Span()
    {
        if (live_)
            Trace::record(name_, cat_, start_,
                          Trace::now() - start_);
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    bool live_ = false;
    std::string name_;
    const char *cat_ = "app";
    uint64_t start_ = 0;
};

} // namespace gpulitmus::obs

#endif // GPULITMUS_OBS_TRACE_H
