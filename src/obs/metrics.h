/**
 * @file
 * The telemetry registry: zero-overhead-when-off process metrics.
 *
 * Every layer of the pipeline is instrumented — the batch engines
 * (queue wait, job latency, worker utilisation, cache traffic), the
 * explorer (replays, prunes, resumes), the result store (L2
 * hits/misses/appends) and the serve daemon (requests, latency,
 * connected clients) — but the instrumented code paths must keep two
 * invariants that rule out the obvious designs:
 *
 * - *Determinism*: every result is a pure function of its job
 *   (harness/batch.h). Telemetry therefore never touches RNG streams,
 *   job keys or scheduling — counters observe, they do not steer —
 *   and a run with GPULITMUS_OBS=0 is bit-identical to an
 *   instrumented run (tests/test_obs.cc pins this).
 * - *Hot-loop neutrality*: the explorer ticks a counter per replay
 *   and the engines per job. An increment is one relaxed atomic add
 *   on a striped slot — no locks, no allocation, no syscalls — and
 *   with telemetry disabled it collapses to one relaxed load and a
 *   predictable branch.
 *
 * Counters are *striped*: each counter owns a small array of
 * cache-line-padded slots and a thread adds to the slot its id hashes
 * to, so concurrent workers never contend on one line. Reads
 * aggregate the stripes; they are monotonic but not a snapshot of an
 * instant (fine for rates and totals, the only uses).
 *
 * Handles registered under a name live for the process lifetime —
 * `reset()` zeroes values but never invalidates references — so call
 * sites may cache `obs::counter("...")` in a static. The registry
 * renders itself as JSON (the serve `metrics` command) and as
 * Prometheus text exposition (docs/OBSERVABILITY.md catalogues the
 * names).
 */

#ifndef GPULITMUS_OBS_METRICS_H
#define GPULITMUS_OBS_METRICS_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gpulitmus::obs {

/** Telemetry master switch: GPULITMUS_OBS=0 in the environment turns
 * every counter/gauge/timer/trace into a no-op (read once, cached).
 * Results are bit-identical either way; only visibility changes. */
bool enabled();

/** Test hook: override the cached environment decision. */
void setEnabled(bool on);

namespace detail {

/** One cache line per stripe so concurrent writers never share. */
struct alignas(64) Stripe
{
    std::atomic<uint64_t> value{0};
};

inline constexpr size_t kStripes = 16;

/** This thread's stripe index: a small counter-assigned id, stable
 * for the thread's lifetime. */
size_t threadStripe();

} // namespace detail

/** Monotonic event counter, striped across threads. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        if (!enabled())
            return;
        stripes_[detail::threadStripe()].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        uint64_t sum = 0;
        for (const auto &s : stripes_)
            sum += s.value.load(std::memory_order_relaxed);
        return sum;
    }

    void
    reset()
    {
        for (auto &s : stripes_)
            s.value.store(0, std::memory_order_relaxed);
    }

  private:
    detail::Stripe stripes_[detail::kStripes];
};

/** Last-writer-wins instantaneous value (connected clients, frontier
 * depth). Signed so add(-1) tracks live populations. */
class Gauge
{
  public:
    void
    set(int64_t v)
    {
        if (!enabled())
            return;
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(int64_t delta)
    {
        if (!enabled())
            return;
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/**
 * Duration histogram in microseconds: count, sum, min/max, and
 * power-of-two buckets (bucket b counts durations in [2^b, 2^{b+1})
 * µs; bucket 0 additionally holds sub-µs records). Count and sum are
 * striped like Counter; buckets and extrema are single relaxed
 * atomics — timer records happen at job/request granularity, far off
 * any inner loop.
 */
class Timer
{
  public:
    static constexpr size_t kBuckets = 32;

    void record(uint64_t micros);

    uint64_t count() const;
    uint64_t sumMicros() const;
    uint64_t minMicros() const; ///< 0 when count() == 0
    uint64_t maxMicros() const;
    uint64_t bucket(size_t i) const;

    void reset();

  private:
    detail::Stripe counts_[detail::kStripes];
    detail::Stripe sums_[detail::kStripes];
    std::atomic<uint64_t> min_{UINT64_MAX};
    std::atomic<uint64_t> max_{0};
    std::atomic<uint64_t> buckets_[kBuckets]{};
};

/** RAII span for a Timer: records the scope's wall time on
 * destruction. The clock is only read when telemetry is on. */
class TimerScope
{
  public:
    explicit TimerScope(Timer &timer) : timer_(&timer)
    {
        if (enabled())
            start_ = std::chrono::steady_clock::now();
        else
            timer_ = nullptr;
    }

    ~TimerScope()
    {
        if (!timer_)
            return;
        auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start_)
                .count();
        timer_->record(static_cast<uint64_t>(us < 0 ? 0 : us));
    }

    TimerScope(const TimerScope &) = delete;
    TimerScope &operator=(const TimerScope &) = delete;

  private:
    Timer *timer_;
    std::chrono::steady_clock::time_point start_;
};

/** One metric in a registry snapshot. */
struct MetricSample
{
    std::string name;
    enum Kind
    {
        kCounter,
        kGauge,
        kTimer
    } kind = kCounter;
    int64_t value = 0;       ///< counter/gauge value; timer count
    uint64_t sumMicros = 0;  ///< timers only
    uint64_t minMicros = 0;  ///< timers only
    uint64_t maxMicros = 0;  ///< timers only
};

/**
 * The process-wide metric registry. Registration (first lookup of a
 * name) takes a mutex; subsequent use of the returned reference is
 * lock-free. Entries are never removed, so references stay valid for
 * the process lifetime.
 */
class Registry
{
  public:
    static Registry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Timer &timer(const std::string &name);

    /** All metrics, name-sorted, one consistent-enough read each. */
    std::vector<MetricSample> snapshot() const;

    /** The snapshot as one JSON object: counters/gauges map to
     * numbers, timers to {count,sum_us,min_us,max_us,mean_us}. */
    std::string json() const;

    /** Prometheus text exposition (version 0.0.4): every name gains a
     * `gpulitmus_` prefix, timers render as `<name>_count` /
     * `<name>_sum_us` / min / max. */
    std::string prometheus() const;

    /** Zero every value (names and references survive). Tests only —
     * the daemon's counters are cumulative by design. */
    void reset();

  private:
    Registry() = default;
    struct Impl;
    Impl &impl() const;
};

/** Shorthands for call-site caching:
 *   static obs::Counter &c = obs::counter("mc_replays_total"); */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Timer &timer(const std::string &name);

} // namespace gpulitmus::obs

#endif // GPULITMUS_OBS_METRICS_H
