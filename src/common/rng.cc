#include "common/rng.h"

#include "common/log.h"

namespace gpulitmus {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

void
Rng::reseed(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    if (bound == 0)
        panic("Rng::below called with bound 0");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    if (lo > hi)
        panic("Rng::range called with lo > hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(below(span));
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefULL);
}

} // namespace gpulitmus
