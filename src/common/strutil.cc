#include "common/strutil.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

namespace gpulitmus {

std::string
trim(std::string_view s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (auto &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::optional<int64_t>
parseInt(std::string_view s)
{
    std::string str = trim(s);
    if (str.empty())
        return std::nullopt;
    char *end = nullptr;
    long long v = std::strtoll(str.c_str(), &end, 0);
    if (end != str.c_str() + str.size())
        return std::nullopt;
    return static_cast<int64_t>(v);
}

uint64_t
fnv1a(std::string_view s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeJsonArray(std::ostream &os,
               const std::vector<std::string> &entries)
{
    os << "[\n";
    for (size_t i = 0; i < entries.size(); ++i) {
        os << "  " << entries[i];
        if (i + 1 < entries.size())
            os << ",";
        os << "\n";
    }
    os << "]\n";
}

bool
writeJsonArrayFile(const std::string &path,
                   const std::vector<std::string> &entries)
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeJsonArray(out, entries);
    return out.good();
}

} // namespace gpulitmus
