#include "common/strutil.h"

#include <cctype>
#include <cstdlib>

namespace gpulitmus {

std::string
trim(std::string_view s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (auto &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::optional<int64_t>
parseInt(std::string_view s)
{
    std::string str = trim(s);
    if (str.empty())
        return std::nullopt;
    char *end = nullptr;
    long long v = std::strtoll(str.c_str(), &end, 0);
    if (end != str.c_str() + str.size())
        return std::nullopt;
    return static_cast<int64_t>(v);
}

} // namespace gpulitmus
