#include "common/json.h"

#include <cctype>
#include <cstdlib>

namespace gpulitmus::json {

const Value *
Value::find(const std::string &key) const
{
    if (!isObject())
        return nullptr;
    auto it = object_->find(key);
    return it == object_->end() ? nullptr : &it->second;
}

std::string
Value::getString(const std::string &key,
                 const std::string &fallback) const
{
    const Value *v = find(key);
    return v && v->isString() ? v->string() : fallback;
}

int64_t
Value::getInt(const std::string &key, int64_t fallback) const
{
    const Value *v = find(key);
    return v && v->isNumber() ? v->integer() : fallback;
}

bool
Value::getBool(const std::string &key, bool fallback) const
{
    const Value *v = find(key);
    return v && v->isBool() ? v->boolean() : fallback;
}

const Array &
Value::getArray(const std::string &key) const
{
    static const Array empty;
    const Value *v = find(key);
    return v && v->isArray() ? v->array() : empty;
}

namespace {

constexpr int kMaxDepth = 64;

struct Parser
{
    std::string_view text;
    size_t pos = 0;
    std::string error = {};

    bool
    fail(const std::string &message)
    {
        if (error.empty()) {
            error = message + " at byte " + std::to_string(pos);
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return fail("invalid literal");
        pos += word.size();
        return true;
    }

    bool
    parseHex4(uint32_t *out)
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos >= text.size())
                return fail("truncated \\u escape");
            char c = text[pos++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<uint32_t>(c - 'A' + 10);
            else
                return fail("invalid \\u escape");
        }
        *out = v;
        return true;
    }

    static void
    appendUtf8(std::string &out, uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    parseString(std::string *out)
    {
        if (!consume('"'))
            return fail("expected string");
        out->clear();
        while (true) {
            if (pos >= text.size())
                return fail("unterminated string");
            char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("truncated escape");
            char e = text[pos++];
            switch (e) {
              case '"': *out += '"'; break;
              case '\\': *out += '\\'; break;
              case '/': *out += '/'; break;
              case 'b': *out += '\b'; break;
              case 'f': *out += '\f'; break;
              case 'n': *out += '\n'; break;
              case 'r': *out += '\r'; break;
              case 't': *out += '\t'; break;
              case 'u': {
                  uint32_t cp = 0;
                  if (!parseHex4(&cp))
                      return false;
                  // Surrogate pair: a high surrogate must be followed
                  // by \uDC00-\uDFFF; anything else keeps the lone
                  // code unit (lenient, like most line-protocol
                  // readers).
                  if (cp >= 0xd800 && cp <= 0xdbff &&
                      text.substr(pos, 2) == "\\u") {
                      size_t saved = pos;
                      pos += 2;
                      uint32_t lo = 0;
                      if (!parseHex4(&lo))
                          return false;
                      if (lo >= 0xdc00 && lo <= 0xdfff) {
                          cp = 0x10000 + ((cp - 0xd800) << 10) +
                               (lo - 0xdc00);
                      } else {
                          pos = saved;
                      }
                  }
                  appendUtf8(*out, cp);
                  break;
              }
              default: return fail("invalid escape");
            }
        }
    }

    bool
    parseNumber(Value *out)
    {
        size_t start = pos;
        bool isInt = true;
        if (consume('-')) {
        }
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            ++pos;
        if (pos == start || (text[start] == '-' && pos == start + 1))
            return fail("invalid number");
        if (pos < text.size() && text[pos] == '.') {
            isInt = false;
            ++pos;
            while (pos < text.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (pos < text.size() &&
            (text[pos] == 'e' || text[pos] == 'E')) {
            isInt = false;
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            while (pos < text.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        std::string token(text.substr(start, pos - start));
        if (isInt) {
            errno = 0;
            // strtoull covers the full u64 range (seeds are u64);
            // the sign is applied after so -N still round-trips.
            bool neg = token[0] == '-';
            uint64_t mag = std::strtoull(
                token.c_str() + (neg ? 1 : 0), nullptr, 10);
            if (errno == ERANGE)
                return fail("integer out of range");
            int64_t v = neg ? -static_cast<int64_t>(mag)
                            : static_cast<int64_t>(mag);
            *out = Value(v);
        } else {
            *out = Value(std::strtod(token.c_str(), nullptr));
        }
        return true;
    }

    bool
    parseValue(Value *out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{') {
            ++pos;
            Object obj;
            skipSpace();
            if (consume('}')) {
                *out = Value(std::move(obj));
                return true;
            }
            while (true) {
                skipSpace();
                std::string key;
                if (!parseString(&key))
                    return false;
                skipSpace();
                if (!consume(':'))
                    return fail("expected ':'");
                Value v;
                if (!parseValue(&v, depth + 1))
                    return false;
                obj[key] = std::move(v);
                skipSpace();
                if (consume(','))
                    continue;
                if (consume('}'))
                    break;
                return fail("expected ',' or '}'");
            }
            *out = Value(std::move(obj));
            return true;
        }
        if (c == '[') {
            ++pos;
            Array arr;
            skipSpace();
            if (consume(']')) {
                *out = Value(std::move(arr));
                return true;
            }
            while (true) {
                Value v;
                if (!parseValue(&v, depth + 1))
                    return false;
                arr.push_back(std::move(v));
                skipSpace();
                if (consume(','))
                    continue;
                if (consume(']'))
                    break;
                return fail("expected ',' or ']'");
            }
            *out = Value(std::move(arr));
            return true;
        }
        if (c == '"') {
            std::string s;
            if (!parseString(&s))
                return false;
            *out = Value(std::move(s));
            return true;
        }
        if (c == 't') {
            if (!literal("true"))
                return false;
            *out = Value(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return false;
            *out = Value(false);
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return false;
            *out = Value();
            return true;
        }
        return parseNumber(out);
    }
};

} // namespace

std::optional<Value>
parse(std::string_view text, std::string *error)
{
    Parser p{text};
    Value v;
    if (!p.parseValue(&v, 0)) {
        if (error)
            *error = p.error;
        return std::nullopt;
    }
    p.skipSpace();
    if (p.pos != p.text.size()) {
        p.fail("trailing characters after document");
        if (error)
            *error = p.error;
        return std::nullopt;
    }
    return v;
}

} // namespace gpulitmus::json
