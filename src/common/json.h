/**
 * @file
 * A minimal recursive-descent JSON reader for the serve protocol.
 *
 * The daemon's wire format is line-delimited JSON (docs/SERVE.md);
 * everything the tree needs is to *read* small request objects —
 * writing stays with strutil's jsonEscape/writeJsonArray emitters.
 * This is deliberately a reader for machine-built protocol lines, not
 * a general document store: numbers are parsed as int64 when they
 * have no fraction/exponent (job counts, seeds, budgets) and as
 * double otherwise, object keys keep last-wins semantics, and depth
 * is capped so a hostile request cannot recurse the stack away.
 */

#ifndef GPULITMUS_COMMON_JSON_H
#define GPULITMUS_COMMON_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gpulitmus::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/** One parsed JSON value (tagged union over the seven JSON kinds,
 * with integers split out from doubles for lossless u64/i64 round
 * trips of seeds and budgets). */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Double,
        String,
        ArrayKind,
        ObjectKind,
    };

    Value() = default;
    explicit Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    explicit Value(int64_t i) : kind_(Kind::Int), int_(i) {}
    explicit Value(double d) : kind_(Kind::Double), double_(d) {}
    explicit Value(std::string s)
        : kind_(Kind::String), string_(std::move(s))
    {
    }
    explicit Value(Array a)
        : kind_(Kind::ArrayKind),
          array_(std::make_shared<Array>(std::move(a)))
    {
    }
    explicit Value(Object o)
        : kind_(Kind::ObjectKind),
          object_(std::make_shared<Object>(std::move(o)))
    {
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isInt() const { return kind_ == Kind::Int; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::ArrayKind; }
    bool isObject() const { return kind_ == Kind::ObjectKind; }

    bool boolean() const { return bool_; }
    int64_t integer() const
    {
        return kind_ == Kind::Double ? static_cast<int64_t>(double_)
                                     : int_;
    }
    double number() const
    {
        return kind_ == Kind::Int ? static_cast<double>(int_)
                                  : double_;
    }
    const std::string &string() const { return string_; }
    const Array &array() const { return *array_; }
    const Object &object() const { return *object_; }

    // ---- object field accessors (null/default when absent or of the
    // wrong kind — protocol fields are all optional-with-default) ----

    /** Member lookup; null when not an object or the key is absent. */
    const Value *find(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
    int64_t getInt(const std::string &key, int64_t fallback) const;
    bool getBool(const std::string &key, bool fallback) const;
    /** The member as an array; empty when absent or not an array. */
    const Array &getArray(const std::string &key) const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    /** shared_ptr keeps Value copyable/cheap and breaks the
     * value-contains-vector-of-itself sizing knot. */
    std::shared_ptr<Array> array_;
    std::shared_ptr<Object> object_;
};

/**
 * Parse one JSON document. Trailing non-whitespace (a second value on
 * the line) is an error, as is nesting deeper than 64 levels. Returns
 * nullopt and sets `error` (with a byte offset) on malformed input.
 */
std::optional<Value> parse(std::string_view text,
                           std::string *error = nullptr);

} // namespace gpulitmus::json

#endif // GPULITMUS_COMMON_JSON_H
