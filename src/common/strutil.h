/**
 * @file
 * Small string utilities shared by the parsers and printers.
 */

#ifndef GPULITMUS_COMMON_STRUTIL_H
#define GPULITMUS_COMMON_STRUTIL_H

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gpulitmus {

/** Strip leading and trailing whitespace. */
std::string trim(std::string_view s);

/** Split on a separator character; keeps empty fields. */
std::vector<std::string> split(std::string_view s, char sep);

/** Split on arbitrary whitespace runs; drops empty fields. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** True if s starts with the given prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** True if s ends with the given suffix. */
bool endsWith(std::string_view s, std::string_view suffix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/** Parse a decimal or 0x-prefixed hexadecimal signed integer. */
std::optional<int64_t> parseInt(std::string_view s);

/** FNV-1a 64-bit hash; the string-hashing primitive of job keys and
 * memo tables across the harness, model and eval layers. */
uint64_t fnv1a(std::string_view s);

/** Escape a string for embedding in a JSON document (quotes,
 * backslashes, control characters). */
std::string jsonEscape(std::string_view s);

/** Write pre-rendered JSON values as one array document, one value
 * per line — the shared emitter behind every sink's writeTo. */
void writeJsonArray(std::ostream &os,
                    const std::vector<std::string> &entries);

/** writeJsonArray into a file; false when the path is unwritable. */
bool writeJsonArrayFile(const std::string &path,
                        const std::vector<std::string> &entries);

/** Join the items of a container with a separator. */
template <typename Container>
std::string
join(const Container &items, std::string_view sep)
{
    std::string out;
    bool first = true;
    for (const auto &item : items) {
        if (!first)
            out += sep;
        out += item;
        first = false;
    }
    return out;
}

} // namespace gpulitmus

#endif // GPULITMUS_COMMON_STRUTIL_H
