/**
 * @file
 * Error-reporting and logging primitives, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic() is for internal invariant violations (a gpulitmus bug);
 * fatal() is for unrecoverable user errors (bad input files, bad CLI
 * arguments); warn() and inform() are status channels that never stop
 * execution.
 */

#ifndef GPULITMUS_COMMON_LOG_H
#define GPULITMUS_COMMON_LOG_H

#include <cstdarg>
#include <string>

namespace gpulitmus {

/** Print a printf-style message tagged "panic:" and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a printf-style message tagged "fatal:" and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a printf-style message tagged "warn:" to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a printf-style status message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf into a std::string. */
std::string vstrprintf(const char *fmt, va_list args);

} // namespace gpulitmus

#endif // GPULITMUS_COMMON_LOG_H
