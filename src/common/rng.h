/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic machinery in gpulitmus (the hardware simulator's
 * interleaving scheduler, the incantation jitter, the test harness'
 * thread randomisation) draws from this xoshiro256** generator so that
 * every experiment is reproducible from its seed.
 */

#ifndef GPULITMUS_COMMON_RNG_H
#define GPULITMUS_COMMON_RNG_H

#include <cstddef>
#include <cstdint>
#include <utility>

namespace gpulitmus {

/**
 * xoshiro256** PRNG (Blackman & Vigna). Deterministic, seedable, fast,
 * and with far better statistical properties than rand().
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialise the state from a 64-bit seed. */
    void reseed(uint64_t seed);

    /** Next raw 64-bit output. */
    uint64_t next();

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /** Fisher-Yates shuffle of a random-access container. */
    template <typename Vec>
    void
    shuffle(Vec &v)
    {
        if (v.size() < 2)
            return;
        for (size_t i = v.size() - 1; i > 0; --i) {
            size_t j = static_cast<size_t>(below(i + 1));
            std::swap(v[i], v[j]);
        }
    }

    /** Split off an independently seeded child generator. */
    Rng split();

  private:
    uint64_t s_[4];
};

} // namespace gpulitmus

#endif // GPULITMUS_COMMON_RNG_H
