/**
 * @file
 * Streaming 128-bit hashing for hot-path state keys.
 *
 * The model checker visits millions of machine states; keying its
 * memo table on a freshly built byte string per state is an
 * allocation, a copy and a full-width comparison per lookup. Hash128
 * replaces that with an incremental digest: callers stream the state
 * fields (put8/put64, in canonical encoding order) and take a 128-bit
 * digest at the end — no intermediate buffer, collision probability
 * ~n^2 / 2^128 (birthday bound; astronomically below any feasible
 * state count), and the explorer's debug mode cross-checks digests
 * against the full string encoding anyway.
 *
 * Construction: each absorbed value updates two independent lanes
 * with a rotate-xor/add-multiply step (distinct rotations and odd
 * multipliers per lane — the rotation breaks the top-bit fixed point
 * of plain multiply chains, the odd multiply diffuses the rotated
 * difference). digest() folds the absorb count into both lanes (so
 * streams of different lengths cannot alias) and applies a full
 * splitmix64-style avalanche per lane. Every step is bijective in
 * the lane state, so information is never discarded before the final
 * fold.
 *
 * Stability guarantee: a digest is a pure function of the absorbed
 * value sequence, stable within a process and across processes of the
 * same build — but NOT a serialisation format. Do not persist
 * digests: the constants may change between versions, and equal
 * digests are only meaningful when both sides hashed with the same
 * code.
 */

#ifndef GPULITMUS_COMMON_HASH_H
#define GPULITMUS_COMMON_HASH_H

#include <cstddef>
#include <cstdint>

namespace gpulitmus {

/** A 128-bit digest: equality-comparable, cheaply hashable. */
struct Digest128
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    bool operator==(const Digest128 &) const = default;

    /** Fold to a table-bucket hash. The lanes are already avalanched,
     * so mixing them with an odd multiplier suffices. */
    struct Hasher
    {
        size_t
        operator()(const Digest128 &d) const
        {
            return static_cast<size_t>(
                d.lo ^ (d.hi * 0x9e3779b97f4a7c15ULL));
        }
    };
};

/** Incremental 128-bit hash accumulator (see file header). */
class Hash128
{
  public:
    void put8(uint8_t v) { absorb(v); }
    void put64(uint64_t v) { absorb(v); }

    void
    putBytes(const uint8_t *data, size_t n)
    {
        for (size_t i = 0; i < n; ++i)
            absorb(data[i]);
    }

    /** Finalise. The accumulator may keep absorbing afterwards;
     * digest() is a pure read of the current stream position. */
    Digest128
    digest() const
    {
        uint64_t x =
            avalanche(a_ ^ (count_ * 0x9e3779b97f4a7c15ULL));
        uint64_t y = avalanche(b_ + count_);
        return {x, y};
    }

  private:
    static uint64_t
    rotl(uint64_t x, int r)
    {
        return (x << r) | (x >> (64 - r));
    }

    /** splitmix64 finaliser: full-avalanche bijection. */
    static uint64_t
    avalanche(uint64_t x)
    {
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }

    void
    absorb(uint64_t v)
    {
        a_ = rotl(a_ ^ v, 24) * 0x9e3779b97f4a7c15ULL;
        b_ = rotl(b_ + v, 37) * 0xc2b2ae3d27d4eb4fULL;
        ++count_;
    }

    uint64_t a_ = 0x243f6a8885a308d3ULL; ///< pi fractional bits
    uint64_t b_ = 0x13198a2e03707344ULL;
    uint64_t count_ = 0;
};

} // namespace gpulitmus

#endif // GPULITMUS_COMMON_HASH_H
