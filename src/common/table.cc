#include "common/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace gpulitmus {

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());

    std::vector<size_t> widths(ncols, 0);
    auto measure = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());
    };
    if (!header_.empty())
        measure(header_);
    for (const auto &r : rows_)
        measure(r);

    auto emit = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < ncols; ++i) {
            const std::string cell = i < r.size() ? r[i] : "";
            os << cell << std::string(widths[i] - cell.size(), ' ');
            if (i + 1 < ncols)
                os << "  ";
        }
        os << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t i = 0; i < ncols; ++i)
            total += widths[i] + (i + 1 < ncols ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
}

std::string
Table::str() const
{
    std::ostringstream ss;
    print(ss);
    return ss.str();
}

} // namespace gpulitmus
