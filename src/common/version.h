/**
 * @file
 * The compiled-in code-version / result-schema stamp.
 *
 * Persisted verdicts are only reusable between binaries that would
 * have computed them identically. Three things can silently change a
 * result between builds: the simulator/explorer semantics, the
 * outcome-key rendering, and the digest construction itself
 * (common/hash.h documents that its constants are not a serialisation
 * format). kAbiVersion names the equivalence class: two binaries with
 * the same stamp promise bit-identical results for the same job.
 *
 * Bump the number whenever any of those change:
 *  - machine/explorer behaviour for an existing job (new ChoiceKind,
 *    changed chip fit, changed pruning that alters results),
 *  - job digest or store record encoding (serve/store.h),
 *  - outcome-key or verdict rendering,
 *  - Hash128/Digest128 constants.
 *
 * The stamp is folded into every persistent job digest AND written
 * into the store file header, so a stale store is detected even if
 * the digest function itself is what changed. It is also reported by
 * `gpulitmus list --json` and the serve `hello` handshake so clients
 * can refuse to mix incompatible daemons.
 */

#ifndef GPULITMUS_COMMON_VERSION_H
#define GPULITMUS_COMMON_VERSION_H

namespace gpulitmus {

/** Result-equivalence generation (see file header for bump rules).
 * 2: the mc backend's static pre-pass (analysis/) answers
 * fully-ordered programs from SC enumeration, changing the stored
 * search statistics and path weights for those jobs. */
inline constexpr int kAbiVersion = 2;

/** The stamp as written into store headers, handshakes and JSON. */
inline constexpr const char *kAbiVersionString = "gpulitmus-abi-2";

} // namespace gpulitmus

#endif // GPULITMUS_COMMON_VERSION_H
