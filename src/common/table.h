/**
 * @file
 * A tiny fixed-width table printer used by the benchmark binaries to
 * render the paper's tables (obs/100k per chip, fence sweeps, the
 * 16-column incantation matrix of Tab. 6, ...).
 */

#ifndef GPULITMUS_COMMON_TABLE_H
#define GPULITMUS_COMMON_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace gpulitmus {

/**
 * Accumulates rows of string cells and renders them with aligned
 * columns. The first row added with header() is separated from the
 * body by a rule.
 */
class Table
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a body row. */
    void row(std::vector<std::string> cells);

    /** Render to a stream with per-column alignment. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string str() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gpulitmus

#endif // GPULITMUS_COMMON_TABLE_H
