#include "cat/cat.h"

#include <cctype>
#include <map>

#include "common/log.h"
#include "common/strutil.h"

namespace gpulitmus::cat {

using axiom::EventSet;
using axiom::Execution;
using axiom::Relation;

namespace {

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

enum class Tok {
    Ident,
    Let,
    Acyclic,
    Irreflexive,
    Empty,
    As,
    Eq,
    Bar,
    Amp,
    Backslash,
    Semi,
    Plus,
    Star,
    Question,
    Inverse, // ^-1
    LParen,
    RParen,
    Comma,
    End,
};

struct Token
{
    Tok kind = Tok::End;
    std::string text;
    int line = 1;
};

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : src_(src) { advance(); }

    const Token &peek() const { return tok_; }

    Token
    take()
    {
        Token t = tok_;
        advance();
        return t;
    }

    bool
    takeIf(Tok kind)
    {
        if (tok_.kind == kind) {
            advance();
            return true;
        }
        return false;
    }

  private:
    void
    advance()
    {
        skipTrivia();
        tok_.line = line_;
        if (pos_ >= src_.size()) {
            tok_ = Token{Tok::End, "", line_};
            return;
        }
        char c = src_[pos_];
        auto simple = [&](Tok k, const char *text, size_t len) {
            tok_ = Token{k, text, line_};
            pos_ += len;
        };
        switch (c) {
          case '|': return simple(Tok::Bar, "|", 1);
          case '&': return simple(Tok::Amp, "&", 1);
          case '\\': return simple(Tok::Backslash, "\\", 1);
          case ';': return simple(Tok::Semi, ";", 1);
          case '+': return simple(Tok::Plus, "+", 1);
          case '*': return simple(Tok::Star, "*", 1);
          case '?': return simple(Tok::Question, "?", 1);
          case '(': return simple(Tok::LParen, "(", 1);
          case ')': return simple(Tok::RParen, ")", 1);
          case ',': return simple(Tok::Comma, ",", 1);
          case '=': return simple(Tok::Eq, "=", 1);
          case '^':
            if (src_.compare(pos_, 3, "^-1") == 0)
                return simple(Tok::Inverse, "^-1", 3);
            break;
          default:
            break;
        }
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = pos_;
            while (pos_ < src_.size()) {
                char d = src_[pos_];
                if (std::isalnum(static_cast<unsigned char>(d)) ||
                    d == '_' || d == '.' ||
                    (d == '-' &&
                     pos_ + 1 < src_.size() &&
                     (std::isalnum(static_cast<unsigned char>(
                          src_[pos_ + 1])) ||
                      src_[pos_ + 1] == '_'))) {
                    ++pos_;
                } else {
                    break;
                }
            }
            std::string word = src_.substr(start, pos_ - start);
            if (word == "let")
                tok_ = Token{Tok::Let, word, line_};
            else if (word == "acyclic")
                tok_ = Token{Tok::Acyclic, word, line_};
            else if (word == "irreflexive")
                tok_ = Token{Tok::Irreflexive, word, line_};
            else if (word == "empty")
                tok_ = Token{Tok::Empty, word, line_};
            else if (word == "as")
                tok_ = Token{Tok::As, word, line_};
            else
                tok_ = Token{Tok::Ident, word, line_};
            return;
        }
        // Unknown character: surface as an Ident token the parser
        // will reject with a line number.
        tok_ = Token{Tok::Ident, std::string(1, c), line_};
        ++pos_;
    }

    void
    skipTrivia()
    {
        for (;;) {
            if (pos_ >= src_.size())
                return;
            char c = src_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (src_.compare(pos_, 2, "//") == 0) {
                while (pos_ < src_.size() && src_[pos_] != '\n')
                    ++pos_;
            } else if (src_.compare(pos_, 2, "(*") == 0) {
                pos_ += 2;
                while (pos_ < src_.size() &&
                       src_.compare(pos_, 2, "*)") != 0) {
                    if (src_[pos_] == '\n')
                        ++line_;
                    ++pos_;
                }
                pos_ += 2;
            } else {
                return;
            }
        }
    }

    const std::string &src_;
    size_t pos_ = 0;
    int line_ = 1;
    Token tok_;
};

// ---------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr
{
    enum class Kind {
        Name,
        Union,
        Inter,
        Diff,
        Seq,
        Plus,
        Star,
        Maybe,
        Inverse,
        App,
    };

    Kind kind;
    std::string name;           // Name / App callee
    std::vector<ExprPtr> args;  // App arguments
    ExprPtr lhs, rhs;           // binary / unary (lhs only)
    int line = 0;
};

enum class CheckKind { Acyclic, Irreflexive, Empty };

struct Stmt
{
    enum class Kind { Let, Check };

    Kind kind;
    // Let
    std::string name;
    std::vector<std::string> params;
    // Check
    CheckKind check = CheckKind::Acyclic;
    std::string checkName;

    ExprPtr expr;
    int line = 0;
};

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

class Parser
{
  public:
    explicit Parser(const std::string &src) : lex_(src) {}

    std::optional<std::vector<Stmt>>
    parse(CatError *error)
    {
        std::vector<Stmt> stmts;
        while (lex_.peek().kind != Tok::End) {
            auto s = parseStmt();
            if (!s) {
                if (error)
                    *error = err_;
                return std::nullopt;
            }
            stmts.push_back(std::move(*s));
        }
        return stmts;
    }

  private:
    std::nullopt_t
    fail(const std::string &msg)
    {
        if (err_.message.empty()) {
            err_.message = msg;
            err_.line = lex_.peek().line;
        }
        return std::nullopt;
    }

    std::optional<Stmt>
    parseStmt()
    {
        const Token &t = lex_.peek();
        if (t.kind == Tok::Let)
            return parseLet();
        if (t.kind == Tok::Acyclic || t.kind == Tok::Irreflexive ||
            t.kind == Tok::Empty)
            return parseCheck();
        return fail("expected 'let' or a check, got '" + t.text + "'");
    }

    std::optional<Stmt>
    parseLet()
    {
        Stmt s;
        s.kind = Stmt::Kind::Let;
        s.line = lex_.peek().line;
        lex_.take(); // let
        if (lex_.peek().kind != Tok::Ident)
            return fail("expected name after 'let'");
        s.name = lex_.take().text;
        if (lex_.takeIf(Tok::LParen)) {
            for (;;) {
                if (lex_.peek().kind != Tok::Ident)
                    return fail("expected parameter name");
                s.params.push_back(lex_.take().text);
                if (lex_.takeIf(Tok::Comma))
                    continue;
                if (lex_.takeIf(Tok::RParen))
                    break;
                return fail("expected ',' or ')' in parameter list");
            }
        }
        if (!lex_.takeIf(Tok::Eq))
            return fail("expected '=' in let");
        auto e = parseExpr();
        if (!e)
            return std::nullopt;
        s.expr = *e;
        return s;
    }

    std::optional<Stmt>
    parseCheck()
    {
        Stmt s;
        s.kind = Stmt::Kind::Check;
        s.line = lex_.peek().line;
        Token t = lex_.take();
        switch (t.kind) {
          case Tok::Acyclic: s.check = CheckKind::Acyclic; break;
          case Tok::Irreflexive: s.check = CheckKind::Irreflexive; break;
          case Tok::Empty: s.check = CheckKind::Empty; break;
          default: panic("unreachable");
        }
        auto e = parseExpr();
        if (!e)
            return std::nullopt;
        s.expr = *e;
        if (lex_.takeIf(Tok::As)) {
            if (lex_.peek().kind != Tok::Ident)
                return fail("expected name after 'as'");
            s.checkName = lex_.take().text;
        } else {
            s.checkName = t.text;
        }
        return s;
    }

    // Precedence (loosest to tightest): | then & then \ then ;
    std::optional<ExprPtr>
    parseExpr()
    {
        return parseBinary(0);
    }

    std::optional<ExprPtr>
    parseBinary(int level)
    {
        static const Tok ops[] = {Tok::Bar, Tok::Amp, Tok::Backslash,
                                  Tok::Semi};
        static const Expr::Kind kinds[] = {
            Expr::Kind::Union, Expr::Kind::Inter, Expr::Kind::Diff,
            Expr::Kind::Seq};
        if (level == 4)
            return parsePostfix();
        auto lhs = parseBinary(level + 1);
        if (!lhs)
            return std::nullopt;
        while (lex_.peek().kind == ops[level]) {
            int line = lex_.take().line;
            auto rhs = parseBinary(level + 1);
            if (!rhs)
                return std::nullopt;
            auto e = std::make_shared<Expr>();
            e->kind = kinds[level];
            e->lhs = *lhs;
            e->rhs = *rhs;
            e->line = line;
            lhs = e;
        }
        return lhs;
    }

    std::optional<ExprPtr>
    parsePostfix()
    {
        auto base = parseAtom();
        if (!base)
            return std::nullopt;
        for (;;) {
            Expr::Kind k;
            if (lex_.peek().kind == Tok::Plus)
                k = Expr::Kind::Plus;
            else if (lex_.peek().kind == Tok::Star)
                k = Expr::Kind::Star;
            else if (lex_.peek().kind == Tok::Question)
                k = Expr::Kind::Maybe;
            else if (lex_.peek().kind == Tok::Inverse)
                k = Expr::Kind::Inverse;
            else
                break;
            int line = lex_.take().line;
            auto e = std::make_shared<Expr>();
            e->kind = k;
            e->lhs = *base;
            e->line = line;
            base = ExprPtr(e);
        }
        return base;
    }

    std::optional<ExprPtr>
    parseAtom()
    {
        const Token &t = lex_.peek();
        if (t.kind == Tok::LParen) {
            lex_.take();
            auto inner = parseExpr();
            if (!inner)
                return std::nullopt;
            if (!lex_.takeIf(Tok::RParen))
                return fail("expected ')'");
            return inner;
        }
        if (t.kind != Tok::Ident)
            return fail("expected relation, got '" + t.text + "'");
        Token name = lex_.take();
        auto e = std::make_shared<Expr>();
        e->name = name.text;
        e->line = name.line;
        if (lex_.takeIf(Tok::LParen)) {
            e->kind = Expr::Kind::App;
            for (;;) {
                auto arg = parseExpr();
                if (!arg)
                    return std::nullopt;
                e->args.push_back(*arg);
                if (lex_.takeIf(Tok::Comma))
                    continue;
                if (lex_.takeIf(Tok::RParen))
                    break;
                return fail("expected ',' or ')' in arguments");
            }
        } else {
            e->kind = Expr::Kind::Name;
        }
        return ExprPtr(e);
    }

    Lexer lex_;
    CatError err_;
};

} // anonymous namespace

// ---------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------

struct Model::Impl
{
    std::vector<Stmt> stmts;

    struct Env
    {
        const Execution *ex = nullptr;
        std::map<std::string, Relation> rels;
        std::map<std::string, EventSet> sets;
        std::map<std::string, const Stmt *> funcs;
    };

    Relation
    eval(const ExprPtr &e, Env &env) const
    {
        switch (e->kind) {
          case Expr::Kind::Name: {
            auto it = env.rels.find(e->name);
            if (it != env.rels.end())
                return it->second;
            fatal("cat: undefined relation '%s' (line %d)",
                  e->name.c_str(), e->line);
          }
          case Expr::Kind::Union:
            return eval(e->lhs, env) | eval(e->rhs, env);
          case Expr::Kind::Inter:
            return eval(e->lhs, env) & eval(e->rhs, env);
          case Expr::Kind::Diff:
            return eval(e->lhs, env).minus(eval(e->rhs, env));
          case Expr::Kind::Seq:
            return eval(e->lhs, env).seq(eval(e->rhs, env));
          case Expr::Kind::Plus:
            return eval(e->lhs, env).plus();
          case Expr::Kind::Star:
            return eval(e->lhs, env).star();
          case Expr::Kind::Maybe:
            return eval(e->lhs, env).maybe();
          case Expr::Kind::Inverse:
            return eval(e->lhs, env).inverse();
          case Expr::Kind::App:
            return apply(e, env);
        }
        panic("unreachable");
    }

    Relation
    apply(const ExprPtr &e, Env &env) const
    {
        // Built-in event-class filters.
        auto filter = [&](EventSet dom,
                          EventSet rng) -> Relation {
            if (e->args.size() != 1)
                fatal("cat: filter '%s' takes one argument (line %d)",
                      e->name.c_str(), e->line);
            return eval(e->args[0], env).restrict(dom, rng);
        };
        EventSet r_set = env.sets.at("R");
        EventSet w_set = env.sets.at("W");
        if (e->name == "WW")
            return filter(w_set, w_set);
        if (e->name == "WR")
            return filter(w_set, r_set);
        if (e->name == "RW")
            return filter(r_set, w_set);
        if (e->name == "RR")
            return filter(r_set, r_set);

        auto it = env.funcs.find(e->name);
        if (it == env.funcs.end())
            fatal("cat: undefined function '%s' (line %d)",
                  e->name.c_str(), e->line);
        const Stmt *def = it->second;
        if (def->params.size() != e->args.size())
            fatal("cat: '%s' expects %zu arguments, got %zu (line %d)",
                  e->name.c_str(), def->params.size(), e->args.size(),
                  e->line);
        // Evaluate arguments, bind, evaluate body, restore.
        std::vector<std::pair<std::string, std::optional<Relation>>>
            saved;
        for (size_t i = 0; i < def->params.size(); ++i) {
            Relation arg = eval(e->args[i], env);
            auto old = env.rels.find(def->params[i]);
            saved.emplace_back(def->params[i],
                               old == env.rels.end()
                                   ? std::nullopt
                                   : std::optional<Relation>(
                                         old->second));
            env.rels[def->params[i]] = std::move(arg);
        }
        Relation result = eval(def->expr, env);
        for (auto &[name, old] : saved) {
            if (old)
                env.rels[name] = std::move(*old);
            else
                env.rels.erase(name);
        }
        return result;
    }

    Env
    baseEnv(const Execution &ex) const
    {
        Env env;
        env.ex = &ex;
        env.rels = ex.relationEnv();
        env.sets = ex.setEnv();
        return env;
    }
};

std::string
ModelResult::firstFailure() const
{
    for (const auto &c : checks) {
        if (!c.passed)
            return c.name;
    }
    return "";
}

std::optional<Model>
Model::parse(const std::string &source, const std::string &name,
             CatError *error)
{
    Parser parser(source);
    auto stmts = parser.parse(error);
    if (!stmts)
        return std::nullopt;
    Model m;
    auto impl = std::make_shared<Impl>();
    impl->stmts = std::move(*stmts);
    m.impl_ = std::move(impl);
    m.name_ = name;
    return m;
}

Model
Model::parseOrDie(const std::string &source, const std::string &name)
{
    CatError err;
    auto m = parse(source, name, &err);
    if (!m)
        fatal("cat model '%s': %s (line %d)", name.c_str(),
              err.message.c_str(), err.line);
    return *m;
}

ModelResult
Model::evaluate(const axiom::Execution &ex) const
{
    Impl::Env env = impl_->baseEnv(ex);
    ModelResult result;
    result.allowed = true;
    for (const auto &s : impl_->stmts) {
        if (s.kind == Stmt::Kind::Let) {
            if (s.params.empty())
                env.rels[s.name] = impl_->eval(s.expr, env);
            else
                env.funcs[s.name] = &s;
            continue;
        }
        Relation r = impl_->eval(s.expr, env);
        CheckResult cr;
        cr.name = s.checkName;
        switch (s.check) {
          case CheckKind::Acyclic:
            cr.kind = "acyclic";
            cr.passed = r.acyclic();
            if (!cr.passed)
                cr.cycle = r.findCycle();
            break;
          case CheckKind::Irreflexive:
            cr.kind = "irreflexive";
            cr.passed = r.irreflexive();
            break;
          case CheckKind::Empty:
            cr.kind = "empty";
            cr.passed = r.empty();
            break;
        }
        result.allowed &= cr.passed;
        result.checks.push_back(std::move(cr));
    }
    return result;
}

std::optional<axiom::Relation>
Model::relation(const std::string &name,
                const axiom::Execution &ex) const
{
    Impl::Env env = impl_->baseEnv(ex);
    for (const auto &s : impl_->stmts) {
        if (s.kind != Stmt::Kind::Let)
            continue;
        if (s.params.empty())
            env.rels[s.name] = impl_->eval(s.expr, env);
        else
            env.funcs[s.name] = &s;
        if (s.name == name && s.params.empty())
            return env.rels[s.name];
    }
    auto it = env.rels.find(name);
    if (it != env.rels.end())
        return it->second;
    return std::nullopt;
}

std::vector<std::string>
Model::checkNames() const
{
    std::vector<std::string> names;
    for (const auto &s : impl_->stmts) {
        if (s.kind == Stmt::Kind::Check)
            names.push_back(s.checkName);
    }
    return names;
}

} // namespace gpulitmus::cat
