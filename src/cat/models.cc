#include "cat/models.h"

#include <map>

namespace gpulitmus::cat::models {

std::string
rmoSource()
{
    // Fig. 15 of the paper, plus a single unscoped RMO constraint in
    // which every fence provides ordering (plain SPARC RMO).
    return R"CAT(
(* SPARC RMO, transcription of Fig. 15 *)
let com = rf | co | fr
let po-loc-llh = WW(po-loc) | WR(po-loc) | RW(po-loc)
acyclic (po-loc-llh | com) as sc-per-loc-llh
let dp = addr | data | ctrl
acyclic (dp | rf) as no-thin-air
let rmo(fence) = dp | fence | rfe | co | fr
let all-fence = membar.cta | membar.gl | membar.sys
acyclic rmo(all-fence) as rmo-constraint
)CAT";
}

std::string
ptxSource()
{
    // Fig. 15 concatenated with Fig. 16: RMO per scope.
    return R"CAT(
(* PTX model: RMO stratified by the GPU concurrency hierarchy.
   Transcription of Fig. 15 + Fig. 16 of the paper. *)
let com = rf | co | fr
let po-loc-llh = WW(po-loc) | WR(po-loc) | RW(po-loc)
acyclic (po-loc-llh | com) as sc-per-loc-llh
let dp = addr | data | ctrl
acyclic (dp | rf) as no-thin-air
let rmo(fence) = dp | fence | rfe | co | fr

let sys-fence = membar.sys
let gl-fence = membar.gl | sys-fence
let cta-fence = membar.cta | gl-fence
let rmo-cta = rmo(cta-fence) & cta
let rmo-gl = rmo(gl-fence) & gl
let rmo-sys = rmo(sys-fence) & sys
acyclic rmo-cta as cta-constraint
acyclic rmo-gl as gl-constraint
acyclic rmo-sys as sys-constraint
)CAT";
}

std::string
scSource()
{
    return R"CAT(
(* Sequential consistency: po and communication form a total order *)
let com = rf | co | fr
acyclic (po | com) as sc
)CAT";
}

std::string
tsoSource()
{
    return R"CAT(
(* x86-TSO-like: write-to-read program order relaxed, buffers
   forwarded locally *)
let com = rf | co | fr
acyclic (po-loc | com) as sc-per-loc
let ppo = po \ WR(po)
let all-fence = membar.cta | membar.gl | membar.sys
acyclic (ppo | all-fence | rfe | co | fr) as tso
)CAT";
}

std::string
scPerLocFullSource()
{
    return R"CAT(
(* Full SC-per-location *including* read-read pairs. Unsound for
   Fermi/Kepler, which exhibit coRR (Fig. 1): ablation of the
   load-load-hazard relaxation of Sec. 5.2.2. *)
let com = rf | co | fr
acyclic (po-loc | com) as sc-per-loc
)CAT";
}

namespace {

const Model &
cached(const char *name, std::string (*source)())
{
    static std::map<std::string, Model> cache;
    auto it = cache.find(name);
    if (it == cache.end())
        it = cache.emplace(name, Model::parseOrDie(source(), name))
                 .first;
    return it->second;
}

} // anonymous namespace

const Model &
ptx()
{
    return cached("ptx", ptxSource);
}

const Model &
rmo()
{
    return cached("rmo", rmoSource);
}

const Model &
sc()
{
    return cached("sc", scSource);
}

const Model &
tso()
{
    return cached("tso", tsoSource);
}

const Model &
scPerLocFull()
{
    return cached("sc-per-loc-full", scPerLocFullSource);
}

std::vector<std::pair<std::string, const Model *>>
all()
{
    return {
        {"ptx", &ptx()},
        {"rmo", &rmo()},
        {"sc", &sc()},
        {"tso", &tso()},
        {"sc-per-loc-full", &scPerLocFull()},
    };
}

} // namespace gpulitmus::cat::models
