/**
 * @file
 * A .cat model DSL (Alglave et al., "Herding cats", TOPLAS 2014)
 * sufficient for the paper's models (Fig. 15 and 16):
 *
 *   let com = rf | co | fr
 *   let po-loc-llh = WW(po-loc) | WR(po-loc) | RW(po-loc)
 *   acyclic (po-loc-llh | com) as sc-per-loc-llh
 *   let rmo(fence) = dp | fence | rfe | co | fr
 *   ...
 *
 * Supported: let bindings (optionally parameterised), the operators
 * | & \ ; + * ? ^-1, parentheses, the event-class filters WW / WR /
 * RW / RR, and the checks acyclic / irreflexive / empty with "as"
 * names. Comments are (* ... *) or // to end of line.
 */

#ifndef GPULITMUS_CAT_CAT_H
#define GPULITMUS_CAT_CAT_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "axiom/execution.h"

namespace gpulitmus::cat {

/** Outcome of a single model check on one candidate execution. */
struct CheckResult
{
    std::string name;  ///< the "as" name (or the check expression)
    std::string kind;  ///< acyclic / irreflexive / empty
    bool passed = false;
    /** A witness cycle (event ids) when an acyclic check fails. */
    std::vector<int> cycle;
};

/** Outcome of evaluating a whole model on one candidate. */
struct ModelResult
{
    bool allowed = false; ///< all checks passed
    std::vector<CheckResult> checks;

    /** Name of the first failed check, empty when allowed. */
    std::string firstFailure() const;
};

/** Parse / evaluation diagnostics. */
struct CatError
{
    std::string message;
    int line = 0;
};

/** A parsed .cat model. */
class Model
{
  public:
    /** Parse source text; nullopt + error on bad syntax. */
    static std::optional<Model> parse(const std::string &source,
                                      const std::string &name = "",
                                      CatError *error = nullptr);

    /** Like parse but calls fatal() on error (for built-in models). */
    static Model parseOrDie(const std::string &source,
                            const std::string &name = "");

    /** Evaluate all checks of the model on a candidate execution. */
    ModelResult evaluate(const axiom::Execution &ex) const;

    /**
     * Evaluate a named relation (either primitive or defined by a
     * let) in the context of an execution. Useful for inspection and
     * tests. nullopt if undefined or parameterised.
     */
    std::optional<axiom::Relation>
    relation(const std::string &name, const axiom::Execution &ex) const;

    const std::string &name() const { return name_; }

    /** Names of the checks in order. */
    std::vector<std::string> checkNames() const;

  private:
    struct Impl;
    std::shared_ptr<const Impl> impl_;
    std::string name_;
};

} // namespace gpulitmus::cat

#endif // GPULITMUS_CAT_CAT_H
