/**
 * @file
 * The built-in .cat models.
 *
 * - ptx(): the paper's model of Nvidia GPUs (Fig. 15 + Fig. 16):
 *   SPARC RMO with the load-load hazard relaxation, no-thin-air, and
 *   one RMO constraint per scope (cta / gl / sys).
 * - rmo(): plain (unscoped) SPARC RMO as in Fig. 15 with a single
 *   constraint where every fence orders — the paper's CPU baseline.
 * - sc(): sequential consistency (Lamport), for reference.
 * - tso(): an x86-TSO-like model, for reference.
 * - scPerLocFull(): full SC-per-location *including* read-read pairs;
 *   unsound for coRR-observing chips (ablation of Sec. 5.2.2).
 */

#ifndef GPULITMUS_CAT_MODELS_H
#define GPULITMUS_CAT_MODELS_H

#include <string>
#include <vector>

#include "cat/cat.h"

namespace gpulitmus::cat::models {

/** Source text of each built-in model. */
std::string ptxSource();
std::string rmoSource();
std::string scSource();
std::string tsoSource();
std::string scPerLocFullSource();

/** Parsed singletons (parsed once, shared). */
const Model &ptx();
const Model &rmo();
const Model &sc();
const Model &tso();
const Model &scPerLocFull();

/** All built-in models with their names. */
std::vector<std::pair<std::string, const Model *>> all();

} // namespace gpulitmus::cat::models

#endif // GPULITMUS_CAT_MODELS_H
