/**
 * @file
 * Exhaustive sequentially-consistent enumeration of a litmus test:
 * every interleaving of the threads' instructions, each executing
 * atomically in program order against flat memory.
 *
 * This is the reference semantics the race analyzer's "fully ordered"
 * verdict promises: if no conflicting pair can be reordered, the weak
 * machine can only produce outcomes this enumerator also reaches. The
 * explorer pre-pass (eval/backend.cc) substitutes this result for a
 * full weak-memory exploration on fully-ordered programs, and
 * tests/test_analysis.cc differentially validates the substitution.
 */

#ifndef GPULITMUS_ANALYSIS_SC_H
#define GPULITMUS_ANALYSIS_SC_H

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "litmus/test.h"

namespace gpulitmus::analysis {

struct ScOptions
{
    /** Distinct-state budget; enumeration declines beyond it. */
    uint64_t maxStates = 1u << 20;
};

/** The SC-reachable outcome set of a test. */
struct ScResult
{
    /** Every interleaving terminates and was enumerated. False when
     * a spin loop admits non-terminating schedules — the result then
     * covers exactly the terminating executions, matching the
     * explorer's fairComplete semantics. */
    bool complete = false;
    /** Outcome key (litmus::Histogram::keyFor) -> number of distinct
     * terminal machine states rendering to it. */
    std::map<std::string, uint64_t> finals;
    /** Outcome keys whose final state satisfies the condition body. */
    std::set<std::string> satisfying;
    uint64_t states = 0; ///< distinct states visited
};

/**
 * Enumerate the SC outcomes of a test by graph search over
 * interpreter states. Returns std::nullopt when the state budget is
 * exhausted (callers fall back to full exploration).
 */
std::optional<ScResult> enumerateSc(const litmus::Test &test,
                                    ScOptions opts = {});

} // namespace gpulitmus::analysis

#endif // GPULITMUS_ANALYSIS_SC_H
