/**
 * @file
 * Per-thread static summaries of litmus programs: memory events with
 * statically resolved location sets, fences with their guards, a CFG
 * with reachability, a may-value analysis for address resolution and
 * a must-dependency analysis mirroring the simulator's scoreboard.
 *
 * These are the machine-derived facts the race analyzer (race.h)
 * consumes. Every "ordered" claim here is justified by a concrete
 * mechanism in sim::Machine (see docs/ANALYSIS.md for the soundness
 * argument); everything the analysis cannot prove is left unordered.
 */

#ifndef GPULITMUS_ANALYSIS_SUMMARY_H
#define GPULITMUS_ANALYSIS_SUMMARY_H

#include <string>
#include <vector>

#include "litmus/test.h"

namespace gpulitmus::analysis {

/** Guard predicate of an instruction: register plus polarity. */
struct Guard
{
    bool present = false;
    bool negated = false;
    std::string reg;

    bool operator==(const Guard &other) const = default;
};

/** One statically summarised memory access. */
struct MemEvent
{
    int tid = 0;
    int index = 0; ///< instruction index within the thread

    bool isLoad = false;
    bool isStore = false;
    bool isAtomic = false;
    /** Load on the L1 path (.ca): may observe stale lines, so no
     * fence or dependency can bound how early it reads. */
    bool caLoad = false;

    /** Possible target locations (may-set from the value analysis). */
    std::vector<std::string> locs;
    bool locUnknown = false; ///< address not statically resolved
    bool allShared = false;  ///< every possible location is shared

    Guard guard;
    int srcLine = 0;
    int srcCol = 0;
    std::string text; ///< canonical instruction text for diagnostics

    bool reads() const { return isLoad || isAtomic; }
    bool writes() const { return isStore || isAtomic; }
    bool singleLoc() const { return !locUnknown && locs.size() == 1; }
};

/** One fence, with the facts adequacy checks need. */
struct FenceInfo
{
    int index = 0;
    ptx::Scope scope = ptx::Scope::Gl;
    Guard guard;
    int srcLine = 0;
    int srcCol = 0;
};

/** Why a program-order segment is, or is not, protected. */
enum class SegReason {
    NoPath,           ///< no control-flow path; segment cannot occur
    Fenced,           ///< an adequate fence on every path
    SameLocation,     ///< per-location coherence (not both plain loads)
    Dependency,       ///< scoreboard address/data/guard dependency
    MissingFence,     ///< unprotected: no fence at all on some path
    UnderScopedFence, ///< unprotected: only inadequate fences
    CoRR,             ///< unprotected: same-location load-load hazard
    StaleL1,          ///< unprotected: younger .ca load may read stale
};

/** Protection verdict for one in-thread segment. */
struct SegStatus
{
    bool isProtected = false;
    SegReason reason = SegReason::MissingFence;
    /** Index of a representative inadequate fence for the
     * UnderScopedFence diagnostic; -1 otherwise. */
    int fenceIndex = -1;
};

/**
 * The static summary of one thread of a test: its memory events and
 * fences, CFG reachability, and the protection query the cycle
 * analysis is built on.
 */
class ThreadSummary
{
  public:
    ThreadSummary(const litmus::Test &test, int tid);

    int tid() const { return tid_; }
    const std::vector<MemEvent> &events() const { return events_; }
    const std::vector<FenceInfo> &fences() const { return fences_; }

    /** Is there a CFG path of >= 1 step from instruction a to b? */
    bool poPath(int a, int b) const;

    /**
     * Protection status of the program-order segment from event a to
     * event b (a.index == b.index queries the loop segment through a
     * back edge). Protected means the simulator cannot make b's
     * memory effect observable before a's, on any chip.
     */
    SegStatus segment(const MemEvent &a, const MemEvent &b) const;

  private:
    bool depOrdered(int a, int b) const;
    bool allPathsFenced(const MemEvent &a, const MemEvent &b,
                        int *inadequateFence) const;
    bool fenceAdequate(const FenceInfo &f, const MemEvent &a,
                       const MemEvent &b) const;
    bool guardOk(const FenceInfo &f, const MemEvent &a,
                 const MemEvent &b) const;
    bool regRedefinedBetween(const std::string &reg, int from,
                             int to, bool checkFrom) const;

    const litmus::Test *test_;
    int tid_ = 0;
    int n_ = 0; ///< instruction count
    bool hasSameCtaPeer_ = false;
    std::vector<MemEvent> events_;
    std::vector<FenceInfo> fences_;
    std::vector<std::vector<int>> succ_; ///< CFG successors
    std::vector<std::vector<uint8_t>> reach_; ///< >=1-step reachability
    /** Must-dependency closure: dep_[a][b] != 0 when instruction b's
     * issue is transitively delayed past a's perform (a reads). */
    std::vector<std::vector<uint8_t>> dep_;
};

/** Summaries for all threads of a test. */
std::vector<ThreadSummary> summarise(const litmus::Test &test);

} // namespace gpulitmus::analysis

#endif // GPULITMUS_ANALYSIS_SUMMARY_H
