#include "analysis/race.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "common/strutil.h"

namespace gpulitmus::analysis {

std::string
toString(PairClass c)
{
    switch (c) {
      case PairClass::ProvenOrdered: return "proven-ordered";
      case PairClass::PossiblyRacy: return "possibly-racy";
      case PairClass::ProvenRacy: return "proven-racy";
    }
    return "?";
}

namespace {

using PairKey = std::tuple<int, int, int, int>; // tidA, idxA, tidB, idxB

PairKey
keyOf(const MemEvent &a, const MemEvent &b)
{
    if (a.tid < b.tid)
        return {a.tid, a.index, b.tid, b.index};
    return {b.tid, b.index, a.tid, a.index};
}

struct PairData
{
    const MemEvent *a = nullptr;
    const MemEvent *b = nullptr;
    bool racy = false;
    bool proven = false;
    std::vector<std::string> reasons; ///< from the best witness cycle
};

/** One thread visit of a candidate cycle. */
struct Visit
{
    int tid = 0;
    int in = 0;  ///< entry event index (within ThreadSummary::events)
    int out = 0; ///< exit event index
    SegStatus st;
};

class Analyzer
{
  public:
    explicit Analyzer(const litmus::Test &test)
        : test_(test), sums_(summarise(test))
    {}

    Report run();

  private:
    const std::vector<MemEvent> &events(int tid) const
    {
        return sums_[tid].events();
    }

    bool conflicts(const MemEvent &a, const MemEvent &b) const;
    void dfs(std::vector<Visit> &stack, std::vector<uint8_t> &used,
             int t0);
    void recordCycle(const std::vector<Visit> &stack);
    std::string describeSeg(const Visit &v) const;

    const litmus::Test &test_;
    std::vector<ThreadSummary> sums_;
    std::map<PairKey, PairData> pairs_;
    long steps_ = 0;
    bool budget_ = false;

    static constexpr long kMaxSteps = 2000000;
};

bool
Analyzer::conflicts(const MemEvent &a, const MemEvent &b) const
{
    if (a.tid == b.tid)
        return false;
    if (!a.writes() && !b.writes())
        return false;
    bool sameCta = test_.scopeTree.sameCta(a.tid, b.tid);
    if (a.locUnknown || b.locUnknown) {
        // Shared arrays are per-CTA, so a cross-CTA pair can only
        // meet on a global location; a side provably confined to
        // shared memory cannot communicate with another CTA.
        if (!sameCta && (a.allShared || b.allShared))
            return false;
        return true;
    }
    for (const auto &la : a.locs) {
        for (const auto &lb : b.locs) {
            if (la != lb)
                continue;
            const auto *def = test_.findLocation(la);
            if (!def)
                continue;
            if (def->space == litmus::MemSpace::Global || sameCta)
                return true;
        }
    }
    return false;
}

std::string
Analyzer::describeSeg(const Visit &v) const
{
    const MemEvent &a = events(v.tid)[v.in];
    const MemEvent &b = events(v.tid)[v.out];
    auto at = [](const MemEvent &e) {
        std::string s = "'" + e.text + "'";
        if (e.srcLine > 0)
            s += " (line " + std::to_string(e.srcLine) + ")";
        return s;
    };
    std::string t = "T" + std::to_string(v.tid) + ": ";
    if (v.in == v.out) {
        switch (v.st.reason) {
          case SegReason::CoRR:
            return t + "spin-loop reload of " + at(a) +
                   " is unordered across iterations (coRR)";
          case SegReason::StaleL1:
            return t + "spin-loop reload of " + at(a) +
                   " may be served a stale L1 line (.ca)";
          default:
            break;
        }
    }
    switch (v.st.reason) {
      case SegReason::MissingFence:
        return t + "no fence orders " + at(a) + " before " + at(b);
      case SegReason::UnderScopedFence: {
        const ptx::Instruction &f =
            test_.program.threads[v.tid].instrs[v.st.fenceIndex];
        std::string fs = "'" + f.str() + "'";
        if (f.srcLine > 0)
            fs += " (line " + std::to_string(f.srcLine) + ")";
        return t + fs + " between " + at(a) + " and " + at(b) +
               " is under-scoped: T" + std::to_string(v.tid) +
               " has no same-CTA testing peer, so membar.cta does"
               " not drain its store buffer";
      }
      case SegReason::CoRR:
        return t + "same-location loads " + at(a) + " and " + at(b) +
               " may violate read-read coherence (coRR)";
      case SegReason::StaleL1:
        return t + at(b) + " is a .ca load and may be served a stale"
                           " L1 line; no fence or dependency can"
                           " order it after " +
               at(a);
      default:
        return t + "unordered segment " + at(a) + " -> " + at(b);
    }
}

void
Analyzer::recordCycle(const std::vector<Visit> &stack)
{
    bool dangerous = false;
    bool allKnown = true;
    std::vector<std::string> reasons;
    for (const auto &v : stack) {
        const MemEvent &a = events(v.tid)[v.in];
        const MemEvent &b = events(v.tid)[v.out];
        if (!a.singleLoc() || !b.singleLoc())
            allKnown = false;
        if (!v.st.isProtected) {
            dangerous = true;
            reasons.push_back(describeSeg(v));
        }
    }
    if (!dangerous)
        return;
    auto touch = [&](const MemEvent &x, const MemEvent &y) {
        auto it = pairs_.find(keyOf(x, y));
        if (it == pairs_.end())
            return;
        PairData &pd = it->second;
        bool better = !pd.racy || (allKnown && !pd.proven);
        pd.racy = true;
        pd.proven = pd.proven || allKnown;
        if (better)
            pd.reasons = reasons;
    };
    for (size_t i = 0; i < stack.size(); ++i) {
        const Visit &v = stack[i];
        const Visit &w = stack[(i + 1) % stack.size()];
        touch(events(v.tid)[v.out], events(w.tid)[w.in]);
    }
}

void
Analyzer::dfs(std::vector<Visit> &stack, std::vector<uint8_t> &used,
              int t0)
{
    if (budget_)
        return;
    size_t depth = stack.size();
    Visit cur = stack.back();
    const auto &evs = events(cur.tid);
    const ThreadSummary &sum = sums_[cur.tid];
    const MemEvent &inE = evs[cur.in];
    for (int outK = 0; outK < static_cast<int>(evs.size()); ++outK) {
        if (++steps_ > kMaxSteps) {
            budget_ = true;
            return;
        }
        const MemEvent &outE = evs[outK];
        SegStatus st;
        if (cur.in == outK) {
            // Same event entering and leaving the thread: trivially a
            // single instance, or — when a loop re-executes it and
            // the reload is unprotected — a dangerous self-segment.
            st = SegStatus{true, SegReason::NoPath, -1};
            if (sum.poPath(inE.index, inE.index)) {
                SegStatus loop = sum.segment(inE, inE);
                if (!loop.isProtected)
                    st = loop;
            }
        } else {
            st = sum.segment(inE, outE);
            if (st.reason == SegReason::NoPath)
                continue; // outE never executes after inE
        }
        stack[depth - 1].out = outK;
        stack[depth - 1].st = st;
        if (depth >= 2 &&
            conflicts(outE, events(stack[0].tid)[stack[0].in]))
            recordCycle(stack);
        int nthreads = static_cast<int>(sums_.size());
        for (int t = t0 + 1; t < nthreads; ++t) {
            if (used[t])
                continue;
            const auto &tevs = events(t);
            for (int inK = 0; inK < static_cast<int>(tevs.size());
                 ++inK) {
                if (!conflicts(outE, tevs[inK]))
                    continue;
                used[t] = 1;
                stack.push_back(Visit{t, inK, inK, {}});
                dfs(stack, used, t0);
                stack.pop_back();
                used[t] = 0;
                if (budget_)
                    return;
            }
        }
    }
}

Report
Analyzer::run()
{
    Report rep;
    rep.testName = test_.name;

    // Universe of conflicting cross-thread pairs.
    int nthreads = static_cast<int>(sums_.size());
    for (int t1 = 0; t1 < nthreads; ++t1) {
        for (int t2 = t1 + 1; t2 < nthreads; ++t2) {
            for (const auto &a : events(t1)) {
                for (const auto &b : events(t2)) {
                    if (!conflicts(a, b))
                        continue;
                    PairData pd;
                    pd.a = &a;
                    pd.b = &b;
                    pairs_.emplace(keyOf(a, b), pd);
                }
            }
        }
    }
    rep.pairsTotal = static_cast<int>(pairs_.size());

    // Enumerate candidate critical cycles, canonically started at
    // their lowest-numbered thread.
    for (int t0 = 0; t0 < nthreads && !budget_; ++t0) {
        const auto &evs = events(t0);
        for (int inK = 0; inK < static_cast<int>(evs.size()); ++inK) {
            std::vector<Visit> stack{Visit{t0, inK, inK, {}}};
            std::vector<uint8_t> used(nthreads, 0);
            used[t0] = 1;
            dfs(stack, used, t0);
            if (budget_)
                break;
        }
    }

    if (budget_) {
        // Degrade conservatively: nothing unproven may be called
        // ordered once enumeration is incomplete.
        rep.budgetExceeded = true;
        for (auto &[key, pd] : pairs_) {
            if (!pd.racy) {
                pd.racy = true;
                pd.reasons = {"cycle enumeration budget exceeded;"
                              " pair not proven ordered"};
            }
        }
    }

    auto ref = [&](const MemEvent &e) {
        EventRef r;
        r.tid = e.tid;
        r.index = e.index;
        r.instr = e.text;
        r.locs = e.locs;
        r.locUnknown = e.locUnknown;
        r.srcLine = e.srcLine;
        r.srcCol = e.srcCol;
        return r;
    };
    for (const auto &[key, pd] : pairs_) {
        if (!pd.racy) {
            ++rep.pairsOrdered;
            continue;
        }
        Finding f;
        f.severity =
            pd.proven ? PairClass::ProvenRacy : PairClass::PossiblyRacy;
        if (pd.proven)
            ++rep.pairsProven;
        else
            ++rep.pairsPossibly;
        f.a = ref(*pd.a);
        f.b = ref(*pd.b);
        std::set<std::string> common;
        for (const auto &la : pd.a->locs) {
            for (const auto &lb : pd.b->locs) {
                if (la == lb)
                    common.insert(la);
            }
        }
        f.locs.assign(common.begin(), common.end());
        if (test_.scopeTree.sameWarp(pd.a->tid, pd.b->tid))
            f.placement = "intra-warp";
        else if (test_.scopeTree.sameCta(pd.a->tid, pd.b->tid))
            f.placement = "intra-cta";
        else
            f.placement = "inter-cta";
        f.reasons = pd.reasons;
        rep.findings.push_back(std::move(f));
    }
    std::stable_sort(rep.findings.begin(), rep.findings.end(),
                     [](const Finding &x, const Finding &y) {
                         return static_cast<int>(x.severity) >
                                static_cast<int>(y.severity);
                     });
    rep.fullyOrdered = !rep.budgetExceeded && rep.racyPairs() == 0;
    return rep;
}

} // anonymous namespace

std::string
Report::str() const
{
    std::string out = "lint " + testName + ": ";
    if (fullyOrdered) {
        out += "fully ordered (" + std::to_string(pairsTotal) +
               " conflicting pairs, all proven ordered)\n";
        return out;
    }
    out += std::to_string(pairsProven) + " proven-racy, " +
           std::to_string(pairsPossibly) + " possibly-racy, " +
           std::to_string(pairsOrdered) + " proven-ordered of " +
           std::to_string(pairsTotal) + " conflicting pairs";
    if (budgetExceeded)
        out += " (analysis budget exceeded)";
    out += "\n";
    for (const auto &f : findings) {
        out += "  [" + toString(f.severity) + "] T" +
               std::to_string(f.a.tid) + " '" + f.a.instr + "'";
        if (f.a.srcLine > 0)
            out += " (line " + std::to_string(f.a.srcLine) + ")";
        out += "  vs  T" + std::to_string(f.b.tid) + " '" + f.b.instr +
               "'";
        if (f.b.srcLine > 0)
            out += " (line " + std::to_string(f.b.srcLine) + ")";
        if (!f.locs.empty()) {
            out += "  on ";
            for (size_t i = 0; i < f.locs.size(); ++i)
                out += (i ? "," : "") + f.locs[i];
        }
        out += "  [" + f.placement + "]\n";
        for (const auto &r : f.reasons)
            out += "      " + r + "\n";
    }
    return out;
}

std::string
Report::json() const
{
    using gpulitmus::jsonEscape;
    std::string j = "{\"schema\":\"gpulitmus-lint-1\",";
    j += "\"test\":\"" + jsonEscape(testName) + "\",";
    j += std::string("\"fully_ordered\":") +
         (fullyOrdered ? "true" : "false") + ",";
    j += std::string("\"budget_exceeded\":") +
         (budgetExceeded ? "true" : "false") + ",";
    j += "\"pairs\":{\"total\":" + std::to_string(pairsTotal) +
         ",\"proven_racy\":" + std::to_string(pairsProven) +
         ",\"possibly_racy\":" + std::to_string(pairsPossibly) +
         ",\"proven_ordered\":" + std::to_string(pairsOrdered) + "},";
    j += "\"findings\":[";
    auto evJson = [&](const EventRef &e) {
        std::string s = "{\"thread\":" + std::to_string(e.tid) +
                        ",\"index\":" + std::to_string(e.index) +
                        ",\"instr\":\"" + jsonEscape(e.instr) + "\"";
        if (e.srcLine > 0) {
            s += ",\"line\":" + std::to_string(e.srcLine);
            s += ",\"col\":" + std::to_string(e.srcCol);
        }
        s += "}";
        return s;
    };
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        if (i)
            j += ",";
        j += "{\"severity\":\"" + toString(f.severity) + "\",";
        j += "\"a\":" + evJson(f.a) + ",\"b\":" + evJson(f.b) + ",";
        j += "\"locations\":[";
        for (size_t k = 0; k < f.locs.size(); ++k)
            j += (k ? "," : "") + ("\"" + jsonEscape(f.locs[k]) +
                                   "\"");
        j += "],\"placement\":\"" + f.placement + "\",";
        j += "\"reasons\":[";
        for (size_t k = 0; k < f.reasons.size(); ++k)
            j += (k ? "," : "") +
                 ("\"" + jsonEscape(f.reasons[k]) + "\"");
        j += "]}";
    }
    j += "]}";
    return j;
}

Report
analyze(const litmus::Test &test)
{
    return Analyzer(test).run();
}

} // namespace gpulitmus::analysis
