#include "analysis/sc.h"

#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/log.h"
#include "litmus/outcome.h"

namespace gpulitmus::analysis {

namespace {

/** One operand, registers resolved to dense indices. */
struct COp
{
    bool isImm = true;
    int64_t imm = 0;
    int reg = -1;
};

struct CInstr
{
    ptx::Opcode op = ptx::Opcode::Nop;
    int dst = -1;
    int guard = -1;
    bool guardNeg = false;
    COp addr, src0, src1;
    int braTarget = -1;
};

/**
 * Flat interpreter state: thread pcs, registers, L2 (global) memory
 * and one shared-memory copy per CTA — exactly the observable state
 * of sim::Machine with all caches, buffers and windows empty, which
 * is what every state of a fully-ordered program collapses to.
 */
struct State
{
    std::vector<int> pcs;
    std::vector<std::vector<int64_t>> regs; // per thread
    std::vector<int64_t> l2;
    std::vector<std::vector<int64_t>> shared; // per CTA

    std::string key() const
    {
        std::string k;
        auto put64 = [&k](int64_t v) {
            char b[8];
            std::memcpy(b, &v, 8);
            k.append(b, 8);
        };
        for (size_t t = 0; t < pcs.size(); ++t) {
            put64(pcs[t]);
            for (int64_t r : regs[t])
                put64(r);
        }
        for (int64_t v : l2)
            put64(v);
        for (const auto &mem : shared)
            for (int64_t v : mem)
                put64(v);
        return k;
    }
};

class Interp
{
  public:
    explicit Interp(const litmus::Test &test) : test_(test)
    {
        int nthreads = test.program.numThreads();
        int nlocs = static_cast<int>(test.locations.size());
        locShared_.resize(nlocs);
        locAddr_.reserve(nlocs);
        for (int i = 0; i < nlocs; ++i) {
            locShared_[i] = test.locations[i].space ==
                            litmus::MemSpace::Shared;
            locAddr_[test.addressOf(test.locations[i].name)] = i;
        }
        regNames_.resize(nthreads);
        ctas_.resize(nthreads);
        threads_.resize(nthreads);
        for (int t = 0; t < nthreads; ++t) {
            ctas_[t] = test.scopeTree.placement(t).cta;
            auto regIdx = [&](const std::string &name) {
                auto &names = regNames_[t];
                for (size_t i = 0; i < names.size(); ++i) {
                    if (names[i] == name)
                        return static_cast<int>(i);
                }
                names.push_back(name);
                return static_cast<int>(names.size() - 1);
            };
            const auto &prog = test.program.threads[t];
            for (const auto &in : prog.instrs) {
                CInstr c;
                c.op = in.op;
                if (!in.dst.empty())
                    c.dst = regIdx(in.dst);
                if (in.hasGuard) {
                    c.guard = regIdx(in.guardReg);
                    c.guardNeg = in.guardNegated;
                }
                auto cop = [&](const ptx::Operand &op) {
                    COp o;
                    if (op.isImm()) {
                        o.imm = op.imm;
                    } else if (op.isSym()) {
                        o.imm = test.addressOf(op.sym);
                    } else if (op.isReg()) {
                        o.isImm = false;
                        o.reg = regIdx(op.reg);
                    }
                    return o;
                };
                if (!in.addr.isNone())
                    c.addr = cop(in.addr);
                if (!in.srcs.empty())
                    c.src0 = cop(in.srcs[0]);
                if (in.srcs.size() > 1)
                    c.src1 = cop(in.srcs[1]);
                if (in.op == ptx::Opcode::Bra)
                    c.braTarget = prog.labelTarget(in.target);
                threads_[t].push_back(c);
            }
            // Registers only mentioned in init entries still exist.
            for (const auto &ri : test.regInits) {
                if (ri.tid == t)
                    regIdx(ri.reg);
            }
        }
    }

    State initial() const
    {
        State s;
        int nthreads = static_cast<int>(threads_.size());
        s.pcs.assign(nthreads, 0);
        s.regs.resize(nthreads);
        for (int t = 0; t < nthreads; ++t)
            s.regs[t].assign(regNames_[t].size(), 0);
        for (const auto &ri : test_.regInits) {
            int64_t v = ri.isLocAddress ? test_.addressOf(ri.loc)
                                        : ri.value;
            const auto &names = regNames_[ri.tid];
            for (size_t i = 0; i < names.size(); ++i) {
                if (names[i] == ri.reg)
                    s.regs[ri.tid][i] = v;
            }
        }
        for (const auto &loc : test_.locations)
            s.l2.push_back(loc.init);
        s.shared.assign(test_.scopeTree.numCtas(), s.l2);
        return s;
    }

    bool done(const State &s, int t) const
    {
        return s.pcs[t] >=
               static_cast<int>(threads_[t].size());
    }

    bool allDone(const State &s) const
    {
        for (size_t t = 0; t < threads_.size(); ++t) {
            if (!done(s, static_cast<int>(t)))
                return false;
        }
        return true;
    }

    /** Execute one instruction of thread t, atomically. */
    void step(State &s, int t) const
    {
        const CInstr &in = threads_[t][s.pcs[t]];
        auto &regs = s.regs[t];
        auto val = [&](const COp &o) {
            return o.isImm ? o.imm : regs[o.reg];
        };
        if (in.guard >= 0) {
            bool set = regs[in.guard] != 0;
            if (in.guardNeg ? set : !set) {
                ++s.pcs[t];
                return;
            }
        }
        auto cell = [&](int64_t addr) -> int64_t * {
            auto it = locAddr_.find(addr);
            if (it == locAddr_.end())
                return nullptr; // non-testing address: nop
            int loc = it->second;
            if (locShared_[loc])
                return &s.shared[ctas_[t]][loc];
            return &s.l2[loc];
        };
        switch (in.op) {
          case ptx::Opcode::Nop:
          case ptx::Opcode::Membar:
            break;
          case ptx::Opcode::Bra:
            s.pcs[t] = in.braTarget;
            return;
          case ptx::Opcode::Mov:
          case ptx::Opcode::Cvt:
            regs[in.dst] = val(in.src0);
            break;
          case ptx::Opcode::Add:
            regs[in.dst] = val(in.src0) + val(in.src1);
            break;
          case ptx::Opcode::Sub:
            regs[in.dst] = val(in.src0) - val(in.src1);
            break;
          case ptx::Opcode::And:
            regs[in.dst] = val(in.src0) & val(in.src1);
            break;
          case ptx::Opcode::Or:
            regs[in.dst] = val(in.src0) | val(in.src1);
            break;
          case ptx::Opcode::Xor:
            regs[in.dst] = val(in.src0) ^ val(in.src1);
            break;
          case ptx::Opcode::SetpEq:
            regs[in.dst] = val(in.src0) == val(in.src1);
            break;
          case ptx::Opcode::SetpNe:
            regs[in.dst] = val(in.src0) != val(in.src1);
            break;
          case ptx::Opcode::Ld: {
            if (int64_t *c = cell(val(in.addr)))
                regs[in.dst] = *c;
            break;
          }
          case ptx::Opcode::St: {
            if (int64_t *c = cell(val(in.addr)))
                *c = val(in.src0);
            break;
          }
          case ptx::Opcode::AtomCas:
          case ptx::Opcode::AtomExch:
          case ptx::Opcode::AtomInc:
          case ptx::Opcode::AtomAdd: {
            int64_t *c = cell(val(in.addr));
            if (!c) {
                if (in.dst >= 0)
                    regs[in.dst] = 0;
                break;
            }
            int64_t old = *c;
            switch (in.op) {
              case ptx::Opcode::AtomCas:
                if (old == val(in.src0))
                    *c = val(in.src1);
                break;
              case ptx::Opcode::AtomExch:
                *c = val(in.src0);
                break;
              case ptx::Opcode::AtomInc:
                *c = old + 1;
                break;
              case ptx::Opcode::AtomAdd:
                *c = old + val(in.src0);
                break;
              default:
                break;
            }
            if (in.dst >= 0)
                regs[in.dst] = old;
            break;
          }
        }
        ++s.pcs[t];
    }

    litmus::FinalState finalState(const State &s) const
    {
        litmus::FinalState st;
        for (size_t t = 0; t < regNames_.size(); ++t) {
            const auto &names = regNames_[t];
            for (size_t r = 0; r < names.size(); ++r)
                st.regs[{static_cast<int>(t), names[r]}] =
                    s.regs[t][r];
        }
        for (size_t i = 0; i < test_.locations.size(); ++i) {
            const std::string &name = test_.locations[i].name;
            // Shared locations report CTA 0's copy, exactly as
            // sim::Machine::collectFinalState does.
            st.mem[name] = locShared_[i]
                               ? s.shared[0][i]
                               : s.l2[i];
        }
        return st;
    }

    int numThreads() const
    {
        return static_cast<int>(threads_.size());
    }

  private:
    const litmus::Test &test_;
    std::vector<std::vector<CInstr>> threads_;
    std::vector<std::vector<std::string>> regNames_;
    std::vector<int> ctas_;
    std::vector<uint8_t> locShared_;
    std::unordered_map<int64_t, int> locAddr_;
};

} // anonymous namespace

std::optional<ScResult>
enumerateSc(const litmus::Test &test, ScOptions opts)
{
    Interp interp(test);
    litmus::Histogram keyer(test);
    ScResult res;
    res.complete = true;

    // Iterative DFS with gray/black colouring: a gray hit is a back
    // edge, i.e. a schedule that revisits a state and so need never
    // terminate (a spin loop). Terminal states are collected either
    // way; `complete` records whether any such loop exists.
    enum : uint8_t { kGray = 1, kBlack = 2 };
    std::unordered_map<std::string, uint8_t> color;
    struct Frame
    {
        State state;
        std::string key;
        int nextThread = 0;
    };
    std::vector<Frame> stack;
    State init = interp.initial();
    std::string ik = init.key();
    color[ik] = kGray;
    stack.push_back({std::move(init), std::move(ik), 0});

    while (!stack.empty()) {
        Frame &f = stack.back();
        if (f.nextThread == 0 && interp.allDone(f.state)) {
            litmus::FinalState fs = interp.finalState(f.state);
            std::string key = keyer.keyFor(fs);
            res.finals[key] += 1;
            if (test.condition.eval(fs))
                res.satisfying.insert(key);
            color[f.key] = kBlack;
            stack.pop_back();
            continue;
        }
        int t = f.nextThread++;
        if (t >= interp.numThreads()) {
            color[f.key] = kBlack;
            stack.pop_back();
            continue;
        }
        if (interp.done(f.state, t))
            continue;
        State next = f.state;
        interp.step(next, t);
        std::string nk = next.key();
        auto it = color.find(nk);
        if (it != color.end()) {
            if (it->second == kGray)
                res.complete = false; // revisitable: spin loop
            continue;
        }
        if (color.size() >= opts.maxStates)
            return std::nullopt; // budget: caller must explore
        color[nk] = kGray;
        stack.push_back({std::move(next), std::move(nk), 0});
    }
    res.states = color.size();
    return res;
}

} // namespace gpulitmus::analysis
