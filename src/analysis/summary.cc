#include "analysis/summary.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>

#include "common/log.h"

namespace gpulitmus::analysis {

namespace {

/**
 * May-set of values a register can hold: a small set of constants or
 * "unknown". Used to resolve register-addressed memory operands; the
 * set is a superset of the values any execution produces, so the
 * derived location sets are sound over-approximations.
 */
struct ValSet
{
    bool unknown = false;
    std::vector<int64_t> vals; // sorted, unique

    static constexpr size_t kCap = 8;

    static ValSet top()
    {
        ValSet v;
        v.unknown = true;
        return v;
    }
    static ValSet one(int64_t x) { return ValSet{false, {x}}; }

    void insert(int64_t x)
    {
        if (unknown)
            return;
        auto it = std::lower_bound(vals.begin(), vals.end(), x);
        if (it != vals.end() && *it == x)
            return;
        vals.insert(it, x);
        if (vals.size() > kCap) {
            unknown = true;
            vals.clear();
        }
    }

    bool join(const ValSet &other) // returns true if changed
    {
        if (unknown)
            return false;
        if (other.unknown) {
            unknown = true;
            vals.clear();
            return true;
        }
        bool changed = false;
        for (int64_t v : other.vals) {
            size_t before = vals.size();
            bool wasUnknown = unknown;
            insert(v);
            if (unknown != wasUnknown || vals.size() != before)
                changed = true;
            if (unknown)
                break;
        }
        return changed;
    }

    bool operator==(const ValSet &other) const = default;
};

ValSet
binop(const ValSet &a, const ValSet &b, ptx::Opcode op)
{
    if (op == ptx::Opcode::And) {
        // "and r,src,MASK" against an unknown source still has a
        // small result set when the mask has few bits — the Fig. 13
        // artificial-dependency idiom (and r3,r1,0x80000000).
        auto submasks = [](int64_t mask) {
            std::vector<int64_t> out;
            if (__builtin_popcountll(static_cast<uint64_t>(mask)) <=
                3) {
                uint64_t m = static_cast<uint64_t>(mask);
                for (uint64_t s = m;; s = (s - 1) & m) {
                    out.push_back(static_cast<int64_t>(s));
                    if (s == 0)
                        break;
                }
            }
            return out;
        };
        if (a.unknown && !b.unknown && b.vals.size() == 1) {
            ValSet r;
            auto subs = submasks(b.vals[0]);
            if (!subs.empty()) {
                for (int64_t s : subs)
                    r.insert(s);
                return r;
            }
        }
        if (b.unknown && !a.unknown && a.vals.size() == 1) {
            ValSet r;
            auto subs = submasks(a.vals[0]);
            if (!subs.empty()) {
                for (int64_t s : subs)
                    r.insert(s);
                return r;
            }
        }
    }
    if (a.unknown || b.unknown)
        return ValSet::top();
    ValSet r;
    for (int64_t x : a.vals) {
        for (int64_t y : b.vals) {
            int64_t v = 0;
            switch (op) {
              case ptx::Opcode::Add: v = x + y; break;
              case ptx::Opcode::Sub: v = x - y; break;
              case ptx::Opcode::And: v = x & y; break;
              case ptx::Opcode::Or: v = x | y; break;
              case ptx::Opcode::Xor: v = x ^ y; break;
              default: return ValSet::top();
            }
            r.insert(v);
            if (r.unknown)
                return r;
        }
    }
    return r;
}

using RegState = std::map<std::string, ValSet>;

bool
joinState(RegState &into, const RegState &from)
{
    bool changed = false;
    for (const auto &[reg, vs] : from) {
        auto it = into.find(reg);
        if (it == into.end()) {
            into.emplace(reg, vs);
            changed = true;
        } else if (it->second.join(vs)) {
            changed = true;
        }
    }
    return changed;
}

} // anonymous namespace

ThreadSummary::ThreadSummary(const litmus::Test &test, int tid)
    : test_(&test), tid_(tid)
{
    const ptx::ThreadProgram &prog = test.program.threads[tid];
    n_ = static_cast<int>(prog.instrs.size());

    for (int other = 0; other < test.scopeTree.numThreads(); ++other) {
        if (other != tid && test.scopeTree.sameCta(tid, other))
            hasSameCtaPeer_ = true;
    }

    // --- CFG. Node n_ is the exit.
    succ_.assign(n_, {});
    for (int i = 0; i < n_; ++i) {
        const ptx::Instruction &in = prog.instrs[i];
        if (in.op == ptx::Opcode::Bra) {
            succ_[i].push_back(prog.labelTarget(in.target));
            if (in.hasGuard)
                succ_[i].push_back(i + 1);
        } else {
            succ_[i].push_back(i + 1);
        }
    }

    // --- Reachability (>= 1 step) by BFS from each node.
    reach_.assign(n_, std::vector<uint8_t>(n_, 0));
    for (int from = 0; from < n_; ++from) {
        std::vector<int> work = succ_[from];
        while (!work.empty()) {
            int k = work.back();
            work.pop_back();
            if (k >= n_ || reach_[from][k])
                continue;
            reach_[from][k] = 1;
            for (int s : succ_[k])
                work.push_back(s);
        }
    }

    // --- May-value analysis for address resolution.
    RegState entry;
    for (const auto &ri : test.regInits) {
        if (ri.tid != tid)
            continue;
        entry[ri.reg] = ValSet::one(
            ri.isLocAddress ? test.addressOf(ri.loc) : ri.value);
    }
    auto operandSet = [&](const ptx::Operand &op,
                          const RegState &st) -> ValSet {
        if (op.isImm())
            return ValSet::one(op.imm);
        if (op.isSym())
            return ValSet::one(test.addressOf(op.sym));
        if (op.isReg()) {
            auto it = st.find(op.reg);
            // Registers the machine never initialises read as 0.
            return it == st.end() ? ValSet::one(0) : it->second;
        }
        return ValSet::top();
    };
    std::vector<RegState> in(n_);
    if (n_ > 0)
        in[0] = entry;
    std::vector<uint8_t> dirty(n_, 0);
    std::vector<int> work;
    if (n_ > 0) {
        work.push_back(0);
        dirty[0] = 1;
    }
    while (!work.empty()) {
        int i = work.back();
        work.pop_back();
        dirty[i] = 0;
        const ptx::Instruction &ins = prog.instrs[i];
        RegState out = in[i];
        ValSet written;
        bool writes = false;
        switch (ins.op) {
          case ptx::Opcode::Mov:
          case ptx::Opcode::Cvt:
            written = operandSet(ins.srcs[0], in[i]);
            writes = true;
            break;
          case ptx::Opcode::Add:
          case ptx::Opcode::Sub:
          case ptx::Opcode::And:
          case ptx::Opcode::Or:
          case ptx::Opcode::Xor:
            written = binop(operandSet(ins.srcs[0], in[i]),
                            operandSet(ins.srcs[1], in[i]), ins.op);
            writes = true;
            break;
          case ptx::Opcode::SetpEq:
          case ptx::Opcode::SetpNe:
            written.insert(0);
            written.insert(1);
            writes = true;
            break;
          case ptx::Opcode::Ld:
          case ptx::Opcode::AtomCas:
          case ptx::Opcode::AtomExch:
          case ptx::Opcode::AtomInc:
          case ptx::Opcode::AtomAdd:
            written = ValSet::top(); // value comes from memory
            writes = !ins.dst.empty();
            break;
          default:
            break;
        }
        if (writes && !ins.dst.empty()) {
            if (ins.hasGuard) {
                out[ins.dst].join(written); // may skip: keep old too
            } else {
                out[ins.dst] = written;
            }
        }
        for (int s : succ_[i]) {
            if (s >= n_)
                continue;
            if (joinState(in[s], out) && !dirty[s]) {
                dirty[s] = 1;
                work.push_back(s);
            }
        }
    }

    // --- Event and fence extraction.
    for (int i = 0; i < n_; ++i) {
        const ptx::Instruction &ins = prog.instrs[i];
        Guard g;
        if (ins.hasGuard)
            g = Guard{true, ins.guardNegated, ins.guardReg};
        if (ins.isFence()) {
            fences_.push_back(
                {i, ins.scope, g, ins.srcLine, ins.srcCol});
            continue;
        }
        if (!ins.isMemAccess())
            continue;
        MemEvent e;
        e.tid = tid;
        e.index = i;
        e.isLoad = ins.op == ptx::Opcode::Ld;
        e.isStore = ins.op == ptx::Opcode::St;
        e.isAtomic = ins.isAtomic();
        e.caLoad = e.isLoad && ins.cacheOp == ptx::CacheOp::Ca;
        e.guard = g;
        e.srcLine = ins.srcLine;
        e.srcCol = ins.srcCol;
        e.text = ins.str();
        ValSet addrs = operandSet(ins.addr, in[i]);
        if (addrs.unknown) {
            e.locUnknown = true;
        } else {
            std::set<std::string> locs;
            for (int64_t a : addrs.vals) {
                // Addresses outside the testing locations are nops in
                // the machine; they never touch shared state.
                if (auto loc = test.locationAt(a))
                    locs.insert(*loc);
            }
            if (locs.empty())
                continue; // provably never a real access
            e.locs.assign(locs.begin(), locs.end());
        }
        e.allShared = !e.locUnknown;
        for (const auto &l : e.locs) {
            const auto *def = test.findLocation(l);
            if (!def || def->space != litmus::MemSpace::Shared)
                e.allShared = false;
        }
        events_.push_back(std::move(e));
    }

    // --- Must-dependency closure (the scoreboard): dep_[a][b] set
    // when b's issue provably waits, transitively, for a's perform.
    dep_.assign(n_, std::vector<uint8_t>(n_, 0));
    std::map<std::string, int> regIndex;
    auto regBit = [&](const std::string &r) -> int {
        auto it = regIndex.find(r);
        if (it != regIndex.end())
            return it->second;
        int id = static_cast<int>(regIndex.size());
        regIndex.emplace(r, id);
        return id;
    };
    for (int i = 0; i < n_; ++i) {
        for (const auto &r : prog.instrs[i].regsRead())
            regBit(r);
        if (!prog.instrs[i].regWritten().empty())
            regBit(prog.instrs[i].regWritten());
    }
    if (regIndex.size() <= 64) {
        const uint64_t kAll = ~0ULL;
        for (int a = 0; a < n_; ++a) {
            const ptx::Instruction &src = prog.instrs[a];
            if (!src.readsMemory() || src.dst.empty())
                continue;
            // Must-taint over paths from a: meet is intersection, so
            // a register stays tainted only if every path keeps it
            // data-dependent on a's loaded value.
            std::vector<uint64_t> taintIn(n_, kAll);
            uint64_t seed = 1ULL << regBit(src.dst);
            std::vector<int> wl;
            for (int s : succ_[a]) {
                if (s < n_) {
                    taintIn[s] = seed;
                    wl.push_back(s);
                }
            }
            auto issueReads = [&](const ptx::Instruction &ins,
                                  uint64_t t) {
                for (const auto &r : ins.regsRead()) {
                    if (t & (1ULL << regBit(r)))
                        return true;
                }
                return false;
            };
            while (!wl.empty()) {
                int q = wl.back();
                wl.pop_back();
                const ptx::Instruction &ins = prog.instrs[q];
                uint64_t out = taintIn[q];
                const std::string dst = ins.regWritten();
                if (!dst.empty() && ins.op != ptx::Opcode::Bra &&
                    ins.op != ptx::Opcode::St) {
                    uint64_t bit = 1ULL << regBit(dst);
                    // dst becomes dependent iff an issue input is;
                    // guarded writes may be skipped, so the old
                    // binding must be dependent too.
                    bool dep = issueReads(ins, taintIn[q]);
                    if (dep && !ins.hasGuard)
                        out |= bit;
                    else if (!dep)
                        out &= ~bit;
                    else if (!(taintIn[q] & bit))
                        out &= ~bit;
                }
                for (int s : succ_[q]) {
                    if (s >= n_)
                        continue;
                    uint64_t nm = taintIn[s] & out;
                    if (nm != taintIn[s]) {
                        taintIn[s] = nm;
                        wl.push_back(s);
                    }
                }
            }
            for (int b = 0; b < n_; ++b) {
                if (taintIn[b] == kAll)
                    continue; // not reachable from a
                if (issueReads(prog.instrs[b], taintIn[b]))
                    dep_[a][b] = 1;
            }
        }
    }
}

bool
ThreadSummary::poPath(int a, int b) const
{
    return a >= 0 && a < n_ && b >= 0 && b < n_ && reach_[a][b];
}

bool
ThreadSummary::depOrdered(int a, int b) const
{
    return dep_[a][b] != 0;
}

bool
ThreadSummary::regRedefinedBetween(const std::string &reg, int from,
                                   int to, bool checkFrom) const
{
    const auto &instrs = test_->program.threads[tid_].instrs;
    if (checkFrom && instrs[from].regWritten() == reg)
        return true;
    for (int k = 0; k < n_; ++k) {
        if (instrs[k].regWritten() == reg && reach_[from][k] &&
            reach_[k][to])
            return true;
    }
    return false;
}

bool
ThreadSummary::fenceAdequate(const FenceInfo &f, const MemEvent &a,
                             const MemEvent &b) const
{
    // Mirrors sim::Machine::fenceActiveFor: .gl and wider always
    // drain; membar.cta is only honoured when the thread has a
    // same-CTA testing peer; shared-memory targets are ordered by any
    // scope (they perform in place, no store buffer).
    if (ptx::scopeAtLeast(f.scope, ptx::Scope::Gl))
        return true;
    if (hasSameCtaPeer_)
        return true;
    return a.allShared && b.allShared;
}

bool
ThreadSummary::guardOk(const FenceInfo &f, const MemEvent &a,
                       const MemEvent &b) const
{
    if (!f.guard.present)
        return true;
    // A guarded fence fires whenever a same-guarded neighbour does,
    // provided nothing redefines the guard register in between.
    if (a.guard.present && f.guard == a.guard &&
        !regRedefinedBetween(f.guard.reg, a.index, f.index, true))
        return true;
    if (b.guard.present && f.guard == b.guard &&
        !regRedefinedBetween(f.guard.reg, f.index, b.index, false))
        return true;
    return false;
}

bool
ThreadSummary::allPathsFenced(const MemEvent &a, const MemEvent &b,
                              int *inadequateFence) const
{
    // Does every CFG path from a to b pass a blocking fence? DFS the
    // fence-free fragment; if b is reachable there, some execution
    // lets the pair slip past each other.
    std::vector<uint8_t> seen(n_, 0);
    std::vector<int> work = succ_[a.index];
    bool sawFence = false;
    while (!work.empty()) {
        int k = work.back();
        work.pop_back();
        if (k >= n_ || seen[k])
            continue;
        if (k == b.index)
            return false; // fence-free path exists
        seen[k] = 1;
        const ptx::Instruction &ins =
            test_->program.threads[tid_].instrs[k];
        if (ins.isFence()) {
            const FenceInfo *fi = nullptr;
            for (const auto &f : fences_) {
                if (f.index == k)
                    fi = &f;
            }
            if (fi && fenceAdequate(*fi, a, b) && guardOk(*fi, a, b))
                continue; // blocking: stop exploring through it
            sawFence = true;
            if (inadequateFence && *inadequateFence < 0)
                *inadequateFence = k;
        }
        for (int s : succ_[k])
            work.push_back(s);
    }
    (void)sawFence;
    return true;
}

SegStatus
ThreadSummary::segment(const MemEvent &a, const MemEvent &b) const
{
    if (!poPath(a.index, b.index))
        return {true, SegReason::NoPath, -1};
    // Per-location coherence: the machine keeps same-location
    // accesses in order unless both are plain loads (the coRR
    // hazard, Fig. 6 of the paper).
    bool sameLoc = a.singleLoc() && b.singleLoc() &&
                   a.locs[0] == b.locs[0];
    if (sameLoc && (a.writes() || b.writes()))
        return {true, SegReason::SameLocation, -1};
    // Scoreboard dependencies delay the younger access's issue past
    // the older load's perform — unless the younger is a .ca load,
    // which can observe an L1 line cached before either ran.
    if (!b.caLoad && depOrdered(a.index, b.index))
        return {true, SegReason::Dependency, -1};
    int inadequate = -1;
    if (!b.caLoad && allPathsFenced(a, b, &inadequate))
        return {true, SegReason::Fenced, -1};
    if (b.caLoad)
        return {false, SegReason::StaleL1, -1};
    if (sameLoc)
        return {false, SegReason::CoRR, -1};
    if (inadequate >= 0)
        return {false, SegReason::UnderScopedFence, inadequate};
    return {false, SegReason::MissingFence, -1};
}

std::vector<ThreadSummary>
summarise(const litmus::Test &test)
{
    std::vector<ThreadSummary> out;
    out.reserve(test.program.threads.size());
    for (int t = 0; t < test.program.numThreads(); ++t)
        out.emplace_back(test, t);
    return out;
}

} // namespace gpulitmus::analysis
