/**
 * @file
 * The static race and fence analyzer: classifies every cross-thread
 * conflicting pair of a litmus test as proven-racy, possibly-racy or
 * proven-ordered, with concrete diagnostics.
 *
 * The criterion is Shasha/Snir-style robustness: a weak behaviour
 * needs a critical cycle — alternating cross-thread conflict edges
 * and in-thread program-order segments, visiting each thread at most
 * once — in which at least one segment is unprotected (no adequate
 * fence, scoreboard dependency or same-location coherence, see
 * summary.h). A pair is racy exactly when its conflict edge lies on
 * such a cycle; a program with no such cycle is "fully ordered" and
 * can only produce sequentially consistent outcomes, which the
 * explorer pre-pass (eval/backend.cc) and the differential gate in
 * tests/test_analysis.cc rely on.
 */

#ifndef GPULITMUS_ANALYSIS_RACE_H
#define GPULITMUS_ANALYSIS_RACE_H

#include <string>
#include <vector>

#include "analysis/summary.h"
#include "litmus/test.h"

namespace gpulitmus::analysis {

/** One side of a finding, with its source position. */
struct EventRef
{
    int tid = 0;
    int index = 0;
    std::string instr;
    std::vector<std::string> locs;
    bool locUnknown = false;
    int srcLine = 0;
    int srcCol = 0;
};

/** Classification of one conflicting pair. */
enum class PairClass { ProvenOrdered, PossiblyRacy, ProvenRacy };

std::string toString(PairClass c);

/** One racy pair plus the diagnostics of a witnessing cycle. */
struct Finding
{
    PairClass severity = PairClass::PossiblyRacy;
    EventRef a, b;
    std::vector<std::string> locs; ///< common locations of the pair
    std::string placement; ///< "intra-warp" / "intra-cta" / "inter-cta"
    /** Why the witnessing cycle's unprotected segments are broken —
     * the missing or under-scoped fence, coRR, or stale-L1 reads. */
    std::vector<std::string> reasons;
};

/** Whole-test analysis result. */
struct Report
{
    std::string testName;
    std::vector<Finding> findings; ///< racy pairs, proven first
    int pairsTotal = 0;
    int pairsProven = 0;
    int pairsPossibly = 0;
    int pairsOrdered = 0;
    /** No dangerous cycle at all: every reachable outcome is
     * sequentially consistent. */
    bool fullyOrdered = false;
    /** Cycle enumeration hit its step budget; racy counts degraded
     * conservatively and fullyOrdered is false. */
    bool budgetExceeded = false;

    int racyPairs() const { return pairsProven + pairsPossibly; }
    bool anyProven() const { return pairsProven > 0; }

    /** Human-readable report. */
    std::string str() const;
    /** Stable JSON rendering (schema "gpulitmus-lint-1"). */
    std::string json() const;
};

/** Analyze a test. */
Report analyze(const litmus::Test &test);

} // namespace gpulitmus::analysis

#endif // GPULITMUS_ANALYSIS_RACE_H
