/**
 * @file
 * The exhaustive schedule explorer: stateless model checking of the
 * operational machine, in the style GPUMC applies to GPU litmus tests.
 *
 * Where the sampling harness runs a test 100k times and reports a
 * histogram, the Explorer *enumerates* the machine's nondeterminism:
 * it replays the simulator depth-first over the tree of choice
 * sequences (sim/choice.h) and returns the exact set of reachable
 * final states. A sampled sweep can only say "never observed"; an
 * exploration says "unreachable" — which is what upgrades the eval
 * layer's `imprecise` conformance verdicts to definitive ones.
 *
 * Pruning, in decreasing order of leverage:
 *
 * - Timing-only choices (start skew, replay delays, drain laziness,
 *   CTA placement) are pinned to a canonical value: exhaustive
 *   scheduling subsumes them, so no reachable final state is lost.
 * - State caching: at every scheduling point the machine state is
 *   encoded canonically; a revisited state contributes its memoised
 *   reachable set and the branch is cut. Cycles (spin loops) are
 *   handled with a Tarjan-style taint watermark — a state is only
 *   memoised once its subtree closed without escaping to a live
 *   ancestor — which also makes unbounded-loop tests terminate.
 * - Sleep sets (DPOR): after a scheduling alternative is fully
 *   explored, it is put to sleep for its siblings' subtrees and only
 *   woken by a dependent memory event, where (in)dependence is judged
 *   from conservative per-actor footprints over the simulator's
 *   memory events. Because the sleep discipline changes which
 *   subtrees are explored, the state-cache key is the (state, sleep
 *   set) pair.
 *
 * A step/branch budget (maxReplays / maxStates) degrades gracefully:
 * when it trips, the result is flagged incomplete ("bounded") and
 * carries everything reached so far — still a sound lower bound on
 * the reachable set, no longer a proof of unreachability.
 *
 * Hot-path machinery (PR 4): the search is *checkpointed* — every
 * branchy schedule node on the DFS spine keeps a machine snapshot
 * (sim::Machine::snapshot), and each new replay resumes from the
 * deepest checkpoint at or above its divergence point instead of
 * re-executing the whole choice prefix from instruction zero. This
 * changes no decision the search makes: the tree traversal, the
 * replay count and every pruning statistic are bit-identical with
 * checkpointing on or off (only wall clock and the per-replay work
 * shrink), which the determinism tests pin. State-cache keys are
 * 128-bit digests streamed incrementally from the machine state
 * (Machine::hashState) rather than materialised strings; the PR-3
 * string keying survives behind ExploreOptions::debugStateKeys,
 * which switches the memo back to full (collision-free) encodings —
 * the key-agreement tests explore the whole corpus in both modes and
 * require identical results and statistics, which is how a digest
 * collision would surface. Digests are stable within a build but are
 * not a serialisation format (common/hash.h).
 *
 * Parallel exploration (ExploreOptions::shards > 1) work-steals
 * independent subtrees across a thread pool while keeping the
 * *committed* traversal — results and statistics — bit-identical to
 * the sequential search; see the "optimistic exploration,
 * deterministic commit" section in mc/explorer.cc and the
 * parallel-exploration chapter of docs/ARCHITECTURE.md.
 */

#ifndef GPULITMUS_MC_EXPLORER_H
#define GPULITMUS_MC_EXPLORER_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "litmus/test.h"
#include "sim/chip.h"
#include "sim/machine.h"

namespace gpulitmus::mc {

struct ExploreStats;

struct ExploreOptions
{
    /** Machine configuration: the incantation column gates which
     * reordering mechanisms exist at all, exactly as it does for
     * sampling. */
    sim::MachineOptions machine{};
    /** Replay budget: one replay is one root-to-leaf execution of the
     * machine. Exceeding it yields an incomplete (bounded) result. */
    uint64_t maxReplays = 1u << 20;
    /** Cap on cached states before the search declares itself
     * bounded. */
    uint64_t maxStates = 1u << 22;
    /** DPOR sleep-set pruning (sound; disable to cross-check). */
    bool sleepSets = true;
    /** State-cache pruning (sound; disable to cross-check). */
    bool stateCache = true;
    /** Resume replays from machine snapshots at schedule nodes
     * instead of re-executing the whole choice prefix. Pure wall-
     * clock: the traversal and every stat except `resumes` /
     * `replayedChoices` are bit-identical on or off. */
    bool checkpoints = true;
    /** Key the state memo on the full string encodings (the PR-3
     * scheme, collision-free by construction) instead of 128-bit
     * digests. Slow; for tests and forensic runs — compare a run in
     * each mode: any divergence implicates a digest collision
     * (GPULITMUS_MC_DEBUG_KEYS=1 wires it through the mc backend). */
    bool debugStateKeys = false;
    /**
     * Parallel exploration width. 1 (the default) runs the classic
     * single-threaded DFS. N > 1 splits the frontier into independent
     * subtrees at the shallowest branchy spine node, explores them on
     * a work-stealing worker pool sharing a sharded committed-state
     * cache, and — crucially — *commits* subtree results on the
     * driving thread in subtree-id order, redoing any subtree whose
     * optimistic cache view turned out to differ from the sequential
     * one. The committed merge is therefore bit-identical to the
     * sequential traversal: same reachable set, same verdict, same
     * stats (replays, cuts, resumes, peak depth), at any shard count
     * and any worker interleaving.
     *
     * Budgets scale with the width: the effective caps are
     * maxReplays × shards and maxStates × shards, drawn from one
     * shared pool — which is what lets a shards=4 run complete a
     * search that degrades to "bounded" at shards=1. A bounded
     * shards=N result equals a sequential run with the same total
     * budget, replay for replay.
     */
    int shards = 1;
    /**
     * Worker threads for the parallel phase. 0 = auto
     * (min(shards, subtree count)). Wall-clock only: results are
     * independent of the thread count and of scheduling, so a 1-CPU
     * host still gets the shards=N *budget* semantics (and the tests
     * still exercise the commit protocol).
     */
    int shardThreads = 0;
    /** Liveness hook: called from the search loop every
     * `heartbeatEvery` replays with the running statistics, so a
     * 128k-replay exploration is visibly alive (the serve daemon
     * forwards these as `progress` heartbeat events). Purely
     * observational — the callback sees the stats, never steers the
     * traversal — so results are bit-identical with or without it. */
    std::function<void(const ExploreStats &)> heartbeat;
    uint64_t heartbeatEvery = 4096;
};

struct ExploreStats
{
    uint64_t replays = 0;      ///< executions of the machine
    uint64_t choicePoints = 0; ///< distinct tree nodes materialised
    uint64_t stateCuts = 0;    ///< branches cut at a cached state
    uint64_t sleepSkips = 0;   ///< schedule alternatives put to sleep
    uint64_t distinctStates = 0; ///< scheduling states memoised
    size_t peakDepth = 0;      ///< deepest choice sequence
    /** Replays resumed from a checkpoint (0 with checkpoints off). */
    uint64_t resumes = 0;
    /** Stored prefix choices re-consumed across all replays — the
     * work checkpointing exists to avoid; compare on vs off. */
    uint64_t replayedChoices = 0;
};

/** The exact outcome of exploring one (chip, test, incantation). */
struct ExploreResult
{
    std::string testName;
    std::string chipName;
    int column = 16;

    /** True when the whole choice tree was drained: `finals` is then
     * the *exact* reachable set. False when a budget tripped: `finals`
     * is a sound lower bound ("bounded" verdict). */
    bool complete = false;

    /**
     * True when the tree was drained and the only exactness caveat is
     * spin-loop dedup (revisits of an equal machine state at a
     * different fetch count — see the runaway-guard discussion in
     * mc/explorer.cc). `finals` is then the exact reachable set of
     * the machine with an *unbounded* step guard: every execution in
     * which all spin loops terminate reaches one of these states and
     * no other. This is the strongest claim an exploration can make
     * about a spin-loop scenario — the sampler's runaway guard is the
     * only behaviour it does not cover. Implies nothing extra for
     * loop-free tests, where it equals `complete`.
     */
    bool fairComplete = false;

    /** Reachable final states: outcome key (litmus::Histogram::keyFor
     * format, the same keys model verdicts use) -> number of explored
     * choice paths producing it. The weight is structural — how many
     * distinct schedules land there, not a probability — and is what
     * conformance reports as rare(weight). */
    std::map<std::string, uint64_t> finals;

    /** Reachable keys whose final state satisfies the condition
     * body. */
    std::set<std::string> satisfying;

    /** Sum of all path weights. */
    uint64_t paths = 0;

    ExploreStats stats;
    double millis = 0.0;

    /** The budgets this exploration ran under (ExploreOptions),
     * kept so a bounded verdict can report its burn-down. Advisory:
     * not part of the result's identity and not persisted by the
     * result store (store-served results carry 0 here; renderers
     * that must be store-stable derive the budget from the job). */
    uint64_t budgetReplays = 0;
    uint64_t budgetStates = 0;

    bool
    reachable(const std::string &key) const
    {
        return finals.count(key) > 0;
    }

    /** Litmus-style verdict against the test's quantifier, qualified
     * by completeness: "Ok"/"No", or "Ok (bounded)" etc. */
    std::string verdict(const litmus::Test &test) const;

    /** Multi-line report: reachable states with weights + stats. */
    std::string str() const;

    /** str() plus the diagnosability tail: budget burn-down (replays
     * and states used vs budgeted) and the search-shape metrics
     * (deepest frontier, resumes) that explain *why* a bounded
     * verdict ran out — the ISSUE-8 answer to "bounded, now what?". */
    std::string report() const;
};

/**
 * Explores one litmus test on one chip profile. Construct once, call
 * explore(); the search is fully deterministic (no RNG), so repeated
 * explorations are bit-identical.
 */
class Explorer
{
  public:
    Explorer(const sim::ChipProfile &chip, const litmus::Test &test,
             ExploreOptions opts = {});
    ~Explorer();

    ExploreResult explore();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace gpulitmus::mc

#endif // GPULITMUS_MC_EXPLORER_H
