#include "mc/explorer.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/log.h"
#include "litmus/outcome.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gpulitmus::mc {

namespace {

/**
 * Outcome-key weights, indexed by interned outcome id. The search
 * folds reachability counts up the spine on every cut and pop;
 * keeping them as flat integer vectors (the interner owns the one
 * copy of each outcome string) makes that folding allocation-free
 * arithmetic instead of string-keyed map merges. Ids are dense and
 * few (a litmus test has a handful of distinct outcomes), so the
 * vectors stay tiny.
 */
using Weights = std::vector<uint64_t>;

void
foldWeights(Weights &dst, const Weights &src)
{
    if (dst.size() < src.size())
        dst.resize(src.size(), 0);
    for (size_t i = 0; i < src.size(); ++i)
        dst[i] += src[i];
}

void
bumpWeight(Weights &dst, uint32_t id)
{
    if (dst.size() <= id)
        dst.resize(id + 1, 0);
    ++dst[id];
}

/** Outcome-string interner: one stored string per distinct outcome,
 * dense ids for the hot-path accounting. */
struct KeyInterner
{
    std::unordered_map<std::string, uint32_t> ids;
    std::vector<const std::string *> names; ///< id -> stored key

    uint32_t
    intern(std::string &&key)
    {
        auto [it, fresh] = ids.emplace(
            std::move(key), static_cast<uint32_t>(names.size()));
        if (fresh)
            names.push_back(&it->first);
        return it->second;
    }
};

/** One materialised node of the choice tree (a position in the
 * current DFS trace). Node slots are pooled: the trace vector never
 * shrinks, popped slots are reset and reused, so the per-replay push/
 * pop churn allocates nothing once the containers are warm. */
struct Node
{
    sim::ChoiceKind kind = sim::ChoiceKind::Schedule;
    uint32_t arity = 0;
    uint32_t chosen = 0;
    /** Alternatives not yet explored, in exploration order. */
    std::vector<uint32_t> pending;

    bool isSchedule = false;
    /** State-cache key; valid when hasKey (caching on). `key` is the
     * (state, sleep) digest — or, in debug mode, `stringKey` is the
     * full encoding and `key` is unused. */
    bool hasKey = false;
    Digest128 key;
    std::string stringKey;
    /** Machine checkpoint at this schedule point; valid when
     * hasSnap (checkpointing on). */
    bool hasSnap = false;
    sim::Machine::Snapshot snap;
    /** Sleeping actor ids at node entry (indexed by actor id). */
    std::vector<uint8_t> sleepIn;
    /** Actor table snapshot (schedule nodes only). */
    std::vector<sim::ActorOption> actors;
    /** Actor ids of alternatives already fully explored here. */
    std::vector<int> doneIds;

    /** Reachable finals accumulated across this node's subtree. */
    Weights finals;
    /** Shallowest trace depth a grey cut in this subtree escaped to
     * (SIZE_MAX: none) — the Tarjan-style completeness watermark. */
    size_t taint = SIZE_MAX;

    void
    reset(sim::ChoiceKind k, uint32_t n)
    {
        kind = k;
        arity = n;
        chosen = 0;
        pending.clear();
        isSchedule = false;
        hasKey = false;
        stringKey.clear();
        hasSnap = false;
        sleepIn.clear();
        actors.clear();
        doneIds.clear();
        finals.clear();
        taint = SIZE_MAX;
    }
};

struct VisitEntry
{
    bool black = false; ///< subtree fully explored; finals memoised
    size_t greyDepth = 0;
    /** Fetch-counter digest at the visit. The state encoding excludes
     * the counters (they only feed the runaway-loop guard), so a
     * revisit whose digest differs is equal in behaviour *except* for
     * its distance to that guard: the cut still terminates the
     * search, but the result demotes from exact to bounded. */
    uint64_t executedSig = 0;
    Weights finals;
};

} // anonymous namespace

// ---------------------------------------------------------------------
// Impl: the DFS driver doubling as the machine's choice provider.
// ---------------------------------------------------------------------

struct Explorer::Impl final : sim::ChoiceProvider
{
    ExploreOptions opts;
    const litmus::Test *test;
    sim::Machine machine;
    litmus::Histogram keyer; ///< outcome-key renderer only

    /** Pooled node slots; the live DFS spine is trace[0..traceLen). */
    std::vector<Node> trace;
    size_t traceLen = 0;
    Weights rootFinals;
    KeyInterner interner;
    std::vector<uint8_t> satFlags; ///< by outcome id
    /** Leaf memo: final-state digest -> interned outcome id. Repeat
     * outcomes (the overwhelming majority of leaves) skip the
     * final-state materialisation, key rendering and condition
     * evaluation entirely. Unused in debug mode, which collects
     * every leaf the PR-3 way. */
    std::unordered_map<Digest128, uint32_t, Digest128::Hasher>
        outcomeIds;
    /** The state memo. Digest-keyed on the fast path; string-keyed
     * (the PR-3 scheme, kept for cross-checking) in debug mode. Only
     * the map matching opts.debugStateKeys is ever populated. */
    std::unordered_map<Digest128, VisitEntry, Digest128::Hasher>
        visited;
    std::unordered_map<std::string, VisitEntry> visitedStr;
    ExploreStats stats;

    /** Pending cut, set by pickActor when it aborts a replay whose
     * continuation is memoised (exception-free: the machine returns
     * out of the run on the kAbortRun sentinel). `cutMemo` points at
     * the visited entry's finals — stable until the next map
     * mutation, consumed immediately after the run returns. */
    bool cutPending = false;
    const Weights *cutMemo = nullptr;
    size_t cutTaint = SIZE_MAX;

    size_t depth = 0; ///< next choice index within the current replay
    size_t nIds = 0;  ///< actor-id space: threads + SM drain actors
    std::vector<uint8_t> curSleep;
    std::string scratch;            ///< debug-mode string encoding
    std::vector<uint32_t> candsScratch;
    std::vector<uint8_t> sleepScratch;
    /** A state cut merged states at different fetch counts (a spin
     * loop): "exact" demotes to "exact for terminating executions"
     * (ExploreResult::fairComplete). */
    bool loopDedup = false;
    /** A replay actually ran into the runaway guard and recorded a
     * truncated final state: even the fair-schedule claim is gone. */
    bool truncatedLeaf = false;

    Impl(const sim::ChipProfile &chip, const litmus::Test &t,
         ExploreOptions o)
        : opts(o), test(&t), machine(chip, t, o.machine), keyer(t)
    {
        nIds = static_cast<size_t>(t.program.numThreads()) +
               static_cast<size_t>(chip.numSMs);
        curSleep.assign(nIds, 0);
        visited.reserve(1u << 12);
    }

    Node &
    pushNode(sim::ChoiceKind kind, uint32_t arity)
    {
        if (traceLen == trace.size())
            trace.emplace_back();
        Node &node = trace[traceLen++];
        node.reset(kind, arity);
        stats.peakDepth = std::max(stats.peakDepth, traceLen);
        return node;
    }

    // ---- ChoiceProvider ---------------------------------------------

    /** The actor table only matters when the upcoming schedule point
     * materialises a fresh node; replayed prefixes use their stored
     * snapshot, so skip the build. */
    bool wantsActors() const override { return depth >= traceLen; }
    int delayBump() override { return 0; }

    uint64_t
    pick(sim::ChoiceKind kind, uint64_t n) override
    {
        // Timing-only / symmetric kinds are pinned: exhaustive
        // scheduling subsumes start skew, and CTA->SM placements are
        // interchangeable (homogeneous SMs, always distinct).
        if (kind == sim::ChoiceKind::Placement ||
            kind == sim::ChoiceKind::StartSkew)
            return 0;
        if (n <= 1)
            return 0;
        return takeSimple(kind, static_cast<uint32_t>(n));
    }

    bool
    chance(sim::ChoiceKind kind, double p, bool relevant) override
    {
        // Irrelevant choices cannot affect reachability; drain
        // laziness is "the scheduler did not pick the drain actor",
        // which the schedule choice already enumerates.
        if (!relevant || kind == sim::ChoiceKind::DrainLazy)
            return false;
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return takeSimple(kind, 2) != 0;
    }

    uint32_t
    takeSimple(sim::ChoiceKind kind, uint32_t arity)
    {
        size_t d = depth++;
        if (d < traceLen) {
            const Node &node = trace[d];
            if (node.kind != kind || node.isSchedule)
                panic("mc replay diverged at depth %zu: expected %s,"
                      " machine asked %s",
                      d, sim::toString(node.kind),
                      sim::toString(kind));
            ++stats.replayedChoices;
            return node.chosen;
        }
        ++stats.choicePoints;
        Node &node = pushNode(kind, arity);
        node.pending.reserve(arity - 1);
        for (uint32_t v = 1; v < arity; ++v)
            node.pending.push_back(v);
        return 0;
    }

    /** Abandon the current replay: record the cut for explore() and
     * hand the machine the abort sentinel. */
    size_t
    cutRun(const Weights *memo, size_t taint_depth)
    {
        cutPending = true;
        cutMemo = memo;
        cutTaint = taint_depth;
        return sim::ChoiceProvider::kAbortRun;
    }

    size_t
    pickActor(const sim::ActorOption *actors, size_t n) override
    {
        size_t d = depth++;
        if (d < traceLen) {
            Node &node = trace[d];
            if (!node.isSchedule)
                panic("mc replay diverged at depth %zu: stored %s,"
                      " machine asked schedule",
                      d, sim::toString(node.kind));
            ++stats.replayedChoices;
            updateSleepAfter(node);
            return node.chosen;
        }
        ++stats.choicePoints;

        Digest128 key{};
        bool has_key = false;
        if (opts.stateCache) {
            // Sleep sets change which subtrees get explored, so
            // cache hits are only sound between points with the same
            // sleep discipline: the key covers the (state, sleep)
            // pair. Fast path: stream the state into a 128-bit
            // digest, no string materialised. Debug path: the PR-3
            // string key, byte for byte.
            uint64_t sig = machine.executedSignature();
            VisitEntry *hit = nullptr;
            if (opts.debugStateKeys) {
                scratch.clear();
                machine.encodeState(scratch);
                if (opts.sleepSets)
                    scratch.append(curSleep.begin(), curSleep.end());
                auto it = visitedStr.find(scratch);
                if (it != visitedStr.end())
                    hit = &it->second;
            } else {
                Hash128 h;
                machine.hashState(h);
                if (opts.sleepSets)
                    h.putBytes(curSleep.data(), curSleep.size());
                key = h.digest();
                auto it = visited.find(key);
                if (it != visited.end())
                    hit = &it->second;
            }
            if (hit) {
                ++stats.stateCuts;
                // Equal state, different fetch counters (a loop):
                // the continuations differ only in the runaway
                // guard's distance, so cut — the search terminates —
                // but the exactness claim is gone.
                if (hit->executedSig != sig)
                    loopDedup = true;
                if (hit->black)
                    return cutRun(&hit->finals, SIZE_MAX);
                return cutRun(nullptr, hit->greyDepth);
            }
            if (opts.debugStateKeys)
                visitedStr.emplace(scratch,
                                   VisitEntry{false, d, sig, {}});
            else
                visited.emplace(key, VisitEntry{false, d, sig, {}});
            has_key = true;
        }

        candsScratch.clear();
        for (size_t i = 0; i < n; ++i) {
            if (!actors[i].enabled)
                continue;
            if (opts.sleepSets &&
                curSleep[static_cast<size_t>(actors[i].id)]) {
                ++stats.sleepSkips;
                continue;
            }
            candsScratch.push_back(static_cast<uint32_t>(i));
        }
        if (candsScratch.empty()) {
            // Every enabled actor is asleep: all continuations from
            // here are covered by the sibling subtrees that put them
            // to sleep.
            if (has_key) {
                if (opts.debugStateKeys)
                    visitedStr.erase(scratch);
                else
                    visited.erase(key);
            }
            return cutRun(nullptr, SIZE_MAX);
        }

        Node &node = pushNode(sim::ChoiceKind::Schedule,
                              static_cast<uint32_t>(n));
        node.isSchedule = true;
        node.actors.assign(actors, actors + n);
        node.sleepIn.assign(curSleep.begin(), curSleep.end());
        node.hasKey = has_key;
        node.key = key;
        if (has_key && opts.debugStateKeys)
            node.stringKey = scratch;
        node.chosen = candsScratch[0];
        node.pending.assign(candsScratch.begin() + 1,
                            candsScratch.end());
        if (opts.checkpoints && !node.pending.empty()) {
            // The machine is still at the top of this step (the pick
            // mutates nothing before returning), so the snapshot
            // resumes exactly here. Only branchy nodes checkpoint —
            // a singleton node can never be a divergence point, and
            // resuming from the nearest branchy ancestor replays the
            // few singleton steps in between. Slot pooling recycles
            // the snapshot's storage with the node.
            machine.snapshot(node.snap);
            node.hasSnap = true;
        }
        updateSleepAfter(node);
        return node.chosen;
    }

    // ---- sleep-set plumbing -----------------------------------------

    const sim::ActorOption *
    findActor(const Node &node, int id) const
    {
        for (const auto &a : node.actors) {
            if (a.id == id)
                return &a;
        }
        return nullptr;
    }

    /** Set curSleep to the child sleep set of `node` descended via
     * node.chosen: (sleepIn ∪ explored siblings) minus everything
     * dependent on the chosen slot. */
    void
    updateSleepAfter(const Node &node)
    {
        if (!opts.sleepSets) {
            return;
        }
        const sim::ActorOption &a = node.actors[node.chosen];
        if (node.doneIds.empty()) {
            // Fast path: nobody newly asleep. The child set is the
            // entry set minus dependants of the chosen slot; when the
            // entry set is empty (the common case off the first
            // branch), the child set is too.
            bool any = false;
            for (uint8_t s : node.sleepIn)
                any = any || s;
            if (!any) {
                std::fill(curSleep.begin(), curSleep.end(), 0);
                return;
            }
        }
        sleepScratch.assign(node.sleepIn.begin(), node.sleepIn.end());
        sleepScratch.resize(nIds, 0);
        for (int id : node.doneIds)
            sleepScratch[static_cast<size_t>(id)] = 1;
        sleepScratch[static_cast<size_t>(a.id)] = 0;
        for (size_t id = 0; id < nIds; ++id) {
            if (!sleepScratch[id])
                continue;
            const sim::ActorOption *u =
                findActor(node, static_cast<int>(id));
            if (!u || !sim::independentActors(*u, a))
                sleepScratch[id] = 0;
        }
        std::swap(curSleep, sleepScratch);
    }

    // ---- subtree accounting -----------------------------------------

    void
    contribute(const Weights &w)
    {
        foldWeights(traceLen == 0 ? rootFinals
                                  : trace[traceLen - 1].finals,
                    w);
    }

    void
    contributeOne(uint32_t id)
    {
        bumpWeight(traceLen == 0 ? rootFinals
                                 : trace[traceLen - 1].finals,
                   id);
    }

    void
    taintDeepest(size_t greyDepth)
    {
        if (traceLen > 0)
            trace[traceLen - 1].taint =
                std::min(trace[traceLen - 1].taint, greyDepth);
    }

    /** Pop the deepest node, folding its finals (and, when it cannot
     * be declared complete, its taint) into its parent. `blacken`
     * is false during a budget abort: nothing gets memoised then. */
    void
    popTop(bool blacken)
    {
        Node &top = trace[traceLen - 1];
        --traceLen;
        size_t my_depth = traceLen;

        if (top.isSchedule && top.hasKey) {
            bool closed = blacken && top.taint >= my_depth;
            VisitEntry *entry = nullptr;
            if (opts.debugStateKeys) {
                auto it = visitedStr.find(top.stringKey);
                if (it != visitedStr.end())
                    entry = &it->second;
            } else {
                auto it = visited.find(top.key);
                if (it != visited.end())
                    entry = &it->second;
            }
            if (closed) {
                if (entry) {
                    entry->black = true;
                    entry->finals = top.finals;
                }
                ++stats.distinctStates;
            } else {
                // Part of a cycle to a live ancestor (or aborted):
                // its finals are incomplete, so forget the state and
                // let a future visit re-explore it.
                if (opts.debugStateKeys)
                    visitedStr.erase(top.stringKey);
                else
                    visited.erase(top.key);
            }
        }

        if (traceLen == 0) {
            foldWeights(rootFinals, top.finals);
        } else {
            Node &p = trace[traceLen - 1];
            foldWeights(p.finals, top.finals);
            if (top.taint < my_depth)
                p.taint = std::min(p.taint, top.taint);
        }
    }

    /** Advance to the next unexplored alternative; true = drained. */
    bool
    backtrack()
    {
        while (traceLen > 0) {
            Node &top = trace[traceLen - 1];
            if (!top.pending.empty()) {
                if (top.isSchedule)
                    top.doneIds.push_back(
                        top.actors[top.chosen].id);
                top.chosen = top.pending.front();
                top.pending.erase(top.pending.begin());
                return false;
            }
            popTop(true);
        }
        return true;
    }

    // ---- the search -------------------------------------------------

    /** Interned outcome id of the machine's just-finished leaf,
     * memoised by final-state digest on the fast path. Debug mode
     * materialises every leaf (the PR-3 behaviour), so the two modes
     * cross-check the digest memo as well as the state keys. */
    uint32_t
    leafOutcomeId()
    {
        auto record = [&]() {
            litmus::FinalState st = machine.finalState();
            uint32_t id = interner.intern(keyer.keyFor(st));
            if (test->condition.eval(st)) {
                if (satFlags.size() <= id)
                    satFlags.resize(id + 1, 0);
                satFlags[id] = 1;
            }
            return id;
        };
        if (opts.debugStateKeys)
            return record();
        auto [it, fresh] =
            outcomeIds.try_emplace(machine.outcomeDigest(), 0);
        if (fresh)
            it->second = record();
        return it->second;
    }

    ExploreResult
    explore()
    {
        auto start = std::chrono::steady_clock::now();
        obs::Span span("explore " + test->name + "@" +
                           machine.chip().shortName,
                       "mc");
        // Telemetry observes the search; it never steers it. The
        // per-replay counter and the heartbeat callback fire on the
        // replay cadence only — traversal, pruning and results are
        // bit-identical with them on or off (tests pin this).
        const bool obs_on = obs::enabled();
        obs::Counter &replay_counter = obs::counter("mc_replays_total");
        bool complete = true;
        bool drained = false;
        while (!drained) {
            size_t states = opts.debugStateKeys ? visitedStr.size()
                                                : visited.size();
            if (stats.replays >= opts.maxReplays ||
                (opts.stateCache && states >= opts.maxStates)) {
                complete = false;
                break;
            }
            ++stats.replays;
            if (obs_on)
                replay_counter.add();
            if (opts.heartbeat && opts.heartbeatEvery &&
                stats.replays % opts.heartbeatEvery == 0)
                opts.heartbeat(stats);
            std::fill(curSleep.begin(), curSleep.end(), 0);
            cutPending = false;
            // Resume from the deepest checkpoint on the spine: the
            // replayed prefix shrinks from the whole trace to the
            // slice after the last schedule node. The choices
            // consumed — and therefore the traversal — are identical
            // to a root replay.
            size_t resume_at = SIZE_MAX;
            if (opts.checkpoints) {
                for (size_t i = traceLen; i-- > 0;) {
                    if (trace[i].hasSnap) {
                        resume_at = i;
                        break;
                    }
                }
            }
            bool finished;
            if (resume_at != SIZE_MAX) {
                ++stats.resumes;
                depth = resume_at;
                finished =
                    machine.resumeLight(trace[resume_at].snap, *this);
            } else {
                depth = 0;
                finished = machine.runLight(*this);
            }
            if (!finished) {
                // The replay was abandoned at a memoised state
                // (cutPending is set; the machine has no final
                // state).
                if (cutMemo)
                    contribute(*cutMemo);
                if (cutTaint != SIZE_MAX)
                    taintDeepest(cutTaint);
            } else {
                contributeOne(leafOutcomeId());
                // A guard-truncated execution is a real (sampler-
                // reachable) outcome and is recorded, but the tree
                // beyond the guard was not enumerated: bounded.
                if (machine.lastRunTruncated())
                    truncatedLeaf = true;
            }
            drained = backtrack();
        }

        // On a budget abort the open spine still holds sound partial
        // results: fold them down without memoising anything.
        while (traceLen > 0)
            popTop(false);

        ExploreResult result;
        result.testName = test->name;
        result.chipName = machine.chip().shortName;
        result.column = opts.machine.inc.column();
        result.complete = complete && !loopDedup && !truncatedLeaf;
        // Drained with loop-dedup cuts as the only caveat: exact for
        // every execution whose spin loops terminate.
        result.fairComplete = complete && !truncatedLeaf;
        // Un-intern the dense accounting back into the string-keyed
        // result shape the eval layer consumes.
        for (uint32_t id = 0; id < rootFinals.size(); ++id) {
            if (rootFinals[id] == 0)
                continue;
            const std::string &name = *interner.names[id];
            result.finals[name] = rootFinals[id];
            if (id < satFlags.size() && satFlags[id])
                result.satisfying.insert(name);
            result.paths += rootFinals[id];
        }
        result.stats = stats;
        result.budgetReplays = opts.maxReplays;
        result.budgetStates = opts.maxStates;
        auto end = std::chrono::steady_clock::now();
        result.millis =
            std::chrono::duration<double, std::milli>(end - start)
                .count();
        // Fold the search-shape statistics into the process registry
        // (replays were already ticked live for heartbeat rates).
        if (obs_on) {
            obs::counter("mc_explorations_total").add();
            // `complete` (the local) is the budget flag; the result
            // field also folds in loop-dedup caveats.
            if (!complete)
                obs::counter("mc_bounded_total").add();
            obs::counter("mc_state_cuts_total").add(stats.stateCuts);
            obs::counter("mc_sleep_skips_total")
                .add(stats.sleepSkips);
            obs::counter("mc_states_cached_total")
                .add(stats.distinctStates);
            obs::counter("mc_resumes_total").add(stats.resumes);
            obs::counter("mc_replayed_choices_total")
                .add(stats.replayedChoices);
            obs::gauge("mc_last_peak_depth")
                .set(static_cast<int64_t>(stats.peakDepth));
        }
        return result;
    }
};

// ---------------------------------------------------------------------
// Explorer / ExploreResult
// ---------------------------------------------------------------------

Explorer::Explorer(const sim::ChipProfile &chip,
                   const litmus::Test &test, ExploreOptions opts)
    : impl_(std::make_unique<Impl>(chip, test, opts))
{
}

Explorer::~Explorer() = default;

ExploreResult
Explorer::explore()
{
    return impl_->explore();
}

std::string
ExploreResult::verdict(const litmus::Test &test) const
{
    bool sat = !satisfying.empty();
    bool ok;
    switch (test.quantifier) {
      case litmus::Quantifier::Exists:
        ok = sat;
        break;
      case litmus::Quantifier::NotExists:
        ok = !sat;
        break;
      case litmus::Quantifier::Forall:
        ok = satisfying.size() == finals.size();
        break;
      default:
        ok = false;
        break;
    }
    std::string v = ok ? "Ok" : "No";
    if (!complete)
        v += fairComplete ? " (fair)" : " (bounded)";
    return v;
}

std::string
ExploreResult::str() const
{
    std::string out;
    out += "Exploration " + testName + "@" + chipName + " (column " +
           std::to_string(column) + ")\n";
    out += (complete ? std::string("complete: ")
            : fairComplete
                ? std::string("complete for terminating executions"
                              " (spin-loop dedup): ")
                : std::string("BOUNDED (budget or loop guard): ")) +
           std::to_string(finals.size()) + " reachable states, " +
           std::to_string(paths) + " paths\n";
    for (const auto &[key, weight] : finals) {
        out += "  " + std::to_string(weight) + "  " + key;
        if (satisfying.count(key))
            out += "  *";
        out += "\n";
    }
    out += "replays " + std::to_string(stats.replays) + " (" +
           std::to_string(stats.resumes) + " resumed), states " +
           std::to_string(stats.distinctStates) + ", state cuts " +
           std::to_string(stats.stateCuts) + ", sleep skips " +
           std::to_string(stats.sleepSkips) + ", peak depth " +
           std::to_string(stats.peakDepth) + ", replayed choices " +
           std::to_string(stats.replayedChoices) + "\n";
    return out;
}

std::string
ExploreResult::report() const
{
    std::string out = str();
    // The diagnosability tail: which budget bit, and how the search
    // was shaped when it did. Budgets are advisory fields (0 when the
    // result came back from the persistent store).
    auto pct = [](uint64_t used, uint64_t budget) {
        if (!budget)
            return std::string("?");
        return std::to_string(used * 100 / budget) + "%";
    };
    out += "budget: replays " + std::to_string(stats.replays);
    if (budgetReplays)
        out += "/" + std::to_string(budgetReplays) + " (" +
               pct(stats.replays, budgetReplays) + ")";
    out += ", states " + std::to_string(stats.distinctStates);
    if (budgetStates)
        out += "/" + std::to_string(budgetStates) + " (" +
               pct(stats.distinctStates, budgetStates) + ")";
    out += ", deepest frontier " + std::to_string(stats.peakDepth) +
           "\n";
    if (!complete && !fairComplete) {
        bool replays_out =
            budgetReplays && stats.replays >= budgetReplays;
        out += std::string("bounded by: ") +
               (replays_out ? "replay budget — raise --budget"
                            : "state cap or step guard") +
               "\n";
    }
    return out;
}

} // namespace gpulitmus::mc
