#include "mc/explorer.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <vector>

#include "common/log.h"
#include "litmus/outcome.h"

namespace gpulitmus::mc {

namespace {

using ReachMap = std::map<std::string, uint64_t>;

/** One materialised node of the choice tree (a position in the
 * current DFS trace). */
struct Node
{
    sim::ChoiceKind kind = sim::ChoiceKind::Schedule;
    uint32_t arity = 0;
    uint32_t chosen = 0;
    /** Alternatives not yet explored, in exploration order. */
    std::vector<uint32_t> pending;

    bool isSchedule = false;
    /** (state, sleep) cache key; empty when caching is off. */
    std::string stateKey;
    /** Sleeping actor ids at node entry (indexed by actor id). */
    std::vector<uint8_t> sleepIn;
    /** Actor table snapshot (schedule nodes only). */
    std::vector<sim::ActorOption> actors;
    /** Actor ids of alternatives already fully explored here. */
    std::vector<int> doneIds;

    /** Reachable finals accumulated across this node's subtree. */
    ReachMap finals;
    /** Shallowest trace depth a grey cut in this subtree escaped to
     * (SIZE_MAX: none) — the Tarjan-style completeness watermark. */
    size_t taint = SIZE_MAX;
};

struct VisitEntry
{
    bool black = false; ///< subtree fully explored; finals memoised
    size_t greyDepth = 0;
    /** Fetch-counter digest at the visit. encodeState excludes the
     * counters (they only feed the runaway-loop guard), so a revisit
     * whose digest differs is equal in behaviour *except* for its
     * distance to that guard: the cut still terminates the search,
     * but the result demotes from exact to bounded. */
    uint64_t executedSig = 0;
    ReachMap finals;
};

/** Thrown to abandon a replay whose continuation is already known. */
struct Cut
{
    ReachMap finals;  ///< memoised contribution (empty for grey cuts)
    size_t taintDepth; ///< grey ancestor depth, SIZE_MAX for black
};

} // anonymous namespace

// ---------------------------------------------------------------------
// Impl: the DFS driver doubling as the machine's choice provider.
// ---------------------------------------------------------------------

struct Explorer::Impl final : sim::ChoiceProvider
{
    ExploreOptions opts;
    const litmus::Test *test;
    sim::Machine machine;
    litmus::Histogram keyer; ///< outcome-key renderer only

    std::vector<Node> trace;
    ReachMap rootFinals;
    std::set<std::string> satisfying;
    std::unordered_map<std::string, VisitEntry> visited;
    ExploreStats stats;

    size_t depth = 0; ///< next choice index within the current replay
    size_t nIds = 0;  ///< actor-id space: threads + SM drain actors
    std::vector<uint8_t> curSleep;
    std::string scratch;
    /** A step guard fired, or a state cut merged states at different
     * distances to one: the result is a sound lower bound, but
     * "exact" can no longer be claimed. */
    bool guardSensitive = false;

    Impl(const sim::ChipProfile &chip, const litmus::Test &t,
         ExploreOptions o)
        : opts(o), test(&t), machine(chip, t, o.machine), keyer(t)
    {
        nIds = static_cast<size_t>(t.program.numThreads()) +
               static_cast<size_t>(chip.numSMs);
        curSleep.assign(nIds, 0);
    }

    // ---- ChoiceProvider ---------------------------------------------

    /** The actor table only matters when the upcoming schedule point
     * materialises a fresh node; replayed prefixes (the bulk of the
     * search) use their stored snapshot, so skip the build. */
    bool wantsActors() const override { return depth >= trace.size(); }
    int delayBump() override { return 0; }

    uint64_t
    pick(sim::ChoiceKind kind, uint64_t n) override
    {
        // Timing-only / symmetric kinds are pinned: exhaustive
        // scheduling subsumes start skew, and CTA->SM placements are
        // interchangeable (homogeneous SMs, always distinct).
        if (kind == sim::ChoiceKind::Placement ||
            kind == sim::ChoiceKind::StartSkew)
            return 0;
        if (n <= 1)
            return 0;
        return takeSimple(kind, static_cast<uint32_t>(n));
    }

    bool
    chance(sim::ChoiceKind kind, double p, bool relevant) override
    {
        // Irrelevant choices cannot affect reachability; drain
        // laziness is "the scheduler did not pick the drain actor",
        // which the schedule choice already enumerates.
        if (!relevant || kind == sim::ChoiceKind::DrainLazy)
            return false;
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return takeSimple(kind, 2) != 0;
    }

    uint32_t
    takeSimple(sim::ChoiceKind kind, uint32_t arity)
    {
        size_t d = depth++;
        if (d < trace.size()) {
            const Node &node = trace[d];
            if (node.kind != kind || node.isSchedule)
                panic("mc replay diverged at depth %zu: expected %s,"
                      " machine asked %s",
                      d, sim::toString(node.kind),
                      sim::toString(kind));
            return node.chosen;
        }
        ++stats.choicePoints;
        Node node;
        node.kind = kind;
        node.arity = arity;
        node.chosen = 0;
        node.pending.reserve(arity - 1);
        for (uint32_t v = 1; v < arity; ++v)
            node.pending.push_back(v);
        trace.push_back(std::move(node));
        stats.peakDepth = std::max(stats.peakDepth, trace.size());
        return 0;
    }

    size_t
    pickActor(const sim::ActorOption *actors, size_t n) override
    {
        size_t d = depth++;
        if (d < trace.size()) {
            Node &node = trace[d];
            if (!node.isSchedule)
                panic("mc replay diverged at depth %zu: stored %s,"
                      " machine asked schedule",
                      d, sim::toString(node.kind));
            updateSleepAfter(node);
            return node.chosen;
        }
        ++stats.choicePoints;
        Node node;
        node.kind = sim::ChoiceKind::Schedule;
        node.isSchedule = true;
        node.arity = static_cast<uint32_t>(n);
        node.actors.assign(actors, actors + n);
        node.sleepIn = curSleep;

        if (opts.stateCache) {
            scratch.clear();
            machine.encodeState(scratch);
            if (opts.sleepSets) {
                // Sleep sets change which subtrees get explored, so
                // cache hits are only sound between points with the
                // same sleep discipline: key on the pair.
                scratch.append(curSleep.begin(), curSleep.end());
            }
            uint64_t sig = machine.executedSignature();
            auto it = visited.find(scratch);
            if (it != visited.end()) {
                ++stats.stateCuts;
                // Equal state, different fetch counters (a loop):
                // the continuations differ only in the runaway
                // guard's distance, so cut — the search terminates —
                // but the exactness claim is gone.
                if (it->second.executedSig != sig)
                    guardSensitive = true;
                if (it->second.black)
                    throw Cut{it->second.finals, SIZE_MAX};
                throw Cut{{}, it->second.greyDepth};
            }
            node.stateKey = scratch;
            visited.emplace(scratch, VisitEntry{false, d, sig, {}});
        }

        std::vector<uint32_t> cands;
        for (size_t i = 0; i < n; ++i) {
            if (!actors[i].enabled)
                continue;
            if (opts.sleepSets &&
                curSleep[static_cast<size_t>(actors[i].id)]) {
                ++stats.sleepSkips;
                continue;
            }
            cands.push_back(static_cast<uint32_t>(i));
        }
        if (cands.empty()) {
            // Every enabled actor is asleep: all continuations from
            // here are covered by the sibling subtrees that put them
            // to sleep.
            if (!node.stateKey.empty())
                visited.erase(node.stateKey);
            throw Cut{{}, SIZE_MAX};
        }
        node.chosen = cands[0];
        node.pending.assign(cands.begin() + 1, cands.end());
        trace.push_back(std::move(node));
        stats.peakDepth = std::max(stats.peakDepth, trace.size());
        updateSleepAfter(trace.back());
        return trace.back().chosen;
    }

    // ---- sleep-set plumbing -----------------------------------------

    const sim::ActorOption *
    findActor(const Node &node, int id) const
    {
        for (const auto &a : node.actors) {
            if (a.id == id)
                return &a;
        }
        return nullptr;
    }

    /** Set curSleep to the child sleep set of `node` descended via
     * node.chosen: (sleepIn ∪ explored siblings) minus everything
     * dependent on the chosen slot. */
    void
    updateSleepAfter(const Node &node)
    {
        if (!opts.sleepSets) {
            return;
        }
        const sim::ActorOption &a = node.actors[node.chosen];
        std::vector<uint8_t> s = node.sleepIn;
        s.resize(nIds, 0);
        for (int id : node.doneIds)
            s[static_cast<size_t>(id)] = 1;
        s[static_cast<size_t>(a.id)] = 0;
        for (size_t id = 0; id < nIds; ++id) {
            if (!s[id])
                continue;
            const sim::ActorOption *u =
                findActor(node, static_cast<int>(id));
            if (!u || !sim::independentActors(*u, a))
                s[id] = 0;
        }
        curSleep = std::move(s);
    }

    // ---- subtree accounting -----------------------------------------

    void
    contribute(const ReachMap &m)
    {
        ReachMap &dst =
            trace.empty() ? rootFinals : trace.back().finals;
        for (const auto &[k, c] : m)
            dst[k] += c;
    }

    void
    contributeOne(const std::string &key)
    {
        ReachMap &dst =
            trace.empty() ? rootFinals : trace.back().finals;
        dst[key] += 1;
    }

    void
    taintDeepest(size_t greyDepth)
    {
        if (!trace.empty())
            trace.back().taint =
                std::min(trace.back().taint, greyDepth);
    }

    /** Pop the deepest node, folding its finals (and, when it cannot
     * be declared complete, its taint) into its parent. `blacken`
     * is false during a budget abort: nothing gets memoised then. */
    void
    popTop(bool blacken)
    {
        Node top = std::move(trace.back());
        trace.pop_back();
        size_t my_depth = trace.size();

        if (top.isSchedule && !top.stateKey.empty()) {
            bool closed = blacken && top.taint >= my_depth;
            if (closed) {
                VisitEntry &e = visited[top.stateKey];
                e.black = true;
                e.finals = top.finals;
                ++stats.distinctStates;
            } else {
                // Part of a cycle to a live ancestor (or aborted):
                // its finals are incomplete, so forget the state and
                // let a future visit re-explore it.
                visited.erase(top.stateKey);
            }
        }

        if (trace.empty()) {
            for (const auto &[k, c] : top.finals)
                rootFinals[k] += c;
        } else {
            Node &p = trace.back();
            for (const auto &[k, c] : top.finals)
                p.finals[k] += c;
            if (top.taint < my_depth)
                p.taint = std::min(p.taint, top.taint);
        }
    }

    /** Advance to the next unexplored alternative; true = drained. */
    bool
    backtrack()
    {
        while (!trace.empty()) {
            Node &top = trace.back();
            if (!top.pending.empty()) {
                if (top.isSchedule)
                    top.doneIds.push_back(
                        top.actors[top.chosen].id);
                top.chosen = top.pending.front();
                top.pending.erase(top.pending.begin());
                return false;
            }
            popTop(true);
        }
        return true;
    }

    // ---- the search -------------------------------------------------

    ExploreResult
    explore()
    {
        auto start = std::chrono::steady_clock::now();
        bool complete = true;
        bool drained = false;
        while (!drained) {
            if (stats.replays >= opts.maxReplays ||
                (opts.stateCache &&
                 visited.size() >= opts.maxStates)) {
                complete = false;
                break;
            }
            ++stats.replays;
            depth = 0;
            std::fill(curSleep.begin(), curSleep.end(), 0);
            try {
                litmus::FinalState st = machine.run(*this);
                std::string key = keyer.keyFor(st);
                contributeOne(key);
                if (test->condition.eval(st))
                    satisfying.insert(key);
                // A guard-truncated execution is a real (sampler-
                // reachable) outcome and is recorded, but the tree
                // beyond the guard was not enumerated: bounded.
                if (machine.lastRunTruncated())
                    guardSensitive = true;
            } catch (Cut &cut) {
                contribute(cut.finals);
                if (cut.taintDepth != SIZE_MAX)
                    taintDeepest(cut.taintDepth);
            }
            drained = backtrack();
        }

        // On a budget abort the open spine still holds sound partial
        // results: fold them down without memoising anything.
        while (!trace.empty())
            popTop(false);

        ExploreResult result;
        result.testName = test->name;
        result.chipName = machine.chip().shortName;
        result.column = opts.machine.inc.column();
        result.complete = complete && !guardSensitive;
        result.finals = std::move(rootFinals);
        result.satisfying = std::move(satisfying);
        for (const auto &[k, c] : result.finals)
            result.paths += c;
        result.stats = stats;
        auto end = std::chrono::steady_clock::now();
        result.millis =
            std::chrono::duration<double, std::milli>(end - start)
                .count();
        return result;
    }
};

// ---------------------------------------------------------------------
// Explorer / ExploreResult
// ---------------------------------------------------------------------

Explorer::Explorer(const sim::ChipProfile &chip,
                   const litmus::Test &test, ExploreOptions opts)
    : impl_(std::make_unique<Impl>(chip, test, opts))
{
}

Explorer::~Explorer() = default;

ExploreResult
Explorer::explore()
{
    return impl_->explore();
}

std::string
ExploreResult::verdict(const litmus::Test &test) const
{
    bool sat = !satisfying.empty();
    bool ok;
    switch (test.quantifier) {
      case litmus::Quantifier::Exists:
        ok = sat;
        break;
      case litmus::Quantifier::NotExists:
        ok = !sat;
        break;
      case litmus::Quantifier::Forall:
        ok = satisfying.size() == finals.size();
        break;
      default:
        ok = false;
        break;
    }
    std::string v = ok ? "Ok" : "No";
    if (!complete)
        v += " (bounded)";
    return v;
}

std::string
ExploreResult::str() const
{
    std::string out;
    out += "Exploration " + testName + "@" + chipName + " (column " +
           std::to_string(column) + ")\n";
    out += (complete ? std::string("complete: ")
                     : std::string(
                           "BOUNDED (budget or loop guard): ")) +
           std::to_string(finals.size()) + " reachable states, " +
           std::to_string(paths) + " paths\n";
    for (const auto &[key, weight] : finals) {
        out += "  " + std::to_string(weight) + "  " + key;
        if (satisfying.count(key))
            out += "  *";
        out += "\n";
    }
    out += "replays " + std::to_string(stats.replays) + ", states " +
           std::to_string(stats.distinctStates) + ", state cuts " +
           std::to_string(stats.stateCuts) + ", sleep skips " +
           std::to_string(stats.sleepSkips) + ", peak depth " +
           std::to_string(stats.peakDepth) + "\n";
    return out;
}

} // namespace gpulitmus::mc
