#include "mc/explorer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/log.h"
#include "litmus/outcome.h"
#include "mc/shardmap.h"
#include "mc/worksteal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gpulitmus::mc {

namespace {

/**
 * Outcome-key weights, indexed by interned outcome id. The search
 * folds reachability counts up the spine on every cut and pop;
 * keeping them as flat integer vectors (the interner owns the one
 * copy of each outcome string) makes that folding allocation-free
 * arithmetic instead of string-keyed map merges. Ids are dense and
 * few (a litmus test has a handful of distinct outcomes), so the
 * vectors stay tiny.
 */
using Weights = std::vector<uint64_t>;

void
foldWeights(Weights &dst, const Weights &src)
{
    if (dst.size() < src.size())
        dst.resize(src.size(), 0);
    for (size_t i = 0; i < src.size(); ++i)
        dst[i] += src[i];
}

void
bumpWeight(Weights &dst, uint32_t id)
{
    if (dst.size() <= id)
        dst.resize(id + 1, 0);
    ++dst[id];
}

/** Outcome-string interner: one stored string per distinct outcome,
 * dense ids for the hot-path accounting. */
struct KeyInterner
{
    std::unordered_map<std::string, uint32_t> ids;
    std::vector<const std::string *> names; ///< id -> stored key

    uint32_t
    intern(std::string &&key)
    {
        auto [it, fresh] = ids.emplace(
            std::move(key), static_cast<uint32_t>(names.size()));
        if (fresh)
            names.push_back(&it->first);
        return it->second;
    }
};

/** One materialised node of the choice tree (a position in the
 * current DFS trace). Node slots are pooled: the trace vector never
 * shrinks, popped slots are reset and reused, so the per-replay push/
 * pop churn allocates nothing once the containers are warm. */
struct Node
{
    sim::ChoiceKind kind = sim::ChoiceKind::Schedule;
    uint32_t arity = 0;
    uint32_t chosen = 0;
    /** Alternatives not yet explored, in exploration order. */
    std::vector<uint32_t> pending;

    bool isSchedule = false;
    /** State-cache key; valid when hasKey (caching on). `key` is the
     * (state, sleep) digest — or, in debug mode, `stringKey` is the
     * full encoding and `key` is unused. */
    bool hasKey = false;
    Digest128 key;
    std::string stringKey;
    /** Machine checkpoint at this schedule point; valid when
     * hasSnap (checkpointing on). */
    bool hasSnap = false;
    sim::Machine::Snapshot snap;
    /** Sleeping actor ids at node entry (indexed by actor id). */
    std::vector<uint8_t> sleepIn;
    /** Actor table snapshot (schedule nodes only). */
    std::vector<sim::ActorOption> actors;
    /** Actor ids of alternatives already fully explored here. */
    std::vector<int> doneIds;

    /** Reachable finals accumulated across this node's subtree. */
    Weights finals;
    /** Shallowest trace depth a grey cut in this subtree escaped to
     * (SIZE_MAX: none) — the Tarjan-style completeness watermark. */
    size_t taint = SIZE_MAX;

    void
    reset(sim::ChoiceKind k, uint32_t n)
    {
        kind = k;
        arity = n;
        chosen = 0;
        pending.clear();
        isSchedule = false;
        hasKey = false;
        stringKey.clear();
        hasSnap = false;
        sleepIn.clear();
        actors.clear();
        doneIds.clear();
        finals.clear();
        taint = SIZE_MAX;
    }
};

struct VisitEntry
{
    bool black = false; ///< subtree fully explored; finals memoised
    size_t greyDepth = 0;
    /** Fetch-counter digest at the visit. The state encoding excludes
     * the counters (they only feed the runaway-loop guard), so a
     * revisit whose digest differs is equal in behaviour *except* for
     * its distance to that guard: the cut still terminates the
     * search, but the result demotes from exact to bounded. */
    uint64_t executedSig = 0;
    Weights finals;
};

// ---------------------------------------------------------------------
// Parallel exploration: optimistic exploration, deterministic commit.
//
// shards > 1 splits the frontier at the shallowest spine node with
// unexplored alternatives into 1 + |pending| independent subtrees:
// subtree 0 continues the in-flight traversal (it inherits the deep
// spine), subtree k explores the k-th remaining alternative with the
// sleep-set doneIds sequence the sequential search would have had.
// Workers pull subtrees from Chase-Lev deques and explore each one
// *optimistically*: private state cache, read-only spine-grey seed
// table, and read-only lookups into the committed ShardMap, recording
// every digest that missed. The driving thread then *commits* results
// strictly in subtree-id order:
//
//  - If none of a subtree's recorded misses is present in the
//    committed map (and it did not abort), its cache-hit pattern is
//    exactly the sequential one — commits only ever add states a
//    sequential search would already have closed — so its result and
//    statistics are the sequential ones, bit for bit. Commit: publish
//    its black states, fold finals/taint/stats in order.
//  - Otherwise the subtree is REDONE on the driving thread against
//    the now-frozen committed prefix, which *is* the sequential
//    search for that subtree (mc_shard_collisions_total counts
//    these). Measured corpus-wide, cross-subtree hits are rare
//    (~0.1% of lookups), so redos are the exception.
//
// Budgets are one shared pool (maxReplays × shards drawn by a single
// atomic), and a redo runs under the exact remaining allowance, so a
// bounded shards=N result equals a sequential run with the same total
// budget. The merged traversal is therefore invariant in the shard
// count, the worker count and the thread interleaving — the
// differential battery in tests/test_mc_diff.cc pins this.
// ---------------------------------------------------------------------

/** Outcome-key interner + condition flags, shared by every walker so
 * ids are global and subtree weight vectors fold without remapping.
 * Locked only on a fresh outcome digest (cold path). */
struct SharedKeys
{
    std::mutex mu;
    KeyInterner interner;
    std::vector<uint8_t> satFlags; ///< by outcome id
};

/** Read-only record of a grey spine state ([0..split] prefix): any
 * subtree reaching one is in a cycle to a live ancestor. */
struct SeedEntry
{
    size_t greyDepth = 0;
    uint64_t sig = 0;
};

/** Everything the parallel phase shares across threads. Workers read
 * seeds and the committed maps and draw from the replay pool; only
 * the commit (driving) thread writes the committed maps. */
struct SharedCtx
{
    DigestShardMap committed;
    StringShardMap committedStr; ///< debug-key mode twin
    std::unordered_map<Digest128, SeedEntry, Digest128::Hasher> seeds;
    std::unordered_map<std::string, SeedEntry> seedsStr;
    size_t seedCount = 0;
    /** Shared replay pool: one fetch_add per admitted replay,
     * capReplays = maxReplays × shards. */
    std::atomic<uint64_t> pool{0};
    uint64_t capReplays = 0;
    /** Bounded verdict reached (or teardown): workers abandon their
     * subtrees; their results are discarded. */
    std::atomic<bool> stop{false};
    bool debugKeys = false;

    size_t
    committedCount() const
    {
        return debugKeys ? committedStr.size() : committed.size();
    }
};

/** Deterministic stats merge: subtree stats fold into the driver's in
 * subtree-id order — never completion order — so the merged counters
 * (resumes, replayedChoices, peakDepth, all of them) are the
 * sequential traversal's, bit for bit. */
void
mergeStats(ExploreStats &dst, const ExploreStats &src)
{
    dst.replays += src.replays;
    dst.choicePoints += src.choicePoints;
    dst.stateCuts += src.stateCuts;
    dst.sleepSkips += src.sleepSkips;
    dst.distinctStates += src.distinctStates;
    dst.peakDepth = std::max(dst.peakDepth, src.peakDepth);
    dst.resumes += src.resumes;
    dst.replayedChoices += src.replayedChoices;
}

/** One subtree of the split frontier: inputs built by the driver
 * before workers start, outputs written by exactly one worker and
 * read by the driver after `done` (release/acquire pair). */
struct SubtreeTask
{
    // ---- inputs ----
    /** The split node, configured for this subtree (chosen = the
     * alternative, pending emptied, doneIds = the sequential
     * prefix). */
    Node clone;
    /** Subtree 0 only: the in-flight spine below the split node. */
    std::vector<Node> deepSpine;
    /** Subtree 0 only: grey entries for the deep spine, pre-seeded
     * into the worker's private cache. */
    std::vector<std::pair<Digest128, VisitEntry>> seedGreys;
    std::vector<std::pair<std::string, VisitEntry>> seedGreysStr;

    // ---- outputs ----
    std::atomic<bool> done{false};
    bool aborted = false;
    ExploreStats stats;
    bool loopDedup = false;
    bool truncatedLeaf = false;
    Weights finals;
    size_t taint = SIZE_MAX;
    std::vector<Digest128> missedKeys;
    std::vector<std::string> missedStrs;
    std::vector<std::pair<Digest128, DigestShardMap::Entry>> blacks;
    std::vector<std::pair<std::string, StringShardMap::Entry>>
        blacksStr;
    size_t peakPrivate = 0;
};

// ---------------------------------------------------------------------
// Walker: one DFS traversal context doubling as the machine's choice
// provider. The sequential search is one walker; the parallel phase
// runs one per worker thread (own machine, own private cache) plus
// the driver's, all sharing SharedKeys — and, when parallel, a
// SharedCtx.
// ---------------------------------------------------------------------

struct Walker final : sim::ChoiceProvider
{
    const ExploreOptions *opts;
    const litmus::Test *test;
    sim::Machine machine;
    litmus::Histogram keyer; ///< outcome-key renderer only
    SharedKeys *keys;        ///< global outcome ids + sat flags
    SharedCtx *shared = nullptr; ///< null: pure sequential

    /** Pooled node slots; the live DFS spine is trace[0..traceLen). */
    std::vector<Node> trace;
    size_t traceLen = 0;
    Weights rootFinals;
    /** Leaf memo: final-state digest -> interned outcome id. Repeat
     * outcomes (the overwhelming majority of leaves) skip the
     * final-state materialisation, key rendering and condition
     * evaluation entirely. Unused in debug mode, which collects
     * every leaf the PR-3 way. */
    std::unordered_map<Digest128, uint32_t, Digest128::Hasher>
        outcomeIds;
    /** The state memo. Digest-keyed on the fast path; string-keyed
     * (the PR-3 scheme, kept for cross-checking) in debug mode. Only
     * the map matching opts->debugStateKeys is ever populated. */
    std::unordered_map<Digest128, VisitEntry, Digest128::Hasher>
        visited;
    std::unordered_map<std::string, VisitEntry> visitedStr;
    ExploreStats stats;

    /** Pending cut, set by pickActor when it aborts a replay whose
     * continuation is memoised (exception-free: the machine returns
     * out of the run on the kAbortRun sentinel). `cutMemo` points at
     * the visited entry's finals — stable until the next map
     * mutation, consumed immediately after the run returns. */
    bool cutPending = false;
    const Weights *cutMemo = nullptr;
    size_t cutTaint = SIZE_MAX;

    size_t depth = 0; ///< next choice index within the current replay
    size_t nIds = 0;  ///< actor-id space: threads + SM drain actors
    std::vector<uint8_t> curSleep;
    std::string scratch;            ///< debug-mode string encoding
    std::vector<uint32_t> candsScratch;
    std::vector<uint8_t> sleepScratch;
    /** A state cut merged states at different fetch counts (a spin
     * loop): "exact" demotes to "exact for terminating executions"
     * (ExploreResult::fairComplete). */
    bool loopDedup = false;
    /** A replay actually ran into the runaway guard and recorded a
     * truncated final state: even the fair-schedule claim is gone. */
    bool truncatedLeaf = false;

    // ---- traversal-mode parameterisation ----------------------------
    /** Replay/state caps for this walker. Sequential: the per-shard
     * option values. Driver (parallel): the shared totals. Redo: the
     * exact remaining allowance. Workers ignore capReplays and draw
     * the shared pool instead. */
    uint64_t capReplays = 0;
    uint64_t capStates = 0;
    /** Worker mode: admit replays via the shared pool, honour stop,
     * record cache misses for commit-time conflict detection. */
    bool isWorker = false;
    /** Driver-in-parallel mode: also tick the shared pool so workers
     * see phase-1 consumption. */
    bool drawPool = false;
    /** Budget/stop tripped (the walker's subtree is incomplete). */
    bool aborted = false;
    /** Backtrack floor: index of the subtree root, which is never
     * popped — its accumulated finals/taint are the subtree result.
     * SIZE_MAX: none (sequential; drain at the real root). */
    size_t floorKeep = SIZE_MAX;
    /** Digests that missed every cache level, in first-miss order. */
    bool recordMisses = false;
    std::vector<Digest128> missedKeys;
    std::vector<std::string> missedStrs;
    /** High-water mark of the private cache, for the commit-time
     * state-budget check. */
    size_t peakPrivate = 0;
    /** Copy-out scratch for committed-map hits (the map may rehash
     * under the commit thread while we hold the result). */
    DigestShardMap::Entry committedScratch;
    StringShardMap::Entry committedScratchStr;

    Walker(const sim::ChipProfile &chip, const litmus::Test &t,
           const ExploreOptions *o, SharedKeys *k, SharedCtx *s)
        : opts(o), test(&t), machine(chip, t, o->machine), keyer(t),
          keys(k), shared(s)
    {
        nIds = static_cast<size_t>(t.program.numThreads()) +
               static_cast<size_t>(chip.numSMs);
        curSleep.assign(nIds, 0);
        visited.reserve(1u << 12);
        capReplays = o->maxReplays;
        capStates = o->maxStates;
    }

    Node &
    pushNode(sim::ChoiceKind kind, uint32_t arity)
    {
        if (traceLen == trace.size())
            trace.emplace_back();
        Node &node = trace[traceLen++];
        node.reset(kind, arity);
        stats.peakDepth = std::max(stats.peakDepth, traceLen);
        return node;
    }

    // ---- ChoiceProvider ---------------------------------------------

    /** The actor table only matters when the upcoming schedule point
     * materialises a fresh node; replayed prefixes use their stored
     * snapshot, so skip the build. */
    bool wantsActors() const override { return depth >= traceLen; }
    int delayBump() override { return 0; }

    uint64_t
    pick(sim::ChoiceKind kind, uint64_t n) override
    {
        // Timing-only / symmetric kinds are pinned: exhaustive
        // scheduling subsumes start skew, and CTA->SM placements are
        // interchangeable (homogeneous SMs, always distinct).
        if (kind == sim::ChoiceKind::Placement ||
            kind == sim::ChoiceKind::StartSkew)
            return 0;
        if (n <= 1)
            return 0;
        return takeSimple(kind, static_cast<uint32_t>(n));
    }

    bool
    chance(sim::ChoiceKind kind, double p, bool relevant) override
    {
        // Irrelevant choices cannot affect reachability; drain
        // laziness is "the scheduler did not pick the drain actor",
        // which the schedule choice already enumerates.
        if (!relevant || kind == sim::ChoiceKind::DrainLazy)
            return false;
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return takeSimple(kind, 2) != 0;
    }

    uint32_t
    takeSimple(sim::ChoiceKind kind, uint32_t arity)
    {
        size_t d = depth++;
        if (d < traceLen) {
            const Node &node = trace[d];
            if (node.kind != kind || node.isSchedule)
                panic("mc replay diverged at depth %zu: expected %s,"
                      " machine asked %s",
                      d, sim::toString(node.kind),
                      sim::toString(kind));
            ++stats.replayedChoices;
            return node.chosen;
        }
        ++stats.choicePoints;
        Node &node = pushNode(kind, arity);
        node.pending.reserve(arity - 1);
        for (uint32_t v = 1; v < arity; ++v)
            node.pending.push_back(v);
        return 0;
    }

    /** Abandon the current replay: record the cut for explore() and
     * hand the machine the abort sentinel. */
    size_t
    cutRun(const Weights *memo, size_t taint_depth)
    {
        cutPending = true;
        cutMemo = memo;
        cutTaint = taint_depth;
        return sim::ChoiceProvider::kAbortRun;
    }

    size_t
    pickActor(const sim::ActorOption *actors, size_t n) override
    {
        size_t d = depth++;
        if (d < traceLen) {
            Node &node = trace[d];
            if (!node.isSchedule)
                panic("mc replay diverged at depth %zu: stored %s,"
                      " machine asked schedule",
                      d, sim::toString(node.kind));
            ++stats.replayedChoices;
            updateSleepAfter(node);
            return node.chosen;
        }
        ++stats.choicePoints;

        Digest128 key{};
        bool has_key = false;
        if (opts->stateCache) {
            // Sleep sets change which subtrees get explored, so
            // cache hits are only sound between points with the same
            // sleep discipline: the key covers the (state, sleep)
            // pair. Fast path: stream the state into a 128-bit
            // digest, no string materialised. Debug path: the PR-3
            // string key, byte for byte.
            uint64_t sig = machine.executedSignature();
            VisitEntry *hit = nullptr;
            if (opts->debugStateKeys) {
                scratch.clear();
                machine.encodeState(scratch);
                if (opts->sleepSets)
                    scratch.append(curSleep.begin(), curSleep.end());
                auto it = visitedStr.find(scratch);
                if (it != visitedStr.end())
                    hit = &it->second;
            } else {
                Hash128 h;
                machine.hashState(h);
                if (opts->sleepSets)
                    h.putBytes(curSleep.data(), curSleep.size());
                key = h.digest();
                auto it = visited.find(key);
                if (it != visited.end())
                    hit = &it->second;
            }
            if (hit) {
                ++stats.stateCuts;
                // Equal state, different fetch counters (a loop):
                // the continuations differ only in the runaway
                // guard's distance, so cut — the search terminates —
                // but the exactness claim is gone.
                if (hit->executedSig != sig)
                    loopDedup = true;
                if (hit->black)
                    return cutRun(&hit->finals, SIZE_MAX);
                return cutRun(nullptr, hit->greyDepth);
            }
            if (shared) {
                // Level 2: grey spine seeds — a cycle to an ancestor
                // that is live in every traversal of this subtree.
                const SeedEntry *seed = nullptr;
                if (opts->debugStateKeys) {
                    auto sit = shared->seedsStr.find(scratch);
                    if (sit != shared->seedsStr.end())
                        seed = &sit->second;
                } else {
                    auto sit = shared->seeds.find(key);
                    if (sit != shared->seeds.end())
                        seed = &sit->second;
                }
                if (seed) {
                    ++stats.stateCuts;
                    if (seed->sig != sig)
                        loopDedup = true;
                    return cutRun(nullptr, seed->greyDepth);
                }
                // Level 3: the committed map — black states from
                // already-committed subtrees, i.e. states the
                // sequential search would have closed before reaching
                // this one. The entry is copied out under the shard
                // lock (the commit thread may rehash at any moment).
                bool chit;
                if (opts->debugStateKeys)
                    chit = shared->committedStr.lookup(
                        scratch, committedScratchStr);
                else
                    chit = shared->committed.lookup(key,
                                                    committedScratch);
                if (chit) {
                    uint64_t csig = opts->debugStateKeys
                                        ? committedScratchStr.executedSig
                                        : committedScratch.executedSig;
                    const Weights &cfinals =
                        opts->debugStateKeys ? committedScratchStr.finals
                                             : committedScratch.finals;
                    ++stats.stateCuts;
                    if (csig != sig)
                        loopDedup = true;
                    return cutRun(&cfinals, SIZE_MAX);
                }
                // A miss that later turns out to be committed means
                // this subtree's optimistic view diverged from the
                // sequential one: the commit protocol will redo it.
                if (recordMisses) {
                    if (opts->debugStateKeys)
                        missedStrs.push_back(scratch);
                    else
                        missedKeys.push_back(key);
                }
            }
            if (opts->debugStateKeys)
                visitedStr.emplace(scratch,
                                   VisitEntry{false, d, sig, {}});
            else
                visited.emplace(key, VisitEntry{false, d, sig, {}});
            peakPrivate = std::max(peakPrivate,
                                   opts->debugStateKeys
                                       ? visitedStr.size()
                                       : visited.size());
            has_key = true;
        }

        candsScratch.clear();
        for (size_t i = 0; i < n; ++i) {
            if (!actors[i].enabled)
                continue;
            if (opts->sleepSets &&
                curSleep[static_cast<size_t>(actors[i].id)]) {
                ++stats.sleepSkips;
                continue;
            }
            candsScratch.push_back(static_cast<uint32_t>(i));
        }
        if (candsScratch.empty()) {
            // Every enabled actor is asleep: all continuations from
            // here are covered by the sibling subtrees that put them
            // to sleep.
            if (has_key) {
                if (opts->debugStateKeys)
                    visitedStr.erase(scratch);
                else
                    visited.erase(key);
            }
            return cutRun(nullptr, SIZE_MAX);
        }

        Node &node = pushNode(sim::ChoiceKind::Schedule,
                              static_cast<uint32_t>(n));
        node.isSchedule = true;
        node.actors.assign(actors, actors + n);
        node.sleepIn.assign(curSleep.begin(), curSleep.end());
        node.hasKey = has_key;
        node.key = key;
        if (has_key && opts->debugStateKeys)
            node.stringKey = scratch;
        node.chosen = candsScratch[0];
        node.pending.assign(candsScratch.begin() + 1,
                            candsScratch.end());
        if (opts->checkpoints && !node.pending.empty()) {
            // The machine is still at the top of this step (the pick
            // mutates nothing before returning), so the snapshot
            // resumes exactly here. Only branchy nodes checkpoint —
            // a singleton node can never be a divergence point, and
            // resuming from the nearest branchy ancestor replays the
            // few singleton steps in between. Slot pooling recycles
            // the snapshot's storage with the node.
            machine.snapshot(node.snap);
            node.hasSnap = true;
        }
        updateSleepAfter(node);
        return node.chosen;
    }

    // ---- sleep-set plumbing -----------------------------------------

    const sim::ActorOption *
    findActor(const Node &node, int id) const
    {
        for (const auto &a : node.actors) {
            if (a.id == id)
                return &a;
        }
        return nullptr;
    }

    /** Set curSleep to the child sleep set of `node` descended via
     * node.chosen: (sleepIn ∪ explored siblings) minus everything
     * dependent on the chosen slot. */
    void
    updateSleepAfter(const Node &node)
    {
        if (!opts->sleepSets) {
            return;
        }
        const sim::ActorOption &a = node.actors[node.chosen];
        if (node.doneIds.empty()) {
            // Fast path: nobody newly asleep. The child set is the
            // entry set minus dependants of the chosen slot; when the
            // entry set is empty (the common case off the first
            // branch), the child set is too.
            bool any = false;
            for (uint8_t s : node.sleepIn)
                any = any || s;
            if (!any) {
                std::fill(curSleep.begin(), curSleep.end(), 0);
                return;
            }
        }
        sleepScratch.assign(node.sleepIn.begin(), node.sleepIn.end());
        sleepScratch.resize(nIds, 0);
        for (int id : node.doneIds)
            sleepScratch[static_cast<size_t>(id)] = 1;
        sleepScratch[static_cast<size_t>(a.id)] = 0;
        for (size_t id = 0; id < nIds; ++id) {
            if (!sleepScratch[id])
                continue;
            const sim::ActorOption *u =
                findActor(node, static_cast<int>(id));
            if (!u || !sim::independentActors(*u, a))
                sleepScratch[id] = 0;
        }
        std::swap(curSleep, sleepScratch);
    }

    // ---- subtree accounting -----------------------------------------

    void
    contribute(const Weights &w)
    {
        foldWeights(traceLen == 0 ? rootFinals
                                  : trace[traceLen - 1].finals,
                    w);
    }

    void
    contributeOne(uint32_t id)
    {
        bumpWeight(traceLen == 0 ? rootFinals
                                 : trace[traceLen - 1].finals,
                   id);
    }

    void
    taintDeepest(size_t greyDepth)
    {
        if (traceLen > 0)
            trace[traceLen - 1].taint =
                std::min(trace[traceLen - 1].taint, greyDepth);
    }

    /** Pop the deepest node, folding its finals (and, when it cannot
     * be declared complete, its taint) into its parent. `blacken`
     * is false during a budget abort: nothing gets memoised then. */
    void
    popTop(bool blacken)
    {
        Node &top = trace[traceLen - 1];
        --traceLen;
        size_t my_depth = traceLen;

        if (top.isSchedule && top.hasKey) {
            bool closed = blacken && top.taint >= my_depth;
            VisitEntry *entry = nullptr;
            if (opts->debugStateKeys) {
                auto it = visitedStr.find(top.stringKey);
                if (it != visitedStr.end())
                    entry = &it->second;
            } else {
                auto it = visited.find(top.key);
                if (it != visited.end())
                    entry = &it->second;
            }
            if (closed) {
                if (entry) {
                    entry->black = true;
                    entry->finals = top.finals;
                }
                ++stats.distinctStates;
            } else {
                // Part of a cycle to a live ancestor (or aborted):
                // its finals are incomplete, so forget the state and
                // let a future visit re-explore it.
                if (opts->debugStateKeys)
                    visitedStr.erase(top.stringKey);
                else
                    visited.erase(top.key);
            }
        }

        if (traceLen == 0) {
            foldWeights(rootFinals, top.finals);
        } else {
            Node &p = trace[traceLen - 1];
            foldWeights(p.finals, top.finals);
            if (top.taint < my_depth)
                p.taint = std::min(p.taint, top.taint);
        }
    }

    /** Advance to the next unexplored alternative; true = drained. */
    bool
    backtrack()
    {
        while (traceLen > 0) {
            Node &top = trace[traceLen - 1];
            if (!top.pending.empty()) {
                if (top.isSchedule)
                    top.doneIds.push_back(
                        top.actors[top.chosen].id);
                top.chosen = top.pending.front();
                top.pending.erase(top.pending.begin());
                return false;
            }
            // Subtree mode: the split node is never popped — its
            // accumulated finals/taint are the subtree's result,
            // folded into the driver's spine at commit time.
            if (traceLen - 1 == floorKeep)
                return true;
            popTop(true);
        }
        return true;
    }

    // ---- the search -------------------------------------------------

    /** Interned outcome id of the machine's just-finished leaf,
     * memoised by final-state digest on the fast path. Debug mode
     * materialises every leaf (the PR-3 behaviour), so the two modes
     * cross-check the digest memo as well as the state keys. */
    uint32_t
    leafOutcomeId()
    {
        auto record = [&]() {
            litmus::FinalState st = machine.finalState();
            std::string k = keyer.keyFor(st);
            bool sat = test->condition.eval(st);
            // Outcome ids are global across walkers so weight vectors
            // fold without remapping; the lock is cold (first sight
            // of each outcome digest only). Id *numbering* is
            // race-order dependent and deliberately so: results are
            // re-keyed by string at assembly, so numbering never
            // shows.
            std::lock_guard<std::mutex> lock(keys->mu);
            uint32_t id = keys->interner.intern(std::move(k));
            if (sat) {
                if (keys->satFlags.size() <= id)
                    keys->satFlags.resize(id + 1, 0);
                keys->satFlags[id] = 1;
            }
            return id;
        };
        if (opts->debugStateKeys)
            return record();
        auto [it, fresh] =
            outcomeIds.try_emplace(machine.outcomeDigest(), 0);
        if (fresh)
            it->second = record();
        return it->second;
    }

    // ---- the search loop --------------------------------------------

    /** States charged against the budget right now: the private memo
     * plus (parallel) everything committed or seeded — exactly the
     * single-map size the sequential search would carry at the same
     * point. */
    size_t
    statesNow() const
    {
        size_t states = opts->debugStateKeys ? visitedStr.size()
                                             : visited.size();
        if (shared)
            states += shared->committedCount() + shared->seedCount;
        return states;
    }

    /** Budget/stop admission for the next replay. Workers draw the
     * shared atomic pool (optimistic: over-draw by later-discarded
     * subtrees wastes speculative work, never budget — the commit
     * side accounts exactly). Every other mode checks its private
     * caps, which the redo path sets to the exact remaining
     * allowance. */
    bool
    admitReplay()
    {
        if (isWorker) {
            if (shared->stop.load(std::memory_order_acquire))
                return false;
            if (opts->stateCache && statesNow() >= capStates)
                return false;
            return shared->pool.fetch_add(
                       1, std::memory_order_relaxed) <
                   shared->capReplays;
        }
        if (stats.replays >= capReplays)
            return false;
        if (opts->stateCache && statesNow() >= capStates)
            return false;
        return true;
    }

    /**
     * The DFS loop: admit, replay (resuming from the deepest
     * checkpoint on the spine), contribute the leaf or cut,
     * backtrack. Returns true when the (sub)tree is drained; false
     * when it stopped early — after one replay+backtrack round in
     * `oneStep` mode (the driver's pre-split phase), or on a failed
     * admission, which sets `aborted`.
     */
    bool
    runLoop(bool oneStep)
    {
        // Telemetry observes the search; it never steers it. The
        // per-replay counter and the heartbeat callback fire on the
        // replay cadence only — traversal, pruning and results are
        // bit-identical with them on or off (tests pin this).
        // Workers tick the replay counter too (it counts raw work,
        // including speculation the commit later discards) but never
        // heartbeat: the callback is a driver-thread liveness
        // channel.
        const bool obs_on = obs::enabled();
        obs::Counter &replay_counter =
            obs::counter("mc_replays_total");
        for (;;) {
            if (!admitReplay()) {
                aborted = true;
                return false;
            }
            ++stats.replays;
            if (obs_on)
                replay_counter.add();
            if (!isWorker && opts->heartbeat &&
                opts->heartbeatEvery &&
                stats.replays % opts->heartbeatEvery == 0)
                opts->heartbeat(stats);
            std::fill(curSleep.begin(), curSleep.end(), 0);
            cutPending = false;
            // Resume from the deepest checkpoint on the spine: the
            // replayed prefix shrinks from the whole trace to the
            // slice after the last schedule node. The choices
            // consumed — and therefore the traversal — are identical
            // to a root replay.
            size_t resume_at = SIZE_MAX;
            if (opts->checkpoints) {
                for (size_t i = traceLen; i-- > 0;) {
                    if (trace[i].hasSnap) {
                        resume_at = i;
                        break;
                    }
                }
            }
            bool finished;
            if (resume_at != SIZE_MAX) {
                ++stats.resumes;
                depth = resume_at;
                finished =
                    machine.resumeLight(trace[resume_at].snap, *this);
            } else {
                depth = 0;
                finished = machine.runLight(*this);
            }
            if (!finished) {
                // The replay was abandoned at a memoised state
                // (cutPending is set; the machine has no final
                // state).
                if (cutMemo)
                    contribute(*cutMemo);
                if (cutTaint != SIZE_MAX)
                    taintDeepest(cutTaint);
            } else {
                contributeOne(leafOutcomeId());
                // A guard-truncated execution is a real (sampler-
                // reachable) outcome and is recorded, but the tree
                // beyond the guard was not enumerated: bounded.
                if (machine.lastRunTruncated())
                    truncatedLeaf = true;
            }
            if (backtrack())
                return true;
            if (oneStep)
                return false;
        }
    }

    // ---- subtree plumbing (parallel phase) --------------------------

    /** Clear per-subtree traversal state; keeps the machine, the
     * outcome-digest memo (ids are global) and warm container
     * capacity. */
    void
    resetTraversal()
    {
        traceLen = 0;
        rootFinals.clear();
        visited.clear();
        visitedStr.clear();
        stats = ExploreStats{};
        cutPending = false;
        cutMemo = nullptr;
        cutTaint = SIZE_MAX;
        depth = 0;
        loopDedup = false;
        truncatedLeaf = false;
        aborted = false;
        floorKeep = SIZE_MAX;
        missedKeys.clear();
        missedStrs.clear();
        peakPrivate = 0;
    }

    /** Install a subtree: the shared spine prefix [0..b), the task's
     * configured split-node clone at b, and (subtree 0) the in-flight
     * deep spine. Pre-seeds the private memo with the deep spine's
     * grey entries so deep pops blacken exactly as the sequential
     * search would. The prefix nodes travel with their snapshots, so
     * the first replay resumes from the same checkpoint — and
     * consumes the same stored choices — as the sequential
     * traversal. */
    void
    loadTask(const std::vector<Node> &prefix, size_t b,
             const SubtreeTask &t)
    {
        resetTraversal();
        size_t need = b + 1 + t.deepSpine.size();
        if (trace.size() < need)
            trace.resize(need);
        for (size_t i = 0; i < b; ++i)
            trace[i] = prefix[i];
        trace[b] = t.clone;
        for (size_t i = 0; i < t.deepSpine.size(); ++i)
            trace[b + 1 + i] = t.deepSpine[i];
        traceLen = need;
        floorKeep = b;
        for (const auto &[k, v] : t.seedGreys)
            visited.emplace(k, v);
        for (const auto &[k, v] : t.seedGreysStr)
            visitedStr.emplace(k, v);
        peakPrivate = opts->debugStateKeys ? visitedStr.size()
                                           : visited.size();
    }

    /** Harvest the private memo's black states into the task record
     * for commit-time publication. */
    void
    harvestBlacks(SubtreeTask &t)
    {
        if (opts->debugStateKeys) {
            for (auto &[k, v] : visitedStr) {
                if (v.black)
                    t.blacksStr.emplace_back(
                        k, StringShardMap::Entry{
                               v.executedSig, std::move(v.finals)});
            }
        } else {
            for (auto &[k, v] : visited) {
                if (v.black)
                    t.blacks.emplace_back(
                        k, DigestShardMap::Entry{
                               v.executedSig, std::move(v.finals)});
            }
        }
    }
};

} // namespace

// ---------------------------------------------------------------------
// Explorer::Impl — the driver
// ---------------------------------------------------------------------

struct Explorer::Impl
{
    ExploreOptions opts;
    sim::ChipProfile chip;
    const litmus::Test *test;
    SharedKeys keys;
    std::unique_ptr<SharedCtx> shared; ///< null when shards == 1
    /** The driving traversal: the whole search when sequential, the
     * pre-split phase + commit fold target when parallel. */
    Walker w0;
    /** Effective budget totals: the per-shard option caps × shards,
     * saturating. */
    uint64_t effCapReplays = 0;
    uint64_t effCapStates = 0;

    Impl(const sim::ChipProfile &c, const litmus::Test &t,
         ExploreOptions o)
        : opts(std::move(o)), chip(c), test(&t),
          w0(chip, t, &opts, &keys, nullptr)
    {
        uint64_t sh =
            static_cast<uint64_t>(std::max(1, opts.shards));
        auto satMul = [](uint64_t a, uint64_t m) -> uint64_t {
            if (a == 0 || m == 0)
                return 0;
            if (a > UINT64_MAX / m)
                return UINT64_MAX;
            return a * m;
        };
        effCapReplays = satMul(opts.maxReplays, sh);
        effCapStates = satMul(opts.maxStates, sh);
        w0.capReplays = effCapReplays;
        w0.capStates = effCapStates;
        if (sh > 1) {
            shared = std::make_unique<SharedCtx>();
            shared->capReplays = effCapReplays;
            shared->debugKeys = opts.debugStateKeys;
            w0.shared = shared.get();
        }
    }

    ExploreResult
    explore()
    {
        auto start = std::chrono::steady_clock::now();
        obs::Span span("explore " + test->name + "@" +
                           w0.machine.chip().shortName,
                       "mc");
        if (!shared)
            return exploreSequential(start);
        return exploreParallel(start);
    }

    ExploreResult
    exploreSequential(std::chrono::steady_clock::time_point start)
    {
        w0.runLoop(false);
        // On a budget abort the open spine still holds sound partial
        // results: fold them down without memoising anything. (A
        // drained search already has an empty spine.)
        while (w0.traceLen > 0)
            w0.popTop(false);
        return assemble(!w0.aborted, start);
    }

    ExploreResult
    exploreParallel(std::chrono::steady_clock::time_point start)
    {
        // -- Phase 1: single replay+backtrack rounds on this thread
        // until the spine exposes a split point (a node with
        // unexplored alternatives). Usually exactly one round: the
        // first replay materialises the whole spine.
        size_t b = SIZE_MAX;
        for (;;) {
            if (w0.runLoop(true))
                return assemble(true, start); // drained sequentially
            if (w0.aborted) {
                while (w0.traceLen > 0)
                    w0.popTop(false);
                return assemble(false, start);
            }
            b = SIZE_MAX;
            for (size_t i = 0; i < w0.traceLen; ++i) {
                if (!w0.trace[i].pending.empty()) {
                    b = i;
                    break;
                }
            }
            if (b != SIZE_MAX)
                break;
        }

        // -- Split: 1 + |pending| subtree tasks at the shallowest
        // branchy node. Task 0 continues the in-flight traversal (the
        // deep spine and the node's accumulated finals travel with
        // it); task k explores pending[k-1] under the doneIds
        // sequence the sequential backtracks would have built, so
        // every subtree sees the sequential sleep-set discipline. One
        // split level is enough for the budget semantics at any shard
        // count; re-splitting *inside* subtrees is future work
        // (docs/ARCHITECTURE.md).
        Node &B = w0.trace[b];
        const size_t nTasks = 1 + B.pending.size();
        std::vector<std::unique_ptr<SubtreeTask>> tasks;
        tasks.reserve(nTasks);
        {
            auto t0 = std::make_unique<SubtreeTask>();
            t0->clone = B;
            t0->clone.pending.clear();
            for (size_t i = b + 1; i < w0.traceLen; ++i)
                t0->deepSpine.push_back(w0.trace[i]);
            tasks.push_back(std::move(t0));
        }
        std::vector<int> doneSeq = B.doneIds;
        if (B.isSchedule)
            doneSeq.push_back(B.actors[B.chosen].id);
        for (uint32_t alt : B.pending) {
            auto tk = std::make_unique<SubtreeTask>();
            tk->clone = B;
            tk->clone.chosen = alt;
            tk->clone.pending.clear();
            tk->clone.finals.clear();
            tk->clone.taint = SIZE_MAX;
            if (B.isSchedule) {
                tk->clone.doneIds = doneSeq;
                doneSeq.push_back(B.actors[alt].id);
            }
            tasks.push_back(std::move(tk));
        }
        // The driver keeps the split node as the commit fold target.
        // Its accumulated finals moved into task 0's clone, so clear
        // them here (they would double-count), and truncate the
        // spine — the deep part now belongs to task 0.
        B.pending.clear();
        B.finals.clear();
        B.taint = SIZE_MAX;
        w0.traceLen = b + 1;

        // -- Publish phase 1: black states go to the committed map
        // (they are sequentially-closed results every subtree may
        // reuse), spine greys at depth <= b to the read-only seed
        // table all tasks share, and deep-spine greys (> b) to task
        // 0's private pre-seed.
        if (opts.debugStateKeys) {
            for (const auto &[k, v] : w0.visitedStr) {
                if (v.black)
                    shared->committedStr.insert(k, v.executedSig,
                                                v.finals);
                else if (v.greyDepth <= b)
                    shared->seedsStr.emplace(
                        k, SeedEntry{v.greyDepth, v.executedSig});
                else
                    tasks[0]->seedGreysStr.emplace_back(k, v);
            }
            shared->seedCount = shared->seedsStr.size();
        } else {
            for (const auto &[k, v] : w0.visited) {
                if (v.black)
                    shared->committed.insert(k, v.executedSig,
                                             v.finals);
                else if (v.greyDepth <= b)
                    shared->seeds.emplace(
                        k, SeedEntry{v.greyDepth, v.executedSig});
                else
                    tasks[0]->seedGreys.emplace_back(k, v);
            }
            shared->seedCount = shared->seeds.size();
        }
        shared->pool.store(w0.stats.replays,
                           std::memory_order_relaxed);

        // -- Worker pool: deal tasks round-robin into Chase-Lev
        // deques, one per worker; idle workers steal from their
        // peers. Which worker runs which task is scheduling noise —
        // commits happen in subtree-id order regardless.
        size_t T = opts.shardThreads > 0
                       ? static_cast<size_t>(opts.shardThreads)
                       : static_cast<size_t>(
                             std::max(1, opts.shards));
        T = std::min(std::max<size_t>(1, T), nTasks);
        std::vector<std::unique_ptr<WorkStealDeque>> deques;
        deques.reserve(T);
        for (size_t i = 0; i < T; ++i)
            deques.push_back(
                std::make_unique<WorkStealDeque>(nTasks));
        for (size_t i = 0; i < nTasks; ++i)
            deques[i % T]->push(static_cast<uint32_t>(i));

        const bool obs_on = obs::enabled();
        if (obs_on)
            obs::counter("mc_subtrees_total").add(nTasks);
        std::atomic<uint64_t> steals{0};

        auto workerMain = [&](size_t me) {
            Walker w(chip, *test, &opts, &keys, shared.get());
            w.isWorker = true;
            w.recordMisses = true;
            w.capStates = effCapStates;
            auto runTask = [&](uint32_t id) {
                SubtreeTask &t = *tasks[id];
                obs::Span tspan("mc subtree " + std::to_string(id) +
                                    " " + test->name,
                                "mc");
                w.loadTask(w0.trace, b, t);
                if (w.runLoop(false)) {
                    t.stats = w.stats;
                    t.loopDedup = w.loopDedup;
                    t.truncatedLeaf = w.truncatedLeaf;
                    t.finals = std::move(w.trace[b].finals);
                    t.taint = w.trace[b].taint;
                    t.missedKeys = std::move(w.missedKeys);
                    t.missedStrs = std::move(w.missedStrs);
                    t.peakPrivate = w.peakPrivate;
                    w.harvestBlacks(t);
                } else {
                    t.aborted = true;
                }
                t.done.store(true, std::memory_order_release);
            };
            uint32_t id = 0;
            for (;;) {
                if (deques[me]->pop(id)) {
                    runTask(id);
                    continue;
                }
                bool got = false;
                bool retry = true;
                while (!got && retry) {
                    retry = false;
                    for (size_t o = 0; o < T && !got; ++o) {
                        if (o == me)
                            continue;
                        switch (deques[o]->steal(id)) {
                          case WorkStealDeque::Steal::kOk:
                            got = true;
                            steals.fetch_add(
                                1, std::memory_order_relaxed);
                            break;
                          case WorkStealDeque::Steal::kLost:
                            retry = true;
                            break;
                          case WorkStealDeque::Steal::kEmpty:
                            break;
                        }
                    }
                }
                if (!got)
                    return;
                runTask(id);
            }
        };
        std::vector<std::thread> threads;
        threads.reserve(T);
        for (size_t i = 0; i < T; ++i)
            threads.emplace_back(workerMain, i);

        // -- Commit, strictly in subtree-id order. A subtree whose
        // optimistic run provably matches the sequential one (no
        // aborted admission, no recorded cache miss that is now
        // committed, budgets certifiably un-tripped) commits as-is;
        // anything else is redone right here against the frozen
        // committed prefix — which *is* the sequential search for
        // that subtree.
        auto publishBlacks = [&](Walker &w) {
            if (opts.debugStateKeys) {
                for (auto &[k, v] : w.visitedStr) {
                    if (!v.black)
                        continue;
                    bool fresh = shared->committedStr.insert(
                        k, v.executedSig, std::move(v.finals));
                    assert(fresh && "committed-state collision");
                    (void)fresh;
                }
            } else {
                for (auto &[k, v] : w.visited) {
                    if (!v.black)
                        continue;
                    bool fresh = shared->committed.insert(
                        k, v.executedSig, std::move(v.finals));
                    assert(fresh && "committed-state collision");
                    (void)fresh;
                }
            }
        };
        uint64_t spent = w0.stats.replays;
        bool bounded = false;
        std::unique_ptr<Walker> redo;
        for (size_t j = 0; j < nTasks && !bounded; ++j) {
            SubtreeTask &t = *tasks[j];
            while (!t.done.load(std::memory_order_acquire))
                std::this_thread::yield();
            bool conflict = t.aborted;
            // Replay-budget certificate: `spent` is exactly the
            // sequential spend entering this subtree (commits are in
            // order), so fitting under the cap proves no mid-subtree
            // trip.
            if (!conflict && spent + t.stats.replays > effCapReplays)
                conflict = true;
            // State-budget certificate (an upper bound on the
            // sequential mid-subtree map size; over-approximation
            // only costs a redo, never correctness).
            if (!conflict && opts.stateCache &&
                shared->committedCount() + shared->seedCount +
                        t.peakPrivate >=
                    effCapStates)
                conflict = true;
            if (!conflict) {
                for (const auto &k : t.missedKeys) {
                    if (shared->committed.contains(k)) {
                        conflict = true;
                        break;
                    }
                }
                for (const auto &k : t.missedStrs) {
                    if (conflict)
                        break;
                    if (shared->committedStr.contains(k))
                        conflict = true;
                }
            }
            if (!conflict) {
                for (auto &[k, e] : t.blacks) {
                    bool fresh = shared->committed.insert(
                        k, e.executedSig, std::move(e.finals));
                    assert(fresh && "committed-state collision");
                    (void)fresh;
                }
                for (auto &[k, e] : t.blacksStr) {
                    bool fresh = shared->committedStr.insert(
                        k, e.executedSig, std::move(e.finals));
                    assert(fresh && "committed-state collision");
                    (void)fresh;
                }
                foldWeights(B.finals, t.finals);
                B.taint = std::min(B.taint, t.taint);
                mergeStats(w0.stats, t.stats);
                w0.loopDedup = w0.loopDedup || t.loopDedup;
                w0.truncatedLeaf =
                    w0.truncatedLeaf || t.truncatedLeaf;
                spent += t.stats.replays;
            } else {
                if (obs_on)
                    obs::counter("mc_shard_collisions_total").add();
                if (!redo)
                    redo = std::make_unique<Walker>(
                        chip, *test, &opts, &keys, shared.get());
                Walker &rw = *redo;
                rw.loadTask(w0.trace, b, t);
                rw.capReplays = effCapReplays - spent;
                rw.capStates = effCapStates;
                if (rw.runLoop(false)) {
                    publishBlacks(rw);
                } else {
                    // The *sequential* budget ran out inside this
                    // subtree: stop the speculation and unwind the
                    // redo's open spine down to the split node — the
                    // same fold the sequential abort does.
                    shared->stop.store(true,
                                       std::memory_order_release);
                    while (rw.traceLen > b + 1)
                        rw.popTop(false);
                    bounded = true;
                }
                foldWeights(B.finals, rw.trace[b].finals);
                B.taint = std::min(B.taint, rw.trace[b].taint);
                mergeStats(w0.stats, rw.stats);
                w0.loopDedup = w0.loopDedup || rw.loopDedup;
                w0.truncatedLeaf =
                    w0.truncatedLeaf || rw.truncatedLeaf;
                spent += rw.stats.replays;
            }
            if (opts.heartbeat)
                opts.heartbeat(w0.stats);
        }
        shared->stop.store(true, std::memory_order_release);
        for (auto &th : threads)
            th.join();
        if (obs_on)
            obs::counter("mc_steals_total")
                .add(steals.load(std::memory_order_relaxed));

        if (bounded) {
            while (w0.traceLen > 0)
                w0.popTop(false);
            return assemble(false, start);
        }
        // Drain the driver's spine [0..b]: every pending list is
        // empty, so this blackens the prefix exactly as the final
        // sequential backtracks would.
        while (w0.traceLen > 0)
            w0.popTop(true);
        return assemble(true, start);
    }

    ExploreResult
    assemble(bool complete,
             std::chrono::steady_clock::time_point start)
    {
        ExploreResult result;
        result.testName = test->name;
        result.chipName = w0.machine.chip().shortName;
        result.column = opts.machine.inc.column();
        result.complete =
            complete && !w0.loopDedup && !w0.truncatedLeaf;
        // Drained with loop-dedup cuts as the only caveat: exact for
        // every execution whose spin loops terminate.
        result.fairComplete = complete && !w0.truncatedLeaf;
        // Un-intern the dense accounting back into the string-keyed
        // result shape the eval layer consumes. String keying here is
        // also what makes the parallel phase's race-order id
        // numbering invisible.
        for (uint32_t id = 0; id < w0.rootFinals.size(); ++id) {
            if (w0.rootFinals[id] == 0)
                continue;
            const std::string &name = *keys.interner.names[id];
            result.finals[name] = w0.rootFinals[id];
            if (id < keys.satFlags.size() && keys.satFlags[id])
                result.satisfying.insert(name);
            result.paths += w0.rootFinals[id];
        }
        result.stats = w0.stats;
        result.budgetReplays = effCapReplays;
        result.budgetStates = effCapStates;
        auto end = std::chrono::steady_clock::now();
        result.millis =
            std::chrono::duration<double, std::milli>(end - start)
                .count();
        // Fold the search-shape statistics into the process registry
        // (replays were already ticked live for heartbeat rates).
        if (obs::enabled()) {
            obs::counter("mc_explorations_total").add();
            // `complete` (the parameter) is the budget flag; the
            // result field also folds in loop-dedup caveats.
            if (!complete)
                obs::counter("mc_bounded_total").add();
            obs::counter("mc_state_cuts_total")
                .add(w0.stats.stateCuts);
            obs::counter("mc_sleep_skips_total")
                .add(w0.stats.sleepSkips);
            obs::counter("mc_states_cached_total")
                .add(w0.stats.distinctStates);
            obs::counter("mc_resumes_total").add(w0.stats.resumes);
            obs::counter("mc_replayed_choices_total")
                .add(w0.stats.replayedChoices);
            obs::gauge("mc_last_peak_depth")
                .set(static_cast<int64_t>(w0.stats.peakDepth));
        }
        return result;
    }
};

// ---------------------------------------------------------------------
// Explorer / ExploreResult
// ---------------------------------------------------------------------

Explorer::Explorer(const sim::ChipProfile &chip,
                   const litmus::Test &test, ExploreOptions opts)
    : impl_(std::make_unique<Impl>(chip, test, std::move(opts)))
{
}

Explorer::~Explorer() = default;

ExploreResult
Explorer::explore()
{
    return impl_->explore();
}

std::string
ExploreResult::verdict(const litmus::Test &test) const
{
    bool sat = !satisfying.empty();
    bool ok;
    switch (test.quantifier) {
      case litmus::Quantifier::Exists:
        ok = sat;
        break;
      case litmus::Quantifier::NotExists:
        ok = !sat;
        break;
      case litmus::Quantifier::Forall:
        ok = satisfying.size() == finals.size();
        break;
      default:
        ok = false;
        break;
    }
    std::string v = ok ? "Ok" : "No";
    if (!complete)
        v += fairComplete ? " (fair)" : " (bounded)";
    return v;
}

std::string
ExploreResult::str() const
{
    std::string out;
    out += "Exploration " + testName + "@" + chipName + " (column " +
           std::to_string(column) + ")\n";
    out += (complete ? std::string("complete: ")
            : fairComplete
                ? std::string("complete for terminating executions"
                              " (spin-loop dedup): ")
                : std::string("BOUNDED (budget or loop guard): ")) +
           std::to_string(finals.size()) + " reachable states, " +
           std::to_string(paths) + " paths\n";
    for (const auto &[key, weight] : finals) {
        out += "  " + std::to_string(weight) + "  " + key;
        if (satisfying.count(key))
            out += "  *";
        out += "\n";
    }
    out += "replays " + std::to_string(stats.replays) + " (" +
           std::to_string(stats.resumes) + " resumed), states " +
           std::to_string(stats.distinctStates) + ", state cuts " +
           std::to_string(stats.stateCuts) + ", sleep skips " +
           std::to_string(stats.sleepSkips) + ", peak depth " +
           std::to_string(stats.peakDepth) + ", replayed choices " +
           std::to_string(stats.replayedChoices) + "\n";
    return out;
}

std::string
ExploreResult::report() const
{
    std::string out = str();
    // The diagnosability tail: which budget bit, and how the search
    // was shaped when it did. Budgets are advisory fields (0 when the
    // result came back from the persistent store).
    auto pct = [](uint64_t used, uint64_t budget) {
        if (!budget)
            return std::string("?");
        return std::to_string(used * 100 / budget) + "%";
    };
    out += "budget: replays " + std::to_string(stats.replays);
    if (budgetReplays)
        out += "/" + std::to_string(budgetReplays) + " (" +
               pct(stats.replays, budgetReplays) + ")";
    out += ", states " + std::to_string(stats.distinctStates);
    if (budgetStates)
        out += "/" + std::to_string(budgetStates) + " (" +
               pct(stats.distinctStates, budgetStates) + ")";
    out += ", deepest frontier " + std::to_string(stats.peakDepth) +
           "\n";
    if (!complete && !fairComplete) {
        bool replays_out =
            budgetReplays && stats.replays >= budgetReplays;
        out += std::string("bounded by: ") +
               (replays_out ? "replay budget — raise --budget"
                            : "state cap or step guard") +
               "\n";
    }
    return out;
}

} // namespace gpulitmus::mc
