/**
 * @file
 * Sharded concurrent map for the committed state cache.
 *
 * During parallel exploration, subtree results are committed on the
 * main thread in task-id order while workers keep exploring later
 * subtrees optimistically. Workers consult this map read-only on
 * their hot path; the commit thread is the only writer. Sharding by
 * the high bits of the 128-bit state digest (16 shards, one mutex
 * each) keeps reader/writer contention negligible — the mongodb
 * sharded-latch idiom, scaled down to the two-role access pattern we
 * actually have.
 *
 * Entries are *black* states only: fully explored, with the
 * sleep-set-closed final-state weights memoised. Grey (on-stack)
 * states never enter the shared map — each worker keeps those
 * private, plus a read-only seed table for the spine prefix it
 * replays through. lookup() copies the entry out under the shard
 * lock, because the commit thread may rehash a shard at any moment
 * and a borrowed pointer would dangle.
 *
 * insert() returns false on a duplicate key and leaves the existing
 * entry in place. The explorer's commit protocol makes genuine
 * duplicates structurally impossible (a subtree that re-derived a
 * committed state is redone against the frozen map instead of
 * committed), so callers assert on it; the return value exists so
 * tests can exercise the collision path directly.
 */

#ifndef GPULITMUS_MC_SHARDMAP_H
#define GPULITMUS_MC_SHARDMAP_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"

namespace gpulitmus::mc {

template <typename Key, typename Hasher = std::hash<Key>>
class ShardMap
{
  public:
    struct Entry
    {
        /** Fetch-counter signature at the visit (spin-loop taint
         * cross-check, same meaning as the private VisitEntry). */
        uint64_t executedSig = 0;
        /** Memoised final-state weights of the subtree below. */
        std::vector<uint64_t> finals;
    };

    /** Copy the entry for `k` into `out`. Safe concurrently with
     * insert(); the copy happens under the shard lock. */
    bool
    lookup(const Key &k, Entry &out) const
    {
        const Shard &sh = shards_[shardOf(k)];
        std::lock_guard<std::mutex> lock(sh.mu);
        auto it = sh.map.find(k);
        if (it == sh.map.end())
            return false;
        out = it->second;
        return true;
    }

    bool
    contains(const Key &k) const
    {
        const Shard &sh = shards_[shardOf(k)];
        std::lock_guard<std::mutex> lock(sh.mu);
        return sh.map.find(k) != sh.map.end();
    }

    /** Publish a black state. Returns false (and changes nothing) if
     * the key is already present. */
    bool
    insert(const Key &k, uint64_t sig, std::vector<uint64_t> finals)
    {
        Shard &sh = shards_[shardOf(k)];
        std::lock_guard<std::mutex> lock(sh.mu);
        auto [it, fresh] =
            sh.map.try_emplace(k, Entry{sig, std::move(finals)});
        (void)it;
        if (fresh)
            count_.fetch_add(1, std::memory_order_relaxed);
        return fresh;
    }

    /** Entry count, coherent enough for budget accounting. */
    size_t
    size() const
    {
        return count_.load(std::memory_order_relaxed);
    }

  private:
    static constexpr int kShardBits = 4;
    static constexpr size_t kShards = size_t{1} << kShardBits;

    static size_t
    shardOf(const Key &k)
    {
        if constexpr (std::is_same_v<Key, Digest128>) {
            return static_cast<size_t>(k.hi >> (64 - kShardBits));
        } else {
            size_t h = Hasher{}(k);
            return h >> (sizeof(size_t) * 8 - kShardBits);
        }
    }

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<Key, Entry, Hasher> map;
    };

    Shard shards_[kShards];
    std::atomic<size_t> count_{0};
};

using DigestShardMap = ShardMap<Digest128, Digest128::Hasher>;
using StringShardMap = ShardMap<std::string>;

} // namespace gpulitmus::mc

#endif // GPULITMUS_MC_SHARDMAP_H
