/**
 * @file
 * Chase-Lev work-stealing deque for subtree tasks.
 *
 * The parallel explorer splits the frontier into a fixed set of
 * subtree tasks at one branchy spine node, deals them round-robin
 * into per-worker deques, and lets idle workers steal from their
 * peers. The deque is the classic Chase-Lev shape (owner pushes and
 * pops at the bottom, thieves take from the top), with the memory
 * orderings of Lê et al., "Correct and Efficient Work-Stealing for
 * Weak Memory Models" (PPoPP'13) — the same algorithm the repo ships
 * as the `work_stealing_deque` *scenario*, now promoted from subject
 * under test to infrastructure.
 *
 * Simplifications the explorer's usage pattern affords:
 *
 * - Fixed capacity. All tasks exist before any worker starts; nothing
 *   is pushed once stealing begins, so the buffer is sized once (next
 *   power of two ≥ task count) and never grows. push() past capacity
 *   is a programming error and asserts.
 * - Element type is a task id (uint32_t), stored in std::atomic slots
 *   so the (theoretically) racing slot reads in steal() are data-race
 *   free under ThreadSanitizer.
 *
 * Determinism note: *which* worker executes a task is scheduling
 * noise and intentionally so — the explorer's commit protocol makes
 * results independent of it. Steals are only observable through the
 * mc_steals_total metric.
 */

#ifndef GPULITMUS_MC_WORKSTEAL_H
#define GPULITMUS_MC_WORKSTEAL_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

namespace gpulitmus::mc {

class WorkStealDeque
{
  public:
    enum class Steal { kOk, kEmpty, kLost };

    explicit WorkStealDeque(size_t capacity)
    {
        size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        buf_ = std::vector<std::atomic<uint32_t>>(cap);
        mask_ = cap - 1;
    }

    /** Owner only. Not safe concurrently with steal(); the explorer
     * pushes every task before the worker pool starts. */
    void
    push(uint32_t v)
    {
        int64_t b = bottom_.load(std::memory_order_relaxed);
        int64_t t = top_.load(std::memory_order_acquire);
        assert(b - t < static_cast<int64_t>(mask_ + 1) &&
               "WorkStealDeque over capacity");
        (void)t; // only read by the assert in release builds
        buf_[static_cast<size_t>(b) & mask_].store(
            v, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_release);
    }

    /** Owner only: take from the bottom (LIFO). */
    bool
    pop(uint32_t &out)
    {
        int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
        bottom_.store(b, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        int64_t t = top_.load(std::memory_order_relaxed);
        if (t <= b) {
            out = buf_[static_cast<size_t>(b) & mask_].load(
                std::memory_order_relaxed);
            if (t == b) {
                // Last element: race the thieves for it.
                if (!top_.compare_exchange_strong(
                        t, t + 1, std::memory_order_seq_cst,
                        std::memory_order_relaxed)) {
                    bottom_.store(b + 1,
                                  std::memory_order_relaxed);
                    return false;
                }
                bottom_.store(b + 1, std::memory_order_relaxed);
            }
            return true;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;
    }

    /** Any thief: take from the top (FIFO — lowest task ids first,
     * which keeps stolen work roughly in commit order). kLost means a
     * concurrent pop/steal won the CAS; the caller may retry. */
    Steal
    steal(uint32_t &out)
    {
        int64_t t = top_.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        int64_t b = bottom_.load(std::memory_order_acquire);
        if (t >= b)
            return Steal::kEmpty;
        uint32_t v = buf_[static_cast<size_t>(t) & mask_].load(
            std::memory_order_relaxed);
        if (!top_.compare_exchange_strong(
                t, t + 1, std::memory_order_seq_cst,
                std::memory_order_relaxed))
            return Steal::kLost;
        out = v;
        return Steal::kOk;
    }

  private:
    std::vector<std::atomic<uint32_t>> buf_;
    size_t mask_ = 0;
    alignas(64) std::atomic<int64_t> top_{0};
    alignas(64) std::atomic<int64_t> bottom_{0};
};

} // namespace gpulitmus::mc

#endif // GPULITMUS_MC_WORKSTEAL_H
