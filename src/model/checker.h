/**
 * @file
 * The model checker: enumerate a test's candidate executions, filter
 * them through a .cat model, and report which final states the model
 * allows — the herd workflow of Sec. 5.4.
 */

#ifndef GPULITMUS_MODEL_CHECKER_H
#define GPULITMUS_MODEL_CHECKER_H

#include <set>
#include <string>
#include <vector>

#include "axiom/enumerate.h"
#include "cat/cat.h"
#include "litmus/outcome.h"

namespace gpulitmus::model {

/** Result of checking one test against one model. */
struct Verdict
{
    std::string testName;
    std::string modelName;

    uint64_t numCandidates = 0;
    uint64_t numAllowed = 0;

    /** Outcome keys (Histogram::keyFor format) of allowed states. */
    std::set<std::string> allowedKeys;
    /** Outcome keys of candidates the model forbids (and no allowed
     * candidate produces). */
    std::set<std::string> forbiddenKeys;

    /** Does some allowed execution satisfy the condition body? */
    bool conditionSatisfiable = false;

    /**
     * Litmus-style verdict on the quantified condition: for exists,
     * "Ok" iff satisfiable; for ~exists, "Ok" iff unsatisfiable; for
     * forall, "Ok" iff every allowed state satisfies the body.
     */
    std::string verdict;

    /** One allowed execution satisfying the condition (witness). */
    std::optional<axiom::Execution> witness;
    /** One forbidden execution satisfying the condition, with the
     * name of the check that kills it. */
    std::optional<axiom::Execution> forbiddenWitness;
    std::string forbiddingCheck;

    /** The test is outside the model's scope (inModelScope): the
     * backend returned without enumerating; every count is zero and
     * `verdict` says so. Conformance joins skip such verdicts. */
    bool outOfScope = false;
};

/**
 * Evaluates tests against a .cat model.
 *
 * Candidate-execution enumeration — the hot path of a validation
 * sweep — is memoised process-wide by (test text, enumerator
 * options), so checking one test against N models enumerates its
 * executions once. The memo is shared by every Checker instance and
 * is safe to hit from campaign worker threads.
 */
class Checker
{
  public:
    explicit Checker(const cat::Model &model,
                     axiom::EnumeratorOptions opts = {});

    Verdict check(const litmus::Test &test) const;

    /** Shorthand: does the model allow the condition body? */
    bool allows(const litmus::Test &test) const;

    const cat::Model &model() const { return *model_; }

  private:
    const cat::Model *model_;
    axiom::EnumeratorOptions opts_;
};

/** Entries in the process-wide enumeration memo (for tests and
 * instrumentation). */
size_t enumerationCacheSize();
/** Drop every memoised enumeration. */
void clearEnumerationCache();

/**
 * The model's experimental scope (Sec. 5.5 / Sec. 2.3): it covers
 * loop-free programs over accesses with the .cg operator only. Tests
 * touching .ca (L1) or volatile accesses are outside it — no fence
 * restores .ca ordering on Fermi — and so are programs with branches
 * (spin-loop scenarios): the axiomatic side enumerates finite
 * executions, and the paper distills loops away (Tab. 5) before any
 * model evaluation. Both are excluded from validation, exactly as in
 * the paper.
 */
bool inModelScope(const litmus::Test &test);

/** Soundness of a model w.r.t. observations (Sec. 5.4): every
 * behaviour the hardware (simulator) exhibits must be allowed. */
struct SoundnessReport
{
    bool sound = true;
    /** Observed outcome keys the model forbids. */
    std::vector<std::string> violations;
};

SoundnessReport checkSoundness(const Verdict &verdict,
                               const litmus::Histogram &observed);

} // namespace gpulitmus::model

#endif // GPULITMUS_MODEL_CHECKER_H
