#include "model/baseline.h"

namespace gpulitmus::model {

std::string
operationalBaselineSource()
{
    return R"CAT(
(* Axiomatic rendering of the Sorensen et al. operational model:
   fences drain the issuing core's buffers irrespective of scope, so
   every membar orders globally. Unsound w.r.t. hardware; see Sec. 6
   of the paper and bench_sec6_baseline. *)
let com = rf | co | fr
let po-loc-llh = WW(po-loc) | WR(po-loc) | RW(po-loc)
acyclic (po-loc-llh | com) as sc-per-loc-llh
let dp = addr | data | ctrl
acyclic (dp | rf) as no-thin-air
let any-fence = membar.cta | membar.gl | membar.sys
acyclic (dp | any-fence | rfe | co | fr) as buffer-drain-order
)CAT";
}

const cat::Model &
operationalBaseline()
{
    static cat::Model model = cat::Model::parseOrDie(
        operationalBaselineSource(), "sorensen-operational");
    return model;
}

} // namespace gpulitmus::model
