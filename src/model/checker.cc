#include "model/checker.h"

#include "common/log.h"

namespace gpulitmus::model {

Checker::Checker(const cat::Model &model, axiom::EnumeratorOptions opts)
    : model_(&model), opts_(opts)
{
}

Verdict
Checker::check(const litmus::Test &test) const
{
    Verdict v;
    v.testName = test.name;
    v.modelName = model_->name();

    litmus::Histogram keyer(test);

    auto executions = axiom::enumerateExecutions(test, opts_);
    v.numCandidates = executions.size();

    bool forall_ok = true;
    for (auto &ex : executions) {
        cat::ModelResult res = model_->evaluate(ex);
        std::string key = keyer.keyFor(ex.finalState);
        bool satisfies = test.condition.eval(ex.finalState);
        if (res.allowed) {
            ++v.numAllowed;
            v.allowedKeys.insert(key);
            if (satisfies) {
                v.conditionSatisfiable = true;
                if (!v.witness)
                    v.witness = ex;
            } else {
                forall_ok = false;
            }
        } else if (satisfies && !v.forbiddenWitness) {
            v.forbiddenWitness = ex;
            v.forbiddingCheck = res.firstFailure();
        }
    }

    // Forbidden keys: keys seen only on forbidden candidates.
    for (auto &ex : executions) {
        std::string key = keyer.keyFor(ex.finalState);
        if (!v.allowedKeys.count(key))
            v.forbiddenKeys.insert(key);
    }

    switch (test.quantifier) {
      case litmus::Quantifier::Exists:
        v.verdict = v.conditionSatisfiable ? "Ok" : "No";
        break;
      case litmus::Quantifier::NotExists:
        v.verdict = v.conditionSatisfiable ? "No" : "Ok";
        break;
      case litmus::Quantifier::Forall:
        v.verdict = forall_ok ? "Ok" : "No";
        break;
    }
    return v;
}

bool
Checker::allows(const litmus::Test &test) const
{
    return check(test).conditionSatisfiable;
}

SoundnessReport
checkSoundness(const Verdict &verdict,
               const litmus::Histogram &observed)
{
    SoundnessReport report;
    for (const auto &[key, count] : observed.counts()) {
        if (count == 0)
            continue;
        if (!verdict.allowedKeys.count(key)) {
            report.sound = false;
            report.violations.push_back(key);
        }
    }
    return report;
}

} // namespace gpulitmus::model
