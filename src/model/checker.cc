#include "model/checker.h"

#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/log.h"

namespace gpulitmus::model {

namespace {

/**
 * Process-wide memo of candidate-execution enumerations, keyed by
 * test text and enumerator options. Enumeration dominates a
 * validation sweep's model-side cost; a test checked against N models
 * (or revisited across campaign cells) enumerates once. Bounded by a
 * coarse clear-at-capacity policy — sweeps visit tests with strong
 * locality (every model of one test back to back), so even a small
 * memo captures nearly all reuse.
 */
class EnumerationCache
{
  public:
    std::shared_ptr<const std::vector<axiom::Execution>>
    get(const litmus::Test &test, const axiom::EnumeratorOptions &opts)
    {
        // Keyed by the full test text plus the option values — exact,
        // never by hash alone, so distinct tests can never collide
        // into each other's candidate sets.
        std::string key = keyFor(test, opts);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = map_.find(key);
            if (it != map_.end())
                return it->second;
        }
        // Enumerate outside the lock; a concurrent duplicate is
        // wasted work, not an error.
        auto execs =
            std::make_shared<const std::vector<axiom::Execution>>(
                axiom::enumerateExecutions(test, opts));
        std::lock_guard<std::mutex> lock(mutex_);
        if (map_.size() >= kMaxEntries)
            map_.clear();
        map_.emplace(std::move(key), execs);
        return execs;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return map_.size();
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        map_.clear();
    }

  private:
    static std::string
    keyFor(const litmus::Test &test,
           const axiom::EnumeratorOptions &opts)
    {
        return test.str() + "\n#opts " +
               std::to_string(opts.maxStepsPerThread) + " " +
               std::to_string(opts.maxValuesPerLoc) + " " +
               std::to_string(opts.maxCandidates);
    }

    // Candidate sets can be large (up to maxCandidates executions);
    // the access pattern is back-to-back per test (every model of one
    // test, then the next test), so a small bound captures nearly all
    // reuse even with a worker pool interleaving a few tests.
    static constexpr size_t kMaxEntries = 64;
    mutable std::mutex mutex_;
    std::unordered_map<
        std::string,
        std::shared_ptr<const std::vector<axiom::Execution>>>
        map_;
};

EnumerationCache &
enumerationCache()
{
    static EnumerationCache cache;
    return cache;
}

} // namespace

size_t
enumerationCacheSize()
{
    return enumerationCache().size();
}

void
clearEnumerationCache()
{
    enumerationCache().clear();
}

bool
inModelScope(const litmus::Test &test)
{
    for (const auto &th : test.program.threads) {
        for (const auto &in : th.instrs) {
            if (in.isMemAccess() &&
                (in.cacheOp == ptx::CacheOp::Ca || in.isVolatile))
                return false;
            // Branches mean loops (spin-lock scenarios): the
            // axiomatic side enumerates finite executions only, so
            // looped programs are outside the model scope — the
            // paper distills them away (Tab. 5) before evaluation.
            if (in.op == ptx::Opcode::Bra)
                return false;
        }
    }
    return true;
}

Checker::Checker(const cat::Model &model, axiom::EnumeratorOptions opts)
    : model_(&model), opts_(opts)
{
}

Verdict
Checker::check(const litmus::Test &test) const
{
    Verdict v;
    v.testName = test.name;
    v.modelName = model_->name();

    litmus::Histogram keyer(test);

    auto shared = enumerationCache().get(test, opts_);
    const std::vector<axiom::Execution> &executions = *shared;
    v.numCandidates = executions.size();

    bool forall_ok = true;
    for (auto &ex : executions) {
        cat::ModelResult res = model_->evaluate(ex);
        std::string key = keyer.keyFor(ex.finalState);
        bool satisfies = test.condition.eval(ex.finalState);
        if (res.allowed) {
            ++v.numAllowed;
            v.allowedKeys.insert(key);
            if (satisfies) {
                v.conditionSatisfiable = true;
                if (!v.witness)
                    v.witness = ex;
            } else {
                forall_ok = false;
            }
        } else if (satisfies && !v.forbiddenWitness) {
            v.forbiddenWitness = ex;
            v.forbiddingCheck = res.firstFailure();
        }
    }

    // Forbidden keys: keys seen only on forbidden candidates.
    for (auto &ex : executions) {
        std::string key = keyer.keyFor(ex.finalState);
        if (!v.allowedKeys.count(key))
            v.forbiddenKeys.insert(key);
    }

    switch (test.quantifier) {
      case litmus::Quantifier::Exists:
        v.verdict = v.conditionSatisfiable ? "Ok" : "No";
        break;
      case litmus::Quantifier::NotExists:
        v.verdict = v.conditionSatisfiable ? "No" : "Ok";
        break;
      case litmus::Quantifier::Forall:
        v.verdict = forall_ok ? "Ok" : "No";
        break;
    }
    return v;
}

bool
Checker::allows(const litmus::Test &test) const
{
    return check(test).conditionSatisfiable;
}

SoundnessReport
checkSoundness(const Verdict &verdict,
               const litmus::Histogram &observed)
{
    SoundnessReport report;
    for (const auto &[key, count] : observed.counts()) {
        if (count == 0)
            continue;
        if (!verdict.allowedKeys.count(key)) {
            report.sound = false;
            report.violations.push_back(key);
        }
    }
    return report;
}

} // namespace gpulitmus::model
