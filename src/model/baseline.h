/**
 * @file
 * The comparison baseline of Sec. 6: an axiomatic rendering of the
 * operational Nvidia model of Sorensen et al. (ICS 2013).
 *
 * In that model, fences drain the reordering buffers of the issuing
 * core regardless of scope, so a membar.cta provides global ordering.
 * The paper shows this is unsound w.r.t. hardware: inter-CTA
 * lb+membar.ctas is forbidden by the model but observed 586 times on
 * GTX Titan (and 19 times on GTX 660) per 100k runs.
 */

#ifndef GPULITMUS_MODEL_BASELINE_H
#define GPULITMUS_MODEL_BASELINE_H

#include <string>

#include "cat/cat.h"

namespace gpulitmus::model {

/** Source of the operational-baseline model. */
std::string operationalBaselineSource();

/** Parsed singleton. */
const cat::Model &operationalBaseline();

} // namespace gpulitmus::model

#endif // GPULITMUS_MODEL_BASELINE_H
