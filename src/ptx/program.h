/**
 * @file
 * Thread programs and whole-test programs.
 */

#ifndef GPULITMUS_PTX_PROGRAM_H
#define GPULITMUS_PTX_PROGRAM_H

#include <map>
#include <string>
#include <vector>

#include "ptx/instruction.h"

namespace gpulitmus::ptx {

/**
 * The straight-line (plus labels/branches) instruction sequence one
 * thread executes.
 */
struct ThreadProgram
{
    std::vector<Instruction> instrs;
    std::map<std::string, int> labels; ///< label -> instruction index

    /** Append an instruction; returns its index. */
    int append(Instruction instr);

    /** Bind a label to the next appended instruction. At most one
     * label per instruction (fatal otherwise): the printers render
     * labels as a single "name:" prefix, so a second binding could
     * not survive a print/reparse round trip. */
    void label(const std::string &name);

    /** Resolve a label or panic. */
    int labelTarget(const std::string &name) const;

    /** Multi-line canonical text. */
    std::string str() const;
};

/** All threads of a litmus test. */
struct Program
{
    std::vector<ThreadProgram> threads;

    int numThreads() const { return static_cast<int>(threads.size()); }

    /** Total instruction count across threads. */
    int numInstructions() const;

    /** Side-by-side columns, litmus style. */
    std::string str() const;
};

} // namespace gpulitmus::ptx

#endif // GPULITMUS_PTX_PROGRAM_H
