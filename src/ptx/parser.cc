#include "ptx/parser.h"

#include <cctype>

#include "common/log.h"
#include "common/strutil.h"

namespace gpulitmus::ptx {

namespace {

bool
isRegisterName(const std::string &s)
{
    if (s.empty())
        return false;
    char c = s[0];
    if (c != 'r' && c != 'p' && c != '%')
        return false;
    // Register names: r0, r12, p, p4, %r1...
    std::string body = c == '%' ? s.substr(1) : s;
    if (body.empty())
        return false;
    if (body[0] != 'r' && body[0] != 'p')
        return false;
    for (size_t i = 1; i < body.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(body[i])))
            return false;
    }
    return true;
}

Operand
parseOperand(const std::string &tok)
{
    std::string t = trim(tok);
    if (auto v = parseInt(t))
        return Operand::makeImm(*v);
    if (isRegisterName(t))
        return Operand::makeReg(t[0] == '%' ? t.substr(1) : t);
    return Operand::makeSym(t);
}

/** Parse "[x]" or "[r1]" into an operand; empty optional otherwise. */
std::optional<Operand>
parseAddrOperand(const std::string &tok)
{
    std::string t = trim(tok);
    if (t.size() < 3 || t.front() != '[' || t.back() != ']')
        return std::nullopt;
    return parseOperand(t.substr(1, t.size() - 2));
}

std::optional<DataType>
parseType(const std::string &seg)
{
    if (seg == "s32") return DataType::S32;
    if (seg == "u32") return DataType::U32;
    if (seg == "b32") return DataType::B32;
    if (seg == "s64") return DataType::S64;
    if (seg == "u64") return DataType::U64;
    if (seg == "b64") return DataType::B64;
    if (seg == "pred") return DataType::Pred;
    return std::nullopt;
}

/** Split "ld.global.cg.s32" into dot-separated segments. */
std::vector<std::string>
segments(const std::string &mnemonic)
{
    return split(mnemonic, '.');
}

bool
fail(ParseError *error, const std::string &msg)
{
    if (error)
        error->message = msg;
    return false;
}

/**
 * Decode the mnemonic (first whitespace token) into opcode plus
 * modifiers. Returns false with a diagnostic on failure.
 */
bool
decodeMnemonic(const std::string &mnemonic, Instruction &instr,
               ParseError *error)
{
    auto segs = segments(mnemonic);
    if (segs.empty())
        return fail(error, "empty mnemonic");

    const std::string &head = segs[0];
    size_t next = 1;

    if (head == "ld") {
        instr.op = Opcode::Ld;
    } else if (head == "st") {
        instr.op = Opcode::St;
    } else if (head == "atom") {
        if (segs.size() < 2)
            return fail(error, "atom needs a sub-operation");
        // Optional scope/space segments may precede the sub-op in real
        // PTX (atom.global.cas); scan for the sub-op.
        bool found = false;
        for (size_t i = 1; i < segs.size(); ++i) {
            if (segs[i] == "cas") { instr.op = Opcode::AtomCas; }
            else if (segs[i] == "exch") { instr.op = Opcode::AtomExch; }
            else if (segs[i] == "inc") { instr.op = Opcode::AtomInc; }
            else if (segs[i] == "add") { instr.op = Opcode::AtomAdd; }
            else
                continue;
            found = true;
            break;
        }
        if (!found)
            return fail(error, "unknown atom sub-operation in '" +
                                   mnemonic + "'");
        // PTX atomics default to the bit-type; atom.inc is unsigned.
        instr.type = instr.op == Opcode::AtomInc ? DataType::U32
                                                 : DataType::B32;
    } else if (head == "membar") {
        instr.op = Opcode::Membar;
    } else if (head == "mov") {
        instr.op = Opcode::Mov;
    } else if (head == "add") {
        instr.op = Opcode::Add;
    } else if (head == "sub") {
        instr.op = Opcode::Sub;
    } else if (head == "and") {
        instr.op = Opcode::And;
    } else if (head == "or") {
        instr.op = Opcode::Or;
    } else if (head == "xor") {
        instr.op = Opcode::Xor;
    } else if (head == "setp") {
        if (segs.size() < 2)
            return fail(error, "setp needs a comparison");
        if (segs[1] == "eq")
            instr.op = Opcode::SetpEq;
        else if (segs[1] == "ne")
            instr.op = Opcode::SetpNe;
        else
            return fail(error, "unsupported setp comparison '" +
                                   segs[1] + "'");
        next = 2;
    } else if (head == "cvt") {
        instr.op = Opcode::Cvt;
    } else if (head == "bra") {
        instr.op = Opcode::Bra;
    } else if (head == "nop") {
        instr.op = Opcode::Nop;
    } else {
        return fail(error, "unknown opcode '" + head + "'");
    }

    for (size_t i = next; i < segs.size(); ++i) {
        const std::string &seg = segs[i];
        if (seg == "cas" || seg == "exch" || seg == "inc" ||
            seg == "add" || seg == "eq" || seg == "ne") {
            continue; // already consumed as sub-op
        } else if (seg == "volatile") {
            instr.isVolatile = true;
        } else if (seg == "global") {
            instr.space = Space::Global;
        } else if (seg == "shared") {
            instr.space = Space::Shared;
        } else if (seg == "ca") {
            instr.cacheOp = CacheOp::Ca;
        } else if (seg == "cg") {
            instr.cacheOp = CacheOp::Cg;
        } else if (seg == "wb") {
            instr.cacheOp = CacheOp::Wb;
        } else if (seg == "cv") {
            instr.cacheOp = CacheOp::Cv;
        } else if (seg == "cta") {
            instr.scope = Scope::Cta;
        } else if (seg == "gl") {
            instr.scope = Scope::Gl;
        } else if (seg == "sys") {
            instr.scope = Scope::Sys;
        } else if (auto t = parseType(seg)) {
            instr.type = *t;
        } else {
            return fail(error,
                        "unknown mnemonic segment '" + seg + "'");
        }
    }
    return true;
}

/** Split the operand part on top-level commas (brackets protected). */
std::vector<std::string>
splitOperands(const std::string &text)
{
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (char c : text) {
        if (c == '[')
            ++depth;
        else if (c == ']')
            --depth;
        if (c == ',' && depth == 0) {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!trim(cur).empty())
        out.push_back(trim(cur));
    return out;
}

std::optional<Instruction>
parseInstructionInner(const std::string &text, ParseError *error)
{
    std::string line = trim(text);
    if (line.empty()) {
        if (error)
            error->message = "empty instruction";
        return std::nullopt;
    }

    Instruction instr;

    // Guard prefix: "@p", "@!p" or the paper's bare "p1 " / "!p4 ".
    if (line[0] == '@' || line[0] == '!') {
        bool at = line[0] == '@';
        size_t pos = at ? 1 : 0;
        bool neg = false;
        if (pos < line.size() && line[pos] == '!') {
            neg = true;
            ++pos;
        }
        if (!at && !neg) {
            // unreachable; bare '!' handled above
        }
        size_t end = line.find_first_of(" \t", pos);
        if (end == std::string::npos) {
            if (error)
                error->message = "guard with no instruction";
            return std::nullopt;
        }
        instr.hasGuard = true;
        instr.guardNegated = neg || (!at && line[0] == '!');
        instr.guardReg = line.substr(pos, end - pos);
        line = trim(line.substr(end));
    } else {
        // Bare guard: first token is a register name followed by more.
        size_t sp = line.find_first_of(" \t");
        if (sp != std::string::npos) {
            std::string first = line.substr(0, sp);
            if (isRegisterName(first)) {
                instr.hasGuard = true;
                instr.guardNegated = false;
                instr.guardReg = first;
                line = trim(line.substr(sp));
            }
        }
    }

    size_t sp = line.find_first_of(" \t");
    std::string mnemonic = sp == std::string::npos ? line
                                                   : line.substr(0, sp);
    std::string rest = sp == std::string::npos
                           ? ""
                           : trim(line.substr(sp));

    ParseError local;
    if (!decodeMnemonic(mnemonic, instr, error ? error : &local))
        return std::nullopt;

    auto ops = splitOperands(rest);
    auto bad = [&](const std::string &msg) -> std::optional<Instruction> {
        if (error)
            error->message = msg + " in '" + text + "'";
        return std::nullopt;
    };

    switch (instr.op) {
      case Opcode::Nop:
      case Opcode::Membar:
        break;
      case Opcode::Ld: {
        if (ops.size() != 2)
            return bad("ld expects 2 operands");
        instr.dst = ops[0];
        auto a = parseAddrOperand(ops[1]);
        if (!a)
            return bad("ld expects [addr]");
        instr.addr = *a;
        break;
      }
      case Opcode::St: {
        if (ops.size() != 2)
            return bad("st expects 2 operands");
        auto a = parseAddrOperand(ops[0]);
        if (!a)
            return bad("st expects [addr]");
        instr.addr = *a;
        instr.srcs.push_back(parseOperand(ops[1]));
        break;
      }
      case Opcode::AtomCas: {
        if (ops.size() != 4)
            return bad("atom.cas expects 4 operands");
        instr.dst = ops[0];
        auto a = parseAddrOperand(ops[1]);
        if (!a)
            return bad("atom.cas expects [addr]");
        instr.addr = *a;
        instr.srcs.push_back(parseOperand(ops[2]));
        instr.srcs.push_back(parseOperand(ops[3]));
        break;
      }
      case Opcode::AtomExch:
      case Opcode::AtomAdd: {
        if (ops.size() != 3)
            return bad("atom.exch/add expects 3 operands");
        instr.dst = ops[0];
        auto a = parseAddrOperand(ops[1]);
        if (!a)
            return bad("atom expects [addr]");
        instr.addr = *a;
        instr.srcs.push_back(parseOperand(ops[2]));
        break;
      }
      case Opcode::AtomInc: {
        if (ops.size() != 2)
            return bad("atom.inc expects 2 operands");
        instr.dst = ops[0];
        auto a = parseAddrOperand(ops[1]);
        if (!a)
            return bad("atom.inc expects [addr]");
        instr.addr = *a;
        break;
      }
      case Opcode::Mov:
      case Opcode::Cvt: {
        if (ops.size() != 2)
            return bad("mov/cvt expects 2 operands");
        instr.dst = ops[0];
        instr.srcs.push_back(parseOperand(ops[1]));
        break;
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::SetpEq:
      case Opcode::SetpNe: {
        if (ops.size() != 3)
            return bad("ALU op expects 3 operands");
        instr.dst = ops[0];
        instr.srcs.push_back(parseOperand(ops[1]));
        instr.srcs.push_back(parseOperand(ops[2]));
        break;
      }
      case Opcode::Bra: {
        if (ops.size() != 1)
            return bad("bra expects a label");
        instr.target = ops[0];
        break;
      }
    }
    return instr;
}

} // anonymous namespace

std::optional<Instruction>
parseInstruction(const std::string &text, ParseError *error,
                 int srcLine, int srcCol)
{
    auto instr = parseInstructionInner(text, error);
    if (!instr) {
        if (error) {
            error->line = srcLine;
            error->col = srcCol;
        }
        return std::nullopt;
    }
    instr->srcLine = srcLine;
    instr->srcCol = srcCol;
    return instr;
}

std::optional<ThreadProgram>
parseThread(const std::string &text, ParseError *error,
            const std::vector<int> *lineMap, int baseLine)
{
    ThreadProgram prog;
    auto rawLines = split(text, '\n');
    for (size_t ln = 0; ln < rawLines.size(); ++ln) {
        int fileLine =
            lineMap ? (ln < lineMap->size()
                           ? (*lineMap)[ln]
                           : 0)
                    : baseLine + static_cast<int>(ln);
        // Strip comments before splitting on ';': a "//" comments out
        // the rest of the physical line, including later statements.
        std::string lineText = rawLines[ln];
        auto comment = lineText.find("//");
        if (comment != std::string::npos)
            lineText = lineText.substr(0, comment);
        // Walk ';'-separated statements, tracking column offsets.
        size_t pos = 0;
        while (pos <= lineText.size()) {
            size_t semi = lineText.find(';', pos);
            size_t end =
                semi == std::string::npos ? lineText.size() : semi;
            std::string stmt = lineText.substr(pos, end - pos);
            size_t stmtStart = pos;
            pos = end + 1;
            size_t lead = stmt.find_first_not_of(" \t");
            if (lead == std::string::npos)
                continue;
            int col = static_cast<int>(stmtStart + lead) + 1;
            std::string line = trim(stmt);
            // Leading label "name:".
            auto colon = line.find(':');
            if (colon != std::string::npos) {
                std::string head = trim(line.substr(0, colon));
                bool plausible = !head.empty();
                for (char c : head) {
                    if (!std::isalnum(
                            static_cast<unsigned char>(c)) &&
                        c != '_')
                        plausible = false;
                }
                if (plausible) {
                    prog.label(head);
                    std::string after = line.substr(colon + 1);
                    size_t alead = after.find_first_not_of(" \t");
                    line = trim(after);
                    if (line.empty())
                        continue;
                    col += static_cast<int>(colon + 1 + alead);
                }
            }
            auto instr = parseInstruction(line, error, fileLine, col);
            if (!instr)
                return std::nullopt;
            prog.append(std::move(*instr));
        }
    }
    return prog;
}

} // namespace gpulitmus::ptx
