#include "ptx/types.h"

#include "common/log.h"

namespace gpulitmus::ptx {

std::string
toString(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::AtomCas: return "atom.cas";
      case Opcode::AtomExch: return "atom.exch";
      case Opcode::AtomInc: return "atom.inc";
      case Opcode::AtomAdd: return "atom.add";
      case Opcode::Membar: return "membar";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::SetpEq: return "setp.eq";
      case Opcode::SetpNe: return "setp.ne";
      case Opcode::Cvt: return "cvt";
      case Opcode::Bra: return "bra";
    }
    panic("unknown Opcode");
}

std::string
toString(CacheOp c)
{
    switch (c) {
      case CacheOp::None: return "";
      case CacheOp::Ca: return "ca";
      case CacheOp::Cg: return "cg";
      case CacheOp::Wb: return "wb";
      case CacheOp::Cv: return "cv";
    }
    panic("unknown CacheOp");
}

std::string
toString(Scope s)
{
    switch (s) {
      case Scope::Cta: return "cta";
      case Scope::Gl: return "gl";
      case Scope::Sys: return "sys";
    }
    panic("unknown Scope");
}

std::string
toString(Space s)
{
    switch (s) {
      case Space::Generic: return "generic";
      case Space::Global: return "global";
      case Space::Shared: return "shared";
    }
    panic("unknown Space");
}

std::string
toString(DataType t)
{
    switch (t) {
      case DataType::S32: return "s32";
      case DataType::U32: return "u32";
      case DataType::B32: return "b32";
      case DataType::S64: return "s64";
      case DataType::U64: return "u64";
      case DataType::B64: return "b64";
      case DataType::Pred: return "pred";
    }
    panic("unknown DataType");
}

bool
scopeAtLeast(Scope outer, Scope inner)
{
    return static_cast<int>(outer) >= static_cast<int>(inner);
}

} // namespace gpulitmus::ptx
