/**
 * @file
 * The PTX instruction representation used across the simulator, the
 * axiomatic engine, the mock assembler and the test generator.
 */

#ifndef GPULITMUS_PTX_INSTRUCTION_H
#define GPULITMUS_PTX_INSTRUCTION_H

#include <cstdint>
#include <string>
#include <vector>

#include "ptx/types.h"

namespace gpulitmus::ptx {

/**
 * An instruction operand: a register name, an immediate, or a symbolic
 * memory location (the paper's shorthand "st.cg [x],1" addresses the
 * litmus location x directly).
 */
struct Operand
{
    enum class Kind { None, Reg, Imm, Sym };

    Kind kind = Kind::None;
    std::string reg;   ///< register name when kind == Reg
    int64_t imm = 0;   ///< immediate value when kind == Imm
    std::string sym;   ///< location name when kind == Sym

    static Operand makeReg(std::string name);
    static Operand makeImm(int64_t value);
    static Operand makeSym(std::string name);

    bool isReg() const { return kind == Kind::Reg; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isSym() const { return kind == Kind::Sym; }
    bool isNone() const { return kind == Kind::None; }

    std::string str() const;
    bool operator==(const Operand &other) const = default;
};

/**
 * One PTX instruction. Guarded (predicated) execution is expressed by
 * the guard fields: "@p ld ..." executes only when register p is
 * non-zero; "@!p ..." only when p is zero.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    DataType type = DataType::S32;
    CacheOp cacheOp = CacheOp::None;
    Scope scope = Scope::Gl;        ///< membar / atom scope
    Space space = Space::Generic;   ///< declared state space, if any
    bool isVolatile = false;

    bool hasGuard = false;
    bool guardNegated = false;
    std::string guardReg;

    std::string dst;        ///< destination register (or predicate)
    Operand addr;           ///< memory operand for ld/st/atom
    std::vector<Operand> srcs; ///< value operands
    std::string target;     ///< branch target label for bra

    /**
     * 1-based source position in the file the instruction was parsed
     * from; 0 when built programmatically. Not part of the
     * instruction's identity: operator== ignores both fields, so a
     * built program still compares equal to its parsed round trip.
     */
    int srcLine = 0;
    int srcCol = 0;

    /** True for ld / st / atom.* (instructions that touch memory). */
    bool isMemAccess() const;
    /** True for atom.* (read-modify-write). */
    bool isAtomic() const;
    /** True if the instruction reads memory (ld or atom.*). */
    bool readsMemory() const;
    /** True if the instruction writes memory (st or atom.*). */
    bool writesMemory() const;
    /** True for membar. */
    bool isFence() const { return op == Opcode::Membar; }

    /** All register names this instruction reads (incl. guard). */
    std::vector<std::string> regsRead() const;
    /** Register name written, or empty. */
    std::string regWritten() const;

    /** Canonical text, e.g. "@!p0 ld.cg.s32 r1,[x]". */
    std::string str() const;

    /** Semantic equality; srcLine/srcCol are deliberately excluded. */
    bool operator==(const Instruction &other) const;
};

/** Convenience constructors for the instruction forms the paper uses. */
namespace build {

Instruction ld(std::string dst, Operand addr, CacheOp c = CacheOp::Cg);
Instruction ldVolatile(std::string dst, Operand addr);
Instruction st(Operand addr, Operand value, CacheOp c = CacheOp::Cg);
Instruction stVolatile(Operand addr, Operand value);
Instruction atomCas(std::string dst, Operand addr, Operand cmp,
                    Operand swap);
Instruction atomExch(std::string dst, Operand addr, Operand value);
Instruction atomInc(std::string dst, Operand addr);
Instruction membar(Scope s);
Instruction mov(std::string dst, Operand src);
Instruction add(std::string dst, Operand a, Operand b);
Instruction and_(std::string dst, Operand a, Operand b);
Instruction xor_(std::string dst, Operand a, Operand b);
Instruction cvt(std::string dst, Operand src);
Instruction setpEq(std::string dst, Operand a, Operand b);
Instruction bra(std::string label);

/** Attach a guard to an instruction ("@p" / "@!p"). */
Instruction guarded(std::string pred, bool negated, Instruction inner);

} // namespace build

} // namespace gpulitmus::ptx

#endif // GPULITMUS_PTX_INSTRUCTION_H
