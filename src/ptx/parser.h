/**
 * @file
 * Text parser for single PTX instructions and instruction sequences.
 *
 * Accepts both real PTX spellings ("ld.global.cg.s32 r1,[x]",
 * "@!p0 membar.gl") and the paper's figure shorthand ("ld.cg r1,[x]").
 * Labels are written "name:" on their own line or prefixed to an
 * instruction.
 */

#ifndef GPULITMUS_PTX_PARSER_H
#define GPULITMUS_PTX_PARSER_H

#include <optional>
#include <string>
#include <vector>

#include "ptx/program.h"

namespace gpulitmus::ptx {

/** Result of a parse attempt: the value or a diagnostic. */
struct ParseError
{
    std::string message;
    int line = 0; ///< 1-based source line of the failure, 0 if unknown
    int col = 0;  ///< 1-based source column, 0 if unknown
};

/**
 * Parse one instruction from text. Returns std::nullopt and fills
 * *error (when non-null) on failure. srcLine/srcCol, when non-zero,
 * are recorded on the parsed instruction and on any error.
 */
std::optional<Instruction> parseInstruction(const std::string &text,
                                            ParseError *error = nullptr,
                                            int srcLine = 0,
                                            int srcCol = 0);

/**
 * Parse a newline- or semicolon-separated instruction sequence into a
 * thread program, handling labels. Calls fatal() on malformed input
 * unless error is non-null.
 *
 * Parsed instructions carry 1-based srcLine/srcCol positions within
 * `text`. When `lineMap` is given, local line index i is translated
 * to (*lineMap)[i] instead (the litmus parser passes the file line of
 * each program-table row); otherwise lines count from `baseLine`.
 */
std::optional<ThreadProgram>
parseThread(const std::string &text, ParseError *error = nullptr,
            const std::vector<int> *lineMap = nullptr, int baseLine = 1);

} // namespace gpulitmus::ptx

#endif // GPULITMUS_PTX_PARSER_H
