/**
 * @file
 * Text parser for single PTX instructions and instruction sequences.
 *
 * Accepts both real PTX spellings ("ld.global.cg.s32 r1,[x]",
 * "@!p0 membar.gl") and the paper's figure shorthand ("ld.cg r1,[x]").
 * Labels are written "name:" on their own line or prefixed to an
 * instruction.
 */

#ifndef GPULITMUS_PTX_PARSER_H
#define GPULITMUS_PTX_PARSER_H

#include <optional>
#include <string>

#include "ptx/program.h"

namespace gpulitmus::ptx {

/** Result of a parse attempt: the value or a diagnostic. */
struct ParseError
{
    std::string message;
};

/**
 * Parse one instruction from text. Returns std::nullopt and fills
 * *error (when non-null) on failure.
 */
std::optional<Instruction> parseInstruction(const std::string &text,
                                            ParseError *error = nullptr);

/**
 * Parse a newline- or semicolon-separated instruction sequence into a
 * thread program, handling labels. Calls fatal() on malformed input
 * unless error is non-null.
 */
std::optional<ThreadProgram> parseThread(const std::string &text,
                                         ParseError *error = nullptr);

} // namespace gpulitmus::ptx

#endif // GPULITMUS_PTX_PARSER_H
