#include "ptx/instruction.h"

#include "common/log.h"
#include "common/strutil.h"

namespace gpulitmus::ptx {

Operand
Operand::makeReg(std::string name)
{
    Operand o;
    o.kind = Kind::Reg;
    o.reg = std::move(name);
    return o;
}

Operand
Operand::makeImm(int64_t value)
{
    Operand o;
    o.kind = Kind::Imm;
    o.imm = value;
    return o;
}

Operand
Operand::makeSym(std::string name)
{
    Operand o;
    o.kind = Kind::Sym;
    o.sym = std::move(name);
    return o;
}

std::string
Operand::str() const
{
    switch (kind) {
      case Kind::None: return "<none>";
      case Kind::Reg: return reg;
      case Kind::Imm: return std::to_string(imm);
      case Kind::Sym: return sym;
    }
    panic("unknown Operand kind");
}

bool
Instruction::isMemAccess() const
{
    switch (op) {
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::AtomCas:
      case Opcode::AtomExch:
      case Opcode::AtomInc:
      case Opcode::AtomAdd:
        return true;
      default:
        return false;
    }
}

bool
Instruction::isAtomic() const
{
    switch (op) {
      case Opcode::AtomCas:
      case Opcode::AtomExch:
      case Opcode::AtomInc:
      case Opcode::AtomAdd:
        return true;
      default:
        return false;
    }
}

bool
Instruction::readsMemory() const
{
    return op == Opcode::Ld || isAtomic();
}

bool
Instruction::writesMemory() const
{
    return op == Opcode::St || isAtomic();
}

std::vector<std::string>
Instruction::regsRead() const
{
    std::vector<std::string> regs;
    if (hasGuard)
        regs.push_back(guardReg);
    if (addr.isReg())
        regs.push_back(addr.reg);
    for (const auto &s : srcs) {
        if (s.isReg())
            regs.push_back(s.reg);
    }
    return regs;
}

std::string
Instruction::regWritten() const
{
    return dst;
}

bool
Instruction::operator==(const Instruction &other) const
{
    return op == other.op && type == other.type &&
           cacheOp == other.cacheOp && scope == other.scope &&
           space == other.space && isVolatile == other.isVolatile &&
           hasGuard == other.hasGuard &&
           guardNegated == other.guardNegated &&
           guardReg == other.guardReg && dst == other.dst &&
           addr == other.addr && srcs == other.srcs &&
           target == other.target;
}

std::string
Instruction::str() const
{
    std::string out;
    if (hasGuard) {
        out += "@";
        if (guardNegated)
            out += "!";
        out += guardReg + " ";
    }

    std::string mnemonic = toString(op);
    if (isVolatile)
        mnemonic += ".volatile";
    if (op == Opcode::Membar) {
        mnemonic += "." + toString(scope);
    } else if (isMemAccess()) {
        if (space != Space::Generic)
            mnemonic += "." + toString(space);
        if (cacheOp != CacheOp::None)
            mnemonic += "." + toString(cacheOp);
        mnemonic += "." + toString(type);
    } else if (op != Opcode::Bra && op != Opcode::Nop) {
        mnemonic += "." + toString(type);
    }
    out += mnemonic;

    switch (op) {
      case Opcode::Nop:
      case Opcode::Membar:
        break;
      case Opcode::Ld:
        out += " " + dst + ",[" + addr.str() + "]";
        break;
      case Opcode::St:
        out += " [" + addr.str() + "]," + srcs.at(0).str();
        break;
      case Opcode::AtomCas:
        out += " " + dst + ",[" + addr.str() + "]," + srcs.at(0).str() +
               "," + srcs.at(1).str();
        break;
      case Opcode::AtomExch:
      case Opcode::AtomAdd:
        out += " " + dst + ",[" + addr.str() + "]," + srcs.at(0).str();
        break;
      case Opcode::AtomInc:
        out += " " + dst + ",[" + addr.str() + "]";
        break;
      case Opcode::Mov:
      case Opcode::Cvt:
        out += " " + dst + "," + srcs.at(0).str();
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::SetpEq:
      case Opcode::SetpNe:
        out += " " + dst + "," + srcs.at(0).str() + "," +
               srcs.at(1).str();
        break;
      case Opcode::Bra:
        out += " " + target;
        break;
    }
    return out;
}

namespace build {

Instruction
ld(std::string dst, Operand addr, CacheOp c)
{
    Instruction i;
    i.op = Opcode::Ld;
    i.dst = std::move(dst);
    i.addr = std::move(addr);
    i.cacheOp = c;
    return i;
}

Instruction
ldVolatile(std::string dst, Operand addr)
{
    Instruction i = ld(std::move(dst), std::move(addr), CacheOp::None);
    i.isVolatile = true;
    return i;
}

Instruction
st(Operand addr, Operand value, CacheOp c)
{
    Instruction i;
    i.op = Opcode::St;
    i.addr = std::move(addr);
    i.srcs.push_back(std::move(value));
    i.cacheOp = c;
    return i;
}

Instruction
stVolatile(Operand addr, Operand value)
{
    Instruction i = st(std::move(addr), std::move(value), CacheOp::None);
    i.isVolatile = true;
    return i;
}

Instruction
atomCas(std::string dst, Operand addr, Operand cmp, Operand swap)
{
    Instruction i;
    i.op = Opcode::AtomCas;
    i.dst = std::move(dst);
    i.addr = std::move(addr);
    i.srcs.push_back(std::move(cmp));
    i.srcs.push_back(std::move(swap));
    i.type = DataType::B32;
    return i;
}

Instruction
atomExch(std::string dst, Operand addr, Operand value)
{
    Instruction i;
    i.op = Opcode::AtomExch;
    i.dst = std::move(dst);
    i.addr = std::move(addr);
    i.srcs.push_back(std::move(value));
    i.type = DataType::B32;
    return i;
}

Instruction
atomInc(std::string dst, Operand addr)
{
    Instruction i;
    i.op = Opcode::AtomInc;
    i.dst = std::move(dst);
    i.addr = std::move(addr);
    i.type = DataType::U32;
    return i;
}

Instruction
membar(Scope s)
{
    Instruction i;
    i.op = Opcode::Membar;
    i.scope = s;
    return i;
}

Instruction
mov(std::string dst, Operand src)
{
    Instruction i;
    i.op = Opcode::Mov;
    i.dst = std::move(dst);
    i.srcs.push_back(std::move(src));
    return i;
}

namespace {

Instruction
alu(Opcode op, std::string dst, Operand a, Operand b)
{
    Instruction i;
    i.op = op;
    i.dst = std::move(dst);
    i.srcs.push_back(std::move(a));
    i.srcs.push_back(std::move(b));
    return i;
}

} // anonymous namespace

Instruction
add(std::string dst, Operand a, Operand b)
{
    return alu(Opcode::Add, std::move(dst), std::move(a), std::move(b));
}

Instruction
and_(std::string dst, Operand a, Operand b)
{
    Instruction i =
        alu(Opcode::And, std::move(dst), std::move(a), std::move(b));
    i.type = DataType::B32;
    return i;
}

Instruction
xor_(std::string dst, Operand a, Operand b)
{
    Instruction i =
        alu(Opcode::Xor, std::move(dst), std::move(a), std::move(b));
    i.type = DataType::B32;
    return i;
}

Instruction
cvt(std::string dst, Operand src)
{
    Instruction i;
    i.op = Opcode::Cvt;
    i.dst = std::move(dst);
    i.srcs.push_back(std::move(src));
    i.type = DataType::U64;
    return i;
}

Instruction
setpEq(std::string dst, Operand a, Operand b)
{
    Instruction i =
        alu(Opcode::SetpEq, std::move(dst), std::move(a), std::move(b));
    return i;
}

Instruction
bra(std::string label)
{
    Instruction i;
    i.op = Opcode::Bra;
    i.target = std::move(label);
    return i;
}

Instruction
guarded(std::string pred, bool negated, Instruction inner)
{
    inner.hasGuard = true;
    inner.guardReg = std::move(pred);
    inner.guardNegated = negated;
    return inner;
}

} // namespace build

} // namespace gpulitmus::ptx
