#include "ptx/program.h"

#include <algorithm>

#include "common/log.h"

namespace gpulitmus::ptx {

int
ThreadProgram::append(Instruction instr)
{
    instrs.push_back(std::move(instr));
    return static_cast<int>(instrs.size()) - 1;
}

void
ThreadProgram::label(const std::string &name)
{
    if (labels.count(name))
        fatal("duplicate label '%s'", name.c_str());
    // One label per instruction: the printers render a label as a
    // single "name:" prefix, so a second binding to the same index
    // would be silently dropped on a print/reparse round trip.
    // Reject it here instead.
    int idx = static_cast<int>(instrs.size());
    for (const auto &[other, other_idx] : labels) {
        if (other_idx == idx)
            fatal("labels '%s' and '%s' bind the same instruction",
                  other.c_str(), name.c_str());
    }
    labels[name] = idx;
}

int
ThreadProgram::labelTarget(const std::string &name) const
{
    auto it = labels.find(name);
    if (it == labels.end())
        fatal("undefined label '%s'", name.c_str());
    return it->second;
}

std::string
ThreadProgram::str() const
{
    std::string out;
    std::map<int, std::string> by_index;
    for (const auto &[name, idx] : labels)
        by_index[idx] = name;
    for (size_t i = 0; i < instrs.size(); ++i) {
        auto it = by_index.find(static_cast<int>(i));
        if (it != by_index.end())
            out += it->second + ":\n";
        out += "  " + instrs[i].str() + "\n";
    }
    return out;
}

int
Program::numInstructions() const
{
    int n = 0;
    for (const auto &t : threads)
        n += static_cast<int>(t.instrs.size());
    return n;
}

std::string
Program::str() const
{
    // Render threads as side-by-side columns. Labels print as a
    // "name:" prefix on the instruction they bind to (trailing
    // labels as a row of their own), which is exactly the form
    // ptx::parseThread accepts — so labelled programs survive the
    // print/reparse round trip like straight-line ones do.
    std::vector<std::vector<std::string>> cols;
    size_t max_rows = 0;
    for (size_t t = 0; t < threads.size(); ++t) {
        std::map<int, std::string> by_index;
        for (const auto &[name, idx] : threads[t].labels)
            by_index[idx] = name;
        std::vector<std::string> col;
        col.push_back("T" + std::to_string(t));
        for (size_t i = 0; i < threads[t].instrs.size(); ++i) {
            std::string cell = threads[t].instrs[i].str();
            auto it = by_index.find(static_cast<int>(i));
            if (it != by_index.end())
                cell = it->second + ": " + cell;
            col.push_back(std::move(cell));
        }
        auto trailing =
            by_index.find(static_cast<int>(threads[t].instrs.size()));
        if (trailing != by_index.end())
            col.push_back(trailing->second + ":");
        max_rows = std::max(max_rows, col.size());
        cols.push_back(std::move(col));
    }
    std::vector<size_t> widths(cols.size(), 0);
    for (size_t c = 0; c < cols.size(); ++c)
        for (const auto &s : cols[c])
            widths[c] = std::max(widths[c], s.size());

    std::string out;
    for (size_t r = 0; r < max_rows; ++r) {
        for (size_t c = 0; c < cols.size(); ++c) {
            std::string cell = r < cols[c].size() ? cols[c][r] : "";
            out += " " + cell +
                   std::string(widths[c] - cell.size(), ' ');
            out += c + 1 < cols.size() ? " |" : " ;";
        }
        out += "\n";
    }
    return out;
}

} // namespace gpulitmus::ptx
