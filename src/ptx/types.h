/**
 * @file
 * Core enumerations for the PTX subset modelled in this library.
 *
 * The subset follows Sec. 2.3 of the paper: loads (ld), stores (st),
 * ALU operations (add, and, xor, or, mov, cvt), fences (membar)
 * parameterised by scope, unconditional jumps (bra), predicate-setting
 * comparisons (setp), predicated instructions, read-modify-writes
 * (atom.cas / atom.exch / atom.inc / atom.add), volatile accesses, and
 * cache operators (.ca targets the L1, .cg targets the L2).
 */

#ifndef GPULITMUS_PTX_TYPES_H
#define GPULITMUS_PTX_TYPES_H

#include <string>

namespace gpulitmus::ptx {

/** Instruction opcodes of the modelled PTX fragment. */
enum class Opcode {
    Nop,
    Ld,       ///< load from memory
    St,       ///< store to memory
    AtomCas,  ///< atomic compare-and-swap
    AtomExch, ///< atomic exchange
    AtomInc,  ///< atomic increment (CUDA atomicAdd(..., 1))
    AtomAdd,  ///< atomic add
    Membar,   ///< memory fence, parameterised by scope
    Mov,      ///< register move / load immediate
    Add,      ///< integer add
    Sub,      ///< integer subtract
    And,      ///< bitwise and
    Or,       ///< bitwise or
    Xor,      ///< bitwise xor
    SetpEq,   ///< set predicate if equal
    SetpNe,   ///< set predicate if not equal
    Cvt,      ///< width conversion (semantically a move here)
    Bra,      ///< unconditional (possibly predicated) branch
};

/**
 * PTX cache operators (PTX ISA Chap. 8.7). Only the ones the paper
 * exercises are modelled.
 */
enum class CacheOp {
    None, ///< no explicit operator; CUDA default for loads is .ca
    Ca,   ///< cache at all levels (L1 and L2); written ".ca"
    Cg,   ///< cache global: bypass L1, cache at L2; written ".cg"
    Wb,   ///< write-back store (default store semantics)
    Cv,   ///< consider cached value stale, fetch volatile
};

/**
 * Fence / membar scopes, from narrowest to widest: .cta orders within
 * a CTA, .gl within the GPU, .sys with the host.
 */
enum class Scope {
    Cta,
    Gl,
    Sys,
};

/** Memory state spaces relevant to the paper's tests. */
enum class Space {
    Generic, ///< not statically known; resolved by address at run time
    Global,  ///< device global memory (L1/L2-cached)
    Shared,  ///< per-SM scratchpad shared within a CTA
};

/** Type specifiers; semantics here are width-agnostic 64-bit ints. */
enum class DataType {
    S32,
    U32,
    B32,
    S64,
    U64,
    B64,
    Pred,
};

/** Printable mnemonic fragment for each enum. */
std::string toString(Opcode op);
std::string toString(CacheOp c);
std::string toString(Scope s);
std::string toString(Space s);
std::string toString(DataType t);

/** Scope containment: true if outer is at least as wide as inner. */
bool scopeAtLeast(Scope outer, Scope inner);

} // namespace gpulitmus::ptx

#endif // GPULITMUS_PTX_TYPES_H
