/**
 * @file
 * The batched campaign engine: the paper's methodology as a first-class
 * API.
 *
 * Every figure and table of the paper is a *sweep* — the same litmus
 * test re-run across a (chip × incantation-column × iterations) grid.
 * A Campaign describes such a grid declaratively; an Engine executes
 * its jobs on a worker pool and feeds the results, in job order, to
 * pluggable sinks.
 *
 * Determinism is the design center: each Job derives its RNG seed
 * purely from its own key (a splitmix64-mixed hash of base seed, chip,
 * test text and incantation column), never from scheduling, so the
 * histograms are bit-identical at any thread count — and identical to
 * what the single-shot `harness::run` wrapper produces for the same
 * cell.
 *
 * The Engine memoises results in an in-process cache keyed by job
 * hash, so a sweep that revisits a cell (as the Tab. 2 summary does)
 * computes it once.
 *
 * runJob additionally keeps one *compiled machine* per (chip, test)
 * pair per worker thread: the compiled program depends on neither
 * the incantation column nor the iteration count, so a grid that
 * sweeps 16 columns re-parameterises one machine (Machine::
 * setOptions) instead of recompiling sixteen times. Bit-identical to
 * recomputation — the RNG stream is derived from the job key, never
 * from machine identity.
 */

#ifndef GPULITMUS_HARNESS_CAMPAIGN_H
#define GPULITMUS_HARNESS_CAMPAIGN_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/table.h"
#include "harness/batch.h"
#include "litmus/outcome.h"
#include "sim/chip.h"
#include "sim/machine.h"

namespace gpulitmus::serve {
class ResultStore; // serve/store.h — only campaign.cc needs the type
}

namespace gpulitmus::harness {

// ---- single-shot interface (formerly harness/runner.h) --------------

/** Parameters of one simulated cell (Sec. 4.2/4.3). */
struct RunConfig
{
    /** Number of iterations; the paper uses 100k. */
    uint64_t iterations = 100000;
    /** Base RNG seed; every run is reproducible. The per-cell stream
     * is derived from this plus the chip/test/incantation key. */
    uint64_t seed = 0x6c69746d7573ULL; // "litmus"
    /** Incantation combination (Sec. 4.3). */
    sim::Incantations inc = sim::Incantations::all();
    /** Per-iteration machine limits. */
    int maxMicroSteps = 4000;
};

/**
 * Iteration count from the GPULITMUS_ITERS environment variable, or
 * the paper's 100k when unset. Benchmarks use this so CI can dial the
 * runtime down.
 */
uint64_t defaultIterations();

/** Run a test on a chip; returns the full histogram. Thin wrapper
 * over a one-job campaign: the cell is bit-identical — same
 * splitmix64-derived RNG stream — to the same cell inside a batched,
 * multi-threaded sweep. */
litmus::Histogram run(const sim::ChipProfile &chip,
                      const litmus::Test &test,
                      const RunConfig &config = {});

/** Shorthand: number of runs whose final state satisfied the
 * condition body, normalised to per-100k ("obs/100k"). */
uint64_t observePer100k(const sim::ChipProfile &chip,
                        const litmus::Test &test,
                        const RunConfig &config = {});

/** splitmix64 finaliser (Steele, Lea & Flood): a full-avalanche 64-bit
 * mix used to derive per-job seeds and hash job keys. */
uint64_t splitmix64(uint64_t x);

/** Backend id of the operational simulator — the default engine every
 * job names unless redirected (see eval/backend.h for the others). */
inline constexpr const char *kSimBackend = "sim";

/** Backend id of the exhaustive schedule explorer (mc/explorer.h):
 * the same machine as kSimBackend, enumerated instead of sampled. */
inline constexpr const char *kMcBackend = "mc";

/**
 * Worker count from the GPULITMUS_JOBS environment variable, or the
 * hardware concurrency when unset. Benchmarks and the CLI use this so
 * CI can dial parallelism up or down.
 */
int defaultJobs();

/**
 * Parallel-exploration width for mc jobs, from the
 * GPULITMUS_MC_SHARDS environment variable; 1 (the sequential
 * explorer) when unset. Committed results are shard-count invariant
 * (see ExploreOptions::shards), but the budget pool scales with the
 * width, so this is a result-shaping axis, not a tuning knob.
 */
int defaultShards();

/**
 * One cell of a sweep: evaluate `test` under the engine named by
 * `backend`. For the simulator backend that means running it on
 * `chip` under `inc` for `iterations` runs; axiomatic backends (see
 * eval/backend.h) evaluate the test against a memory model and ignore
 * the simulation axes. Self-contained (owns copies of the chip
 * profile and the test) so jobs can outlive whatever built them and
 * run on any worker thread.
 */
struct Job
{
    /** Which engine evaluates this cell: kSimBackend (the default),
     * or any id eval::backendByName resolves ("ptx", "baseline",
     * a .cat file path, ...). harness::Engine executes sim jobs only;
     * mixed batches go through eval::Engine. */
    std::string backend = kSimBackend;

    sim::ChipProfile chip;
    litmus::Test test;
    sim::Incantations inc = sim::Incantations::all();
    uint64_t iterations = 100000;
    /** Base seed; the RNG stream is derived from key(), not used raw. */
    uint64_t seed = 0x6c69746d7573ULL; // "litmus"
    int maxMicroSteps = 4000;
    /** Parallel-exploration width (mc jobs only; sim/model jobs
     * ignore it). Initialised from defaultShards(). Part of the
     * cache identity when > 1, because the scaled budget pool can
     * upgrade a bounded verdict to complete. */
    int shards = defaultShards();
    /** Worker threads for a sharded exploration; 0 = auto. Wall-clock
     * only (results are thread-count invariant), so it is excluded
     * from key()/cacheKey(). The engines set it from the
     * pool-sharing policy (harness::intraJobThreads) so job-level and
     * intra-job parallelism share one thread budget. */
    int shardThreads = 0;
    /** Display label for sinks; defaults to "<test>@<chip>" when empty. */
    std::string label;

    static Job fromConfig(const sim::ChipProfile &chip,
                          const litmus::Test &test,
                          const RunConfig &config);

    bool isSim() const { return backend == kSimBackend; }
    /** Exhaustive exploration of the same machine: `iterations`
     * doubles as the replay budget (see eval::McBackend). */
    bool isMc() const { return backend == kMcBackend; }

    /**
     * Identity of the evaluation. For sim jobs this is the RNG
     * stream: a splitmix64-mixed hash of base seed, chip short name,
     * test text and incantation column — exactly the PR-1 derivation,
     * so sim-only sweeps stay bit-identical. It deliberately excludes
     * the iteration count so a longer run of the same cell extends
     * the shorter run's stream instead of resampling it. Exploration
     * (mc) jobs key on (backend, chip, test, incantation) — the seed
     * axis is excluded because the search is deterministic. For model
     * backends the result depends only on (backend, test): the chip,
     * incantation, seed and iteration axes are excluded so a grid
     * sweep checks each (backend, test) pair once.
     */
    uint64_t key() const;

    /** Seed actually fed to the xoshiro generator (sim jobs). */
    uint64_t derivedSeed() const;

    /** Cache identity: key() plus, for sim and mc jobs, iterations
     * (the mc replay budget) and machine limits. */
    uint64_t cacheKey() const;

    /** label, or "<test>@<chip>" ("<test>@<chip>#mc" for mc jobs,
     * "<test>#<backend>" for model jobs) when unset. */
    std::string displayLabel() const;
};

/** Result of one job: the full histogram plus provenance. */
struct JobResult
{
    /** The job as submitted (shared so histograms, which reference
     * their test, stay valid however results are copied around). */
    std::shared_ptr<const Job> job;
    litmus::Histogram hist;
    /** Observations normalised to per-100k, as the paper reports. */
    uint64_t observedPer100k = 0;
    /** True when the engine served this cell from its cache. */
    bool fromCache = false;
    /** True when the persistent result store answered this cell
     * (EngineOptions::store) without simulating. */
    bool fromStore = false;
    /** Wall-clock of the simulation (0 for cache hits). */
    double millis = 0.0;

    const sim::ChipProfile &chip() const { return job->chip; }
    std::string label() const { return job->displayLabel(); }
    int column() const { return job->inc.column(); }
};

/** Execute one job synchronously on the calling thread. This is the
 * single source of truth for how a cell is simulated; `harness::run`
 * and the Engine's workers both call it. */
JobResult runJob(Job job);

/**
 * Streaming sink interface. The Engine delivers results *in job
 * order* after the pool drains, so sink output is deterministic at any
 * thread count.
 */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;
    virtual void add(const JobResult &result) = 0;
};

/**
 * Renders sweep results as a fixed-width table (common/table). Rows
 * and columns are chosen by caller-supplied key functions; cells are
 * obs/100k. First-seen order is preserved for both axes.
 */
class TableSink : public ResultSink
{
  public:
    using KeyFn = std::function<std::string(const JobResult &)>;

    TableSink(std::string corner, KeyFn row_of, KeyFn col_of);

    void add(const JobResult &result) override;

    /** Assemble the table from everything added so far. */
    Table render() const;

    // Common axis key functions.
    static KeyFn byChip();   ///< chip short name
    static KeyFn byColumn(); ///< Tab. 6 incantation column
    static KeyFn byLabel();  ///< job display label

  private:
    std::string corner_;
    KeyFn rowOf_, colOf_;
    std::vector<std::string> rowOrder_, colOrder_;
    std::map<std::string, std::map<std::string, std::string>> cells_;
};

/**
 * Render one simulated cell as a JSON object — the one schema shared
 * by harness::JsonSink and the eval layer's sinks, so BENCH artifacts
 * and `--json` outputs cannot drift apart.
 */
std::string simCellJson(const Job &job, const litmus::Histogram &hist,
                        uint64_t observed_per_100k, bool from_cache,
                        double millis);

/**
 * Writes results as a JSON array, one object per job, for machine
 * consumption (bench trajectory tracking, dashboards). Accumulates on
 * add(); writeTo()/writeFile() emit the document.
 */
class JsonSink : public ResultSink
{
  public:
    void add(const JobResult &result) override;

    void writeTo(std::ostream &os) const;
    bool writeFile(const std::string &path) const;
    size_t size() const { return entries_.size(); }

  private:
    std::vector<std::string> entries_; ///< pre-rendered JSON objects
};

/** Progress callback: (computed jobs finished so far, total jobs to
 * compute, the result that just finished). Cells served from the
 * cache are not reported — the callback tracks simulation work, not
 * deliveries. Invoked from worker threads as jobs complete;
 * completion order is nondeterministic, use sinks for ordered
 * output. */
using ProgressFn =
    std::function<void(size_t done, size_t total, const JobResult &)>;

struct EngineOptions
{
    /** Worker threads; 0 means defaultJobs() (GPULITMUS_JOBS). */
    int threads = 0;
    /** Serve repeated cells from the in-process cache. */
    bool cache = true;
    /** Optional persistent result store (serve/store.h): consulted on
     * every cache miss before simulating, and fed every computed
     * result. Not owned; must outlive the engine. */
    serve::ResultStore *store = nullptr;
};

/**
 * Shards a batch of simulation jobs across a worker pool (built on
 * the generic batch core in batch.h). Results come back in job order
 * regardless of scheduling; repeated cells within and across run()
 * calls are computed once (per Engine) when caching is on. Jobs
 * naming a non-sim backend are a fatal error here — mixed-backend
 * batches go through eval::Engine.
 */
class Engine
{
  public:
    explicit Engine(EngineOptions opts = {});

    /** Execute all jobs; blocks until done. Results are delivered to
     * the sinks in job order, then returned. */
    std::vector<JobResult> run(const std::vector<Job> &jobs,
                               const std::vector<ResultSink *> &sinks = {},
                               ProgressFn progress = nullptr);

    int threads() const { return threads_; }
    /** Cells served from cache over this Engine's lifetime. */
    uint64_t cacheHits() const { return cache_.hits(); }
    size_t cacheSize() const { return cache_.size(); }
    void clearCache() { cache_.clear(); }

  private:
    int threads_ = 1;
    bool cacheEnabled_ = true;
    serve::ResultStore *store_ = nullptr;
    BatchCache<JobResult> cache_;
};

/**
 * Declarative sweep builder. The job list is the cross product
 * tests × chips × incantations × backends (each axis defaulting to a
 * singleton: the Titan, Incantations::all(), the simulator), plus any
 * explicitly add()ed jobs, in row-major order (test outermost,
 * backend innermost).
 */
class Campaign
{
  public:
    Campaign() = default;

    // ---- base parameters (apply to every grid job) -----------------
    Campaign &iterations(uint64_t n);
    Campaign &seed(uint64_t s);
    Campaign &maxMicroSteps(int n);
    /** Adopt iterations/seed/incantation/limits from a RunConfig. */
    Campaign &base(const RunConfig &config);

    // ---- grid axes --------------------------------------------------
    Campaign &overChips(const std::vector<sim::ChipProfile> &chips);
    /** Chips by registry short name ("Titan", "HD7970", ...). */
    Campaign &overChips(const std::vector<std::string> &short_names);
    /** Tab. 6 incantation columns lo..hi inclusive (1..16). */
    Campaign &overColumns(int lo, int hi);
    Campaign &overIncantations(const std::vector<sim::Incantations> &incs);
    /** Backend ids for the innermost grid axis — kSimBackend and/or
     * anything eval::backendByName resolves. A grid that mixes "sim"
     * with model backends pairs every simulated cell with its model
     * evaluations (run it through eval::Engine). */
    Campaign &overBackends(const std::vector<std::string> &backends);
    Campaign &overTests(const std::vector<litmus::Test> &tests);
    /** Add one test to the test axis, with an explicit label. */
    Campaign &test(const litmus::Test &t, const std::string &label = "");
    /**
     * Add a registry scenario to the test axis by spec
     * ("scenario:<name>[,k=v...]", scenario/registry.h). The
     * scenario's recommended micro-step cap (spin-loop headroom) is
     * applied to its grid jobs when it exceeds the campaign base.
     * Unknown names/params are fatal; use scenario::buildSpec
     * directly for recoverable validation.
     */
    Campaign &scenario(const std::string &spec);
    /** scenario() over a list of specs. */
    Campaign &overScenarios(const std::vector<std::string> &specs);

    /** Append a fully-specified job outside the grid. */
    Campaign &add(Job job);

    /** Materialise the job list. */
    std::vector<Job> jobs() const;

    /** Build the jobs and run them on an engine. */
    std::vector<JobResult> run(Engine &engine,
                               const std::vector<ResultSink *> &sinks = {},
                               ProgressFn progress = nullptr) const;
    /** Convenience: run on a throwaway default engine. */
    std::vector<JobResult> run(const std::vector<ResultSink *> &sinks = {},
                               ProgressFn progress = nullptr) const;

  private:
    struct LabelledTest
    {
        litmus::Test test;
        std::string label;
        /** Per-test micro-step floor (0: campaign base). Registry
         * scenarios with spin loops raise it. */
        int minMicroSteps = 0;
    };

    uint64_t iterations_ = 100000;
    uint64_t seed_ = 0x6c69746d7573ULL;
    int maxMicroSteps_ = 4000;
    bool incSet_ = false;
    sim::Incantations baseInc_ = sim::Incantations::all();
    std::vector<sim::ChipProfile> chips_;
    std::vector<sim::Incantations> incs_;
    std::vector<std::string> backends_;
    std::vector<LabelledTest> tests_;
    std::vector<Job> extra_;
};

} // namespace gpulitmus::harness

#endif // GPULITMUS_HARNESS_CAMPAIGN_H
