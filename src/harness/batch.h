/**
 * @file
 * The generic deterministic batch core shared by every engine.
 *
 * Both the simulation engine (harness::Engine) and the multi-backend
 * evaluation engine (eval::Engine) need the same machinery: partition
 * a batch of jobs into compute work, cache hits and in-batch aliases;
 * shard the compute work over a worker pool; resolve the aliases; and
 * hand back results *in job order* so downstream output is
 * deterministic at any thread count. This header factors that core
 * out as a template over the (Job, Result) pair.
 *
 * The contract that makes sharding safe is the same as in PR 1: a
 * job's result must be a pure function of the job itself (seeds are
 * derived from job keys, never from scheduling), so any assignment of
 * jobs to workers yields bit-identical results.
 */

#ifndef GPULITMUS_HARNESS_BATCH_H
#define GPULITMUS_HARNESS_BATCH_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gpulitmus::harness {

/**
 * Result memo shared across an engine's lifetime: maps job cache keys
 * to computed results. Thread-safe; hit counting includes in-batch
 * aliases (a duplicate cell served from a batch-mate's computation).
 */
template <typename Result>
class BatchCache
{
  public:
    std::shared_ptr<const Result>
    lookup(uint64_t key) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : it->second;
    }

    void
    store(uint64_t key, std::shared_ptr<const Result> result)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        map_.emplace(key, std::move(result));
    }

    void
    addHits(uint64_t n)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        hits_ += n;
    }

    uint64_t
    hits() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return hits_;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return map_.size();
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        map_.clear();
    }

  private:
    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, std::shared_ptr<const Result>> map_;
    uint64_t hits_ = 0;
};

/**
 * Pool-sharing policy: how many threads a single job may spend on
 * *intra-job* parallelism (a sharded mc exploration) when the batch
 * is already fanning jobs out over `poolThreads` workers. The two
 * levels share one budget rather than multiplying: a saturated batch
 * (at least as many jobs as workers) pins every job to one thread,
 * a small batch splits the pool evenly, and a singleton job gets the
 * whole pool. Purely a wall-clock decision — job results are
 * invariant to thread counts at both levels — so the policy needs no
 * cache-key footprint.
 */
inline int
intraJobThreads(size_t batchJobs, int poolThreads)
{
    if (poolThreads < 1)
        poolThreads = 1;
    if (batchJobs <= 1)
        return poolThreads;
    if (batchJobs >= static_cast<size_t>(poolThreads))
        return 1;
    return poolThreads / static_cast<int>(batchJobs);
}

/** The pluggable pieces of a batch run. */
template <typename Job, typename Result>
struct BatchOps
{
    /** Cache identity of a job; jobs with equal keys have
     * interchangeable results (up to re-labelling). */
    std::function<uint64_t(const Job &)> cacheKey;
    /** Compute one job's result (called from worker threads). */
    std::function<std::shared_ptr<const Result>(const Job &)> execute;
    /** Re-point a computed/cached result at the job that requested
     * it (labels and other non-key identity), marking it served. */
    std::function<std::shared_ptr<const Result>(const Result &,
                                                const Job &)>
        servedFrom;
    /** Human label for telemetry spans (obs/trace.h); optional, only
     * consulted while a trace is being collected. */
    std::function<std::string(const Job &)> describe;
};

/**
 * Execute a batch: cache/alias partition, worker pool, in-order
 * result slots. `cache` may be null (no memoisation — every job
 * computes, even duplicates). `progress` is invoked from worker
 * threads as *computed* jobs finish (cache hits and aliases are not
 * reported); completion order is nondeterministic.
 */
template <typename Job, typename Result>
std::vector<std::shared_ptr<const Result>>
runBatch(const std::vector<Job> &jobs, int threads,
         BatchCache<Result> *cache, const BatchOps<Job, Result> &ops,
         const std::function<void(size_t done, size_t total,
                                  const Result &)> &progress = nullptr)
{
    const size_t n = jobs.size();
    std::vector<std::shared_ptr<const Result>> slots(n);

    // Partition into compute jobs, cache hits and in-batch aliases.
    // An alias is a job whose cache key is owned by an earlier job in
    // this batch; it reuses that job's result instead of recomputing.
    std::vector<size_t> compute;
    std::vector<std::pair<size_t, size_t>> aliases; // (index, owner)
    uint64_t batch_hits = 0;
    {
        std::unordered_map<uint64_t, size_t> owner;
        compute.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            if (!cache) {
                compute.push_back(i);
                continue;
            }
            uint64_t key = ops.cacheKey(jobs[i]);
            if (auto cached = cache->lookup(key)) {
                slots[i] = ops.servedFrom(*cached, jobs[i]);
                ++batch_hits;
                continue;
            }
            auto claimed = owner.find(key);
            if (claimed != owner.end()) {
                aliases.push_back({i, claimed->second});
                ++batch_hits;
            } else {
                owner[key] = i;
                compute.push_back(i);
            }
        }
        if (cache)
            cache->addHits(batch_hits);
    }

    // Telemetry observes the batch — counters and wall clocks only,
    // never job identity or sharding, so results stay bit-identical
    // with GPULITMUS_OBS on or off (tests/test_obs.cc pins this).
    const bool obs_on = obs::enabled();
    if (obs_on) {
        obs::counter("engine_batches_total").add();
        obs::counter("engine_jobs_total").add(n);
        obs::counter("engine_jobs_cached_total").add(batch_hits);
    }
    const auto batch_start = std::chrono::steady_clock::now();
    auto micros_since = [](std::chrono::steady_clock::time_point t0) {
        auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        return static_cast<uint64_t>(us < 0 ? 0 : us);
    };

    // Shard the compute jobs over the pool. Results are pure
    // functions of their jobs, so any sharding is bit-identical.
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex progress_mutex;
    auto worker = [&]() {
        const auto worker_start = std::chrono::steady_clock::now();
        uint64_t busy_us = 0;
        for (;;) {
            size_t c = next.fetch_add(1);
            if (c >= compute.size())
                break;
            size_t idx = compute[c];
            // Queue wait: how long the job sat behind its batch-mates
            // before a worker picked it up.
            if (obs_on)
                obs::timer("engine_queue_wait_us")
                    .record(micros_since(batch_start));
            std::shared_ptr<const Result> result;
            {
                obs::Span span(ops.describe && obs::Trace::active()
                                   ? "job " + ops.describe(jobs[idx])
                                   : std::string("job"),
                               "engine");
                const auto job_start =
                    std::chrono::steady_clock::now();
                result = ops.execute(jobs[idx]);
                if (obs_on) {
                    uint64_t us = micros_since(job_start);
                    obs::timer("engine_job_latency_us").record(us);
                    busy_us += us;
                }
            }
            slots[idx] = result;
            size_t finished = done.fetch_add(1) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                progress(finished, compute.size(), *result);
            }
        }
        // Utilisation: busy µs over wall µs, summed across workers.
        if (obs_on) {
            obs::counter("engine_worker_busy_us_total").add(busy_us);
            obs::counter("engine_worker_wall_us_total")
                .add(micros_since(worker_start));
        }
    };

    int pool = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(threads), compute.size()));
    if (pool <= 1) {
        worker();
    } else {
        std::vector<std::thread> workers;
        workers.reserve(static_cast<size_t>(pool));
        for (int t = 0; t < pool; ++t)
            workers.emplace_back(worker);
        for (auto &t : workers)
            t.join();
    }

    // Resolve in-batch aliases now that their owners have run.
    for (auto [idx, owner_idx] : aliases)
        slots[idx] = ops.servedFrom(*slots[owner_idx], jobs[idx]);

    // Install computed results into the cache.
    if (cache) {
        for (size_t idx : compute)
            cache->store(ops.cacheKey(jobs[idx]), slots[idx]);
    }

    return slots;
}

} // namespace gpulitmus::harness

#endif // GPULITMUS_HARNESS_BATCH_H
