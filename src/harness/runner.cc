#include "harness/runner.h"

#include <cstdlib>

#include "common/log.h"
#include "common/strutil.h"

namespace gpulitmus::harness {

uint64_t
defaultIterations()
{
    const char *env = std::getenv("GPULITMUS_ITERS");
    if (!env)
        return 100000;
    auto v = parseInt(env);
    if (!v || *v <= 0) {
        warn("ignoring invalid GPULITMUS_ITERS='%s'", env);
        return 100000;
    }
    return static_cast<uint64_t>(*v);
}

litmus::Histogram
run(const sim::ChipProfile &chip, const litmus::Test &test,
    const RunConfig &config)
{
    litmus::Histogram hist(test);

    sim::MachineOptions opts;
    opts.inc = config.inc;
    opts.maxMicroSteps = config.maxMicroSteps;
    sim::Machine machine(chip, test, opts);

    // Seed folds in the chip and incantations so parallel sweeps do
    // not reuse streams.
    uint64_t seed = config.seed;
    for (char c : chip.shortName)
        seed = seed * 131 + static_cast<uint64_t>(c);
    seed = seed * 131 + static_cast<uint64_t>(config.inc.column());
    Rng rng(seed);

    for (uint64_t i = 0; i < config.iterations; ++i)
        hist.record(machine.run(rng));
    return hist;
}

uint64_t
observePer100k(const sim::ChipProfile &chip, const litmus::Test &test,
               const RunConfig &config)
{
    litmus::Histogram hist = run(chip, test, config);
    if (hist.total() == 0)
        return 0;
    return hist.observed() * 100000 / hist.total();
}

} // namespace gpulitmus::harness
