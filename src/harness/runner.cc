#include "harness/runner.h"

#include <cstdlib>

#include "common/log.h"
#include "common/strutil.h"
#include "harness/campaign.h"

namespace gpulitmus::harness {

uint64_t
defaultIterations()
{
    const char *env = std::getenv("GPULITMUS_ITERS");
    if (!env)
        return 100000;
    auto v = parseInt(env);
    if (!v || *v <= 0) {
        warn("ignoring invalid GPULITMUS_ITERS='%s'", env);
        return 100000;
    }
    return static_cast<uint64_t>(*v);
}

litmus::Histogram
run(const sim::ChipProfile &chip, const litmus::Test &test,
    const RunConfig &config)
{
    // One-job campaign. The RNG stream is derived from the job key
    // (splitmix64 over base seed, chip, test and incantation column),
    // so this cell is bit-identical to the same cell in any batched
    // sweep, at any thread count.
    JobResult result = runJob(Job::fromConfig(chip, test, config));
    litmus::Histogram hist = std::move(result.hist);
    hist.rebind(test);
    return hist;
}

uint64_t
observePer100k(const sim::ChipProfile &chip, const litmus::Test &test,
               const RunConfig &config)
{
    return runJob(Job::fromConfig(chip, test, config)).observedPer100k;
}

} // namespace gpulitmus::harness
