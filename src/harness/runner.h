/**
 * @file
 * The single-shot harness interface (Sec. 4.2/4.3): run one litmus
 * test many times on one simulated chip under one incantation
 * combination and collect the outcome histogram, exactly as the
 * paper's tool does on real hardware.
 *
 * Since the campaign redesign these free functions are thin wrappers
 * over a one-job campaign: `run` builds a `harness::Job` from its
 * arguments and executes it via `harness::runJob` (see campaign.h),
 * so a cell computed here is bit-identical — same splitmix64-derived
 * RNG stream — to the same cell inside a batched, multi-threaded
 * `Campaign` sweep. Use a Campaign directly for anything that touches
 * more than a couple of cells; use these wrappers for one-off runs.
 */

#ifndef GPULITMUS_HARNESS_RUNNER_H
#define GPULITMUS_HARNESS_RUNNER_H

#include <cstdint>

#include "litmus/outcome.h"
#include "sim/chip.h"
#include "sim/machine.h"

namespace gpulitmus::harness {

struct RunConfig
{
    /** Number of iterations; the paper uses 100k. */
    uint64_t iterations = 100000;
    /** Base RNG seed; every run is reproducible. The per-cell stream
     * is derived from this plus the chip/test/incantation key. */
    uint64_t seed = 0x6c69746d7573ULL; // "litmus"
    /** Incantation combination (Sec. 4.3). */
    sim::Incantations inc = sim::Incantations::all();
    /** Per-iteration machine limits. */
    int maxMicroSteps = 4000;
};

/**
 * Iteration count from the GPULITMUS_ITERS environment variable, or
 * the paper's 100k when unset. Benchmarks use this so CI can dial the
 * runtime down.
 */
uint64_t defaultIterations();

/** Run a test on a chip; returns the full histogram. Wrapper over a
 * one-job campaign (campaign.h). */
litmus::Histogram run(const sim::ChipProfile &chip,
                      const litmus::Test &test,
                      const RunConfig &config = {});

/** Shorthand: number of runs whose final state satisfied the
 * condition body, normalised to per-100k ("obs/100k"). */
uint64_t observePer100k(const sim::ChipProfile &chip,
                        const litmus::Test &test,
                        const RunConfig &config = {});

} // namespace gpulitmus::harness

#endif // GPULITMUS_HARNESS_RUNNER_H
