/**
 * @file
 * Forwarding shim: the single-shot harness interface (RunConfig,
 * defaultIterations, run, observePer100k) now lives in
 * harness/campaign.h, next to the Job/Campaign machinery it wraps.
 * Include that header directly in new code.
 */

#ifndef GPULITMUS_HARNESS_RUNNER_H
#define GPULITMUS_HARNESS_RUNNER_H

#include "harness/campaign.h"

#endif // GPULITMUS_HARNESS_RUNNER_H
