/**
 * @file
 * The test harness (Sec. 4.2/4.3): runs a litmus test many times on a
 * simulated chip under a chosen combination of incantations and
 * collects the outcome histogram, exactly as the paper's tool does on
 * real hardware.
 */

#ifndef GPULITMUS_HARNESS_RUNNER_H
#define GPULITMUS_HARNESS_RUNNER_H

#include <cstdint>

#include "litmus/outcome.h"
#include "sim/chip.h"
#include "sim/machine.h"

namespace gpulitmus::harness {

struct RunConfig
{
    /** Number of iterations; the paper uses 100k. */
    uint64_t iterations = 100000;
    /** RNG seed; every run is reproducible. */
    uint64_t seed = 0x6c69746d7573ULL; // "litmus"
    /** Incantation combination (Sec. 4.3). */
    sim::Incantations inc = sim::Incantations::all();
    /** Per-iteration machine limits. */
    int maxMicroSteps = 4000;
};

/**
 * Iteration count from the GPULITMUS_ITERS environment variable, or
 * the paper's 100k when unset. Benchmarks use this so CI can dial the
 * runtime down.
 */
uint64_t defaultIterations();

/** Run a test on a chip; returns the full histogram. */
litmus::Histogram run(const sim::ChipProfile &chip,
                      const litmus::Test &test,
                      const RunConfig &config = {});

/** Shorthand: number of runs whose final state satisfied the
 * condition body, normalised to per-100k ("obs/100k"). */
uint64_t observePer100k(const sim::ChipProfile &chip,
                        const litmus::Test &test,
                        const RunConfig &config = {});

} // namespace gpulitmus::harness

#endif // GPULITMUS_HARNESS_RUNNER_H
