#include "harness/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <ostream>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "common/log.h"
#include "common/strutil.h"
#include "common/table.h"
#include "obs/metrics.h"
#include "scenario/registry.h"
#include "serve/store.h"

namespace gpulitmus::harness {

// ---- single-shot wrappers (formerly harness/runner.cc) --------------

uint64_t
defaultIterations()
{
    const char *env = std::getenv("GPULITMUS_ITERS");
    if (!env)
        return 100000;
    auto v = parseInt(env);
    if (!v || *v <= 0) {
        warn("ignoring invalid GPULITMUS_ITERS='%s'", env);
        return 100000;
    }
    return static_cast<uint64_t>(*v);
}

litmus::Histogram
run(const sim::ChipProfile &chip, const litmus::Test &test,
    const RunConfig &config)
{
    // One-job campaign. The RNG stream is derived from the job key
    // (splitmix64 over base seed, chip, test and incantation column),
    // so this cell is bit-identical to the same cell in any batched
    // sweep, at any thread count.
    JobResult result = runJob(Job::fromConfig(chip, test, config));
    litmus::Histogram hist = std::move(result.hist);
    hist.rebind(test);
    return hist;
}

uint64_t
observePer100k(const sim::ChipProfile &chip, const litmus::Test &test,
               const RunConfig &config)
{
    return runJob(Job::fromConfig(chip, test, config)).observedPer100k;
}

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

int
defaultJobs()
{
    const char *env = std::getenv("GPULITMUS_JOBS");
    if (env) {
        auto v = parseInt(env);
        if (v && *v > 0)
            return static_cast<int>(*v);
        warn("ignoring invalid GPULITMUS_JOBS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

int
defaultShards()
{
    const char *env = std::getenv("GPULITMUS_MC_SHARDS");
    if (env) {
        auto v = parseInt(env);
        if (v && *v > 0)
            return static_cast<int>(*v);
        warn("ignoring invalid GPULITMUS_MC_SHARDS='%s'", env);
    }
    return 1;
}

Job
Job::fromConfig(const sim::ChipProfile &chip, const litmus::Test &test,
                const RunConfig &config)
{
    Job job;
    job.chip = chip;
    job.test = test;
    job.inc = config.inc;
    job.iterations = config.iterations;
    job.seed = config.seed;
    job.maxMicroSteps = config.maxMicroSteps;
    return job;
}

uint64_t
Job::key() const
{
    if (isSim()) {
        // The PR-1 derivation, bit for bit: sim-only sweeps keep
        // their histograms across the backend redesign.
        uint64_t h = splitmix64(seed);
        h = splitmix64(h ^ fnv1a(chip.shortName));
        h = splitmix64(h ^ fnv1a(test.str()));
        h = splitmix64(h ^ static_cast<uint64_t>(inc.column()));
        return h;
    }
    if (isMc()) {
        // Exploration is deterministic: no seed axis. The chip and
        // the incantation column stay — they select which machine
        // mechanisms exist, so they shape the reachable set.
        uint64_t h = splitmix64(fnv1a(backend));
        h = splitmix64(h ^ fnv1a(chip.shortName));
        h = splitmix64(h ^ fnv1a(test.str()));
        return splitmix64(h ^ static_cast<uint64_t>(inc.column()));
    }
    // A model evaluation depends only on (backend, test); excluding
    // the chip/incantation/seed axes lets a grid sweep collapse the
    // redundant cells onto one computation via the result cache.
    uint64_t h = splitmix64(fnv1a(backend));
    return splitmix64(h ^ fnv1a(test.str()));
}

uint64_t
Job::derivedSeed() const
{
    // Distinct stream from key() so cache identities and RNG states
    // never coincide.
    return splitmix64(key() ^ 0x67707573696dULL); // "gpusim"
}

uint64_t
Job::cacheKey() const
{
    // Iterations are the sampling depth (sim) or the replay budget
    // (mc); either way they shape the result, unlike model cells.
    if (!isSim() && !isMc())
        return key();
    uint64_t h = splitmix64(key() ^ iterations);
    h = splitmix64(h ^ static_cast<uint64_t>(maxMicroSteps));
    // The shard width scales the mc budget pool (iterations ×
    // shards), which can turn a bounded verdict into a complete one —
    // a different result, hence a different identity. shards=1 mixes
    // nothing so every pre-existing cache and store entry keeps its
    // key.
    if (isMc() && shards > 1)
        h = splitmix64(h ^ static_cast<uint64_t>(shards));
    return h;
}

std::string
Job::displayLabel() const
{
    if (!label.empty())
        return label;
    if (isSim())
        return test.name + "@" + chip.shortName;
    if (isMc())
        return test.name + "@" + chip.shortName + "#mc";
    return test.name + "#" + backend;
}

namespace {

/**
 * Per-thread cache of compiled machines, keyed by (chip, test text).
 * A sweep grid revisits the same (chip, test) under many incantation
 * columns and iteration counts; the compiled program depends on
 * neither, so one machine per pair serves the whole batch — each job
 * re-parameterises it via Machine::setOptions and runs. Entries own
 * copies of the chip profile and the test (the machine holds
 * references into its entry), so cached machines outlive the jobs
 * that created them. thread_local keeps workers lock-free and the
 * mutable run state un-shared.
 */
struct CachedMachine
{
    sim::ChipProfile chip;
    litmus::Test test;
    std::string chipName; ///< collision guard alongside the test text
    std::string text;
    std::optional<sim::Machine> machine;
};

sim::Machine &
machineFor(const Job &job)
{
    constexpr size_t kMaxEntries = 64;
    thread_local std::unordered_map<uint64_t,
                                    std::unique_ptr<CachedMachine>>
        cache;

    std::string text = job.test.str();
    uint64_t key = splitmix64(fnv1a(job.chip.shortName)) ^
                   fnv1a(text);
    auto it = cache.find(key);
    if (it != cache.end() &&
        (it->second->chipName != job.chip.shortName ||
         it->second->text != text)) {
        // 64-bit key collision (astronomically rare): evict rather
        // than risk simulating the wrong machine.
        cache.erase(it);
        it = cache.end();
    }
    if (it == cache.end()) {
        if (cache.size() >= kMaxEntries)
            cache.clear();
        auto entry = std::make_unique<CachedMachine>();
        entry->chip = job.chip;
        entry->test = job.test;
        entry->chipName = job.chip.shortName;
        entry->text = std::move(text);
        entry->machine.emplace(entry->chip, entry->test,
                               sim::MachineOptions{});
        it = cache.emplace(key, std::move(entry)).first;
    }
    sim::MachineOptions opts;
    opts.inc = job.inc;
    opts.maxMicroSteps = job.maxMicroSteps;
    it->second->machine->setOptions(opts);
    return *it->second->machine;
}

} // namespace

JobResult
runJob(Job job)
{
    if (!job.isSim()) {
        fatal("job '%s' names backend '%s'; harness::runJob simulates"
              " only — evaluate mixed-backend batches via eval::Engine",
              job.displayLabel().c_str(), job.backend.c_str());
    }
    auto owned = std::make_shared<Job>(std::move(job));

    JobResult result{owned, litmus::Histogram(owned->test)};

    // One compiled machine per (chip, test) per worker thread; the
    // job only re-parameterises the runtime options. Bit-identical
    // to compiling fresh: the compiled program is a pure function of
    // the test, and every run draws only from the job-derived RNG.
    sim::Machine &machine = machineFor(*owned);
    Rng rng(owned->derivedSeed());

    auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < owned->iterations; ++i)
        result.hist.record(machine.run(rng));
    auto end = std::chrono::steady_clock::now();
    result.millis =
        std::chrono::duration<double, std::milli>(end - start).count();

    if (obs::enabled()) {
        obs::counter("sim_jobs_total").add();
        obs::counter("sim_iterations_total").add(owned->iterations);
    }

    if (result.hist.total() > 0) {
        result.observedPer100k =
            result.hist.observed() * 100000 / result.hist.total();
    }
    return result;
}

// ---- TableSink ------------------------------------------------------

TableSink::TableSink(std::string corner, KeyFn row_of, KeyFn col_of)
    : corner_(std::move(corner)), rowOf_(std::move(row_of)),
      colOf_(std::move(col_of))
{
}

void
TableSink::add(const JobResult &result)
{
    std::string row = rowOf_(result);
    std::string col = colOf_(result);
    if (cells_.find(row) == cells_.end())
        rowOrder_.push_back(row);
    bool col_seen = false;
    for (const auto &c : colOrder_)
        col_seen = col_seen || c == col;
    if (!col_seen)
        colOrder_.push_back(col);
    cells_[row][col] = std::to_string(result.observedPer100k);
}

Table
TableSink::render() const
{
    Table table;
    std::vector<std::string> header{corner_};
    for (const auto &c : colOrder_)
        header.push_back(c);
    table.header(header);
    for (const auto &r : rowOrder_) {
        std::vector<std::string> cells{r};
        const auto &row = cells_.at(r);
        for (const auto &c : colOrder_) {
            auto it = row.find(c);
            cells.push_back(it == row.end() ? "-" : it->second);
        }
        table.row(cells);
    }
    return table;
}

TableSink::KeyFn
TableSink::byChip()
{
    return [](const JobResult &r) { return r.chip().shortName; };
}

TableSink::KeyFn
TableSink::byColumn()
{
    return [](const JobResult &r) { return std::to_string(r.column()); };
}

TableSink::KeyFn
TableSink::byLabel()
{
    return [](const JobResult &r) { return r.label(); };
}

// ---- JsonSink -------------------------------------------------------

std::string
simCellJson(const Job &job, const litmus::Histogram &hist,
            uint64_t observed_per_100k, bool from_cache, double millis)
{
    std::string e = "{";
    e += "\"label\":\"" + jsonEscape(job.displayLabel()) + "\",";
    e += "\"backend\":\"" + jsonEscape(job.backend) + "\",";
    e += "\"test\":\"" + jsonEscape(job.test.name) + "\",";
    e += "\"chip\":\"" + jsonEscape(job.chip.shortName) + "\",";
    e += "\"vendor\":\"" + jsonEscape(job.chip.vendor) + "\",";
    e += "\"column\":" + std::to_string(job.inc.column()) + ",";
    e += "\"incantations\":\"" + jsonEscape(job.inc.str()) + "\",";
    e += "\"iterations\":" + std::to_string(job.iterations) + ",";
    e += "\"seed\":" + std::to_string(job.seed) + ",";
    e += "\"observed\":" + std::to_string(hist.observed()) + ",";
    e += "\"total\":" + std::to_string(hist.total()) + ",";
    e += "\"obs_per_100k\":" + std::to_string(observed_per_100k) +
         ",";
    e += "\"verdict\":\"" + jsonEscape(hist.verdict()) + "\",";
    e += "\"cached\":" + std::string(from_cache ? "true" : "false") +
         ",";
    e += "\"millis\":" + std::to_string(millis) + ",";
    e += "\"counts\":{";
    bool first = true;
    for (const auto &[key, count] : hist.counts()) {
        if (!first)
            e += ",";
        e += "\"" + jsonEscape(key) + "\":" + std::to_string(count);
        first = false;
    }
    e += "}}";
    return e;
}

void
JsonSink::add(const JobResult &result)
{
    entries_.push_back(simCellJson(*result.job, result.hist,
                                   result.observedPer100k,
                                   result.fromCache, result.millis));
}

void
JsonSink::writeTo(std::ostream &os) const
{
    writeJsonArray(os, entries_);
}

bool
JsonSink::writeFile(const std::string &path) const
{
    return writeJsonArrayFile(path, entries_);
}

// ---- Engine ---------------------------------------------------------

Engine::Engine(EngineOptions opts)
    : threads_(opts.threads > 0 ? opts.threads : defaultJobs()),
      cacheEnabled_(opts.cache), store_(opts.store)
{
}

std::vector<JobResult>
Engine::run(const std::vector<Job> &jobs,
            const std::vector<ResultSink *> &sinks, ProgressFn progress)
{
    for (const auto &job : jobs) {
        if (!job.isSim()) {
            fatal("job '%s' names backend '%s'; harness::Engine runs"
                  " the simulator only — use eval::Engine for"
                  " mixed-backend batches",
                  job.displayLabel().c_str(), job.backend.c_str());
        }
    }

    BatchOps<Job, JobResult> ops;
    ops.cacheKey = [](const Job &job) { return job.cacheKey(); };
    // The persistent store is the L2 behind the in-process cache: a
    // cache miss consults it before simulating, and every simulated
    // cell feeds it.
    ops.execute = [store = store_](const Job &job) {
        if (store) {
            if (auto hit = store->fetchSim(job))
                return std::make_shared<JobResult>(std::move(*hit));
        }
        auto result = std::make_shared<JobResult>(runJob(job));
        if (store)
            store->putSim(job, *result);
        return result;
    };
    // A cache or alias hit keeps the computed histogram but must
    // carry the *submitted* job's identity (label, etc.), which the
    // cache key deliberately ignores. Copy the result, then repoint
    // it (and its histogram's internal Test reference) at a copy of
    // the submitted job so the result is correctly labelled and
    // self-contained. eval::Engine::run has the EvalResult twin of
    // this closure — keep the rebind invariant in sync there.
    ops.servedFrom = [](const JobResult &src, const Job &requested) {
        auto hit = std::make_shared<JobResult>(src);
        auto owned = std::make_shared<Job>(requested);
        hit->hist.rebind(owned->test);
        hit->job = std::move(owned);
        hit->fromCache = true;
        hit->millis = 0.0;
        return hit;
    };
    ops.describe = [](const Job &job) { return job.displayLabel(); };

    auto slots = runBatch<Job, JobResult>(
        jobs, threads_, cacheEnabled_ ? &cache_ : nullptr, ops,
        std::move(progress));

    // Deliver to sinks in job order: deterministic at any thread count.
    std::vector<JobResult> results;
    results.reserve(slots.size());
    for (const auto &slot : slots) {
        for (ResultSink *sink : sinks) {
            if (sink)
                sink->add(*slot);
        }
        results.push_back(*slot);
    }
    return results;
}

// ---- Campaign -------------------------------------------------------

Campaign &
Campaign::iterations(uint64_t n)
{
    iterations_ = n;
    return *this;
}

Campaign &
Campaign::seed(uint64_t s)
{
    seed_ = s;
    return *this;
}

Campaign &
Campaign::maxMicroSteps(int n)
{
    maxMicroSteps_ = n;
    return *this;
}

Campaign &
Campaign::base(const RunConfig &config)
{
    iterations_ = config.iterations;
    seed_ = config.seed;
    maxMicroSteps_ = config.maxMicroSteps;
    baseInc_ = config.inc;
    incSet_ = true;
    return *this;
}

Campaign &
Campaign::overChips(const std::vector<sim::ChipProfile> &chips)
{
    chips_.insert(chips_.end(), chips.begin(), chips.end());
    return *this;
}

Campaign &
Campaign::overChips(const std::vector<std::string> &short_names)
{
    for (const auto &name : short_names)
        chips_.push_back(sim::chip(name));
    return *this;
}

Campaign &
Campaign::overColumns(int lo, int hi)
{
    for (int col = lo; col <= hi; ++col)
        incs_.push_back(sim::Incantations::fromColumn(col));
    return *this;
}

Campaign &
Campaign::overIncantations(const std::vector<sim::Incantations> &incs)
{
    incs_.insert(incs_.end(), incs.begin(), incs.end());
    return *this;
}

Campaign &
Campaign::overBackends(const std::vector<std::string> &backends)
{
    backends_.insert(backends_.end(), backends.begin(), backends.end());
    return *this;
}

Campaign &
Campaign::overTests(const std::vector<litmus::Test> &tests)
{
    for (const auto &t : tests)
        tests_.push_back({t, ""});
    return *this;
}

Campaign &
Campaign::test(const litmus::Test &t, const std::string &label)
{
    tests_.push_back({t, label});
    return *this;
}

Campaign &
Campaign::scenario(const std::string &spec)
{
    std::string error;
    auto built = gpulitmus::scenario::buildSpec(spec, &error);
    if (!built)
        fatal("%s", error.c_str());
    // No explicit label: the built test's name already carries the
    // scenario id and its parameters ("spinlock_dot_product+t3").
    tests_.push_back({std::move(built->test), "",
                      built->maxMicroSteps});
    return *this;
}

Campaign &
Campaign::overScenarios(const std::vector<std::string> &specs)
{
    for (const auto &spec : specs)
        scenario(spec);
    return *this;
}

Campaign &
Campaign::add(Job job)
{
    extra_.push_back(std::move(job));
    return *this;
}

std::vector<Job>
Campaign::jobs() const
{
    std::vector<sim::ChipProfile> chips = chips_;
    if (chips.empty())
        chips.push_back(sim::chip("Titan"));
    std::vector<sim::Incantations> incs = incs_;
    if (incs.empty())
        incs.push_back(incSet_ ? baseInc_ : sim::Incantations::all());
    std::vector<std::string> backends = backends_;
    if (backends.empty())
        backends.push_back(kSimBackend);

    std::vector<Job> out;
    out.reserve(tests_.size() * chips.size() * incs.size() *
                    backends.size() +
                extra_.size());
    for (const auto &lt : tests_) {
        for (const auto &chip : chips) {
            for (const auto &inc : incs) {
                for (const auto &backend : backends) {
                    Job job;
                    job.backend = backend;
                    job.chip = chip;
                    job.test = lt.test;
                    job.inc = inc;
                    job.iterations = iterations_;
                    job.seed = seed_;
                    job.maxMicroSteps =
                        std::max(maxMicroSteps_, lt.minMicroSteps);
                    job.label = lt.label;
                    out.push_back(std::move(job));
                }
            }
        }
    }
    out.insert(out.end(), extra_.begin(), extra_.end());
    return out;
}

std::vector<JobResult>
Campaign::run(Engine &engine, const std::vector<ResultSink *> &sinks,
              ProgressFn progress) const
{
    return engine.run(jobs(), sinks, std::move(progress));
}

std::vector<JobResult>
Campaign::run(const std::vector<ResultSink *> &sinks,
              ProgressFn progress) const
{
    Engine engine;
    return engine.run(jobs(), sinks, std::move(progress));
}

} // namespace gpulitmus::harness
