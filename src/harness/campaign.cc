#include "harness/campaign.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <string_view>
#include <thread>

#include "common/log.h"
#include "common/strutil.h"
#include "common/table.h"

namespace gpulitmus::harness {

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

int
defaultJobs()
{
    const char *env = std::getenv("GPULITMUS_JOBS");
    if (env) {
        auto v = parseInt(env);
        if (v && *v > 0)
            return static_cast<int>(*v);
        warn("ignoring invalid GPULITMUS_JOBS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

uint64_t
fnv1a(std::string_view s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

Job
Job::fromConfig(const sim::ChipProfile &chip, const litmus::Test &test,
                const RunConfig &config)
{
    Job job;
    job.chip = chip;
    job.test = test;
    job.inc = config.inc;
    job.iterations = config.iterations;
    job.seed = config.seed;
    job.maxMicroSteps = config.maxMicroSteps;
    return job;
}

uint64_t
Job::key() const
{
    uint64_t h = splitmix64(seed);
    h = splitmix64(h ^ fnv1a(chip.shortName));
    h = splitmix64(h ^ fnv1a(test.str()));
    h = splitmix64(h ^ static_cast<uint64_t>(inc.column()));
    return h;
}

uint64_t
Job::derivedSeed() const
{
    // Distinct stream from key() so cache identities and RNG states
    // never coincide.
    return splitmix64(key() ^ 0x67707573696dULL); // "gpusim"
}

uint64_t
Job::cacheKey() const
{
    uint64_t h = splitmix64(key() ^ iterations);
    return splitmix64(h ^ static_cast<uint64_t>(maxMicroSteps));
}

std::string
Job::displayLabel() const
{
    if (!label.empty())
        return label;
    return test.name + "@" + chip.shortName;
}

JobResult
runJob(Job job)
{
    auto owned = std::make_shared<Job>(std::move(job));

    JobResult result{owned, litmus::Histogram(owned->test)};

    sim::MachineOptions opts;
    opts.inc = owned->inc;
    opts.maxMicroSteps = owned->maxMicroSteps;
    sim::Machine machine(owned->chip, owned->test, opts);
    Rng rng(owned->derivedSeed());

    auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < owned->iterations; ++i)
        result.hist.record(machine.run(rng));
    auto end = std::chrono::steady_clock::now();
    result.millis =
        std::chrono::duration<double, std::milli>(end - start).count();

    if (result.hist.total() > 0) {
        result.observedPer100k =
            result.hist.observed() * 100000 / result.hist.total();
    }
    return result;
}

// ---- TableSink ------------------------------------------------------

TableSink::TableSink(std::string corner, KeyFn row_of, KeyFn col_of)
    : corner_(std::move(corner)), rowOf_(std::move(row_of)),
      colOf_(std::move(col_of))
{
}

void
TableSink::add(const JobResult &result)
{
    std::string row = rowOf_(result);
    std::string col = colOf_(result);
    if (cells_.find(row) == cells_.end())
        rowOrder_.push_back(row);
    bool col_seen = false;
    for (const auto &c : colOrder_)
        col_seen = col_seen || c == col;
    if (!col_seen)
        colOrder_.push_back(col);
    cells_[row][col] = std::to_string(result.observedPer100k);
}

Table
TableSink::render() const
{
    Table table;
    std::vector<std::string> header{corner_};
    for (const auto &c : colOrder_)
        header.push_back(c);
    table.header(header);
    for (const auto &r : rowOrder_) {
        std::vector<std::string> cells{r};
        const auto &row = cells_.at(r);
        for (const auto &c : colOrder_) {
            auto it = row.find(c);
            cells.push_back(it == row.end() ? "-" : it->second);
        }
        table.row(cells);
    }
    return table;
}

TableSink::KeyFn
TableSink::byChip()
{
    return [](const JobResult &r) { return r.chip().shortName; };
}

TableSink::KeyFn
TableSink::byColumn()
{
    return [](const JobResult &r) { return std::to_string(r.column()); };
}

TableSink::KeyFn
TableSink::byLabel()
{
    return [](const JobResult &r) { return r.label(); };
}

// ---- JsonSink -------------------------------------------------------

namespace {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

void
JsonSink::add(const JobResult &result)
{
    const Job &job = *result.job;
    std::string e = "{";
    e += "\"label\":\"" + jsonEscape(result.label()) + "\",";
    e += "\"test\":\"" + jsonEscape(job.test.name) + "\",";
    e += "\"chip\":\"" + jsonEscape(job.chip.shortName) + "\",";
    e += "\"vendor\":\"" + jsonEscape(job.chip.vendor) + "\",";
    e += "\"column\":" + std::to_string(job.inc.column()) + ",";
    e += "\"incantations\":\"" + jsonEscape(job.inc.str()) + "\",";
    e += "\"iterations\":" + std::to_string(job.iterations) + ",";
    e += "\"seed\":" + std::to_string(job.seed) + ",";
    e += "\"observed\":" + std::to_string(result.hist.observed()) + ",";
    e += "\"total\":" + std::to_string(result.hist.total()) + ",";
    e += "\"obs_per_100k\":" + std::to_string(result.observedPer100k) +
         ",";
    e += "\"verdict\":\"" + jsonEscape(result.hist.verdict()) + "\",";
    e += "\"cached\":" + std::string(result.fromCache ? "true"
                                                      : "false") +
         ",";
    e += "\"millis\":" + std::to_string(result.millis) + ",";
    e += "\"counts\":{";
    bool first = true;
    for (const auto &[key, count] : result.hist.counts()) {
        if (!first)
            e += ",";
        e += "\"" + jsonEscape(key) + "\":" + std::to_string(count);
        first = false;
    }
    e += "}}";
    entries_.push_back(std::move(e));
}

void
JsonSink::writeTo(std::ostream &os) const
{
    os << "[\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
        os << "  " << entries_[i];
        if (i + 1 < entries_.size())
            os << ",";
        os << "\n";
    }
    os << "]\n";
}

bool
JsonSink::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeTo(out);
    return out.good();
}

// ---- Engine ---------------------------------------------------------

Engine::Engine(EngineOptions opts)
    : threads_(opts.threads > 0 ? opts.threads : defaultJobs()),
      cacheEnabled_(opts.cache)
{
}

std::vector<JobResult>
Engine::run(const std::vector<Job> &jobs,
            const std::vector<ResultSink *> &sinks, ProgressFn progress)
{
    const size_t n = jobs.size();
    std::vector<std::shared_ptr<const JobResult>> slots(n);

    // A cache or alias hit keeps the computed histogram but must
    // carry the *submitted* job's identity (label, etc.), which the
    // cache key deliberately ignores. Copy the result, then repoint
    // it (and its histogram's internal Test reference) at a copy of
    // the submitted job so the result is correctly labelled and
    // self-contained.
    auto servedFrom = [](const JobResult &src, const Job &requested) {
        auto hit = std::make_shared<JobResult>(src);
        auto owned = std::make_shared<Job>(requested);
        hit->hist.rebind(owned->test);
        hit->job = std::move(owned);
        hit->fromCache = true;
        hit->millis = 0.0;
        return hit;
    };

    // Partition into compute jobs and cache/alias hits. An alias is a
    // job whose cache key is owned by an earlier job in this batch;
    // it reuses that job's histogram instead of recomputing it.
    std::vector<size_t> compute;
    std::vector<std::pair<size_t, size_t>> aliases; // (index, owner)
    uint64_t batch_hits = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::unordered_map<uint64_t, size_t> owner;
        compute.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            if (!cacheEnabled_) {
                compute.push_back(i);
                continue;
            }
            uint64_t key = jobs[i].cacheKey();
            auto cached = cache_.find(key);
            if (cached != cache_.end()) {
                slots[i] = servedFrom(*cached->second, jobs[i]);
                ++batch_hits;
                continue;
            }
            auto claimed = owner.find(key);
            if (claimed != owner.end()) {
                aliases.push_back({i, claimed->second});
                ++batch_hits;
            } else {
                owner[key] = i;
                compute.push_back(i);
            }
        }
        cacheHits_ += batch_hits;
    }

    // Shard the compute jobs over the pool. Each job's RNG stream is
    // a pure function of the job, so any sharding yields bit-identical
    // results.
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex progress_mutex;
    auto worker = [&]() {
        for (;;) {
            size_t c = next.fetch_add(1);
            if (c >= compute.size())
                return;
            size_t idx = compute[c];
            auto result =
                std::make_shared<JobResult>(runJob(jobs[idx]));
            slots[idx] = result;
            size_t finished = done.fetch_add(1) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                progress(finished, compute.size(), *result);
            }
        }
    };

    int pool = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(threads_), compute.size()));
    if (pool <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<size_t>(pool));
        for (int t = 0; t < pool; ++t)
            threads.emplace_back(worker);
        for (auto &t : threads)
            t.join();
    }

    // Resolve in-batch aliases now that their owners have run.
    for (auto [idx, owner_idx] : aliases)
        slots[idx] = servedFrom(*slots[owner_idx], jobs[idx]);

    // Install computed results into the cache.
    if (cacheEnabled_) {
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t idx : compute)
            cache_.emplace(jobs[idx].cacheKey(), slots[idx]);
    }

    // Deliver to sinks in job order: deterministic at any thread count.
    std::vector<JobResult> results;
    results.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        for (ResultSink *sink : sinks) {
            if (sink)
                sink->add(*slots[i]);
        }
        results.push_back(*slots[i]);
    }
    return results;
}

size_t
Engine::cacheSize() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

void
Engine::clearCache()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.clear();
}

// ---- Campaign -------------------------------------------------------

Campaign &
Campaign::iterations(uint64_t n)
{
    iterations_ = n;
    return *this;
}

Campaign &
Campaign::seed(uint64_t s)
{
    seed_ = s;
    return *this;
}

Campaign &
Campaign::maxMicroSteps(int n)
{
    maxMicroSteps_ = n;
    return *this;
}

Campaign &
Campaign::base(const RunConfig &config)
{
    iterations_ = config.iterations;
    seed_ = config.seed;
    maxMicroSteps_ = config.maxMicroSteps;
    baseInc_ = config.inc;
    incSet_ = true;
    return *this;
}

Campaign &
Campaign::overChips(const std::vector<sim::ChipProfile> &chips)
{
    chips_.insert(chips_.end(), chips.begin(), chips.end());
    return *this;
}

Campaign &
Campaign::overChips(const std::vector<std::string> &short_names)
{
    for (const auto &name : short_names)
        chips_.push_back(sim::chip(name));
    return *this;
}

Campaign &
Campaign::overColumns(int lo, int hi)
{
    for (int col = lo; col <= hi; ++col)
        incs_.push_back(sim::Incantations::fromColumn(col));
    return *this;
}

Campaign &
Campaign::overIncantations(const std::vector<sim::Incantations> &incs)
{
    incs_.insert(incs_.end(), incs.begin(), incs.end());
    return *this;
}

Campaign &
Campaign::overTests(const std::vector<litmus::Test> &tests)
{
    for (const auto &t : tests)
        tests_.push_back({t, ""});
    return *this;
}

Campaign &
Campaign::test(const litmus::Test &t, const std::string &label)
{
    tests_.push_back({t, label});
    return *this;
}

Campaign &
Campaign::add(Job job)
{
    extra_.push_back(std::move(job));
    return *this;
}

std::vector<Job>
Campaign::jobs() const
{
    std::vector<sim::ChipProfile> chips = chips_;
    if (chips.empty())
        chips.push_back(sim::chip("Titan"));
    std::vector<sim::Incantations> incs = incs_;
    if (incs.empty())
        incs.push_back(incSet_ ? baseInc_ : sim::Incantations::all());

    std::vector<Job> out;
    out.reserve(tests_.size() * chips.size() * incs.size() +
                extra_.size());
    for (const auto &lt : tests_) {
        for (const auto &chip : chips) {
            for (const auto &inc : incs) {
                Job job;
                job.chip = chip;
                job.test = lt.test;
                job.inc = inc;
                job.iterations = iterations_;
                job.seed = seed_;
                job.maxMicroSteps = maxMicroSteps_;
                job.label = lt.label;
                out.push_back(std::move(job));
            }
        }
    }
    out.insert(out.end(), extra_.begin(), extra_.end());
    return out;
}

std::vector<JobResult>
Campaign::run(Engine &engine, const std::vector<ResultSink *> &sinks,
              ProgressFn progress) const
{
    return engine.run(jobs(), sinks, std::move(progress));
}

std::vector<JobResult>
Campaign::run(const std::vector<ResultSink *> &sinks,
              ProgressFn progress) const
{
    Engine engine;
    return engine.run(jobs(), sinks, std::move(progress));
}

} // namespace gpulitmus::harness
