/**
 * @file
 * The diy-style litmus test generator (Sec. 4.1): non-SC executions
 * are encoded as cycles over relaxation edges; every cycle yields one
 * litmus test whose final condition asks for exactly that execution.
 *
 * The GPU extension over the CPU edge vocabulary: communication edges
 * carry a scope annotation (intra-CTA or inter-CTA), which determines
 * the generated scope tree, and fence edges carry a PTX scope
 * (membar.cta / .gl / .sys). Dependencies are manufactured with the
 * and-with-high-bit scheme of Fig. 13b so that -O3 cannot remove them
 * (Sec. 4.5).
 */

#ifndef GPULITMUS_GEN_GENERATOR_H
#define GPULITMUS_GEN_GENERATOR_H

#include <optional>
#include <string>
#include <vector>

#include "litmus/test.h"
#include "ptx/types.h"

namespace gpulitmus::gen {

/** Memory-access direction at an edge endpoint. */
enum class Dir { W, R };

/** Scope annotation for communication (cross-thread) edges. */
enum class ScopeAnn { IntraCta, InterCta };

/** Dependency kinds (Sec. 4.5). */
enum class DepKind { Addr, Data, Ctrl };

/** One candidate edge of a cycle. */
struct Edge
{
    enum class Type {
        Rfe,   ///< write -> read, different thread, same location
        Fre,   ///< read -> write, different thread, same location
        Wse,   ///< write -> write, different thread, same location
               ///  (external coherence edge, a.k.a. coe)
        Po,    ///< program order, same thread
        Dp,    ///< dependency, same thread, different location
        Fence, ///< fenced program order, same thread
    };

    Type type = Type::Po;

    // Endpoint directions; fixed for communication edges.
    Dir from = Dir::W;
    Dir to = Dir::R;

    /** For Po: same location (Pos) or different (Pod). Dp and Fence
     * edges always change location here. */
    bool sameLoc = false;

    ScopeAnn scope = ScopeAnn::InterCta; ///< for communication edges
    ptx::Scope fenceScope = ptx::Scope::Gl; ///< for Fence
    DepKind dep = DepKind::Addr;            ///< for Dp

    bool isComm() const
    {
        return type == Type::Rfe || type == Type::Fre ||
               type == Type::Wse;
    }

    /** diy-style name, e.g. "Rfe-cta", "PodWR", "DpdR",
     * "Fenc.gl-sWR". */
    std::string name() const;
};

/** The candidate-edge pool used for generation. */
std::vector<Edge> defaultPool(bool with_scopes = true,
                              bool with_deps = true);

struct GeneratorOptions
{
    int minEdges = 3;
    int maxEdges = 6;
    /** Stop after this many distinct tests. */
    size_t maxTests = 20000;
    /** Cap on threads per test. */
    int maxThreads = 4;
    /** Cap on locations per test. */
    int maxLocations = 4;
    /**
     * Steer fuzzing toward weak behaviour: score each candidate with
     * the static race analyzer (analysis/race.h) and order the
     * output by descending predicted-racy-pair count, so downstream
     * exploration spends its budget on programs that can actually
     * exhibit reorderings. Off by default: unsteered output order is
     * pinned by tests.
     */
    bool steer = false;
};

/** A generated test with its defining cycle. */
struct GeneratedTest
{
    std::string cycleName;
    litmus::Test test;
    /** Racy-pair count predicted by the static analyzer; -1 when
     * steering was off and the test is unscored. */
    int predictedRacyPairs = -1;
};

/**
 * Enumerate cycles over the pool and synthesise a litmus test for
 * each valid one. Tests are deduplicated by cycle name.
 */
std::vector<GeneratedTest> generate(const std::vector<Edge> &pool,
                                    const GeneratorOptions &opts = {});

/**
 * Synthesise the litmus test for one explicit cycle. Returns nullopt
 * when the cycle is not well formed (direction or location mismatch,
 * no communication edge, thread/location caps exceeded).
 */
std::optional<litmus::Test>
synthesise(const std::vector<Edge> &cycle, const std::string &name,
           const GeneratorOptions &opts = {});

} // namespace gpulitmus::gen

#endif // GPULITMUS_GEN_GENERATOR_H
