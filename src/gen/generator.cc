#include "gen/generator.h"

#include <algorithm>
#include <functional>
#include <set>

#include "analysis/race.h"
#include "common/log.h"
#include "common/strutil.h"

namespace gpulitmus::gen {

namespace {

char
dirLetter(Dir d)
{
    return d == Dir::W ? 'W' : 'R';
}

} // anonymous namespace

std::string
Edge::name() const
{
    switch (type) {
      case Type::Rfe:
      case Type::Fre:
      case Type::Wse: {
        std::string base = type == Type::Rfe   ? "Rfe"
                           : type == Type::Fre ? "Fre"
                                               : "Wse";
        return base + (scope == ScopeAnn::IntraCta ? "-cta" : "-dev");
      }
      case Type::Po:
        return std::string("Po") + (sameLoc ? "s" : "d") +
               dirLetter(from) + dirLetter(to);
      case Type::Dp: {
        std::string kind = dep == DepKind::Addr   ? "Addr"
                           : dep == DepKind::Data ? "Data"
                                                  : "Ctrl";
        return "Dp" + kind + "d" + dirLetter(to);
      }
      case Type::Fence:
        return "F." + ptx::toString(fenceScope) + "-d" +
               dirLetter(from) + dirLetter(to);
    }
    panic("unknown edge type");
}

std::vector<Edge>
defaultPool(bool with_scopes, bool with_deps)
{
    std::vector<Edge> pool;

    auto comm = [&](Edge::Type t, Dir f, Dir to_, ScopeAnn s) {
        Edge e;
        e.type = t;
        e.from = f;
        e.to = to_;
        e.sameLoc = true;
        e.scope = s;
        pool.push_back(e);
    };
    std::vector<ScopeAnn> scopes = {ScopeAnn::InterCta};
    if (with_scopes)
        scopes.push_back(ScopeAnn::IntraCta);
    for (ScopeAnn s : scopes) {
        comm(Edge::Type::Rfe, Dir::W, Dir::R, s);
        comm(Edge::Type::Fre, Dir::R, Dir::W, s);
        comm(Edge::Type::Wse, Dir::W, Dir::W, s);
    }

    auto po = [&](Dir f, Dir t, bool same) {
        Edge e;
        e.type = Edge::Type::Po;
        e.from = f;
        e.to = t;
        e.sameLoc = same;
        pool.push_back(e);
    };
    po(Dir::W, Dir::W, false);
    po(Dir::W, Dir::R, false);
    po(Dir::R, Dir::W, false);
    po(Dir::R, Dir::R, false);
    po(Dir::R, Dir::R, true); // PosRR: the coRR shape
    po(Dir::W, Dir::W, true); // PosWW: the coWW shape

    auto fence = [&](ptx::Scope s, Dir f, Dir t) {
        Edge e;
        e.type = Edge::Type::Fence;
        e.from = f;
        e.to = t;
        e.sameLoc = false;
        e.fenceScope = s;
        pool.push_back(e);
    };
    std::vector<ptx::Scope> fscopes = {ptx::Scope::Gl};
    if (with_scopes) {
        fscopes.push_back(ptx::Scope::Cta);
        fscopes.push_back(ptx::Scope::Sys);
    }
    for (ptx::Scope s : fscopes) {
        fence(s, Dir::W, Dir::W);
        fence(s, Dir::W, Dir::R);
        fence(s, Dir::R, Dir::W);
        fence(s, Dir::R, Dir::R);
    }

    if (with_deps) {
        auto dp = [&](DepKind k, Dir t) {
            Edge e;
            e.type = Edge::Type::Dp;
            e.from = Dir::R; // dependencies emanate from loads
            e.to = t;
            e.sameLoc = false;
            e.dep = k;
            pool.push_back(e);
        };
        dp(DepKind::Addr, Dir::R);
        dp(DepKind::Addr, Dir::W);
        dp(DepKind::Data, Dir::W);
        dp(DepKind::Ctrl, Dir::R);
        dp(DepKind::Ctrl, Dir::W);
    }
    return pool;
}

namespace {

/** Internal per-event record during synthesis. */
struct EventRec
{
    Dir dir = Dir::W;
    int thread = 0;
    int loc = 0;
    int64_t value = -1; ///< write value or expected read value
    int regNum = -1;    ///< destination register number for reads
};

std::string
locName(int idx)
{
    static const char *names[] = {"x", "y", "z", "w", "a", "b",
                                  "c", "d"};
    if (idx < 8)
        return names[idx];
    return "v" + std::to_string(idx);
}

} // anonymous namespace

std::optional<litmus::Test>
synthesise(const std::vector<Edge> &cycle, const std::string &name,
           const GeneratorOptions &opts)
{
    size_t n = cycle.size();
    if (n < 2)
        return std::nullopt;

    // Direction chaining: the target direction of edge i must be the
    // source direction of edge i+1 (cyclically).
    for (size_t i = 0; i < n; ++i) {
        if (cycle[i].to != cycle[(i + 1) % n].from)
            return std::nullopt;
    }

    // The closing edge must be a communication edge (rotations where
    // it is not denote the same test).
    if (!cycle[n - 1].isComm())
        return std::nullopt;

    std::vector<EventRec> events(n);
    for (size_t i = 0; i < n; ++i)
        events[i].dir = cycle[i].from;

    // Threads: a communication edge moves to a fresh thread.
    int nthreads = 1;
    for (size_t i = 0; i + 1 < n; ++i) {
        if (cycle[i].isComm())
            ++nthreads;
        events[i + 1].thread = nthreads - 1;
    }
    if (nthreads < 2 || nthreads > opts.maxThreads)
        return std::nullopt;
    // The closing communication edge returns to thread 0 — distinct
    // by construction.

    // Locations: union-find over same-location edges (including the
    // closing one), then one location per class; location-changing
    // edges must connect distinct classes.
    std::vector<size_t> parent(n);
    for (size_t i = 0; i < n; ++i)
        parent[i] = i;
    std::function<size_t(size_t)> find = [&](size_t x) {
        while (parent[x] != x)
            x = parent[x] = parent[parent[x]];
        return x;
    };
    for (size_t i = 0; i < n; ++i) {
        if (cycle[i].sameLoc)
            parent[find(i)] = find((i + 1) % n);
    }
    for (size_t i = 0; i < n; ++i) {
        if (!cycle[i].sameLoc && find(i) == find((i + 1) % n))
            return std::nullopt; // Pod/Dp/Fence within one location
    }
    int nlocs = 0;
    std::vector<int> class_loc(n, -1);
    for (size_t i = 0; i < n; ++i) {
        size_t root = find(i);
        if (class_loc[root] < 0)
            class_loc[root] = nlocs++;
        events[i].loc = class_loc[root];
    }
    if (nlocs > opts.maxLocations)
        return std::nullopt;

    // Coherence order per location: writes in cycle order.
    std::vector<std::vector<size_t>> writes_of(
        static_cast<size_t>(nlocs));
    for (size_t i = 0; i < n; ++i) {
        if (events[i].dir == Dir::W) {
            auto &ws = writes_of[static_cast<size_t>(events[i].loc)];
            ws.push_back(i);
            events[i].value = static_cast<int64_t>(ws.size());
        }
    }

    // Read values from the communication edges.
    for (size_t i = 0; i < n; ++i) {
        const Edge &e = cycle[i];
        size_t src = i;
        size_t dst = (i + 1) % n;
        if (e.type == Edge::Type::Rfe) {
            // Read sees the write's value.
            int64_t v = events[src].value;
            if (events[dst].value >= 0 && events[dst].value != v)
                return std::nullopt; // conflicting constraints
            events[dst].value = v;
        } else if (e.type == Edge::Type::Fre) {
            // Read sees the coherence predecessor of the write.
            int64_t v = events[dst].value - 1;
            if (events[src].value >= 0 && events[src].value != v)
                return std::nullopt;
            events[src].value = v;
        }
    }
    // Reads with no constraint never happen in valid cycles (every
    // read endpoint touches a communication edge); be safe anyway.
    for (auto &ev : events) {
        if (ev.dir == Dir::R && ev.value < 0)
            return std::nullopt;
    }

    // Coherence consistency: the appearance order (our co order) must
    // agree with every non-closing coherence edge. A *closing* Wse
    // asserts that the co-first write is last in coherence — the
    // relaxed behaviour itself — and is witnessed by the final memory
    // value instead (below).
    bool closing_wse = cycle[n - 1].type == Edge::Type::Wse;
    for (size_t i = 0; i + 1 < n; ++i) {
        if (cycle[i].type == Edge::Type::Wse &&
            events[i].value >= events[i + 1].value)
            return std::nullopt;
    }

    // ---- Emit the litmus test. --------------------------------------
    litmus::TestBuilder builder(name);
    for (int l = 0; l < nlocs; ++l)
        builder.global(locName(l), 0);

    std::string cond;
    std::vector<std::pair<int, std::string>> reg_locs; // addr regs

    for (int t = 0; t < nthreads; ++t) {
        std::string body;
        int next_reg = 0;
        int next_pred = 0;
        // Events of this thread in cycle order.
        for (size_t i = 0; i < n; ++i) {
            if (events[i].thread != t)
                continue;
            EventRec &ev = events[i];

            // The edge *into* this event (from the same thread)
            // dictates dependency/fence plumbing.
            const Edge *in_edge =
                i > 0 && events[i - 1].thread == t ? &cycle[i - 1]
                                                   : nullptr;

            std::string guard;
            std::string addr = "[" + locName(ev.loc) + "]";
            std::string value_src;

            if (in_edge && in_edge->type == Edge::Type::Fence) {
                body += "membar." +
                        ptx::toString(in_edge->fenceScope) + ";";
            } else if (in_edge && in_edge->type == Edge::Type::Dp) {
                // Source register of the dependency: the previous
                // event is a read (Dir::R enforced by the pool).
                std::string src_reg =
                    "r" + std::to_string(events[i - 1].regNum);
                switch (in_edge->dep) {
                  case DepKind::Addr: {
                    // Fig. 13b: and with the high bit, extend, add 0.
                    std::string rz = "r" + std::to_string(20 + next_reg);
                    std::string rw = "r" + std::to_string(30 + next_reg);
                    std::string ra = "r" + std::to_string(40 + next_reg);
                    reg_locs.emplace_back(t, ra + ":" + locName(ev.loc));
                    body += "and.b32 " + rz + "," + src_reg +
                            ",0x80000000;";
                    body += "cvt.u64.u32 " + rw + "," + rz + ";";
                    body += "add.u64 " + ra + "," + ra + "," + rw + ";";
                    addr = "[" + ra + "]";
                    break;
                  }
                  case DepKind::Data: {
                    std::string rz = "r" + std::to_string(20 + next_reg);
                    std::string rv = "r" + std::to_string(30 + next_reg);
                    body += "and.b32 " + rz + "," + src_reg +
                            ",0x80000000;";
                    body += "add.s32 " + rv + "," + rz + "," +
                            std::to_string(ev.value) + ";";
                    value_src = rv;
                    break;
                  }
                  case DepKind::Ctrl: {
                    std::string p = "p" + std::to_string(next_pred++);
                    body += "setp.ne " + p + "," + src_reg + ",1000;";
                    guard = "@" + p + " ";
                    break;
                  }
                }
            }

            if (ev.dir == Dir::W) {
                std::string v = value_src.empty()
                                    ? std::to_string(ev.value)
                                    : value_src;
                body += guard + "st.cg " + addr + "," + v + ";";
            } else {
                ev.regNum = next_reg++;
                std::string r = "r" + std::to_string(ev.regNum);
                body += guard + "ld.cg " + r + "," + addr + ";";
                if (!cond.empty())
                    cond += " /\\ ";
                cond += std::to_string(t) + ":" + r + "=" +
                        std::to_string(ev.value);
            }
        }
        builder.thread(body);
    }

    for (const auto &[t, spec] : reg_locs) {
        auto colon = spec.find(':');
        builder.regLoc(t, spec.substr(0, colon),
                       spec.substr(colon + 1));
    }

    // Final coherence constraints for multi-write locations. A
    // closing Wse edge asserts the first event is co-last, so its
    // location's final value witnesses that write instead.
    for (int l = 0; l < nlocs; ++l) {
        const auto &ws = writes_of[static_cast<size_t>(l)];
        if (ws.size() >= 2) {
            size_t witness = ws.back();
            if (closing_wse && events[0].loc == l)
                witness = 0;
            if (!cond.empty())
                cond += " /\\ ";
            cond += locName(l) + "=" +
                    std::to_string(events[witness].value);
        }
    }
    if (cond.empty())
        return std::nullopt;
    builder.exists(cond);

    // Scope tree from the communication-edge annotations: walk the
    // threads, opening a new CTA when the edge into the next thread
    // is inter-CTA.
    std::vector<litmus::ThreadPlacement> placement(
        static_cast<size_t>(nthreads));
    int cta = 0;
    int warp = 0;
    int thread_idx = 0;
    placement[0] = {0, 0};
    for (size_t i = 0; i + 1 < n; ++i) {
        if (!cycle[i].isComm())
            continue;
        ++thread_idx;
        if (cycle[i].scope == ScopeAnn::IntraCta) {
            ++warp;
        } else {
            ++cta;
            warp = 0;
        }
        placement[static_cast<size_t>(thread_idx)] = {cta, warp};
    }
    // The closing edge relates the last thread and thread 0; check
    // consistency with its annotation.
    bool closing_intra = cycle[n - 1].scope == ScopeAnn::IntraCta;
    bool actually_intra =
        placement[static_cast<size_t>(nthreads - 1)].cta ==
        placement[0].cta;
    if (closing_intra != actually_intra)
        return std::nullopt;
    builder.scope(litmus::ScopeTree(std::move(placement)));

    return builder.build();
}

std::vector<GeneratedTest>
generate(const std::vector<Edge> &pool, const GeneratorOptions &opts)
{
    std::vector<GeneratedTest> out;
    std::set<std::string> seen;

    std::vector<Edge> cycle;
    std::function<void(int)> dfs = [&](int remaining) {
        if (out.size() >= opts.maxTests)
            return;
        if (static_cast<int>(cycle.size()) >= opts.minEdges) {
            // Try to close the cycle.
            if (cycle.back().to == cycle.front().from &&
                cycle.back().isComm()) {
                // Canonical name: the smallest rotation (rotations
                // denote the same test).
                std::vector<std::string> names;
                for (const auto &e : cycle)
                    names.push_back(e.name());
                std::string canonical;
                for (size_t r = 0; r < names.size(); ++r) {
                    std::string rotated;
                    for (size_t k = 0; k < names.size(); ++k) {
                        if (k)
                            rotated += " ";
                        rotated += names[(r + k) % names.size()];
                    }
                    if (canonical.empty() || rotated < canonical)
                        canonical = rotated;
                }
                if (!seen.count(canonical)) {
                    seen.insert(canonical);
                    std::string display;
                    for (size_t k = 0; k < names.size(); ++k) {
                        if (k)
                            display += " ";
                        display += names[k];
                    }
                    auto test = synthesise(cycle, display, opts);
                    if (test)
                        out.push_back({display, std::move(*test)});
                }
            }
        }
        if (remaining == 0)
            return;
        for (const auto &e : pool) {
            if (!cycle.empty() && cycle.back().to != e.from)
                continue;
            cycle.push_back(e);
            dfs(remaining - 1);
            cycle.pop_back();
            if (out.size() >= opts.maxTests)
                return;
        }
    };

    for (const auto &e : pool) {
        cycle.push_back(e);
        dfs(opts.maxEdges - 1);
        cycle.pop_back();
        if (out.size() >= opts.maxTests)
            break;
    }

    if (opts.steer) {
        for (auto &g : out)
            g.predictedRacyPairs =
                static_cast<int>(analysis::analyze(g.test)
                                     .racyPairs());
        // Stable: ties keep enumeration order, so steered output is
        // still deterministic.
        std::stable_sort(out.begin(), out.end(),
                         [](const GeneratedTest &a,
                            const GeneratedTest &b) {
                             return a.predictedRacyPairs >
                                    b.predictedRacyPairs;
                         });
    }
    return out;
}

} // namespace gpulitmus::gen
