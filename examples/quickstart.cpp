/**
 * @file
 * Quickstart: the full gpulitmus workflow on one test.
 *
 * 1. Parse a litmus test from the Fig. 12 text format.
 * 2. Run it 100k times on a simulated GTX Titan under the most
 *    effective incantations and print the outcome histogram.
 * 3. Ask the paper's PTX memory model whether the relaxed outcome is
 *    allowed, and show a witness execution.
 * 4. Sweep the test across an incantation-column grid with the
 *    batched Campaign engine.
 */

#include <iostream>

#include "cat/models.h"
#include "harness/campaign.h"
#include "litmus/parser.h"
#include "model/checker.h"

using namespace gpulitmus;

int
main()
{
    // A store-buffering (sb) test, the classic x86-TSO litmus shape,
    // in the GPU litmus format: two threads in distinct CTAs.
    const char *source = R"(
GPU_PTX SB
{0:.reg .b64 r1 = x; 0:.reg .b64 r3 = y;
 1:.reg .b64 r1 = y; 1:.reg .b64 r3 = x;}
 T0                 | T1                 ;
 mov.s32 r0,1       | mov.s32 r0,1       ;
 st.cg.s32 [r1],r0  | st.cg.s32 [r1],r0  ;
 ld.cg.s32 r2,[r3]  | ld.cg.s32 r2,[r3]  ;
ScopeTree(grid(cta(warp T0)) (cta(warp T1)))
exists (0:r2=0 /\ 1:r2=0)
)";

    litmus::ParseError err;
    auto test = litmus::parseTest(source, &err);
    if (!test) {
        std::cerr << "parse error: " << err.message << "\n";
        return 1;
    }
    std::cout << "Parsed test:\n" << test->str() << "\n";

    // Run on the simulated GTX Titan with all four incantations.
    harness::RunConfig config;
    config.iterations = harness::defaultIterations();
    config.inc = sim::Incantations::all();
    litmus::Histogram hist =
        harness::run(sim::chip("Titan"), *test, config);
    std::cout << hist.str() << "\n";

    // Check the outcome against the paper's PTX model.
    model::Checker checker(cat::models::ptx());
    model::Verdict verdict = checker.check(*test);
    std::cout << "PTX model: " << verdict.numCandidates
              << " candidate executions, " << verdict.numAllowed
              << " allowed; relaxed outcome is "
              << (verdict.conditionSatisfiable ? "ALLOWED"
                                               : "FORBIDDEN")
              << "\n";
    if (verdict.witness) {
        std::cout << "\nwitness execution:\n"
                  << verdict.witness->str();
    }

    // The same test with membar.gl fences is forbidden — and the
    // simulator agrees.
    auto fenced = litmus::parseTest(R"(
GPU_PTX SB+membars
{0:.reg .b64 r1 = x; 0:.reg .b64 r3 = y;
 1:.reg .b64 r1 = y; 1:.reg .b64 r3 = x;}
 T0                 | T1                 ;
 mov.s32 r0,1       | mov.s32 r0,1       ;
 st.cg.s32 [r1],r0  | st.cg.s32 [r1],r0  ;
 membar.gl          | membar.gl          ;
 ld.cg.s32 r2,[r3]  | ld.cg.s32 r2,[r3]  ;
ScopeTree(grid(cta(warp T0)) (cta(warp T1)))
exists (0:r2=0 /\ 1:r2=0)
)",
                                    &err);
    litmus::Histogram fenced_hist =
        harness::run(sim::chip("Titan"), *fenced, config);
    std::cout << "\nWith membar.gl fences: observed "
              << fenced_hist.observed() << "/" << fenced_hist.total()
              << "; model says "
              << (checker.allows(*fenced) ? "allowed" : "forbidden")
              << "\n";

    // Sweeps are first-class: the same test across all 16 incantation
    // columns (Tab. 6), sharded over a worker pool, rendered by a
    // table sink. Bit-identical results at any thread count.
    harness::TableSink table("test",
                             harness::TableSink::byLabel(),
                             harness::TableSink::byColumn());
    harness::Engine engine;
    harness::Campaign()
        .iterations(config.iterations)
        .test(*test, "sb")
        .test(*fenced, "sb+membar.gls")
        .overColumns(1, 16)
        .run(engine, {&table});
    std::cout << "\nIncantation sweep (obs/100k, "
              << engine.threads() << " worker threads):\n";
    table.render().print(std::cout);
    return 0;
}
