/**
 * @file
 * Explore the axiomatic side through the unified eval backend API:
 * resolve a model backend by name (built-in or a .cat file path),
 * evaluate the test through it, then enumerate every candidate
 * execution and print the Fig. 14-style event graphs with the
 * forbidding cycles.
 *
 * Usage: model_explorer [test-name] [model-backend]
 *   test-name: coRR | mp | sb | lb | cas-sl | dlb-lb | lb+membar.ctas
 *   model-backend: ptx | rmo | sc | tso | sc-per-loc-full | baseline
 *                  | path/to/model.cat
 */

#include <iostream>
#include <string>

#include "axiom/enumerate.h"
#include "eval/backend.h"
#include "litmus/library.h"

using namespace gpulitmus;

namespace {

litmus::Test
testByName(const std::string &name)
{
    namespace pl = litmus::paperlib;
    if (name == "coRR")
        return pl::coRR();
    if (name == "mp")
        return pl::mp();
    if (name == "sb")
        return pl::sb();
    if (name == "lb")
        return pl::lb();
    if (name == "cas-sl")
        return pl::casSl(false);
    if (name == "dlb-lb")
        return pl::dlbLb(false);
    if (name == "lb+membar.ctas")
        return pl::lbMembarCtas();
    std::cerr << "unknown test '" << name << "', using mp\n";
    return pl::mp();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string test_name = argc > 1 ? argv[1] : "mp";
    std::string model_name = argc > 2 ? argv[2] : "ptx";

    litmus::Test test = testByName(test_name);

    // An unknown model name is a hard error (with the valid names
    // listed), never a silent fallback.
    std::string error;
    auto axiom_backend = eval::modelBackendByName(model_name, &error);
    if (!axiom_backend) {
        std::cerr << "error: " << error << "\n";
        return 1;
    }
    const cat::Model &model = axiom_backend->model();

    // The one-call evaluation the harness uses for campaigns.
    eval::EvalJob job;
    job.backend = model_name;
    job.test = test;
    eval::EvalResult evaluated = axiom_backend->evaluate(job);
    std::cout << "backend " << evaluated.backend << ": "
              << evaluated.verdict->numCandidates << " candidates, "
              << evaluated.verdict->numAllowed << " allowed, verdict "
              << evaluated.verdict->verdict << "\n\n";

    std::cout << test.str() << "\n";
    std::cout << "model: " << model.name() << " (checks:";
    for (const auto &c : model.checkNames())
        std::cout << " " << c;
    std::cout << ")\n\n";

    auto execs = axiom::enumerateExecutions(test);
    int allowed = 0;
    int satisfying_allowed = 0;
    for (const auto &ex : execs) {
        cat::ModelResult res = model.evaluate(ex);
        bool weak = test.condition.eval(ex.finalState);
        allowed += res.allowed;
        satisfying_allowed += res.allowed && weak;
        if (!weak)
            continue; // print only the executions the test asks about
        std::cout << "--- candidate satisfying the final condition: "
                  << (res.allowed ? "ALLOWED" : "FORBIDDEN") << "\n";
        std::cout << ex.str();
        for (const auto &check : res.checks) {
            if (check.passed)
                continue;
            std::cout << "  check '" << check.name << "' fails; cycle:";
            for (int id : check.cycle)
                std::cout << " " << static_cast<char>('a' + id % 26);
            std::cout << "\n";
        }
        std::cout << "\n";
    }

    std::cout << execs.size() << " candidates, " << allowed
              << " allowed by " << model.name() << ", "
              << satisfying_allowed
              << " of them satisfy the final condition => the relaxed"
                 " outcome is "
              << (satisfying_allowed ? "ALLOWED" : "FORBIDDEN")
              << "\n";
    return 0;
}
