/**
 * @file
 * Audit of the CUDA by Example spin lock (Fig. 2 / Sec. 3.2.2) — the
 * bug that prompted Nvidia's erratum — through the Scenario API.
 *
 * The lock is a registry scenario (`scenario:cas_spinlock`) whose
 * forbidden condition is the bug: the lock was acquired yet the read
 * returned stale data. One campaign samples both variants across
 * chips; the model side checks the PTX model's opinion; and the
 * dot-product client (`scenario:spinlock_dot_product`) gets the
 * *exact* treatment — the exhaustive explorer either exhibits a
 * lost-update schedule or proves there is none.
 */

#include <iostream>

#include "cuda/snippets.h"
#include "harness/campaign.h"
#include "mc/explorer.h"
#include "scenario/catalog.h"

using namespace gpulitmus;

int
main()
{
    std::cout << "CUDA by Example spin lock (original):\n"
              << cuda::casSpinLockSource(false) << "\n";

    // Both lock variants on three chips, plus the PTX model's
    // verdict per variant, in one mixed-backend campaign grid.
    harness::Campaign campaign;
    campaign.iterations(harness::defaultIterations())
        .overChips(std::vector<std::string>{"TesC", "Titan", "HD7970"})
        .scenario("scenario:cas_spinlock")
        .scenario("scenario:cas_spinlock,fenced=1");
    harness::Engine engine;
    auto results = campaign.run(engine);

    size_t next = 0;
    for (bool fences : {false, true}) {
        std::cout << "=== scenario: cas_spinlock"
                  << (fences ? ",fenced=1" : "") << " ===\n";
        for (const char *chip : {"TesC", "Titan", "HD7970"}) {
            std::cout << "  " << chip << ": "
                      << results[next++].observedPer100k
                      << "/100k lock acquisitions read stale data\n";
        }
    }

    // End-to-end, exactly: the dot product of CUDA by Example
    // App 1.2 merges per-CTA sums under this lock. The explorer
    // enumerates every schedule instead of sampling.
    std::cout << "\ndot-product client (3 threads, simulated Tesla"
                 " C2075), exhaustive:\n";
    for (bool fences : {false, true}) {
        litmus::Test test = scenario::spinlockDotProduct(3, fences);
        mc::ExploreOptions opts;
        opts.machine.maxMicroSteps = 20000;
        // The 3-thread lock needs ~1.2M replays to drain; the
        // default budget is a hair under.
        opts.maxReplays = 1u << 22;
        mc::ExploreResult exact =
            mc::Explorer(sim::chip("TesC"), test, opts).explore();
        std::cout << "  " << (fences ? "with fences:   "
                                     : "without fences:");
        if (!exact.satisfying.empty()) {
            std::cout << " " << exact.satisfying.size()
                      << " reachable wrong-sum state(s) — the bug,"
                         " witnessed by a concrete schedule\n";
        } else if (exact.fairComplete) {
            std::cout << " zero lost-update executions"
                         " (every terminating schedule explored)\n";
        } else {
            std::cout << " no wrong sum within the budget\n";
        }
    }
    std::cout << "\nNvidia's erratum [33]: the code \"did not"
                 " consider [weak behaviours] and requires the"
                 " addition of __threadfence() instructions\".\n";
    return 0;
}
