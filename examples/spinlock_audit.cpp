/**
 * @file
 * Audit of the CUDA by Example spin lock (Fig. 2 / Sec. 3.2.2) — the
 * bug that prompted Nvidia's erratum.
 *
 * The lock is distilled to the cas-sl litmus test through the Tab. 5
 * CUDA-to-PTX mapping, tested on every chip, checked against the PTX
 * model, and finally exercised end-to-end by the dot-product client
 * whose global sum comes out wrong when the lock has no fences.
 */

#include <iostream>

#include "cat/models.h"
#include "cuda/apps.h"
#include "cuda/snippets.h"
#include "harness/campaign.h"
#include "model/checker.h"

using namespace gpulitmus;

int
main()
{
    std::cout << "CUDA by Example spin lock (original):\n"
              << cuda::casSpinLockSource(false) << "\n";

    model::Checker checker(cat::models::ptx());

    // Both lock variants on all three chips are one campaign: six
    // cells sharded across the worker pool (GPULITMUS_JOBS).
    harness::Campaign campaign;
    campaign.iterations(harness::defaultIterations())
        .overChips(std::vector<std::string>{"TesC", "Titan", "HD7970"})
        .test(cuda::distillCasSpinLock(false))
        .test(cuda::distillCasSpinLock(true));
    harness::Engine engine;
    auto results = campaign.run(engine);

    size_t next = 0;
    for (bool fences : {false, true}) {
        litmus::Test test = cuda::distillCasSpinLock(fences);
        std::cout << "=== distilled: " << test.name << " ===\n";

        std::cout << "PTX model: stale read "
                  << (checker.allows(test) ? "ALLOWED" : "FORBIDDEN")
                  << "\n";

        for (const char *chip : {"TesC", "Titan", "HD7970"}) {
            const harness::JobResult &r = results[next++];
            std::cout << "  " << chip << ": " << r.observedPer100k
                      << "/100k lock acquisitions read stale data\n";
        }
        std::cout << "\n";
    }

    // End-to-end: the dot product of CUDA by Example App 1.2 merges
    // per-CTA sums under this lock.
    std::cout << "dot-product client (4 threads accumulate under the"
                 " lock, simulated Tesla C2075):\n";
    uint64_t iters = std::max<uint64_t>(
        1000, harness::defaultIterations() / 20);
    for (bool fences : {false, true}) {
        cuda::AppResult r = cuda::runDotProduct(sim::chip("TesC"), 4,
                                                fences, iters);
        std::cout << "  " << (fences ? "with fences:   "
                                     : "without fences:")
                  << " " << r.wrong << "/" << r.runs
                  << " runs produced a wrong sum\n";
    }
    std::cout << "\nNvidia's erratum [33]: the code \"did not"
                 " consider [weak behaviours] and requires the"
                 " addition of __threadfence() instructions\".\n";
    return 0;
}
