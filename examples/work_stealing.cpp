/**
 * @file
 * Audit of the Cederman-Tsigas work-stealing deque (Fig. 6 /
 * Sec. 3.2.1, GPU Computing Gems): without fences the deque can lose
 * tasks in two distinct ways — a steal reading a stale task slot
 * (message passing, dlb-mp) and a steal racing a pop/push pair (load
 * buffering, dlb-lb).
 */

#include <iostream>

#include "cat/models.h"
#include "cuda/apps.h"
#include "cuda/snippets.h"
#include "harness/campaign.h"
#include "model/checker.h"
#include "opt/amd.h"

using namespace gpulitmus;

int
main()
{
    std::cout << "Cederman-Tsigas deque (excerpt, original):\n"
              << cuda::dequeSource(false) << "\n";

    model::Checker checker(cat::models::ptx());

    struct Case
    {
        const char *what;
        litmus::Test test;
    };
    std::vector<Case> cases = {
        {"dlb-mp: steal sees the pushed tail but reads a stale task",
         cuda::distillDequeMp(false)},
        {"dlb-mp with the (+) fences", cuda::distillDequeMp(true)},
        {"dlb-lb: steal obtains the task of a *later* push",
         cuda::distillDequeLb(false)},
        {"dlb-lb with the (+) fences", cuda::distillDequeLb(true)},
    };

    // All (case x chip) cells as one batched campaign; results come
    // back in grid order (case outermost, chip innermost).
    std::vector<const char *> chips = {"TesC", "GTX6", "Titan"};
    harness::Campaign campaign;
    campaign.iterations(harness::defaultIterations())
        .overChips(std::vector<std::string>(chips.begin(),
                                            chips.end()));
    for (const auto &c : cases)
        campaign.test(c.test);
    harness::Engine engine;
    auto results = campaign.run(engine);

    size_t next = 0;
    for (const auto &c : cases) {
        std::cout << "=== " << c.what << " ===\n";
        std::cout << "PTX model: "
                  << (checker.allows(c.test) ? "ALLOWED" : "FORBIDDEN")
                  << "\n";
        for (const char *chip : chips) {
            std::cout << "  " << chip << ": "
                      << results[next++].observedPer100k << "/100k\n";
        }
        std::cout << "\n";
    }

    // The TeraScale 2 OpenCL compiler breaks the test in a different
    // way: it reorders the steal's load past the CAS.
    auto compiled = opt::amdCompile(cuda::distillDequeLb(false),
                                    sim::chip("HD6570"));
    std::cout << "OpenCL on Radeon HD 6570:\n";
    for (const auto &q : compiled.quirks)
        std::cout << "  " << q << "\n";

    // Client view: how often would a work-stealing runtime lose a
    // task?
    uint64_t iters = std::max<uint64_t>(
        1000, harness::defaultIterations() / 10);
    std::cout << "\nwork-stealing client on simulated GTX Titan ("
              << iters << " push/steal races):\n";
    for (bool fences : {false, true}) {
        cuda::AppResult r =
            cuda::runWorkStealing(sim::chip("Titan"), fences, iters);
        std::cout << "  " << (fences ? "with fences:   "
                                     : "without fences:")
                  << " " << r.wrong << " tasks lost\n";
    }
    return 0;
}
