/**
 * @file
 * Audit of the Cederman-Tsigas work-stealing deque (Fig. 6 /
 * Sec. 3.2.1, GPU Computing Gems) through the Scenario API: the
 * push/steal race is the `work_stealing_deque` registry scenario
 * whose forbidden condition is a lost task. One campaign samples
 * both fence variants across chips; the explorer settles the
 * question exactly; and the TeraScale OpenCL compiler adds its own
 * way of breaking the code.
 */

#include <iostream>

#include "cuda/snippets.h"
#include "harness/campaign.h"
#include "mc/explorer.h"
#include "opt/amd.h"
#include "scenario/catalog.h"

using namespace gpulitmus;

int
main()
{
    std::cout << "Cederman-Tsigas deque (excerpt, original):\n"
              << cuda::dequeSource(false) << "\n";

    // Both variants across three chips as one campaign: observed =
    // tasks lost per 100k push/steal races.
    std::vector<const char *> chips = {"TesC", "GTX6", "Titan"};
    harness::Campaign campaign;
    campaign.iterations(harness::defaultIterations())
        .overChips(std::vector<std::string>(chips.begin(),
                                            chips.end()))
        .scenario("scenario:work_stealing_deque")
        .scenario("scenario:work_stealing_deque,fenced=1");
    harness::Engine engine;
    auto results = campaign.run(engine);

    size_t next = 0;
    for (bool fences : {false, true}) {
        std::cout << "=== scenario: work_stealing_deque"
                  << (fences ? ",fenced=1" : "")
                  << " (steal sees the tail, reads a stale task)"
                  << " ===\n";
        for (const char *chip : chips) {
            std::cout << "  " << chip << ": "
                      << results[next++].observedPer100k
                      << " tasks lost /100k\n";
        }
    }

    // Exact verdicts: either a concrete task-losing schedule exists,
    // or none does — no sampling luck involved.
    std::cout << "exhaustive, on the GTX Titan:\n";
    for (bool fences : {false, true}) {
        litmus::Test test = scenario::workStealingDeque(fences);
        mc::ExploreResult exact =
            mc::Explorer(sim::chip("Titan"), test, {}).explore();
        std::cout << "  " << (fences ? "with fences:   "
                                     : "without fences:");
        if (!exact.satisfying.empty())
            std::cout << " task loss reachable (definitive)\n";
        else if (exact.complete)
            std::cout << " task loss unreachable, proven over every"
                         " schedule\n";
        else
            std::cout << " no task loss within the budget\n";
    }

    // The TeraScale 2 OpenCL compiler breaks the deque in a
    // different way: it reorders the steal's load past the CAS of
    // the pop/steal pair (dlb-lb, Fig. 8).
    auto compiled = opt::amdCompile(cuda::distillDequeLb(false),
                                    sim::chip("HD6570"));
    std::cout << "\nOpenCL on Radeon HD 6570:\n";
    for (const auto &q : compiled.quirks)
        std::cout << "  " << q << "\n";
    return 0;
}
