/**
 * @file
 * Drive the diy-style generator (Sec. 4.1): enumerate relaxation
 * cycles, print the synthesised litmus tests, and cross-check each
 * against the PTX model and a simulated chip.
 *
 * Usage: generate_tests [max-edges] [max-tests] [chip]
 */

#include <cstdlib>
#include <iostream>

#include "cat/models.h"
#include "gen/generator.h"
#include "harness/campaign.h"
#include "model/checker.h"

using namespace gpulitmus;

int
main(int argc, char **argv)
{
    gen::GeneratorOptions opts;
    opts.maxEdges = argc > 1 ? std::atoi(argv[1]) : 4;
    opts.maxTests = argc > 2
                        ? static_cast<size_t>(std::atoll(argv[2]))
                        : 12;
    std::string chip_name = argc > 3 ? argv[3] : "Titan";

    auto tests = gen::generate(gen::defaultPool(), opts);
    std::cout << "generated " << tests.size()
              << " tests (cycle length <= " << opts.maxEdges
              << ")\n\n";

    model::Checker checker(cat::models::ptx());
    harness::RunConfig config;
    config.iterations =
        std::max<uint64_t>(2000, harness::defaultIterations() / 20);

    for (const auto &g : tests) {
        std::cout << "=== cycle: " << g.cycleName << " ===\n";
        std::cout << g.test.str();
        bool allowed = checker.allows(g.test);
        uint64_t obs = harness::observePer100k(sim::chip(chip_name),
                                               g.test, config);
        std::cout << "PTX model: "
                  << (allowed ? "ALLOWED" : "FORBIDDEN") << "; "
                  << chip_name << ": " << obs << "/100k";
        if (!allowed && obs > 0)
            std::cout << "  <-- SOUNDNESS VIOLATION";
        std::cout << "\n\n";
    }
    return 0;
}
